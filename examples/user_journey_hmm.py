#!/usr/bin/env python3
"""User-journey decoding with the link-graph HMM (Miller et al. baseline).

Single page loads are classified independently by the adaptive
fingerprinter; when the victim browses several pages in a row, the
website's hyperlink structure constrains which pages can follow which.
This example feeds the per-load prediction scores into the hidden Markov
model over the site's link graph (the Miller et al. technique the paper
compares against) and shows the journey-level accuracy boost.

Run with::

    python examples/user_journey_hmm.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import UserJourneyHMM
from repro.config import ClassifierConfig, TrainingConfig
from repro.core import AdaptiveFingerprinter
from repro.experiments import ci_hyperparameters
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import Crawler, WikipediaLikeGenerator


def emission_scores(fingerprinter, hmm, traces):
    """Per-load scores over the HMM's states from the k-NN vote counts."""
    scores = np.full((len(traces), len(hmm.states)), 1e-3)
    for row, trace in enumerate(traces):
        prediction = fingerprinter.fingerprint(trace)
        for label, score in zip(prediction.ranked_labels, prediction.scores):
            if label in hmm.states:
                scores[row, hmm.states.index(label)] += score
    return scores


def main() -> None:
    extractor = SequenceExtractor(max_sequences=3, sequence_length=24)
    website = WikipediaLikeGenerator(n_pages=12, seed=77).generate()
    dataset = collect_dataset(website, extractor, visits_per_page=15, seed=6)
    reference, _ = reference_test_split(dataset, 0.85, seed=0)

    fingerprinter = AdaptiveFingerprinter(
        n_sequences=3,
        sequence_length=24,
        hyperparameters=ci_hyperparameters(),
        training_config=TrainingConfig(epochs=8, pairs_per_epoch=1200, seed=0),
        classifier_config=ClassifierConfig(k=10),
        extractor=extractor,
        seed=0,
    )
    print("Provisioning the per-page classifier...")
    fingerprinter.provision(reference)
    fingerprinter.initialize(reference)

    hmm = UserJourneyHMM(website, self_transition=0.05)
    crawler = Crawler(seed=1234)
    rng = np.random.default_rng(3)

    journeys = 6
    journey_length = 8
    independent_hits = hmm_hits = total = 0
    for journey_index in range(journeys):
        journey = hmm.sample_journey(journey_length, rng)
        traces = []
        for step, page_id in enumerate(journey):
            labeled = crawler.crawl_single(website, page_id, visit=journey_index * 100 + step)
            traces.append(extractor.extract(labeled.capture, label=page_id, website=website.name))
        scores = emission_scores(fingerprinter, hmm, traces)
        independent = [hmm.states[int(np.argmax(row))] for row in scores]
        decoded = hmm.decode(scores)
        independent_hits += sum(p == a for p, a in zip(independent, journey))
        hmm_hits += sum(p == a for p, a in zip(decoded, journey))
        total += journey_length

    print(f"\nJourneys simulated              : {journeys} x {journey_length} page loads")
    print(f"Per-load classification accuracy: {independent_hits / total:.2f}")
    print(f"HMM journey-decoding accuracy   : {hmm_hits / total:.2f}")
    print("\nThe link-graph prior lets the adversary correct isolated per-load "
          "mistakes, as Miller et al. observed for HTTPS traffic analysis.")


if __name__ == "__main__":
    main()
