#!/usr/bin/env python3
"""Serving quickstart: sharded store + micro-batching + rolling adaptation.

The script trains a small fingerprinter, hands its reference corpus to the
serving subsystem (two shards behind a micro-batching scheduler), replays a
stream of victim page loads — including open-world loads of unmonitored
pages — and refreshes a drifted page's references mid-stream with a
copy-on-write swap that never fails a query.

Run with::

    PYTHONPATH=src python examples/serving_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import ClassifierConfig, TrainingConfig
from repro.core import AdaptiveFingerprinter
from repro.experiments import ci_hyperparameters
from repro.serving import (
    BatchScheduler,
    DeploymentManager,
    LoadGenerator,
    OpenWorldConfig,
    open_world_mix,
)
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import WikipediaLikeGenerator


def main() -> None:
    # 1. Provision a small deployment (identical to examples/quickstart.py).
    website = WikipediaLikeGenerator(n_pages=10, seed=7).generate()
    extractor = SequenceExtractor(max_sequences=3, sequence_length=24)
    dataset = collect_dataset(website, extractor, visits_per_page=12, seed=1)
    reference, held_out = reference_test_split(dataset, 0.85, seed=0)
    fingerprinter = AdaptiveFingerprinter(
        n_sequences=3,
        sequence_length=24,
        hyperparameters=ci_hyperparameters(),
        training_config=TrainingConfig(epochs=6, pairs_per_epoch=900, seed=0),
        classifier_config=ClassifierConfig(k=10),
        extractor=extractor,
        seed=0,
    )
    fingerprinter.provision(reference)
    fingerprinter.initialize(reference)
    print(f"Provisioned: {len(fingerprinter.reference_store)} references, "
          f"{fingerprinter.reference_store.n_classes} monitored pages")

    # 2. Shard the corpus and put a micro-batching scheduler in front of it.
    #    The open-world detector recalibrates automatically on every swap.
    manager = DeploymentManager.from_fingerprinter(
        fingerprinter, n_shards=2, open_world=OpenWorldConfig(neighbour=3, percentile=95)
    )
    print(f"Serving: shard sizes {manager.store.shard_sizes()}, "
          f"generation {manager.generation}")

    # 3. A query stream: embedded victim page loads, 20% of them loads of
    #    pages outside the monitored set.
    corpus = np.asarray(manager.store.embeddings)
    # Monitored revisits land ~the intra-page neighbour distance from their
    # references (the embedding model maps revisits of a page that close);
    # unmonitored pages land far outside every cluster.
    threshold = manager.snapshot().detector.threshold
    queries, is_unmonitored = open_world_mix(
        corpus,
        200,
        unmonitored_fraction=0.2,
        noise_scale=0.1 * threshold,
        outlier_shift=20.0 * threshold,
        revisit_fraction=0.15,
        seed=3,
    )

    # 4. Replay through the scheduler; halfway in, refresh one page's
    #    references (a page changed — the paper's adaptation case) with a
    #    copy-on-write swap.  In-flight batches keep the old snapshot, so
    #    no query ever fails.
    victim_page = manager.store.classes[0]
    fresh = fingerprinter.model.embed_dataset(held_out.first_n_classes(1))

    def refresh() -> None:
        snapshot = manager.replace_class(victim_page, fresh)
        print(f"  ... mid-stream: refreshed {victim_page!r} "
              f"(now generation {snapshot.generation})")

    with BatchScheduler(manager, max_batch_size=32, max_latency_s=0.002) as scheduler:
        result = LoadGenerator(queries).replay(scheduler, mid_run=refresh)

    report = result.report
    print(f"Replayed {report.n_queries} queries: {report.throughput_qps:.0f} q/s, "
          f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms, "
          f"failed: {report.failed}")
    print(f"Scheduler: {scheduler.stats.batches} batches, "
          f"cache hit rate {scheduler.stats.cache_hit_rate:.2f}")

    # 5. Open-world detection on the final snapshot.
    flagged = manager.snapshot().is_unknown(queries)
    tpr = flagged[is_unmonitored].mean()
    fpr = flagged[~is_unmonitored].mean()
    print(f"Open-world detector: flags {tpr:.0%} of unmonitored loads "
          f"at {fpr:.0%} false positives")


if __name__ == "__main__":
    main()
