#!/usr/bin/env python3
"""Scalability sweep: accuracy vs. number of monitored webpages.

Reproduces the shape of the paper's Experiment 1 (Figure 6) at a laptop
scale: the same trained model classifies page loads from target sets of
increasing size, and the printed table shows how top-n accuracy degrades
gracefully while top-10/top-20 adversaries stay close to ceiling.

Run with::

    python examples/wikipedia_scale_sweep.py [--scale smoke|ci]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentContext, run_experiment1, run_experiment2


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "ci"], help="experiment scale")
    arguments = parser.parse_args()

    print(f"Building the {arguments.scale}-scale experiment context (datasets + model)...")
    context = ExperimentContext.build(arguments.scale)
    print(context.wiki_split.summary())
    print()

    result = run_experiment1(context, ns=(1, 3, 5, 10, 20))
    print(result.as_table())
    print()

    unseen = run_experiment2(context, ns=(1, 3, 5, 10, 20))
    print(unseen.as_table())
    print()
    print(unseen.table2_as_table())
    print()
    print(
        "Sub-linear growth of n with the number of classes:",
        "confirmed" if unseen.sublinear() else "not confirmed at this scale",
    )


if __name__ == "__main__":
    main()
