#!/usr/bin/env python3
"""Countermeasure evaluation: how much protection does padding buy, at what cost?

The script evaluates the adaptive adversary against an undefended target
set and against three defences — fixed-length padding (the paper's main
countermeasure), anonymity-set padding (the per-website policy Section VII
proposes) and random padding (known-weak) — reporting the accuracy drop and
the bandwidth overhead of each.

Run with::

    python examples/padding_defence_evaluation.py
"""

from __future__ import annotations

import numpy as np

from repro.config import ClassifierConfig, TrainingConfig
from repro.core import AdaptiveFingerprinter
from repro.defences import (
    AnonymitySetPadding,
    FixedLengthPadding,
    RandomPaddingDefence,
    bandwidth_overhead,
)
from repro.experiments import ci_hyperparameters
from repro.metrics.reports import format_table
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import WikipediaLikeGenerator


def main() -> None:
    extractor = SequenceExtractor(max_sequences=3, sequence_length=24)
    website = WikipediaLikeGenerator(n_pages=15, seed=5).generate()
    dataset = collect_dataset(website, extractor, visits_per_page=15, seed=2)
    reference, test = reference_test_split(dataset, 0.85, seed=0)

    fingerprinter = AdaptiveFingerprinter(
        n_sequences=3,
        sequence_length=24,
        hyperparameters=ci_hyperparameters(),
        training_config=TrainingConfig(epochs=8, pairs_per_epoch=1200, seed=0),
        classifier_config=ClassifierConfig(k=10),
        extractor=extractor,
        seed=0,
    )
    print("Provisioning the adversary...")
    fingerprinter.provision(reference)
    fingerprinter.initialize(reference)
    baseline = fingerprinter.evaluate(test, ns=(1, 3, 10)).topn_accuracy
    print("Undefended accuracy:", {n: round(a, 3) for n, a in baseline.items()})

    defences = [
        FixedLengthPadding(per_sequence=True),
        AnonymitySetPadding(set_size=5),
        RandomPaddingDefence(max_fraction=0.3),
    ]
    rows = []
    for defence in defences:
        padded_reference = defence.apply(reference, log_scaled=True, seed=1)
        padded_test = defence.apply(test, log_scaled=True, seed=2)
        fingerprinter.initialize(padded_reference)
        padded_accuracy = fingerprinter.evaluate(padded_test, ns=(1, 3, 10)).topn_accuracy
        overhead = bandwidth_overhead(test, padded_test, log_scaled=True)
        rows.append([
            defence.name,
            f"{baseline[1]:.3f} -> {padded_accuracy[1]:.3f}",
            f"{baseline[10]:.3f} -> {padded_accuracy[10]:.3f}",
            f"{overhead:.1%}",
        ])

    print()
    print(format_table(["defence", "top-1 accuracy", "top-10 accuracy", "bandwidth overhead"], rows,
                       title="Protection vs. cost"))
    print("\nFixed-length padding gives the strongest protection but at the highest "
          "bandwidth cost; anonymity sets trade a little protection for a much "
          "smaller overhead; random padding is cheap and weak.")


if __name__ == "__main__":
    main()
