#!/usr/bin/env python3
"""Adaptation under content drift — the paper's core operational claim.

The script provisions a fingerprinting deployment against a small website,
then simulates heavy content drift (half of the pages get rewritten).  It
measures the accuracy before the drift, after the drift (degraded), and
after running the adaptation process — which only swaps reference samples
and never retrains the embedding model — showing that the attack recovers
at a tiny operational cost.

Run with::

    python examples/adaptation_under_drift.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import ClassifierConfig, TrainingConfig
from repro.core import AdaptationPolicy, AdaptiveFingerprinter
from repro.experiments import ci_hyperparameters
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import Crawler, MajorUpdate, WikipediaLikeGenerator


def measure_accuracy(fingerprinter, website, extractor, visits=3, top_n=3) -> float:
    """Top-n accuracy against freshly captured loads of the current website."""
    crawler = Crawler(seed=500)
    hits = total = 0
    for page_id in website.page_ids:
        for visit in range(visits):
            labeled = crawler.crawl_single(website, page_id, visit=visit)
            trace = extractor.extract(labeled.capture, label=page_id, website=website.name)
            prediction = fingerprinter.fingerprint(trace)
            hits += int(prediction.contains(page_id, top_n))
            total += 1
    return hits / total


def main() -> None:
    extractor = SequenceExtractor(max_sequences=3, sequence_length=24)
    website = WikipediaLikeGenerator(n_pages=10, seed=42).generate()

    print("Provisioning the deployment...")
    dataset = collect_dataset(website, extractor, visits_per_page=15, seed=3)
    reference, _ = reference_test_split(dataset, 0.85, seed=0)
    fingerprinter = AdaptiveFingerprinter(
        n_sequences=3,
        sequence_length=24,
        hyperparameters=ci_hyperparameters(),
        training_config=TrainingConfig(epochs=8, pairs_per_epoch=1200, seed=0),
        classifier_config=ClassifierConfig(k=10),
        extractor=extractor,
        seed=0,
    )
    fingerprinter.provision(reference)
    fingerprinter.initialize(reference)

    before = measure_accuracy(fingerprinter, website, extractor)
    print(f"Top-3 accuracy before drift          : {before:.2f}")

    # Heavy distributional shift: half the pages are rewritten.
    rng = np.random.default_rng(7)
    changed = MajorUpdate().apply_to_website(website, rng, fraction=0.5)
    print(f"\n{len(changed)} of {len(website)} pages were rewritten: {sorted(changed)[:3]}...")

    degraded = measure_accuracy(fingerprinter, website, extractor)
    print(f"Top-3 accuracy after drift (stale refs): {degraded:.2f}")

    # Adaptation: probe every monitored page, refresh the ones that drifted.
    # No retraining of the embedding model takes place.
    policy = AdaptationPolicy(probe_top_n=1, refresh_samples=8)
    crawler = Crawler(seed=900)
    started = time.perf_counter()
    report = policy.run(fingerprinter, website, crawler, extractor=extractor)
    elapsed = time.perf_counter() - started
    print(
        f"\nAdaptation probed {len(report.probed_pages)} pages, refreshed "
        f"{len(report.refreshed_pages)} ({report.refresh_fraction:.0%}) in {elapsed:.1f}s "
        "without retraining the model"
    )

    recovered = measure_accuracy(fingerprinter, website, extractor)
    print(f"Top-3 accuracy after adaptation       : {recovered:.2f}")


if __name__ == "__main__":
    main()
