#!/usr/bin/env python3
"""Cross-website, cross-version transfer (the paper's Experiment 3).

A two-sequence embedding model is trained on Wikipedia-like TLS 1.2
traces and then used — without retraining — to fingerprint pages of a
Github-like TLS 1.3 site whose page loads involve a varying, load-balanced
set of servers.  The printed table shows how much of the attack survives
the change of website theme, IP-sequence structure and protocol version.

Run with::

    python examples/github_tls13_transfer.py
"""

from __future__ import annotations

from repro.config import ClassifierConfig, TrainingConfig
from repro.core import AdaptiveFingerprinter
from repro.experiments import ci_hyperparameters
from repro.metrics.reports import format_accuracy_table
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import GithubLikeGenerator, WikipediaLikeGenerator


def main() -> None:
    sequence_length = 24
    extractor = SequenceExtractor(max_sequences=2, merge_servers=True, sequence_length=sequence_length)

    print("Collecting two-sequence Wikipedia-like traces (TLS 1.2) for training...")
    wiki = WikipediaLikeGenerator(n_pages=12, seed=31).generate()
    wiki_dataset = collect_dataset(wiki, extractor, visits_per_page=15, seed=4)
    wiki_reference, wiki_test = reference_test_split(wiki_dataset, 0.85, seed=0)

    fingerprinter = AdaptiveFingerprinter(
        n_sequences=2,
        sequence_length=sequence_length,
        hyperparameters=ci_hyperparameters(),
        training_config=TrainingConfig(epochs=8, pairs_per_epoch=1200, seed=0),
        classifier_config=ClassifierConfig(k=10),
        extractor=extractor,
        seed=0,
    )
    fingerprinter.provision(wiki_reference)

    print("Collecting Github-like traces (TLS 1.3, load-balanced CDN pools)...")
    github = GithubLikeGenerator(n_pages=12, seed=32).generate()
    github_dataset = collect_dataset(github, extractor, visits_per_page=15, seed=5)
    github_reference, github_test = reference_test_split(github_dataset, 0.85, seed=1)

    results = {}
    fingerprinter.initialize(wiki_reference)
    results["Wikipedia-like (same site, TLS 1.2)"] = fingerprinter.evaluate(
        wiki_test, ns=(1, 3, 10)
    ).topn_accuracy
    fingerprinter.initialize(github_reference)
    results["Github-like (transfer, TLS 1.3)"] = fingerprinter.evaluate(
        github_test, ns=(1, 3, 10)
    ).topn_accuracy

    print()
    print(format_accuracy_table(results, ns=(1, 3, 10), title="Figure 8 — transfer across websites and TLS versions"))
    print(
        "\nThe model performs best on the website and protocol version it was "
        "trained on, but a useful fraction of its accuracy survives the "
        "transfer — the leakage the attack exploits is not version-specific."
    )


if __name__ == "__main__":
    main()
