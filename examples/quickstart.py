#!/usr/bin/env python3
"""Quickstart: the full adaptive-fingerprinting pipeline in ~40 lines.

The script builds a small synthetic Wikipedia-like website, crawls it to
collect labelled TLS traces (the adversary's provisioning data), trains the
embedding model, initialises the reference corpus, and then fingerprints a
freshly captured page load the model has never seen.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import ClassifierConfig
from repro.core import AdaptiveFingerprinter
from repro.experiments import ci_hyperparameters
from repro.config import TrainingConfig
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import Browser, WikipediaLikeGenerator


def main() -> None:
    # 1. The target: a website whose pages share a theme but differ in content.
    website = WikipediaLikeGenerator(n_pages=12, seed=7).generate()
    print(f"Target website: {len(website)} pages, TLS version {website.tls_version}")

    # 2. Provisioning data: crawl every monitored page a number of times.
    extractor = SequenceExtractor(max_sequences=3, sequence_length=24)
    dataset = collect_dataset(website, extractor, visits_per_page=15, seed=1)
    reference, held_out = reference_test_split(dataset, 0.85, seed=0)
    print(f"Collected {len(dataset)} labelled traces ({dataset.n_classes} classes)")

    # 3. Provision the attack: train the embedding model on pairs of traces,
    #    then embed the reference corpus.
    fingerprinter = AdaptiveFingerprinter(
        n_sequences=3,
        sequence_length=24,
        hyperparameters=ci_hyperparameters(),
        training_config=TrainingConfig(epochs=8, pairs_per_epoch=1200, seed=0),
        classifier_config=ClassifierConfig(k=10),
        extractor=extractor,
        seed=0,
    )
    history = fingerprinter.provision(reference)
    fingerprinter.initialize(reference)
    print(f"Provisioning done: contrastive loss {history.epoch_losses[0]:.2f} -> {history.final_loss:.2f}")

    # 4. The victim loads a page; the on-path adversary captures the traffic
    #    and fingerprints it.
    victim_browser = Browser()
    target_page = website.page_ids[3]
    capture = victim_browser.load(website, target_page, np.random.default_rng(99)).capture
    prediction = fingerprinter.fingerprint(capture)
    print(f"\nVictim loaded      : {target_page}")
    print(f"Adversary's top-3  : {prediction.top(3)}")
    print(f"Correct within top-3: {prediction.contains(target_page, 3)}")

    # 5. Overall quality on held-out traces.
    result = fingerprinter.evaluate(held_out, ns=(1, 3, 5))
    print("\nHeld-out accuracy:", {n: round(a, 3) for n, a in result.topn_accuracy.items()})


if __name__ == "__main__":
    main()
