"""Figure 6 — static webpage classification (Experiment 1).

Regenerates the top-n accuracy series for the class-count sweep (TLS 1.2)
plus the TLS 1.3 series, and asserts the qualitative shape of the paper's
figure: high top-n accuracy on the smallest slice, monotone degradation as
the class count grows, and a top-10/top-20 adversary that stays close to
ceiling.
"""

from benchmarks.conftest import emit
from repro.experiments import run_experiment1


def test_fig6_static_classification(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_experiment1(context, ns=(1, 3, 5, 10, 20)), rounds=1, iterations=1
    )
    emit("Figure 6 — static webpage classification (Experiment 1)", result.as_table())

    counts = sorted(result.accuracy_by_classes)
    smallest, largest = counts[0], counts[-1]
    benchmark.extra_info["top1_smallest"] = result.accuracy_by_classes[smallest][1]
    benchmark.extra_info["top1_largest"] = result.accuracy_by_classes[largest][1]

    # Paper shape: the top-3 adversary exceeds 90 % on the smallest slice
    # and the top-1 adversary is far above chance everywhere.
    assert result.accuracy_by_classes[smallest][3] >= 0.9
    for n_classes, accuracy in result.accuracy_by_classes.items():
        chance = 1.0 / n_classes
        assert accuracy[1] >= 5 * chance
        assert accuracy[1] <= accuracy[3] <= accuracy[10]

    # Accuracy degrades (weakly) as the class count grows.
    assert result.accuracy_by_classes[largest][1] <= result.accuracy_by_classes[smallest][1]

    # Top-10/top-20 adversaries remain near ceiling even on the largest slice
    # (paper: >90 % for the 1000/3000-class sets, top-20 >90 % at 6000).
    assert result.accuracy_by_classes[largest][20] >= 0.85

    # The TLS 1.3 series retains substantial accuracy (Exp. 3's version check).
    assert result.tls13_accuracy[3] >= 0.6
