"""Extension bench — staying accurate under continuous content drift.

This bench operationalises the paper's central practicality argument
(Sections IV-C and VIII): as the monitored pages keep changing, a
deployment that *adapts* (refreshes reference samples, no retraining)
retains its accuracy, while the same deployment left stale degrades.  Each
round rewrites a fraction of the website's pages, measures the stale
deployment's accuracy, runs the adaptation policy and measures again.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.config import ClassifierConfig
from repro.core import AdaptationPolicy, AdaptiveFingerprinter
from repro.experiments.setup import ci_hyperparameters, ci_training_config
from repro.metrics.reports import format_table
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import Crawler, MajorUpdate, WikipediaLikeGenerator

DRIFT_ROUNDS = 3
DRIFT_FRACTION = 0.4
N_PAGES = 10


def _accuracy(fingerprinter, website, extractor, seed, visits=2, top_n=3):
    crawler = Crawler(seed=seed)
    hits = total = 0
    for page_id in website.page_ids:
        for visit in range(visits):
            labeled = crawler.crawl_single(website, page_id, visit=visit)
            trace = extractor.extract(labeled.capture, label=page_id, website=website.name)
            hits += int(fingerprinter.fingerprint(trace).contains(page_id, top_n))
            total += 1
    return hits / total


def test_adaptation_keeps_accuracy_under_drift(benchmark, context):
    scale = context.scale
    extractor = SequenceExtractor(max_sequences=3, sequence_length=context.wiki_dataset.sequence_length)

    def run():
        website = WikipediaLikeGenerator(n_pages=N_PAGES, seed=909).generate()
        dataset = collect_dataset(website, extractor, visits_per_page=scale.samples_per_class, seed=11)
        reference, _ = reference_test_split(dataset, scale.reference_fraction, seed=0)
        fingerprinter = AdaptiveFingerprinter(
            n_sequences=3,
            sequence_length=extractor.sequence_length,
            hyperparameters=ci_hyperparameters(),
            training_config=ci_training_config(scale),
            classifier_config=ClassifierConfig(k=scale.knn_k),
            extractor=extractor,
            seed=5,
        )
        fingerprinter.provision(reference)
        fingerprinter.initialize(reference)

        rows = []
        baseline = _accuracy(fingerprinter, website, extractor, seed=100)
        rows.append(["0 (provisioned)", f"{baseline:.2f}", "-", "-"])
        rng = np.random.default_rng(77)
        policy = AdaptationPolicy(probe_top_n=1, refresh_samples=6)
        stale_accuracies, adapted_accuracies = [], []
        for drift_round in range(1, DRIFT_ROUNDS + 1):
            MajorUpdate().apply_to_website(website, rng, fraction=DRIFT_FRACTION)
            stale = _accuracy(fingerprinter, website, extractor, seed=200 + drift_round)
            report = policy.run(
                fingerprinter, website, Crawler(seed=300 + drift_round), extractor=extractor,
                visit_offset=drift_round * 10,
            )
            adapted = _accuracy(fingerprinter, website, extractor, seed=400 + drift_round)
            stale_accuracies.append(stale)
            adapted_accuracies.append(adapted)
            rows.append([
                str(drift_round),
                f"{stale:.2f}",
                f"{adapted:.2f}",
                f"{len(report.refreshed_pages)}/{len(report.probed_pages)}",
            ])
        return baseline, stale_accuracies, adapted_accuracies, rows

    baseline, stale, adapted, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension — adaptation vs. staleness under continuous drift",
        format_table(["drift round", "stale top-3 accuracy", "adapted top-3 accuracy", "pages refreshed"], rows),
    )

    benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["final_adapted"] = adapted[-1]
    benchmark.extra_info["final_stale"] = stale[-1]

    # Drift hurts the stale deployment ...
    assert min(stale) < baseline
    # ... adaptation recovers a substantial part of the loss every round ...
    for stale_accuracy, adapted_accuracy in zip(stale, adapted):
        assert adapted_accuracy >= stale_accuracy
    # ... and after repeated drift the adapted deployment stays usable while
    # the stale view of the final round has degraded well below it.
    assert adapted[-1] >= 0.6
    assert adapted[-1] >= stale[-1] + 0.1
