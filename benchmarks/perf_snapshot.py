"""Timing snapshot: seed vs optimised hot paths (BENCH_1), the
query-engine memory/speed comparison (BENCH_3), the network serving
replica-scaling table (BENCH_4), the compression-v2 table (BENCH_5:
4-bit packed PQ, OPQ, drift-aware requantization), the native-kernel
ADC scan table (BENCH_6: fused C scan + streaming top-k vs NumPy), and
the storage-tier table (BENCH_7: hot-shm vs cold-mmap RSG1 segments).

Runs the seed implementations (reimplemented inline below, verbatim) and
the current optimised code **in the same process on the same data**, so the
recorded speedups are apples-to-apples on whatever hardware executes them.
Covers the three rewritten hot paths:

* batched k-NN ``predict`` (exact index) at two store sizes,
* the vectorised LSTM forward+backward at the Table I shape,
* embedding throughput through the full network,

plus the **BENCH_3** engine table: per-query time, recall@k and resident
bytes-per-vector for exact (float64/float32) vs IVF vs IVF-PQ at
N in {10k, 100k} — the compressed-index story (PQ codes cut resident index
memory ~16-32x and the uint8 ADC scan beats the IVF float scan).

The **BENCH_4** table replays one open-world Zipf-mix stream through the
asyncio TCP front-end at replica counts 1/2/4 (read replicas behind a
least-loaded router) and records queries/s and p50/p99 latency over the
socket vs straight into the scheduler, plus full-ranking agreement with
the exact single-process baseline.

The **BENCH_5** table is the compression-v2 trajectory: bytes/vec, ms/q
and recall@10 for 8-bit IVF-PQ vs the 4-bit packed engine (with and
without the OPQ rotation), all with exact re-rank on, plus the
drift-requantization scenario — the corpus churns to a shifted
distribution, recall@10 of the stale quantizer is recorded, then a
zero-downtime ``DeploymentManager.requantize()`` runs under a live query
stream (failed queries are counted — the acceptance is zero) and recall
is measured again next to a fresh-trained baseline.

The **BENCH_6** table is the native-kernel story: the same IVF-PQ ADC
scan (4-bit packed and 8-bit, ``rerank=0`` so nothing but the scan is
timed) answered by the fused C kernels and by the NumPy fallback on the
same trained index, at two probe depths.  Recorded per cell: ms/query,
effective GB/s of code bytes scanned, tracemalloc peak (the NumPy path
materialises the probed-candidate buffer; the streaming kernel's peak is
flat in probe depth) and whether the rankings are bitwise identical.

The **BENCH_7** table (``repro.serving.bench.run_storage_tier_bench``)
publishes the same shards once into POSIX shared memory and once as
mmap'd spill files (``docs/segment-format.md``), and records throughput,
bytes published per medium, and the acceptance check that every
configuration — including a live ``set_storage_tier`` flip and a
``replace_class`` churn — answers bit-identically.

Every snapshot carries the same provenance header (:func:`_platform_header`):
python/numpy/machine plus the native-kernel status — compiler
availability, kernel source hash and cache dir — so a JSON artifact
always says which scan path produced it.

Usage::

    PYTHONPATH=src python benchmarks/perf_snapshot.py [--out BENCH_1.json]
        [--out3 BENCH_3.json] [--out4 BENCH_4.json] [--out5 BENCH_5.json]
        [--out6 BENCH_6.json] [--out7 BENCH_7.json]
        [--index-sizes 10000,100000] [--only-index]
        [--only-frontend] [--only-compression] [--only-kernels] [--only-storage]
        [--compression-size 60000] [--kernel-size 500000]
        [--frontend-references 6000] [--frontend-queries 2000]

``--only-index`` / ``--only-frontend`` / ``--only-compression`` /
``--only-kernels`` / ``--only-storage`` skip the other sections (used by
the CI smoke jobs, which run reduced sizes).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np
from scipy.spatial.distance import cdist

from repro.config import ClassifierConfig
from repro.core import CoarseQuantizedIndex, ExactIndex, IVFPQIndex, KNNClassifier, ReferenceStore
from repro.core.classifier import Prediction
from repro.core.embedding import EmbeddingModel
from repro.core.index_bench import clustered_corpus
from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init
from repro.nn.lstm import LSTM


# --------------------------------------------------------------------- seed code
def seed_predict(store: ReferenceStore, config: ClassifierConfig, embeddings: np.ndarray) -> List[Prediction]:
    """The seed KNNClassifier.predict: full sort + per-query Python voting."""
    queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    k = min(config.k, len(store))
    distances = cdist(queries, store.embeddings, metric=config.distance_metric)
    labels = store.labels
    predictions: List[Prediction] = []
    for row in range(queries.shape[0]):
        neighbour_order = np.argsort(distances[row], kind="stable")[:k]
        votes: Dict[str, float] = {}
        for neighbour in neighbour_order:
            label = str(labels[neighbour])
            weight = 1.0 / (distances[row, neighbour] + 1e-9) if config.weighting == "distance" else 1.0
            votes[label] = votes.get(label, 0.0) + weight
        closest: Dict[str, float] = {}
        for neighbour in neighbour_order:
            label = str(labels[neighbour])
            closest.setdefault(label, float(distances[row, neighbour]))
        ranked = sorted(votes, key=lambda label: (-votes[label], closest[label], label))
        predictions.append(Prediction(ranked_labels=ranked, scores=[votes[l] for l in ranked]))
    return predictions


def _seed_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class SeedLSTM:
    """The seed LSTM: per-timestep Python lists and per-step GEMMs."""

    def __init__(self, in_features: int, units: int, rng: np.random.Generator) -> None:
        self.in_features = in_features
        self.units = units
        bias = zeros_init((4 * units,))
        bias[units : 2 * units] = 1.0
        self.params = {
            "W": glorot_uniform((in_features, 4 * units), rng),
            "U": np.concatenate([orthogonal((units, units), rng) for _ in range(4)], axis=1),
            "b": bias,
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        units = self.units
        h = np.zeros((batch, units))
        c = np.zeros((batch, units))
        cache = {key: [] for key in ("i", "f", "g", "o", "c", "h", "c_prev", "h_prev")}
        W, U, b = self.params["W"], self.params["U"], self.params["b"]
        for t in range(steps):
            h_prev, c_prev = h, c
            z = x[:, t, :] @ W + h_prev @ U + b
            i = _seed_sigmoid(z[:, :units])
            f = _seed_sigmoid(z[:, units : 2 * units])
            g = np.tanh(z[:, 2 * units : 3 * units])
            o = _seed_sigmoid(z[:, 3 * units :])
            c = f * c_prev + i * g
            h = o * np.tanh(c)
            for key, value in (("i", i), ("f", f), ("g", g), ("o", o), ("c", c), ("h", h),
                               ("c_prev", c_prev), ("h_prev", h_prev)):
                cache[key].append(value)
        self._cache = cache
        self._x = x
        return h

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x, cache = self._x, self._cache
        batch, steps, _ = x.shape
        W, U = self.params["W"], self.params["U"]
        grad_x = np.zeros_like(x)
        dh_next = grad.copy()
        dc_next = np.zeros((batch, self.units))
        dW, dU, db = np.zeros_like(W), np.zeros_like(U), np.zeros_like(self.params["b"])
        for t in range(steps - 1, -1, -1):
            i, f, g, o = cache["i"][t], cache["f"][t], cache["g"][t], cache["o"][t]
            c, c_prev, h_prev = cache["c"][t], cache["c_prev"][t], cache["h_prev"][t]
            tanh_c = np.tanh(c)
            do = dh_next * tanh_c
            dc = dh_next * o * (1.0 - tanh_c**2) + dc_next
            di, dg, df = dc * g, dc * i, dc * c_prev
            dc_next = dc * f
            dz = np.concatenate(
                [di * i * (1.0 - i), df * f * (1.0 - f), dg * (1.0 - g**2), do * o * (1.0 - o)], axis=1
            )
            dW += x[:, t, :].T @ dz
            dU += h_prev.T @ dz
            db += dz.sum(axis=0)
            grad_x[:, t, :] = dz @ W.T
            dh_next = dz @ U.T
        self.grads["W"] += dW
        self.grads["U"] += dU
        self.grads["b"] += db
        return grad_x


# ------------------------------------------------------------------ measurement
def _platform_header() -> Dict:
    """Shared provenance header for every BENCH_* snapshot.

    Besides the interpreter/NumPy/machine triple, this records the
    native-kernel status (compiler availability, kernel source hash,
    cache dir, whether the fused C scan is active), so any benchmark JSON
    states which scan path produced its numbers.
    """
    from repro.core.kernels import kernel_status

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "native_kernels": kernel_status(),
    }


def _best_of(fn, repeats: int = 5) -> float:
    fn()  # warm up caches/workspaces for both implementations alike
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _p50(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def bench_predict(store_sizes=(1_000, 10_000), n_classes=200, dim=32, k=250, n_queries=256) -> Dict:
    rng = np.random.default_rng(0)
    results: Dict[str, Dict] = {}
    for n in store_sizes:
        vectors = clustered_corpus(n, dim, n_clusters=n_classes, seed=1)
        labels = [f"page-{i % n_classes:04d}" for i in range(n)]
        store = ReferenceStore(dim)
        store.add(vectors, labels)
        config = ClassifierConfig(k=k)
        classifier = KNNClassifier(store, config)
        queries = vectors[rng.choice(n, n_queries, replace=False)] + 0.1 * rng.standard_normal((n_queries, dim))

        batched_p50 = _p50(lambda: classifier.predict(queries))
        seed_p50 = _p50(lambda: seed_predict(store, config, queries), repeats=3)

        ivf_store = ReferenceStore(dim, index=CoarseQuantizedIndex())
        ivf_store.add(vectors, labels)
        ivf_p50 = _p50(lambda: KNNClassifier(ivf_store, config).predict(queries))

        results[str(n)] = {
            "n_references": n,
            "n_queries": n_queries,
            "k": k,
            "seed_p50_s": seed_p50,
            "batched_p50_s": batched_p50,
            "ivf_p50_s": ivf_p50,
            "speedup_batched_vs_seed": seed_p50 / batched_p50,
            "speedup_ivf_vs_seed": seed_p50 / ivf_p50,
        }
    return results


def bench_lstm(batch=512, steps=40, features=3, units=30) -> Dict:
    rng = np.random.default_rng(2)
    x = rng.standard_normal((batch, steps, features))
    seed_layer = SeedLSTM(features, units, np.random.default_rng(3))
    new_layer = LSTM(features, units, rng=np.random.default_rng(3))

    def run_seed():
        out = seed_layer.forward(x)
        seed_layer.backward(out)

    def run_new():
        out = new_layer.forward(x)
        new_layer.backward(out)

    seed_s = _best_of(run_seed, repeats=9)
    new_s = _best_of(run_new, repeats=9)
    return {
        "shape": {"batch": batch, "steps": steps, "features": features, "units": units},
        "seed_fwd_bwd_s": seed_s,
        "vectorised_fwd_bwd_s": new_s,
        "speedup": seed_s / new_s,
    }


def bench_embed(batch=512, steps=40, features=3) -> Dict:
    model = EmbeddingModel(n_sequences=features)
    inputs = np.random.default_rng(4).standard_normal((batch, steps, features)) ** 2
    elapsed = _best_of(lambda: model.embed(inputs))
    return {
        "batch": batch,
        "embed_s": elapsed,
        "traces_per_s": batch / elapsed,
    }


def bench_index_engines(
    sizes=(10_000, 100_000), dim=64, k=10, n_queries=256, repeats=3, seed=0
) -> Dict:
    """The BENCH_3 table: exact (f64/f32) vs IVF vs IVF-PQ per corpus size.

    Every engine answers the same queries; recall@k / top-1 agreement are
    against the exact float64 ranking.  Bytes-per-vector reports the index's
    resident side structures and the raw store separately: the IVF-PQ rows
    with ``rerank == 0`` never touch the raw store after training, so their
    resident footprint is the index column alone.
    """
    rng = np.random.default_rng(seed + 1)
    results: Dict[str, Dict] = {}
    for n in sizes:
        vectors = clustered_corpus(n, dim, seed=seed + 2)
        vectors32 = vectors.astype(np.float32)
        queries = vectors[rng.choice(n, size=min(n_queries, n), replace=False)]
        queries = queries + 0.1 * rng.standard_normal(queries.shape)
        k_eff = min(k, n)

        ivfpq = IVFPQIndex()  # rerank=64 default
        engines = {
            "exact_f64": (ExactIndex(), vectors),
            "exact_f32": (ExactIndex(), vectors32),
            "ivf": (CoarseQuantizedIndex(), vectors),
            "ivfpq": (ivfpq, vectors),
            "ivfpq_adc_only": (IVFPQIndex(rerank=0), None),
        }
        exact_ids = None
        size_rows: Dict[str, Dict] = {}
        for name, (engine, search_vectors) in engines.items():
            train_start = time.perf_counter()
            if name == "ivfpq_adc_only":
                # Same trained structures, different search knob: adopt the
                # already-trained state instead of re-running k-means.
                engine.load_state(ivfpq.state())
            else:
                engine.rebuild(vectors)
            train_s = time.perf_counter() - train_start
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                engine.search(search_vectors, queries, k_eff)
                best = min(best, time.perf_counter() - start)
            _, ids = engine.search(search_vectors, queries, k_eff)
            if exact_ids is None:
                exact_ids = ids
            hits = np.array(
                [np.intersect1d(ids[q], exact_ids[q]).size for q in range(ids.shape[0])]
            )
            store_bytes = 0 if search_vectors is None else search_vectors.nbytes
            size_rows[name] = {
                "ms_per_query": 1e3 * best / queries.shape[0],
                "recall_at_k": float(hits.mean() / k_eff),
                "top1_agreement": float((ids[:, 0] == exact_ids[:, 0]).mean()),
                "identical_ranking": bool(np.array_equal(ids, exact_ids)),
                "index_bytes_per_vector": engine.memory_bytes() / n,
                "store_bytes_per_vector": store_bytes / n,
                "train_s": train_s,
                "k": k_eff,
            }
        results[str(n)] = size_rows
    return results


def _bench3_snapshot(engines: Dict, sizes) -> Dict:
    largest = str(max(sizes))
    at_largest = engines[largest]
    return {
        "snapshot": "BENCH_3",
        "platform": _platform_header(),
        "engines": engines,
        "acceptance_at_largest_n": {
            "n_references": int(largest),
            "ivfpq_speedup_vs_ivf": at_largest["ivf"]["ms_per_query"]
            / at_largest["ivfpq"]["ms_per_query"],
            "index_memory_shrink_vs_exact_f64": at_largest["exact_f64"]["store_bytes_per_vector"]
            / at_largest["ivfpq"]["index_bytes_per_vector"],
            "ivfpq_recall_at_k": at_largest["ivfpq"]["recall_at_k"],
            "ivfpq_top1_agreement": at_largest["ivfpq"]["top1_agreement"],
        },
    }


def bench_compression(
    n=60_000, dim=64, k=10, n_queries=256, repeats=3, seed=0
) -> Dict:
    """BENCH_5 engine table: 8-bit IVF-PQ vs 4-bit packed (± OPQ), rerank on.

    All engines answer the same queries; recall@k is against the exact
    float64 ranking.  The acceptance pair: the 4-bit engine's index
    bytes/vec at <= 55% of the 8-bit engine's, with recall@10 >= 0.95.
    """
    rng = np.random.default_rng(seed + 1)
    vectors = clustered_corpus(n, dim, seed=seed + 2)
    queries = vectors[rng.choice(n, size=min(n_queries, n), replace=False)]
    queries = queries + 0.1 * rng.standard_normal(queries.shape)
    k_eff = min(k, n)
    _, exact_ids = ExactIndex().search(vectors, queries, k_eff)

    engines = {
        "ivfpq_8bit": IVFPQIndex(min_train_size=min(256, n)),
        "ivfpq_4bit": IVFPQIndex(bits=4, min_train_size=min(256, n)),
        "ivfpq_4bit_opq": IVFPQIndex(bits=4, opq=True, min_train_size=min(256, n)),
    }
    rows: Dict[str, Dict] = {}
    for name, engine in engines.items():
        train_start = time.perf_counter()
        engine.rebuild(vectors)
        train_s = time.perf_counter() - train_start
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            engine.search(vectors, queries, k_eff)
            best = min(best, time.perf_counter() - start)
        _, ids = engine.search(vectors, queries, k_eff)
        hits = np.array(
            [np.intersect1d(ids[q], exact_ids[q]).size for q in range(ids.shape[0])]
        )
        rows[name] = {
            "ms_per_query": 1e3 * best / queries.shape[0],
            "recall_at_k": float(hits.mean() / k_eff),
            "index_bytes_per_vector": engine.memory_bytes() / n,
            "train_s": train_s,
            "bits": engine.pq.bits,
            "opq": engine.opq,
            "rerank": engine.rerank,
            "k": k_eff,
        }
    return {"n_references": n, "dim": dim, "engines": rows}


def bench_drift_requantize(
    n=12_000, n_classes=120, dim=32, k=10, n_queries=256, n_shards=2, seed=0
) -> Dict:
    """BENCH_5 drift scenario: churn -> stale recall -> requantize -> recovery.

    A 4-bit IVF-PQ deployment (rerank on) serves while every monitored
    class is replaced with embeddings from a shifted distribution; the
    stale quantizer's recall@10 is measured against the exact ranking,
    ``DeploymentManager.requantize()`` swaps re-trained shards in under a
    live query stream (zero failed queries is the acceptance), and recall
    is measured again next to a fresh-trained baseline.

    This measures the same scenario ``tests/test_requantize_drift.py``
    asserts (at a larger N): keep the index factory, churn recipe and
    swap harness in sync with that file when changing either.
    """
    import threading

    from repro.serving import BatchScheduler, DeploymentManager, ShardedReferenceStore

    def index_factory():
        # Moderate probe/rerank budgets: enough margin for ~1.0 recall on
        # the distribution the quantizer trained on, little enough that a
        # stale quantizer's ADC error becomes visible instead of being
        # papered over by a deep exact re-rank.
        return IVFPQIndex(bits=4, rerank=32, n_probe=8, min_train_size=64)

    def recall_at_k(store, queries, exact_ids):
        _, ids = store.search(queries, k)
        hits = np.array(
            [np.intersect1d(ids[q], exact_ids[q]).size for q in range(ids.shape[0])]
        )
        return float(hits.mean() / k)

    rng = np.random.default_rng(seed + 3)
    original = clustered_corpus(n, dim, n_clusters=n_classes, seed=seed + 4)
    labels = [f"page-{i % n_classes:04d}" for i in range(n)]
    flat = ReferenceStore(dim)
    flat.add(original, labels)
    manager = DeploymentManager(
        ShardedReferenceStore.from_reference_store(
            flat, n_shards=n_shards, index_factory=index_factory
        ),
        ClassifierConfig(k=k),
    )

    # Churn every class to a shifted, rescaled cluster structure — the
    # quantizer trained on `original` has never seen this distribution.
    drifted = clustered_corpus(n, dim, n_clusters=n_classes, seed=seed + 91) * 1.5 + 4.0
    for c in range(n_classes):
        manager.replace_class(f"page-{c:04d}", drifted[c::n_classes])

    store = manager.store
    corpus = np.asarray(store.embeddings, dtype=np.float64)
    queries = corpus[rng.choice(n, size=min(n_queries, n), replace=False)]
    queries = queries + 0.1 * rng.standard_normal(queries.shape)
    _, exact_ids = ExactIndex().search(corpus, queries, k)

    drift_before = float(store.drift_ratio())
    retrain_flag = bool(store.retrain_needed())
    recall_stale = recall_at_k(store, queries, exact_ids)

    fresh_store = ReferenceStore(dim, index=index_factory())
    fresh_store.add(corpus, list(store.labels))
    recall_fresh = recall_at_k(fresh_store, queries, exact_ids)

    # Requantize under a live query stream; every ticket must succeed.
    scheduler = BatchScheduler(manager, max_batch_size=32, max_latency_s=0.001)
    tickets = []
    stop = threading.Event()

    def pump():
        position = 0
        while not stop.is_set():
            tickets.append(scheduler.submit(queries[position % queries.shape[0]]))
            position += 1

    with scheduler:
        pumper = threading.Thread(target=pump)
        pumper.start()
        try:
            swap_start = time.perf_counter()
            manager.requantize()
            swap_s = time.perf_counter() - swap_start
        finally:
            stop.set()
            pumper.join()
    failed = sum(1 for ticket in tickets if ticket.failed)

    recall_after = recall_at_k(manager.store, queries, exact_ids)
    return {
        "n_references": n,
        "n_classes": n_classes,
        "dim": dim,
        "k": k,
        "drift_ratio_before": drift_before,
        "retrain_needed_before": retrain_flag,
        "drift_ratio_after": float(manager.store.drift_ratio()),
        "recall_stale": recall_stale,
        "recall_fresh_trained": recall_fresh,
        "recall_after_requantize": recall_after,
        "requantize_swap_s": swap_s,
        "queries_during_swap": len(tickets),
        "failed_during_swap": failed,
    }


def _bench5_snapshot(engines: Dict, drift: Dict) -> Dict:
    rows = engines["engines"]
    return {
        "snapshot": "BENCH_5",
        "platform": _platform_header(),
        "compression": engines,
        "drift_requantize": drift,
        "acceptance": {
            "bytes_ratio_4bit_vs_8bit": rows["ivfpq_4bit"]["index_bytes_per_vector"]
            / rows["ivfpq_8bit"]["index_bytes_per_vector"],
            "recall_at_10_4bit": rows["ivfpq_4bit"]["recall_at_k"],
            "recall_recovered": drift["recall_after_requantize"]
            >= drift["recall_fresh_trained"] - 0.01,
            "failed_queries_during_swap": drift["failed_during_swap"],
        },
    }


def bench_kernels(
    n=500_000, dim=64, k=10, n_queries=32, repeats=3, seed=0,
    probe_counts=(16, 128), n_cells=1024,
) -> Dict:
    """BENCH_6: the fused C ADC scan + streaming top-k vs the NumPy path.

    One IVF-PQ index per bit width (4-bit packed and 8-bit, ``rerank=0``
    so only the ADC scan and selection are timed) answers the same
    queries with ``native_kernels`` flipped between ``"on"`` and
    ``"off"`` — same trained structures, same probe lists, so the timing
    difference is purely the scan/top-k implementation.  Per (bits,
    n_probe) cell:

    * ms/query and the effective GB/s of *code bytes* scanned (probed
      rows x code width over the best wall time),
    * tracemalloc peak of one search — the NumPy path materialises the
      full probed-candidate distance buffer, the streaming kernel keeps a
      bounded heap, so the native peak must stay flat as probe depth
      grows while the NumPy peak scales with it,
    * whether (distances, ids) are bitwise identical between the paths.
    """
    import tracemalloc

    from repro.core.index import squared_euclidean_distances
    from repro.core.kernels import ivfpq_kernels

    rng = np.random.default_rng(seed + 1)
    vectors = clustered_corpus(n, dim, seed=seed + 2)
    queries = vectors[rng.choice(n, size=min(n_queries, n), replace=False)]
    queries = queries + 0.1 * rng.standard_normal(queries.shape)
    k_eff = min(k, n)
    native_available = ivfpq_kernels() is not None

    results: Dict[str, Dict] = {}
    for bits in (4, 8):
        index = IVFPQIndex(
            bits=bits, rerank=0, n_cells=n_cells, n_probe=probe_counts[0],
            min_train_size=min(4096, n),
        )
        train_start = time.perf_counter()
        index.rebuild(vectors)
        train_s = time.perf_counter() - train_start

        # Probe selection mirrors IVFPQIndex.search: the n_probe nearest
        # coarse cells per query.  Both paths scan exactly these rows, so
        # the scanned-code-bytes figure (the GB/s denominator) is shared.
        coarse = squared_euclidean_distances(queries, index._centroids)
        cell_sizes = np.bincount(
            index._assign_buffer[: index._n].astype(np.int64),
            minlength=index._centroids.shape[0],
        )

        per_probe: Dict[str, Dict] = {}
        for n_probe in probe_counts:
            index.n_probe = int(n_probe)
            if n_probe >= coarse.shape[1]:
                probe = np.broadcast_to(np.arange(coarse.shape[1]), coarse.shape)
            else:
                probe = np.argpartition(coarse, n_probe - 1, axis=1)[:, :n_probe]
            scanned_rows = int(cell_sizes[probe].sum())
            scanned_bytes = scanned_rows * index.pq.code_width

            modes = ("on", "off") if native_available else ("off",)
            rows: Dict[str, Dict] = {}
            outputs = {}
            for mode in modes:
                index.native_kernels = mode
                outputs[mode] = index.search(None, queries, k_eff)  # warm-up
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    index.search(None, queries, k_eff)
                    best = min(best, time.perf_counter() - start)
                tracemalloc.start()
                index.search(None, queries, k_eff)
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                rows["native" if mode == "on" else "numpy"] = {
                    "ms_per_query": 1e3 * best / queries.shape[0],
                    "codes_gb_per_s": scanned_bytes / best / 1e9,
                    "tracemalloc_peak_bytes": int(peak),
                }
            index.native_kernels = "auto"
            cell: Dict[str, object] = {
                "n_probe": int(n_probe),
                "scanned_rows_per_query": scanned_rows / queries.shape[0],
                "scanned_code_bytes_per_query": scanned_bytes / queries.shape[0],
                **rows,
            }
            if native_available:
                cell["speedup_native_vs_numpy"] = (
                    rows["numpy"]["ms_per_query"] / rows["native"]["ms_per_query"]
                )
                cell["bitwise_identical"] = bool(
                    np.array_equal(outputs["on"][0], outputs["off"][0])
                    and np.array_equal(outputs["on"][1], outputs["off"][1])
                )
            per_probe[str(n_probe)] = cell
        results[f"{bits}bit"] = {
            "bits": bits,
            "code_width_bytes": index.pq.code_width,
            "n_cells": int(index._centroids.shape[0]),
            "train_s": train_s,
            "probes": per_probe,
        }
    return {
        "n_references": n,
        "dim": dim,
        "k": k_eff,
        "n_queries": int(queries.shape[0]),
        "native_available": native_available,
        "engines": results,
    }


def _bench6_snapshot(kernels: Dict) -> Dict:
    engines = kernels["engines"]
    probes = sorted(
        (int(p) for p in engines["4bit"]["probes"]), key=int
    )
    lo, hi = str(probes[0]), str(probes[-1])
    acceptance: Dict[str, object] = {"native_available": kernels["native_available"]}
    if kernels["native_available"]:
        acceptance.update(
            speedup_4bit_at_deepest_probe=engines["4bit"]["probes"][hi][
                "speedup_native_vs_numpy"
            ],
            speedup_8bit_at_deepest_probe=engines["8bit"]["probes"][hi][
                "speedup_native_vs_numpy"
            ],
            bitwise_identical=all(
                cell["bitwise_identical"]
                for engine in engines.values()
                for cell in engine["probes"].values()
            ),
            # The streaming kernel's peak must not scale with probed
            # candidates; the NumPy buffer's peak does.
            native_peak_ratio_deep_vs_shallow=(
                engines["4bit"]["probes"][hi]["native"]["tracemalloc_peak_bytes"]
                / max(1, engines["4bit"]["probes"][lo]["native"]["tracemalloc_peak_bytes"])
            ),
            numpy_peak_ratio_deep_vs_shallow=(
                engines["4bit"]["probes"][hi]["numpy"]["tracemalloc_peak_bytes"]
                / max(1, engines["4bit"]["probes"][lo]["numpy"]["tracemalloc_peak_bytes"])
            ),
        )
    return {
        "snapshot": "BENCH_6",
        "platform": _platform_header(),
        "kernels": kernels,
        "acceptance": acceptance,
    }


def bench_frontend(
    out: Path,
    *,
    n_references: int = 6000,
    n_classes: int = 120,
    n_queries: int = 2000,
    replica_counts=(1, 2, 4),
) -> Dict:
    """BENCH_4: queries/s vs read replicas, socket vs in-process."""
    from repro.serving.bench import format_frontend_summary, run_frontend_bench

    snapshot = run_frontend_bench(
        n_references=n_references,
        n_classes=n_classes,
        n_queries=n_queries,
        replica_counts=tuple(replica_counts),
        out=out,
    )
    for line in format_frontend_summary(snapshot):
        print(line)
    print(f"wrote {out}")
    return snapshot


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    root = Path(__file__).resolve().parent.parent
    parser.add_argument("--out", type=Path, default=root / "BENCH_1.json")
    parser.add_argument("--out3", type=Path, default=root / "BENCH_3.json")
    parser.add_argument("--out4", type=Path, default=root / "BENCH_4.json")
    parser.add_argument("--out5", type=Path, default=root / "BENCH_5.json")
    parser.add_argument("--out6", type=Path, default=root / "BENCH_6.json")
    parser.add_argument("--out7", type=Path, default=root / "BENCH_7.json")
    parser.add_argument(
        "--index-sizes", default="10000,100000",
        help="comma-separated corpus sizes for the BENCH_3 engine table",
    )
    parser.add_argument(
        "--only-index", action="store_true",
        help="skip the BENCH_1 sections and write BENCH_3 only (CI smoke)",
    )
    parser.add_argument(
        "--only-frontend", action="store_true",
        help="write BENCH_4 (network serving replica scaling) only (CI smoke)",
    )
    parser.add_argument(
        "--only-compression", action="store_true",
        help="write BENCH_5 (4-bit packed PQ + OPQ + drift requantization) only (CI smoke)",
    )
    parser.add_argument(
        "--only-kernels", action="store_true",
        help="write BENCH_6 (native ADC-scan kernels vs NumPy) only (CI smoke)",
    )
    parser.add_argument(
        "--only-storage", action="store_true",
        help="write BENCH_7 (shm vs mmap storage tiers over RSG1 segments) only (CI smoke)",
    )
    parser.add_argument(
        "--storage-size", type=int, default=60_000,
        help="corpus size for the BENCH_7 storage-tier table",
    )
    parser.add_argument(
        "--compression-size", type=int, default=60_000,
        help="corpus size for the BENCH_5 engine table",
    )
    parser.add_argument(
        "--kernel-size", type=int, default=500_000,
        help="corpus size for the BENCH_6 kernel table",
    )
    parser.add_argument(
        "--kernel-queries", type=int, default=32,
        help="queries per measurement in the BENCH_6 kernel table",
    )
    parser.add_argument(
        "--kernel-probes", default="16,128",
        help="comma-separated probe depths for the BENCH_6 kernel table",
    )
    parser.add_argument(
        "--kernel-cells", type=int, default=1024,
        help="coarse cells for the BENCH_6 kernel table",
    )
    parser.add_argument(
        "--drift-size", type=int, default=12_000,
        help="corpus size for the BENCH_5 drift-requantization scenario",
    )
    parser.add_argument(
        "--frontend-references", type=int, default=6000,
        help="reference corpus size for the BENCH_4 replay",
    )
    parser.add_argument(
        "--frontend-classes", type=int, default=120,
        help="monitored classes for the BENCH_4 replay",
    )
    parser.add_argument(
        "--frontend-queries", type=int, default=2000,
        help="queries replayed per replica count in BENCH_4",
    )
    parser.add_argument(
        "--frontend-replicas", default="1,2,4",
        help="comma-separated replica counts for the BENCH_4 table",
    )
    arguments = parser.parse_args()

    def run_compression() -> None:
        engines = bench_compression(n=arguments.compression_size)
        drift = bench_drift_requantize(n=arguments.drift_size)
        bench5 = _bench5_snapshot(engines, drift)
        arguments.out5.write_text(json.dumps(bench5, indent=2) + "\n")
        for name, row in engines["engines"].items():
            print(f"BENCH_5 N={engines['n_references']} {name:15s}: "
                  f"{row['ms_per_query']:.3f} ms/q, recall@{row['k']} {row['recall_at_k']:.3f}, "
                  f"index {row['index_bytes_per_vector']:.1f} B/vec")
        accept = bench5["acceptance"]
        print(f"BENCH_5 4-bit/8-bit index bytes: {accept['bytes_ratio_4bit_vs_8bit']:.2f}, "
              f"recall@10 {accept['recall_at_10_4bit']:.3f}")
        print(f"BENCH_5 drift: recall {drift['recall_stale']:.3f} (stale) -> "
              f"{drift['recall_after_requantize']:.3f} after requantize "
              f"(fresh-trained {drift['recall_fresh_trained']:.3f}), "
              f"{drift['failed_during_swap']} failed of {drift['queries_during_swap']} "
              f"queries during the swap")
        print(f"wrote {arguments.out5}")

    def run_kernels() -> None:
        probes = tuple(
            int(p) for p in arguments.kernel_probes.split(",") if p.strip()
        )
        kernels = bench_kernels(
            n=arguments.kernel_size,
            n_queries=arguments.kernel_queries,
            probe_counts=probes,
            n_cells=arguments.kernel_cells,
        )
        bench6 = _bench6_snapshot(kernels)
        arguments.out6.write_text(json.dumps(bench6, indent=2) + "\n")
        for name, engine in kernels["engines"].items():
            for n_probe, cell in engine["probes"].items():
                numpy_row = cell["numpy"]
                line = (
                    f"BENCH_6 N={kernels['n_references']} {name} probe={n_probe}: "
                    f"numpy {numpy_row['ms_per_query']:.3f} ms/q "
                    f"({numpy_row['codes_gb_per_s']:.2f} GB/s)"
                )
                if "native" in cell:
                    native_row = cell["native"]
                    line += (
                        f", native {native_row['ms_per_query']:.3f} ms/q "
                        f"({native_row['codes_gb_per_s']:.2f} GB/s, "
                        f"{cell['speedup_native_vs_numpy']:.2f}x, "
                        f"bitwise={cell['bitwise_identical']})"
                    )
                print(line)
        accept = bench6["acceptance"]
        if kernels["native_available"]:
            print(
                f"BENCH_6 acceptance: 4-bit {accept['speedup_4bit_at_deepest_probe']:.2f}x, "
                f"8-bit {accept['speedup_8bit_at_deepest_probe']:.2f}x, "
                f"bitwise identical: {accept['bitwise_identical']}, "
                f"native peak deep/shallow {accept['native_peak_ratio_deep_vs_shallow']:.2f} "
                f"(numpy {accept['numpy_peak_ratio_deep_vs_shallow']:.2f})"
            )
        else:
            print("BENCH_6: no system compiler — NumPy fallback only")
        print(f"wrote {arguments.out6}")

    def run_storage() -> None:
        from repro.serving.bench import format_storage_summary, run_storage_tier_bench

        snapshot = run_storage_tier_bench(
            n_references=arguments.storage_size,
            n_classes=max(20, arguments.storage_size // 100),
            out=arguments.out7,
        )
        for line in format_storage_summary(snapshot):
            print(f"BENCH_7 {line.strip()}")
        print(f"wrote {arguments.out7}")

    if arguments.only_storage:
        run_storage()
        return 0

    if arguments.only_kernels:
        run_kernels()
        return 0

    if arguments.only_compression:
        run_compression()
        return 0

    if arguments.only_frontend:
        bench_frontend(
            arguments.out4,
            n_references=arguments.frontend_references,
            n_classes=arguments.frontend_classes,
            n_queries=arguments.frontend_queries,
            replica_counts=[int(r) for r in arguments.frontend_replicas.split(",") if r.strip()],
        )
        return 0

    if not arguments.only_index:
        predict = bench_predict()
        lstm = bench_lstm()
        embed = bench_embed()
        snapshot = {
            "snapshot": "BENCH_1",
            "platform": _platform_header(),
            "predict": predict,
            "lstm_fwd_bwd": lstm,
            "embed_throughput": embed,
        }
        arguments.out.write_text(json.dumps(snapshot, indent=2) + "\n")

        at_10k = predict["10000"]
        print(f"predict @ N=10k: seed {at_10k['seed_p50_s']*1e3:.1f} ms -> "
              f"batched {at_10k['batched_p50_s']*1e3:.1f} ms "
              f"({at_10k['speedup_batched_vs_seed']:.1f}x), "
              f"IVF {at_10k['ivf_p50_s']*1e3:.1f} ms ({at_10k['speedup_ivf_vs_seed']:.1f}x)")
        print(f"LSTM fwd+bwd: seed {lstm['seed_fwd_bwd_s']*1e3:.1f} ms -> "
              f"{lstm['vectorised_fwd_bwd_s']*1e3:.1f} ms ({lstm['speedup']:.1f}x)")
        print(f"embed throughput: {embed['traces_per_s']:.0f} traces/s")
        print(f"wrote {arguments.out}")

    sizes = [int(s) for s in arguments.index_sizes.split(",") if s.strip()]
    engines = bench_index_engines(sizes=sizes)
    bench3 = _bench3_snapshot(engines, sizes)
    arguments.out3.write_text(json.dumps(bench3, indent=2) + "\n")
    for n, rows in engines.items():
        for name, row in rows.items():
            print(f"BENCH_3 N={n} {name:14s}: {row['ms_per_query']:.3f} ms/q, "
                  f"recall@{row['k']} {row['recall_at_k']:.3f}, "
                  f"index {row['index_bytes_per_vector']:.1f} B/vec, "
                  f"store {row['store_bytes_per_vector']:.0f} B/vec")
    accept = bench3["acceptance_at_largest_n"]
    print(f"BENCH_3 @ N={accept['n_references']}: IVF-PQ {accept['ivfpq_speedup_vs_ivf']:.2f}x vs IVF, "
          f"index memory {accept['index_memory_shrink_vs_exact_f64']:.1f}x smaller than exact float64, "
          f"recall@10 {accept['ivfpq_recall_at_k']:.3f}")
    print(f"wrote {arguments.out3}")

    if not arguments.only_index:
        # The full snapshot regenerates BENCH_5 and BENCH_6 too;
        # --only-index stays a cheap BENCH_3-only run (the CI smoke jobs
        # rely on that).
        run_compression()
        run_kernels()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
