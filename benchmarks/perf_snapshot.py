"""Timing snapshot: seed vs optimised hot paths, written to BENCH_1.json.

Runs the seed implementations (reimplemented inline below, verbatim) and
the current optimised code **in the same process on the same data**, so the
recorded speedups are apples-to-apples on whatever hardware executes them.
Covers the three rewritten hot paths:

* batched k-NN ``predict`` (exact index) at two store sizes,
* the vectorised LSTM forward+backward at the Table I shape,
* embedding throughput through the full network.

Usage::

    PYTHONPATH=src python benchmarks/perf_snapshot.py [--out BENCH_1.json]

Future PRs re-run this to extend the perf trajectory (BENCH_2.json, ...).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Dict, List

import numpy as np
from scipy.spatial.distance import cdist

from repro.config import ClassifierConfig
from repro.core import CoarseQuantizedIndex, KNNClassifier, ReferenceStore
from repro.core.classifier import Prediction
from repro.core.embedding import EmbeddingModel
from repro.core.index_bench import clustered_corpus
from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init
from repro.nn.lstm import LSTM


# --------------------------------------------------------------------- seed code
def seed_predict(store: ReferenceStore, config: ClassifierConfig, embeddings: np.ndarray) -> List[Prediction]:
    """The seed KNNClassifier.predict: full sort + per-query Python voting."""
    queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    k = min(config.k, len(store))
    distances = cdist(queries, store.embeddings, metric=config.distance_metric)
    labels = store.labels
    predictions: List[Prediction] = []
    for row in range(queries.shape[0]):
        neighbour_order = np.argsort(distances[row], kind="stable")[:k]
        votes: Dict[str, float] = {}
        for neighbour in neighbour_order:
            label = str(labels[neighbour])
            weight = 1.0 / (distances[row, neighbour] + 1e-9) if config.weighting == "distance" else 1.0
            votes[label] = votes.get(label, 0.0) + weight
        closest: Dict[str, float] = {}
        for neighbour in neighbour_order:
            label = str(labels[neighbour])
            closest.setdefault(label, float(distances[row, neighbour]))
        ranked = sorted(votes, key=lambda label: (-votes[label], closest[label], label))
        predictions.append(Prediction(ranked_labels=ranked, scores=[votes[l] for l in ranked]))
    return predictions


def _seed_sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class SeedLSTM:
    """The seed LSTM: per-timestep Python lists and per-step GEMMs."""

    def __init__(self, in_features: int, units: int, rng: np.random.Generator) -> None:
        self.in_features = in_features
        self.units = units
        bias = zeros_init((4 * units,))
        bias[units : 2 * units] = 1.0
        self.params = {
            "W": glorot_uniform((in_features, 4 * units), rng),
            "U": np.concatenate([orthogonal((units, units), rng) for _ in range(4)], axis=1),
            "b": bias,
        }
        self.grads = {key: np.zeros_like(value) for key, value in self.params.items()}

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, steps, _ = x.shape
        units = self.units
        h = np.zeros((batch, units))
        c = np.zeros((batch, units))
        cache = {key: [] for key in ("i", "f", "g", "o", "c", "h", "c_prev", "h_prev")}
        W, U, b = self.params["W"], self.params["U"], self.params["b"]
        for t in range(steps):
            h_prev, c_prev = h, c
            z = x[:, t, :] @ W + h_prev @ U + b
            i = _seed_sigmoid(z[:, :units])
            f = _seed_sigmoid(z[:, units : 2 * units])
            g = np.tanh(z[:, 2 * units : 3 * units])
            o = _seed_sigmoid(z[:, 3 * units :])
            c = f * c_prev + i * g
            h = o * np.tanh(c)
            for key, value in (("i", i), ("f", f), ("g", g), ("o", o), ("c", c), ("h", h),
                               ("c_prev", c_prev), ("h_prev", h_prev)):
                cache[key].append(value)
        self._cache = cache
        self._x = x
        return h

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x, cache = self._x, self._cache
        batch, steps, _ = x.shape
        W, U = self.params["W"], self.params["U"]
        grad_x = np.zeros_like(x)
        dh_next = grad.copy()
        dc_next = np.zeros((batch, self.units))
        dW, dU, db = np.zeros_like(W), np.zeros_like(U), np.zeros_like(self.params["b"])
        for t in range(steps - 1, -1, -1):
            i, f, g, o = cache["i"][t], cache["f"][t], cache["g"][t], cache["o"][t]
            c, c_prev, h_prev = cache["c"][t], cache["c_prev"][t], cache["h_prev"][t]
            tanh_c = np.tanh(c)
            do = dh_next * tanh_c
            dc = dh_next * o * (1.0 - tanh_c**2) + dc_next
            di, dg, df = dc * g, dc * i, dc * c_prev
            dc_next = dc * f
            dz = np.concatenate(
                [di * i * (1.0 - i), df * f * (1.0 - f), dg * (1.0 - g**2), do * o * (1.0 - o)], axis=1
            )
            dW += x[:, t, :].T @ dz
            dU += h_prev.T @ dz
            db += dz.sum(axis=0)
            grad_x[:, t, :] = dz @ W.T
            dh_next = dz @ U.T
        self.grads["W"] += dW
        self.grads["U"] += dU
        self.grads["b"] += db
        return grad_x


# ------------------------------------------------------------------ measurement
def _best_of(fn, repeats: int = 5) -> float:
    fn()  # warm up caches/workspaces for both implementations alike
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _p50(fn, repeats: int = 5) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(np.median(times))


def bench_predict(store_sizes=(1_000, 10_000), n_classes=200, dim=32, k=250, n_queries=256) -> Dict:
    rng = np.random.default_rng(0)
    results: Dict[str, Dict] = {}
    for n in store_sizes:
        vectors = clustered_corpus(n, dim, n_clusters=n_classes, seed=1)
        labels = [f"page-{i % n_classes:04d}" for i in range(n)]
        store = ReferenceStore(dim)
        store.add(vectors, labels)
        config = ClassifierConfig(k=k)
        classifier = KNNClassifier(store, config)
        queries = vectors[rng.choice(n, n_queries, replace=False)] + 0.1 * rng.standard_normal((n_queries, dim))

        batched_p50 = _p50(lambda: classifier.predict(queries))
        seed_p50 = _p50(lambda: seed_predict(store, config, queries), repeats=3)

        ivf_store = ReferenceStore(dim, index=CoarseQuantizedIndex())
        ivf_store.add(vectors, labels)
        ivf_p50 = _p50(lambda: KNNClassifier(ivf_store, config).predict(queries))

        results[str(n)] = {
            "n_references": n,
            "n_queries": n_queries,
            "k": k,
            "seed_p50_s": seed_p50,
            "batched_p50_s": batched_p50,
            "ivf_p50_s": ivf_p50,
            "speedup_batched_vs_seed": seed_p50 / batched_p50,
            "speedup_ivf_vs_seed": seed_p50 / ivf_p50,
        }
    return results


def bench_lstm(batch=512, steps=40, features=3, units=30) -> Dict:
    rng = np.random.default_rng(2)
    x = rng.standard_normal((batch, steps, features))
    seed_layer = SeedLSTM(features, units, np.random.default_rng(3))
    new_layer = LSTM(features, units, rng=np.random.default_rng(3))

    def run_seed():
        out = seed_layer.forward(x)
        seed_layer.backward(out)

    def run_new():
        out = new_layer.forward(x)
        new_layer.backward(out)

    seed_s = _best_of(run_seed, repeats=9)
    new_s = _best_of(run_new, repeats=9)
    return {
        "shape": {"batch": batch, "steps": steps, "features": features, "units": units},
        "seed_fwd_bwd_s": seed_s,
        "vectorised_fwd_bwd_s": new_s,
        "speedup": seed_s / new_s,
    }


def bench_embed(batch=512, steps=40, features=3) -> Dict:
    model = EmbeddingModel(n_sequences=features)
    inputs = np.random.default_rng(4).standard_normal((batch, steps, features)) ** 2
    elapsed = _best_of(lambda: model.embed(inputs))
    return {
        "batch": batch,
        "embed_s": elapsed,
        "traces_per_s": batch / elapsed,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_1.json")
    arguments = parser.parse_args()

    predict = bench_predict()
    lstm = bench_lstm()
    embed = bench_embed()
    snapshot = {
        "snapshot": "BENCH_1",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "predict": predict,
        "lstm_fwd_bwd": lstm,
        "embed_throughput": embed,
    }
    arguments.out.write_text(json.dumps(snapshot, indent=2) + "\n")

    at_10k = predict["10000"]
    print(f"predict @ N=10k: seed {at_10k['seed_p50_s']*1e3:.1f} ms -> "
          f"batched {at_10k['batched_p50_s']*1e3:.1f} ms "
          f"({at_10k['speedup_batched_vs_seed']:.1f}x), "
          f"IVF {at_10k['ivf_p50_s']*1e3:.1f} ms ({at_10k['speedup_ivf_vs_seed']:.1f}x)")
    print(f"LSTM fwd+bwd: seed {lstm['seed_fwd_bwd_s']*1e3:.1f} ms -> "
          f"{lstm['vectorised_fwd_bwd_s']*1e3:.1f} ms ({lstm['speedup']:.1f}x)")
    print(f"embed throughput: {embed['traces_per_s']:.0f} traces/s")
    print(f"wrote {arguments.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
