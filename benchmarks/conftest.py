"""Shared fixtures for the benchmark harness.

The benchmarks reproduce every table and figure of the paper's evaluation
at the ``ci`` scale (a laptop-scale reduction of the paper's class counts
that preserves the split geometry; see DESIGN.md §5).  The expensive part —
crawling the synthetic datasets and provisioning the embedding model — is
done once per session in the ``context`` fixture and shared by all benches.

Run with::

    pytest benchmarks/ --benchmark-only

Each bench prints the table/series it regenerates (visible with ``-s`` or
in captured output) and asserts the qualitative shape the paper reports.
"""

import re
from pathlib import Path

import pytest

from repro.experiments import ExperimentContext

BENCH_SCALE = "ci"
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def context():
    """The shared CI-scale experiment context (datasets + provisioned model)."""
    return ExperimentContext.build(BENCH_SCALE)


def emit(title: str, body: str) -> None:
    """Print a bench's regenerated table and persist it under benchmarks/results/.

    The persisted files are the reproduction's equivalent of the paper's
    figures: one text file per table/figure, regenerated on every bench run
    and referenced from EXPERIMENTS.md.
    """
    text = f"{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n"
    print(f"\n{text}")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(text)
