"""Extension bench — open-world detection of unmonitored pages.

Section VI-C notes that captures of pages outside the monitored set either
appear as outliers in embedding space or collide with a monitored class.
This bench quantifies that observation with the distance-threshold
open-world detector: traces of unmonitored Wikipedia-like pages should be
flagged as unknown far more often than traces of monitored pages.
"""

from benchmarks.conftest import emit
from repro.core import OpenWorldDetector
from repro.metrics.reports import format_table


def test_openworld_unmonitored_page_detection(benchmark, context):
    n_monitored = sorted(context.scale.exp1_class_counts)[1]
    reference, test = context.slice_known(n_monitored)
    # Unmonitored world: classes the deployment does not track at all
    # (drawn from the disjoint Set D, so they were also never trained on).
    unmonitored = context.wiki_split.set_d.first_n_classes(
        min(n_monitored, context.wiki_split.set_d.n_classes)
    )

    def run():
        context.fingerprinter.initialize(reference)
        detector = OpenWorldDetector(
            context.fingerprinter.reference_store, neighbour=3, percentile=97
        )
        monitored_embeddings = context.fingerprinter.model.embed_dataset(test)
        unmonitored_embeddings = context.fingerprinter.model.embed_dataset(unmonitored)
        return detector.evaluate(monitored_embeddings, unmonitored_embeddings)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Extension — open-world detection of unmonitored pages",
        format_table(
            ["metric", "value"],
            [
                ["monitored classes", n_monitored],
                ["unmonitored classes", unmonitored.n_classes],
                ["calibrated distance threshold", f"{result.threshold:.3f}"],
                ["unmonitored flagged as unknown (TPR)", f"{result.true_positive_rate:.2f}"],
                ["monitored flagged as unknown (FPR)", f"{result.false_positive_rate:.2f}"],
                ["Youden J", f"{result.youden_j:.2f}"],
            ],
        ),
    )

    benchmark.extra_info["tpr"] = result.true_positive_rate
    benchmark.extra_info["fpr"] = result.false_positive_rate

    # The detector separates the two worlds: unmonitored pages are flagged
    # substantially more often than monitored ones, at a bounded FPR.
    assert result.true_positive_rate > result.false_positive_rate + 0.2
    assert result.false_positive_rate <= 0.35
