"""Table III — operational-cost comparison.

Regenerates both views of the table: the catalogue rows of the systems the
paper compares (with modelled yearly update costs under page churn) and the
costs measured on this reproduction's own implementations.  The headline
claim: the embedding-based attack needs no retraining, so its update cost
is a small constant per changed page, while class-coupled systems pay a
full refit.
"""

from benchmarks.conftest import emit
from repro.experiments import run_table3
from repro.metrics.reports import format_table


def test_table3_operational_costs(benchmark, context):
    result = benchmark.pedantic(lambda: run_table3(context, measure=True), rounds=1, iterations=1)

    modelled = format_table(
        ["System", "Modelled yearly update cost (work units)"],
        [[name, f"{cost:,.0f}"] for name, cost in sorted(result.modelled_update_costs.items(), key=lambda kv: kv[1])],
        title="Modelled update costs (1000 classes, 5 % weekly churn)",
    )
    emit(
        "Table III — operational costs",
        result.as_table() + "\n\n" + modelled + "\n\n" + result.measured_as_table(),
    )

    # The catalogue reproduces every row of the paper's Table III.
    assert len(result.catalogue_rows) == 7
    adaptive_row = next(row for row in result.catalogue_rows if row["Name"] == "Adaptive Fingerprinting")
    assert adaptive_row["Retraining"] is False and adaptive_row["D. Shift"] is True

    # Modelled costs: every retraining system is more expensive to keep
    # current than the adaptive system at the same churn rate.
    adaptive_cost = result.modelled_update_costs["Adaptive Fingerprinting"]
    for name in ("Deep Fingerprinting", "Var-CNN", "Miller et al."):
        assert result.modelled_update_costs[name] > adaptive_cost

    # Measured on this reproduction: the adaptive update (swap references,
    # no retraining) is cheaper than the Deep-Fingerprinting-style retrain.
    measured = {m.system: m for m in result.measured}
    ours = next(m for name, m in measured.items() if "Adaptive" in name)
    df = next(m for name, m in measured.items() if "Deep Fingerprinting" in name)
    benchmark.extra_info["adaptive_update_seconds"] = ours.update_seconds
    benchmark.extra_info["df_update_seconds"] = df.update_seconds
    assert not ours.requires_retraining and df.requires_retraining
    assert ours.update_seconds < df.update_seconds
    # And the attack quality does not pay for the cheap updates.
    assert ours.topn1_accuracy >= 0.5
