"""Query-engine scaling: exact search is linear in N, IVF is sublinear.

This is the cost side of the paper's Table 2 story: classification must
stay cheap as the monitored set grows.  The bench measures per-query k-NN
time through :class:`~repro.core.index.ExactIndex` and the IVF-style
:class:`~repro.core.index.CoarseQuantizedIndex` across growing reference
corpora and asserts that (a) the IVF curve grows sublinearly in N while
staying close to flat relative to exact search, and (b) approximation does
not cost accuracy: top-1 agreement with exact search stays >= 0.95 at the
default ``n_probe``.

Run directly with ``pytest benchmarks/bench_index_scaling.py -s`` or via
``python -m repro index-bench`` for a standalone table.
"""

from benchmarks.conftest import emit
from repro.core.index_bench import measure_index_scaling, scaling_table_rows
from repro.metrics.reports import format_table

SIZES = (2_000, 6_000, 18_000)
N_PROBE = 8


def test_index_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: measure_index_scaling(SIZES, dim=32, k=50, n_probe=N_PROBE, n_queries=128, repeats=3),
        rounds=1,
        iterations=1,
    )
    emit(
        "Index scaling — exact vs coarse-quantized query time",
        format_table(
            ["N references", "exact ms/query", "IVF ms/query", "speedup", "top-1 agreement", "cells/probe"],
            scaling_table_rows(rows),
        ),
    )

    for row in rows:
        benchmark.extra_info[f"exact_ms_at_{row.n_references}"] = row.exact_ms_per_query
        benchmark.extra_info[f"ivf_ms_at_{row.n_references}"] = row.ivf_ms_per_query
        # Approximation must not cost accuracy at the default n_probe.
        assert row.top1_agreement >= 0.95

    first, last = rows[0], rows[-1]
    growth_in_n = last.n_references / first.n_references
    ivf_growth = last.ivf_ms_per_query / first.ivf_ms_per_query
    exact_growth = last.exact_ms_per_query / first.exact_ms_per_query
    # IVF query time grows sublinearly in N (n_cells ~ sqrt(N) keeps the
    # scanned candidate set ~ n_probe * sqrt(N)); exact search cannot.
    assert ivf_growth < 0.75 * growth_in_n
    assert ivf_growth < exact_growth
    # And at the largest corpus the IVF engine has overtaken brute force.
    assert last.ivf_ms_per_query < last.exact_ms_per_query
