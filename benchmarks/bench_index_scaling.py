"""Query-engine scaling: exact is linear in N, IVF sublinear, IVF-PQ compressed.

This is the cost side of the paper's Table 2 story: classification must
stay cheap as the monitored set grows.  The bench measures per-query k-NN
time through :class:`~repro.core.index.ExactIndex`, the IVF-style
:class:`~repro.core.index.CoarseQuantizedIndex` and the product-quantized
:class:`~repro.core.index.IVFPQIndex` across growing reference corpora and
asserts that (a) the IVF curve grows sublinearly in N while staying close
to flat relative to exact search, (b) approximation does not cost
accuracy: IVF top-1 agreement with exact search stays >= 0.95 at the
default ``n_probe`` and IVF-PQ recall@k stays >= 0.95 with its default
exact re-rank, and (c) compression pays: the IVF-PQ index's resident
side structures stay several times smaller than the raw float64 matrix.

Run directly with ``pytest benchmarks/bench_index_scaling.py -s`` or via
``python -m repro index-bench`` for a standalone table.
"""

from benchmarks.conftest import emit
from repro.core.index_bench import (
    SCALING_TABLE_HEADERS,
    measure_index_scaling,
    scaling_table_rows,
)
from repro.metrics.reports import format_table

SIZES = (2_000, 6_000, 18_000)
N_PROBE = 8
K = 50


def test_index_scaling(benchmark):
    rows = benchmark.pedantic(
        lambda: measure_index_scaling(
            SIZES,
            dim=32,
            k=K,
            n_probe=N_PROBE,
            n_queries=128,
            repeats=3,
            engines=("exact", "ivf", "ivfpq"),
            rerank=128,
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Index scaling — exact vs coarse-quantized vs IVF-PQ query time",
        format_table(SCALING_TABLE_HEADERS, scaling_table_rows(rows)),
    )

    for row in rows:
        for kind, engine in row.engines.items():
            benchmark.extra_info[f"{kind}_ms_at_{row.n_references}"] = engine.ms_per_query
        # Approximation must not cost accuracy at the default knobs.
        assert row.engines["ivf"].top1_agreement >= 0.95
        assert row.engines["ivfpq"].recall_at_k >= 0.95

    first, last = rows[0], rows[-1]
    growth_in_n = last.n_references / first.n_references
    ivf_growth = last.ivf_ms_per_query / first.ivf_ms_per_query
    exact_growth = last.exact_ms_per_query / first.exact_ms_per_query
    # IVF query time grows sublinearly in N (n_cells ~ sqrt(N) keeps the
    # scanned candidate set ~ n_probe * sqrt(N)); exact search cannot.
    assert ivf_growth < 0.75 * growth_in_n
    assert ivf_growth < exact_growth
    # And at the largest corpus the IVF engine has overtaken brute force.
    assert last.ivf_ms_per_query < last.exact_ms_per_query
    # The compressed index stays several times smaller than the raw matrix
    # it replaces (codes + centroids + codebooks vs N x dim float64).
    largest_pq = last.engines["ivfpq"]
    assert largest_pq.index_bytes_per_vector * 4 < largest_pq.store_bytes_per_vector
