"""Ablation — multi-IP sequences vs. the two-sequence encoding.

Section IV-A.1 argues that keeping one sequence per server IP (possible for
TLS, impossible for Tor) preserves more identifying information than the
classic two-sequence (outgoing/incoming) encoding.  This ablation trains
the same architecture on both encodings of the same Wikipedia-like pages
and compares accuracy.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.config import ClassifierConfig
from repro.core import AdaptiveFingerprinter
from repro.experiments.setup import WIKI_SEED, ci_hyperparameters, ci_training_config
from repro.metrics.reports import format_accuracy_table
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import WikipediaLikeGenerator


def _train_and_evaluate(context, n_sequences: int, n_classes: int):
    scale = context.scale
    sequence_length = context.wiki_dataset.sequence_length
    extractor = SequenceExtractor(
        max_sequences=n_sequences,
        merge_servers=(n_sequences == 2),
        sequence_length=sequence_length,
    )
    site = WikipediaLikeGenerator(
        n_pages=scale.train_classes + max(scale.exp2_class_counts), seed=WIKI_SEED
    ).generate()
    page_ids = context.wiki_split.set_a.class_names[:n_classes]
    dataset = collect_dataset(
        site, extractor, page_ids=page_ids, visits_per_page=scale.samples_per_class, seed=WIKI_SEED
    )
    reference, test = reference_test_split(dataset, scale.reference_fraction, seed=0)
    fingerprinter = AdaptiveFingerprinter(
        n_sequences=n_sequences,
        sequence_length=sequence_length,
        hyperparameters=ci_hyperparameters(),
        training_config=ci_training_config(scale),
        classifier_config=ClassifierConfig(k=scale.knn_k),
        extractor=extractor,
        seed=2,
    )
    fingerprinter.provision(reference)
    fingerprinter.initialize(reference)
    return fingerprinter.evaluate(test, ns=(1, 3, 10)).topn_accuracy


def test_ablation_ip_sequences_vs_two_sequences(benchmark, context):
    n_classes = sorted(context.scale.exp1_class_counts)[1]

    def run():
        return {
            "three per-IP sequences": _train_and_evaluate(context, 3, n_classes),
            "two sequences (out/in)": _train_and_evaluate(context, 2, n_classes),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — per-IP sequences vs. two-sequence encoding",
        format_accuracy_table(results, ns=(1, 3, 10)),
    )

    three = results["three per-IP sequences"]
    two = results["two sequences (out/in)"]
    benchmark.extra_info["top1_three_seq"] = three[1]
    benchmark.extra_info["top1_two_seq"] = two[1]

    # Both encodings attack successfully ...
    assert three[1] >= 0.4 and two[1] >= 0.3
    # ... and the per-IP encoding never loses (it usually wins) against the
    # two-sequence encoding, supporting the paper's design choice.
    assert three[3] >= two[3] - 0.1
