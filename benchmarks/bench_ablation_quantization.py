"""Ablation — byte-count quantization (the optional step of §IV-A.1).

The paper's preprocessing optionally quantizes byte counts to remove small
noisy differences.  This ablation re-quantizes the evaluation slice at
several step sizes and measures the effect on accuracy with the shared
model: mild quantization should be roughly accuracy-neutral, while a very
coarse step destroys the identifying signal.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.metrics.reports import format_table
from repro.traces import TraceDataset
from repro.traces.quantize import quantize_counts


QUANTIZATION_STEPS = (0, 512, 4096, 262144)


def _requantize(dataset: TraceDataset, step: int) -> TraceDataset:
    """Re-apply quantization to an already log-scaled dataset."""
    raw = np.expm1(dataset.data)
    quantized = quantize_counts(raw, step) if step > 1 else raw
    return TraceDataset(
        data=np.log1p(quantized),
        labels=dataset.labels.copy(),
        class_names=list(dataset.class_names),
        website=dataset.website,
        tls_version=dataset.tls_version,
    )


def test_ablation_quantization(benchmark, context):
    n_classes = sorted(context.scale.exp1_class_counts)[1]
    reference, test = context.slice_known(n_classes)

    def run():
        results = {}
        for step in QUANTIZATION_STEPS:
            results[step] = context.evaluate_slice(
                _requantize(reference, step), _requantize(test, step), ns=(1, 3, 10)
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[step, f"{acc[1]:.3f}", f"{acc[3]:.3f}", f"{acc[10]:.3f}"] for step, acc in results.items()]
    emit(
        "Ablation — byte-count quantization step",
        format_table(["step (bytes)", "top-1", "top-3", "top-10"], rows),
    )

    baseline = results[0]
    mild = results[512]
    coarse = results[262144]
    benchmark.extra_info["top1_baseline"] = baseline[1]
    benchmark.extra_info["top1_coarse"] = coarse[1]

    # Mild quantization keeps accuracy close to the unquantized baseline.
    assert mild[1] >= baseline[1] - 0.15
    # A very coarse step erases most of the signal the attack exploits.
    assert coarse[1] <= baseline[1]
    assert coarse[3] <= baseline[3] + 1e-9
