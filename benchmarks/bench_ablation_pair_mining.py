"""Ablation — random vs. hard-negative pair mining (§IV-A.2).

The paper trains on randomly sampled pairs and mentions hard-negative /
semi-hard mining as the more advanced alternatives.  This ablation trains
the same small model with each strategy on the same slice and compares the
resulting attack quality, confirming that random pairs are already
sufficient at this scale while mining does not hurt.
"""

from benchmarks.conftest import emit
from repro.config import ClassifierConfig
from repro.core import AdaptiveFingerprinter
from repro.experiments.setup import ci_hyperparameters, ci_training_config
from repro.metrics.reports import format_table


STRATEGIES = ("random", "hard_negative", "semi_hard")


def test_ablation_pair_mining_strategy(benchmark, context):
    scale = context.scale
    n_classes = min(scale.exp1_class_counts)
    reference, test = context.slice_known(n_classes)

    def run():
        results = {}
        for strategy in STRATEGIES:
            fingerprinter = AdaptiveFingerprinter(
                n_sequences=3,
                sequence_length=context.wiki_dataset.sequence_length,
                hyperparameters=ci_hyperparameters(),
                training_config=ci_training_config(scale, pair_strategy=strategy),
                classifier_config=ClassifierConfig(k=scale.knn_k),
                extractor=context.extractor,
                seed=6,
            )
            history = fingerprinter.provision(reference)
            fingerprinter.initialize(reference)
            accuracy = fingerprinter.evaluate(test, ns=(1, 3, 10)).topn_accuracy
            results[strategy] = {"loss": history.final_loss, "accuracy": accuracy}
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [strategy, f"{r['loss']:.3f}", f"{r['accuracy'][1]:.3f}", f"{r['accuracy'][3]:.3f}", f"{r['accuracy'][10]:.3f}"]
        for strategy, r in results.items()
    ]
    emit(
        "Ablation — pair-generation strategy",
        format_table(["strategy", "final loss", "top-1", "top-3", "top-10"], rows),
    )

    for strategy, r in results.items():
        benchmark.extra_info[f"top1_{strategy}"] = r["accuracy"][1]
        # Every strategy produces a working attack on this slice.
        assert r["accuracy"][1] >= 0.5
        assert r["accuracy"][3] >= 0.8

    # Mining never degrades the attack by a large margin relative to the
    # paper's random-pair baseline (and often matches it).
    random_top3 = results["random"]["accuracy"][3]
    for strategy in ("hard_negative", "semi_hard"):
        assert results[strategy]["accuracy"][3] >= random_top3 - 0.15
