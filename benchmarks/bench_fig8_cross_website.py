"""Figure 8 — cross-website, cross-version transfer (Experiment 3).

A two-sequence model trained on Wikipedia-like TLS 1.2 traces classifies
Github-like TLS 1.3 traces.  The paper's shape: performance is clearly
better on the website/version the model was trained on, but a useful
fraction of the accuracy survives the transfer — some leakage
characteristics persist across IP encoding, website theme and TLS version.
"""

from benchmarks.conftest import emit
from repro.experiments import run_experiment3


def test_fig8_cross_website_transfer(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_experiment3(context, ns=(1, 3, 5, 10, 20)), rounds=1, iterations=1
    )
    emit("Figure 8 — cross-website / cross-version transfer (Experiment 3)", result.as_table())

    baseline = result.wikipedia_accuracy
    benchmark.extra_info["wikipedia_top1"] = baseline[1]

    assert baseline[1] >= 0.5  # the same-website two-sequence baseline works

    for n_classes, accuracy in result.github_accuracy_by_classes.items():
        benchmark.extra_info[f"github_{n_classes}_top10"] = accuracy[10]
        chance_top10 = min(1.0, 10 / n_classes)
        # Transfer retains signal: well above chance at top-10 ...
        assert accuracy[10] >= min(0.95, 2.0 * chance_top10)
        assert accuracy[1] <= accuracy[3] <= accuracy[10]

    # ... but the model performs best on the setup it was trained on
    # (compare the smallest Github slice against the Wikipedia baseline).
    smallest = min(result.github_accuracy_by_classes)
    assert result.github_accuracy_by_classes[smallest][1] <= baseline[1] + 0.1
    assert result.transfer_retains_signal(n=10)
