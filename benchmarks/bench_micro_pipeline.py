"""Micro-benchmarks for the pipeline's per-component throughput.

These are the classic pytest-benchmark timings (many rounds, statistics)
for the operations whose cost the paper quotes: embedding + classifying a
single captured trace ("≤ 2 seconds per sample inference", Section VI-B),
preprocessing a capture into sequences, simulating a page load and the
adaptation step (swap one class's references).
"""

import numpy as np
import pytest

from repro.traces import Trace


@pytest.fixture(scope="module")
def initialized(context):
    """The shared fingerprinter initialised on the smallest known slice."""
    n_classes = min(context.scale.exp1_class_counts)
    reference, test = context.slice_known(n_classes)
    context.fingerprinter.initialize(reference)
    return context, reference, test


def test_micro_single_trace_inference(benchmark, initialized):
    """Embedding + k-NN classification of one captured trace."""
    context, _, test = initialized
    trace = Trace(label=test.label_name(test.labels[0]), website="w", sequences=test.data[0])
    prediction = benchmark(lambda: context.fingerprinter.fingerprint(trace))
    assert prediction.ranked_labels
    # The paper reports <= 2 s per sample on their hardware; the reproduction
    # must comfortably meet the same budget.
    assert benchmark.stats.stats.mean < 2.0


def test_micro_batch_embedding_throughput(benchmark, initialized):
    """Embedding a full batch of traces through the LSTM + dense network."""
    context, reference, _ = initialized
    inputs = reference.model_inputs()
    embeddings = benchmark(lambda: context.fingerprinter.model.embed(inputs))
    assert embeddings.shape[0] == len(reference)


def test_micro_preprocessing_capture(benchmark, context):
    """Converting one packet capture into fixed-shape per-IP sequences."""
    from repro.web import Crawler

    website_pages = context.wiki_split.set_a.class_names
    crawler = Crawler(seed=5)
    from repro.web.generators import WikipediaLikeGenerator
    from repro.experiments.setup import WIKI_SEED

    site = WikipediaLikeGenerator(
        n_pages=context.scale.train_classes + max(context.scale.exp2_class_counts), seed=WIKI_SEED
    ).generate()
    labeled = crawler.crawl_single(site, website_pages[0], visit=0)
    array = benchmark(lambda: context.extractor.extract_array(labeled.capture))
    assert array.shape == (3, context.wiki_dataset.sequence_length)


def test_micro_page_load_simulation(benchmark, context):
    """One simulated browser page load over the TLS substrate."""
    from repro.web import Browser
    from repro.web.generators import WikipediaLikeGenerator
    from repro.experiments.setup import WIKI_SEED

    site = WikipediaLikeGenerator(n_pages=5, seed=WIKI_SEED).generate()
    browser = Browser()
    rng = np.random.default_rng(0)
    result = benchmark(lambda: browser.load(site, site.page_ids[0], rng))
    assert result.capture.total_bytes > 0


def test_micro_adaptation_step(benchmark, initialized):
    """Swapping one class's reference samples (the paper's cheap update)."""
    context, reference, _ = initialized
    label = reference.class_names[0]
    indices = np.flatnonzero(reference.labels == 0)
    traces = [Trace(label=label, website="w", sequences=reference.data[i]) for i in indices]
    benchmark(lambda: context.fingerprinter.adapt(traces, replace=True))
    assert label in context.fingerprinter.reference_store.classes
