"""Ablation — the k of the k-NN classifier (Section VI-A).

The paper fixes k = 250 for every experiment after observing that accuracy
is fairly insensitive to k once it is large enough to cover a class's
reference samples.  This ablation sweeps k on the shared model and checks
that (a) classification works across a wide range of k and (b) the default
is within a small tolerance of the best value in the sweep.
"""

from benchmarks.conftest import emit
from repro.config import ClassifierConfig
from repro.core.classifier import KNNClassifier
from repro.metrics.reports import format_table


K_VALUES = (1, 5, 15, 50, 150)


def test_ablation_knn_k(benchmark, context):
    n_classes = sorted(context.scale.exp1_class_counts)[-2]
    reference, test = context.slice_known(n_classes)
    model = context.fingerprinter.model
    context.fingerprinter.initialize(reference)
    store = context.fingerprinter.reference_store
    test_embeddings = model.embed_dataset(test)
    labels = [test.label_name(l) for l in test.labels]

    def run():
        results = {}
        for k in K_VALUES:
            classifier = KNNClassifier(store, ClassifierConfig(k=k))
            results[k] = classifier.topn_accuracy(test_embeddings, labels, ns=(1, 3, 10))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, f"{acc[1]:.3f}", f"{acc[3]:.3f}", f"{acc[10]:.3f}"] for k, acc in results.items()]
    emit("Ablation — k of the k-NN classifier", format_table(["k", "top-1", "top-3", "top-10"], rows))

    default_k = context.scale.knn_k
    best_top1 = max(acc[1] for acc in results.values())
    default_top1 = results[min(K_VALUES, key=lambda k: abs(k - default_k))][1]
    benchmark.extra_info["best_top1"] = best_top1
    benchmark.extra_info["default_top1"] = default_top1

    # Every k in the sweep attacks far above chance.
    for accuracy in results.values():
        assert accuracy[1] >= 5 / n_classes
    # The configuration used throughout the experiments is near-optimal.
    assert default_top1 >= best_top1 - 0.1
