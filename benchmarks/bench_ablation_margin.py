"""Ablation — contrastive-loss margin (Table I grid search).

The paper selected the margin via grid search and notes that a larger
margin improves feature robustness while a value that is too large prevents
learning.  This ablation retrains the small model with several margins on
the same slice and compares the separation quality (pair accuracy) and the
downstream top-1 accuracy.
"""

from benchmarks.conftest import emit
from repro.config import ClassifierConfig
from repro.core import AdaptiveFingerprinter, ContrastiveTrainer
from repro.experiments.setup import ci_hyperparameters, ci_training_config
from repro.metrics.reports import format_table
from repro.traces import reference_test_split


MARGINS = (0.5, 3.0, 30.0)


def test_ablation_contrastive_margin(benchmark, context):
    scale = context.scale
    n_classes = min(scale.exp1_class_counts)
    reference, test = context.slice_known(n_classes)

    def run():
        results = {}
        for margin in MARGINS:
            fingerprinter = AdaptiveFingerprinter(
                n_sequences=3,
                sequence_length=context.wiki_dataset.sequence_length,
                hyperparameters=ci_hyperparameters(contrastive_margin=margin),
                training_config=ci_training_config(scale),
                classifier_config=ClassifierConfig(k=scale.knn_k),
                extractor=context.extractor,
                seed=3,
            )
            history = fingerprinter.provision(reference)
            fingerprinter.initialize(reference)
            trainer = ContrastiveTrainer(fingerprinter.model, ci_training_config(scale))
            results[margin] = {
                "final_loss": history.final_loss,
                "pair_accuracy": trainer.pair_accuracy(test, n_pairs=200),
                "top1": fingerprinter.evaluate(test, ns=(1,)).topn_accuracy[1],
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [margin, f"{r['final_loss']:.3f}", f"{r['pair_accuracy']:.3f}", f"{r['top1']:.3f}"]
        for margin, r in results.items()
    ]
    emit(
        "Ablation — contrastive-loss margin",
        format_table(["margin", "final loss", "pair accuracy", "top-1 accuracy"], rows),
    )

    tuned = results[3.0]
    tiny, huge = results[0.5], results[30.0]
    benchmark.extra_info["top1_tuned_margin"] = tuned["top1"]

    # The tuned margin must be competitive with both extremes (the
    # grid-search rationale): at this reduced scale the sweep is fairly
    # flat, so the check is a tolerance rather than strict dominance, but
    # an over-large margin may not beat the tuned one by a wide gap and the
    # tuned value must deliver a working attack.
    assert tuned["top1"] >= tiny["top1"] - 0.15
    assert tuned["top1"] >= huge["top1"] - 0.15
    assert tuned["top1"] >= 0.5
    # Larger margins must produce larger inter-class separation targets,
    # visible as a larger final loss magnitude for the same data.
    assert results[30.0]["final_loss"] >= results[0.5]["final_loss"]
