"""Figure 7 — classifying classes never seen during training (Experiment 2).

The model trained on Set A embeds reference and test samples from the
disjoint Sets C/D.  The paper's headline claim is that accuracy stays close
to the same-size known-class scenario, i.e. the embedding is class-agnostic
and the attack adapts to new pages without retraining.
"""

from benchmarks.conftest import emit
from repro.experiments import run_experiment1, run_experiment2


def test_fig7_unseen_classes(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_experiment2(context, ns=(1, 3, 5, 10, 20)), rounds=1, iterations=1
    )
    emit("Figure 7 — classes never seen during training (Experiment 2)", result.as_table())

    counts = sorted(result.accuracy_by_classes)
    smallest, largest = counts[0], counts[-1]
    benchmark.extra_info["top1_smallest_unseen"] = result.accuracy_by_classes[smallest][1]
    benchmark.extra_info["top10_largest_unseen"] = result.accuracy_by_classes[largest][10]

    # Far above chance on every slice of never-seen classes.
    for n_classes, accuracy in result.accuracy_by_classes.items():
        assert accuracy[1] >= 5 / n_classes
        assert accuracy[1] <= accuracy[3] <= accuracy[10]

    # Paper: a top-10 adversary keeps >= ~70 % even on the largest unseen set.
    assert result.accuracy_by_classes[largest][10] >= 0.7

    # The key adaptability claim: unseen-class accuracy is comparable to the
    # known-class accuracy at the same class count (within 15 points top-1).
    known = run_experiment1(context, ns=(1,), include_tls13=False).accuracy_by_classes
    for n_classes in set(known) & set(result.accuracy_by_classes):
        assert result.accuracy_by_classes[n_classes][1] >= known[n_classes][1] - 0.15
