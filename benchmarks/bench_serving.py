"""Serving-layer benchmark: sharded, micro-batched replay -> BENCH_2.json.

Replays a synthetic open-world trace mix through the serving subsystem
(:mod:`repro.serving`) and asserts the deployment-scale contract:

* with >= 2 shards and micro-batching enabled the merged predictions are
  identical to a single-process ``ExactIndex`` baseline,
* a ``replace_class`` adaptation fired mid-replay causes zero failed
  queries (the copy-on-write snapshot swap never blocks serving),
* throughput and p50/p99 per-query latency are recorded to
  ``benchmarks/results/BENCH_2.json``.

Run directly with ``pytest benchmarks/bench_serving.py -s`` or via
``python -m repro serve-bench`` for the standalone snapshot.
"""

from pathlib import Path

from benchmarks.conftest import emit
from repro.serving.bench import format_summary, run_serving_bench

OUT = Path(__file__).parent / "results" / "BENCH_2.json"


def test_serving_bench(benchmark):
    snapshot = benchmark.pedantic(
        lambda: run_serving_bench(
            n_references=3000,
            n_classes=60,
            dim=16,
            k=25,
            n_queries=1000,
            n_shards=2,
            executor="serial",
            out=OUT,
        ),
        rounds=1,
        iterations=1,
    )
    emit("Serving bench — sharded micro-batched replay", "\n".join(format_summary(snapshot)))

    # Sharding + micro-batching must not change a single answer.
    assert snapshot["identical_to_exact_baseline"]["serial"] is True
    # Zero-downtime adaptation: the mid-run replace_class failed nothing.
    assert snapshot["adaptation"]["failed_queries"] == 0

    report = snapshot["serving"]["serial"]["report"]
    assert report["throughput_qps"] > 0
    assert report["p99_ms"] >= report["p50_ms"] > 0
    benchmark.extra_info["throughput_qps"] = report["throughput_qps"]
    benchmark.extra_info["p50_ms"] = report["p50_ms"]
    benchmark.extra_info["p99_ms"] = report["p99_ms"]
    benchmark.extra_info["swap_ms"] = snapshot["adaptation"]["swap_ms"]["serial"]
