"""Figures 9, 10, 11 — per-class distinguishability CDFs (Experiment 4).

The bench regenerates the cumulative distribution of the mean number of
guesses per class for four scenarios (known, unknown, and both under FL
padding) and asserts the paper's qualitative findings: a substantial
fraction of classes is identified within a couple of guesses whether or not
the class was seen during training, and FL padding shifts the whole
distribution towards many more guesses.
"""

from benchmarks.conftest import emit
from repro.experiments import run_experiment4


def test_fig9_10_11_per_class_cdfs(benchmark, context):
    result = benchmark.pedantic(lambda: run_experiment4(context), rounds=1, iterations=1)
    emit("Figures 9-11 — per-class guess CDFs (Experiment 4)", result.as_table())

    known = next(s for name, s in result.scenarios.items() if name.startswith("known ("))
    unknown = next(s for name, s in result.scenarios.items() if name.startswith("unknown ("))
    padded = [s for name, s in result.scenarios.items() if "padded" in name]

    benchmark.extra_info["known_below_2"] = known.fraction_below(2)
    benchmark.extra_info["unknown_below_2"] = unknown.fraction_below(2)

    # Figures 9/10: a large fraction of classes needs fewer than 2-3 guesses,
    # for known and unknown classes alike (no major difference between them).
    assert known.fraction_below(3) >= 0.4
    assert unknown.fraction_below(3) >= 0.4
    assert abs(known.fraction_below(3) - unknown.fraction_below(3)) <= 0.4

    # CDFs are monotone and end at 1 for a threshold beyond the class count.
    for summary in result.scenarios.values():
        cdf = summary.cdf((2, 5, 10, summary.n_classes + 2))
        assert cdf == sorted(cdf)
        assert cdf[-1] == 1.0

    # Figure 11: padding reduces the fraction of easily distinguished classes.
    assert result.padding_reduces_distinguishability(threshold=2.0)
    for padded_summary in padded:
        assert padded_summary.fraction_below(2) <= max(
            known.fraction_below(2), unknown.fraction_below(2)
        )
