"""Figures 12 and 13 — fixed-length padding countermeasure (Section VII).

Regenerates the accuracy-with-vs-without-FL-padding comparison for known
(Figure 12) and unknown (Figure 13) classes, plus the bandwidth-overhead
table for FL padding and the cheaper alternatives the discussion proposes
(anonymity sets, random padding).
"""

from benchmarks.conftest import emit
from repro.experiments import run_experiment5


def test_fig12_13_fixed_length_padding(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_experiment5(context, ns=(1, 3, 5, 10, 20)), rounds=1, iterations=1
    )
    emit("Figures 12-13 — FL padding (Section VII)", result.as_table() + "\n\n" + result.overhead_table())

    assert len(result.scenarios) == 4  # known/unknown x two class counts

    for name, scenario in result.scenarios.items():
        benchmark.extra_info[f"{name}_top1_drop"] = scenario.accuracy_drop(1)
        # Padding never *helps* the adversary at top-1 and costs bandwidth.
        assert scenario.accuracy_drop(1) >= 0.0
        assert scenario.overhead > 0.0
        # "a noticeable decrease ... but not a complete loss of accuracy":
        assert scenario.padded_accuracy[20] >= 0.3

    # The decrease is noticeable (>= 10 points top-1) in every scenario.
    assert result.padding_effective_everywhere(n=1, min_drop=0.10)

    # Section VII: general-purpose FL padding is not bandwidth-efficient,
    # while anonymity-set padding achieves protection at a lower overhead.
    fl_overheads = [s.overhead for s in result.scenarios.values()]
    assert min(fl_overheads) >= 0.2
    anonymity = next(
        (s for name, s in result.alternative_defences.items() if "AnonymitySet" in name), None
    )
    assert anonymity is not None
    assert anonymity.overhead < min(fl_overheads)
