"""Table II — the number of guesses needed grows sub-linearly with classes.

For each unseen-class slice the bench finds the smallest n whose top-n
accuracy reaches ~90 % and reports n as a fraction of the class count.  The
paper's observation is that this fraction *shrinks* as the class count
grows (0.6 % at 500 classes down to 0.23 % at 13,000).
"""

from benchmarks.conftest import emit
from repro.experiments import run_experiment2


def test_table2_sublinear_n(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_experiment2(context, ns=(1, 3, 10), target_accuracy=0.9), rounds=1, iterations=1
    )
    emit("Table II — guesses needed for ~90 % accuracy", result.table2_as_table())

    rows = result.table2_rows
    assert len(rows) == len(context.scale.exp2_class_counts)
    for row in rows:
        benchmark.extra_info[f"n_at_{row.n_classes}_classes"] = row.n_for_target
        # n reaches the target (or the cap) and never exceeds the class count.
        assert 1 <= row.n_for_target <= row.n_classes
        assert row.accuracy_at_n >= 0.85

    # The fraction n / #classes shrinks from the smallest to the largest set.
    assert result.sublinear()
    # And n itself grows much more slowly than the class count does.
    growth_in_classes = rows[-1].n_classes / rows[0].n_classes
    growth_in_n = rows[-1].n_for_target / max(1, rows[0].n_for_target)
    assert growth_in_n < growth_in_classes
