"""The RSG1 segment format and the storage bugfix sweep that rode on it.

Four contracts:

* **Round trips.**  Arbitrary named array sets — any storable dtype, any
  shape including zero-length — survive pack/read bit-exactly, through an
  in-memory buffer, a POSIX shared-memory block and an mmap'd file alike,
  and all three media hold *identical bytes* (property-based, hypothesis).
* **Rejection.**  Truncated buffers, flipped bits (checksum), bad magic,
  object dtypes and oversized names all raise
  :class:`~repro.core.segment.SegmentFormatError` instead of returning
  garbage.
* **Store archives.**  ``ReferenceStore.save`` writes RSG1 atomically
  (temp + ``os.replace``; a crash mid-save keeps the previous archive),
  legacy npz archives still load, and persisted index state is adopted
  even for a trained-but-empty store.
* **Worker cache hygiene.**  A failed segment refresh in ``_shard_worker``
  evicts the stale cache entry instead of leaving it pointing at a closed
  segment (fault injection over the real worker loop).
"""

import os
import queue

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import segment as rsg
from repro.core.index import CoarseQuantizedIndex, ExactIndex, IVFPQIndex, index_from_spec
from repro.core.reference_store import ReferenceStore
from repro.serving.sharded_store import (
    ProcessShardExecutor,
    ShardedReferenceStore,
    _shard_worker,
)


def corpus(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim))


# --------------------------------------------------------------------- strategies
_DTYPES = st.sampled_from(
    ["u1", "i1", "u2", "i4", "i8", "u8", "f2", "f4", "f8", "c8", "?"]
)
_NAMES = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-."),
    min_size=1,
    max_size=24,
)


@st.composite
def _array(draw):
    dtype = np.dtype(draw(_DTYPES))
    shape = tuple(draw(st.lists(st.integers(0, 7), min_size=1, max_size=3)))
    count = int(np.prod(shape))
    if dtype.kind == "?":
        flat = draw(st.lists(st.booleans(), min_size=count, max_size=count))
        return np.array(flat, dtype=dtype).reshape(shape)
    if dtype.kind in "ui":
        info = np.iinfo(dtype)
        flat = draw(
            st.lists(st.integers(int(info.min), int(info.max)), min_size=count, max_size=count)
        )
        return np.array(flat, dtype=dtype).reshape(shape)
    bound = 6e4 if dtype.itemsize <= 2 else 1e6  # float16 tops out at 65504
    flat = draw(
        st.lists(
            st.floats(-bound, bound, allow_nan=False, width=16 if dtype.itemsize <= 2 else 32),
            min_size=count,
            max_size=count,
        )
    )
    return np.array(flat, dtype=dtype).reshape(shape)


_ARRAY_SETS = st.dictionaries(_NAMES, _array(), min_size=0, max_size=6)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(arrays=_ARRAY_SETS)
    def test_pack_read_bitexact(self, arrays):
        blob = rsg.pack_segment(arrays)
        out = rsg.read_segment(blob)
        assert set(out) == set(arrays)
        for name, array in arrays.items():
            assert out[name].dtype == array.dtype
            assert out[name].shape == array.shape
            assert np.array_equal(out[name], array, equal_nan=False)

    @settings(max_examples=20, deadline=None)
    @given(arrays=_ARRAY_SETS)
    def test_file_and_shm_media_hold_identical_bytes(self, arrays, tmp_path_factory):
        from multiprocessing import shared_memory

        blob = rsg.pack_segment(arrays)
        directory = tmp_path_factory.mktemp("segments")
        path = rsg.write_segment_file(directory / "segment.rsg", arrays)
        assert path.read_bytes() == blob
        shm = shared_memory.SharedMemory(create=True, size=rsg.segment_size(arrays))
        try:
            rsg.write_segment(shm.buf, arrays)
            assert bytes(shm.buf[: len(blob)]) == blob
            via_shm = rsg.read_segment(shm.buf)
            with rsg.open_segment(path) as mapped:
                for name in arrays:
                    assert np.array_equal(mapped.arrays[name], via_shm[name])
            via_shm = None
        finally:
            shm.close()
            shm.unlink()

    def test_views_are_zero_copy_and_read_only(self, tmp_path):
        arrays = {"codes": np.arange(64, dtype=np.uint8).reshape(8, 8)}
        path = rsg.write_segment_file(tmp_path / "segment.rsg", arrays)
        with rsg.open_segment(path) as mapped:
            view = mapped.arrays["codes"]
            assert not view.flags.owndata and not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1
        blob = bytearray(rsg.pack_segment(arrays))
        out = rsg.read_segment(blob)
        assert not out["codes"].flags.writeable

    def test_zero_length_arrays_and_empty_segment(self):
        arrays = {"empty": np.empty((0, 4), dtype=np.float32), "one": np.zeros(1)}
        out = rsg.read_segment(rsg.pack_segment(arrays))
        assert out["empty"].shape == (0, 4) and out["one"].shape == (1,)
        assert rsg.read_segment(rsg.pack_segment({})) == {}

    def test_alignment_and_page_boundaries(self):
        arrays = {"a": np.ones(3, dtype=np.uint8), "b": np.ones(5, dtype=np.float64)}
        blob = rsg.pack_segment(arrays)
        _, _, _, n_arrays, data_offset, total, _ = rsg.HEADER.unpack_from(blob, 0)
        assert data_offset % rsg.PAGE_ALIGNMENT == 0
        for position in range(rsg.HEADER_SIZE, rsg.HEADER_SIZE + n_arrays * rsg.ENTRY_SIZE, rsg.ENTRY_SIZE):
            offset = rsg.ENTRY.unpack_from(blob, position)[2]
            assert offset % rsg.ARRAY_ALIGNMENT == 0


class TestRejection:
    @pytest.fixture()
    def blob(self):
        return rsg.pack_segment({"x": np.arange(100, dtype=np.int64)})

    def test_truncation(self, blob):
        for cut in (0, 3, rsg.HEADER_SIZE - 1, rsg.HEADER_SIZE + 10, len(blob) - 1):
            with pytest.raises(rsg.SegmentFormatError):
                rsg.read_segment(blob[:cut])

    @settings(max_examples=40, deadline=None)
    @given(position=st.integers(0, 4915), bit=st.integers(0, 7))
    def test_flipped_byte_rejected(self, position, bit):
        blob = bytearray(rsg.pack_segment({"x": np.arange(600, dtype=np.int64)}))
        position %= len(blob)
        blob[position] ^= 1 << bit
        with pytest.raises(rsg.SegmentFormatError):
            rsg.read_segment(bytes(blob))

    def test_bad_magic_and_version(self, blob):
        bad = b"NOPE" + blob[4:]
        with pytest.raises(rsg.SegmentFormatError, match="magic"):
            rsg.read_segment(bad)
        future = bytearray(blob)
        future[4] = 99
        with pytest.raises(rsg.SegmentFormatError, match="version"):
            rsg.read_segment(bytes(future))

    def test_object_dtype_rejected(self):
        with pytest.raises(rsg.SegmentFormatError, match="pickle-free"):
            rsg.pack_segment({"bad": np.array(["a", "b"], dtype=object)})

    def test_oversized_name_rejected(self):
        with pytest.raises(rsg.SegmentFormatError):
            rsg.pack_segment({"n" * 80: np.zeros(1)})

    def test_verify_false_skips_crc(self, blob):
        corrupt = bytearray(blob)
        corrupt[-1] ^= 0xFF  # inside the last array's data
        parsed = rsg.read_segment(bytes(corrupt), verify=False)
        assert parsed["x"].shape == (100,)


class TestStoreArchives:
    def test_save_normalises_suffix_and_writes_segment(self, tmp_path):
        store = ReferenceStore(8)
        store.add(corpus(40, 8), [f"c{i % 4}" for i in range(40)])
        path = store.save(tmp_path / "refs.npz")
        assert path.suffix == ".rsg" and rsg.is_segment_file(path)
        # Loading via the historical .npz path finds the .rsg sibling.
        reloaded = ReferenceStore.load(tmp_path / "refs.npz")
        assert np.array_equal(reloaded.embeddings, store.embeddings)
        assert list(reloaded.labels) == list(store.labels)

    def test_legacy_npz_archive_still_loads(self, tmp_path):
        vectors = corpus(600, 16)
        labels = [f"c{i % 12}" for i in range(600)]
        store = ReferenceStore(16, index=IVFPQIndex(min_train_size=16))
        store.add(vectors, labels)
        # Write the pre-segment archive layout by hand.
        state = {
            f"index_state__{name}": array for name, array in store.index.state().items()
        }
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(
            legacy,
            embeddings=store.embeddings,
            labels=store.labels,
            embedding_dim=np.array(store.embedding_dim),
            storage_dtype=np.array(store.storage_dtype),
            **state,
        )
        restored = ReferenceStore.load(legacy, index=index_from_spec(store.index.spec()))
        assert np.array_equal(restored.index.codes, store.index.codes)
        q = vectors[:10]
        d1, i1 = store.search(q, 5)
        d2, i2 = restored.search(q, 5)
        assert np.array_equal(i1, i2) and np.array_equal(d1, d2)

    def test_trained_but_empty_store_keeps_quantizer(self, tmp_path):
        # Regression (pre-fix: state adoption lived inside ``if len(labels)``
        # so an empty store silently lost its fitted codebooks on reload).
        vectors = corpus(600, 16)
        store = ReferenceStore(16, index=IVFPQIndex(min_train_size=16))
        store.add(vectors, ["only-class"] * 600)
        assert store.index.trained
        store.remove_class("only-class")
        assert len(store) == 0 and store.index.trained
        centroids = store.index._centroids.copy()
        restored = ReferenceStore.load(
            store.save(tmp_path / "empty.rsg"), index=index_from_spec(store.index.spec())
        )
        assert len(restored) == 0
        assert restored.index.trained, "trained-but-empty store lost its quantizer"
        assert np.array_equal(restored.index._centroids, centroids)
        # The adopted quantizer keeps serving as rows come back.
        restored.add(vectors[:50], ["back"] * 50)
        d, i = restored.search(vectors[:3], 4)
        assert d.shape == (3, 4)

    def test_trained_but_empty_coarse_index_keeps_state(self, tmp_path):
        vectors = corpus(400, 8)
        store = ReferenceStore(8, index=CoarseQuantizedIndex(min_train_size=16))
        store.add(vectors, ["x"] * 400)
        store.remove_class("x")
        assert store.index.trained
        restored = ReferenceStore.load(
            store.save(tmp_path / "empty-coarse.rsg"),
            index=index_from_spec(store.index.spec()),
        )
        assert restored.index.trained

    def test_interrupted_save_keeps_previous_archive(self, tmp_path, monkeypatch):
        # Regression (pre-fix: np.savez_compressed wrote the final path
        # directly, so a crash mid-write corrupted the archive).
        store = ReferenceStore(8, index=ExactIndex())
        store.add(corpus(30, 8), ["a"] * 30)
        path = store.save(tmp_path / "refs.rsg")
        original = ReferenceStore.load(path)

        def explode(src, dst):
            raise OSError("disk detached mid-rename")

        monkeypatch.setattr(rsg.os, "replace", explode)
        store.add(corpus(10, 8, seed=1), ["b"] * 10)
        with pytest.raises(OSError):
            store.save(path)
        monkeypatch.undo()
        # The archive on disk is still the previous, fully valid one.
        recovered = ReferenceStore.load(path)
        assert np.array_equal(recovered.embeddings, original.embeddings)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["refs.rsg"], "temp file leaked"

    def test_corrupt_archive_raises_segment_error(self, tmp_path):
        store = ReferenceStore(8)
        store.add(corpus(30, 8), ["a"] * 30)
        path = store.save(tmp_path / "refs.rsg")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(rsg.SegmentFormatError):
            ReferenceStore.load(path)


class TestWorkerFaultInjection:
    def _task(self, shard, kind, location, queries, request_id):
        return (
            request_id,
            shard.uid,
            shard.version,
            kind,
            location,
            len(shard.store),
            shard.store.index.spec(),
            queries,
            3,
            "euclidean",
        )

    def test_failed_refresh_evicts_cache_entry(self, tmp_path):
        # Regression (pre-fix: the worker closed the old segment *before*
        # attaching the new one, so a failed refresh left the cache mapping
        # uid -> closed segment and the next request read unmapped memory).
        import threading

        vectors = corpus(200, 8)
        store = ReferenceStore(8)
        store.add(vectors, [f"c{i % 5}" for i in range(200)])
        sharded = ShardedReferenceStore.from_reference_store(store, n_shards=1)
        shard = sharded._shards[0]
        good = rsg.write_segment_file(
            tmp_path / "v1.rsg", {"vectors": np.asarray(store.embeddings)}
        )
        requests, responses = queue.Queue(), queue.Queue()
        worker = threading.Thread(target=_shard_worker, args=(requests, responses), daemon=True)
        worker.start()
        queries = vectors[:4]
        try:
            # 1) Populate the cache at version v.
            requests.put(self._task(shard, "mmap", str(good), queries, 0))
            _, d1, i1, error, _, _ = responses.get(timeout=30)
            assert error is None
            # 2) A refresh to v+1 whose segment is missing must fail ...
            shard.version += 1
            requests.put(self._task(shard, "mmap", str(tmp_path / "gone.rsg"), queries, 1))
            _, _, _, error, _, _ = responses.get(timeout=30)
            assert error is not None
            # 3) ... and the next request (the segment is back) must attach
            # cleanly instead of serving through a poisoned cache entry.
            requests.put(self._task(shard, "mmap", str(good), queries, 2))
            _, d2, i2, error, _, _ = responses.get(timeout=30)
            assert error is None, f"worker cache poisoned after failed refresh: {error}"
            assert np.array_equal(d1, d2) and np.array_equal(i1, i2)
        finally:
            requests.put(None)
            worker.join(timeout=10)

    def test_corrupt_segment_surfaces_error_not_garbage(self, tmp_path):
        import threading

        vectors = corpus(100, 8)
        store = ReferenceStore(8)
        store.add(vectors, ["a"] * 100)
        sharded = ShardedReferenceStore.from_reference_store(store, n_shards=1)
        shard = sharded._shards[0]
        path = rsg.write_segment_file(
            tmp_path / "seg.rsg", {"vectors": np.asarray(store.embeddings)}
        )
        blob = bytearray(path.read_bytes())
        blob[-8] ^= 0x40
        path.write_bytes(bytes(blob))
        requests, responses = queue.Queue(), queue.Queue()
        worker = threading.Thread(target=_shard_worker, args=(requests, responses), daemon=True)
        worker.start()
        try:
            requests.put(self._task(shard, "mmap", str(path), vectors[:2], 0))
            _, _, _, error, _, _ = responses.get(timeout=30)
            assert error is not None and "checksum" in error
        finally:
            requests.put(None)
            worker.join(timeout=10)


class TestStorageTiers:
    def test_mmap_tier_bit_identical_to_shm(self):
        vectors = corpus(900, 16)
        labels = [f"c{i % 20}" for i in range(900)]

        def build(tier):
            executor = ProcessShardExecutor(n_workers=2)
            sharded = ShardedReferenceStore(
                16,
                n_shards=3,
                executor=executor,
                index_factory=lambda: IVFPQIndex(min_train_size=16),
                storage_tier=tier,
            )
            sharded.add(vectors, labels)
            return sharded, executor

        hot, hot_executor = build("shm")
        cold, cold_executor = build("mmap")
        try:
            queries = vectors[:25]
            d_hot, i_hot = hot.search(queries, 7)
            d_cold, i_cold = cold.search(queries, 7)
            assert np.array_equal(d_hot, d_cold) and np.array_equal(i_hot, i_cold)
            hot_bytes = hot.published_tier_bytes()
            cold_bytes = cold.published_tier_bytes()
            assert hot_bytes["shm"] > 0 and hot_bytes["mmap"] == 0
            assert cold_bytes["shm"] == 0 and cold_bytes["mmap"] > 0
        finally:
            hot_executor.close()
            cold_executor.close()

    def test_tier_flip_republishes_and_keeps_results(self):
        vectors = corpus(400, 8)
        labels = [f"c{i % 8}" for i in range(400)]
        executor = ProcessShardExecutor(n_workers=1)
        sharded = ShardedReferenceStore(8, n_shards=2, executor=executor, storage_tier="shm")
        try:
            sharded.add(vectors, labels)
            queries = vectors[:10]
            d1, i1 = sharded.search(queries, 5)
            sharded.set_storage_tier("mmap")
            assert sharded.shard_tiers() == ["mmap", "mmap"]
            d2, i2 = sharded.search(queries, 5)
            assert np.array_equal(d1, d2) and np.array_equal(i1, i2)
            assert sharded.published_tier_bytes()["shm"] == 0
        finally:
            executor.close()

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="storage tier"):
            ShardedReferenceStore(8, storage_tier="tape")
        sharded = ShardedReferenceStore(8)
        with pytest.raises(ValueError, match="storage tier"):
            sharded.set_storage_tier("tape")


class TestDeploymentMigration:
    def _deployment(self, tmp_path):
        """A minimal fake legacy deployment directory (config + npz refs)."""
        import json

        store = ReferenceStore(16, index=IVFPQIndex(min_train_size=16))
        store.add(corpus(600, 16), [f"c{i % 10}" for i in range(600)])
        directory = tmp_path / "deployment"
        directory.mkdir()
        (directory / "config.json").write_text(json.dumps({"index": store.index.spec()}))
        (directory / "weights.npz").write_bytes(b"")
        state = {
            f"index_state__{name}": array for name, array in store.index.state().items()
        }
        np.savez_compressed(
            directory / "references.npz",
            embeddings=store.embeddings,
            labels=store.labels,
            embedding_dim=np.array(store.embedding_dim),
            storage_dtype=np.array(store.storage_dtype),
            **state,
        )
        return directory, store

    def test_migrate_converts_npz_in_place(self, tmp_path):
        from repro.core.deployment import migrate_deployment

        directory, store = self._deployment(tmp_path)
        migrated = migrate_deployment(directory)
        assert migrated == [directory]
        assert not (directory / "references.npz").exists()
        assert rsg.is_segment_file(directory / "references.rsg")
        restored = ReferenceStore.load(
            directory / "references.rsg", index=index_from_spec(store.index.spec())
        )
        assert np.array_equal(restored.index.codes, store.index.codes)
        # Idempotent: a second run finds nothing to do.
        assert migrate_deployment(directory) == []

    def test_migrate_scans_parent_directories(self, tmp_path):
        from repro.core.deployment import migrate_deployment

        directory, _ = self._deployment(tmp_path)
        assert migrate_deployment(tmp_path) == [directory]

    def test_migrate_missing_directory_raises(self, tmp_path):
        from repro.core.deployment import DeploymentNotFoundError, migrate_deployment

        with pytest.raises(DeploymentNotFoundError):
            migrate_deployment(tmp_path / "nope")
