"""Equivalence suite: the batched k-NN engine must match the seed exactly.

The seed implementation (full ``cdist`` + stable argsort + per-query Python
voting loop) is reimplemented here verbatim as the ground truth, and the
batched/index-backed ``KNNClassifier.predict`` is asserted to return
**byte-identical rankings and scores** — including every tie-break — on a
fixed fuzz corpus, for both ``uniform`` and ``distance`` weighting and all
supported metrics.  A gradient check also pins down the rewritten
vectorised LSTM BPTT against numerical gradients.
"""

from typing import Dict, List

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.config import ClassifierConfig
from repro.core import CoarseQuantizedIndex, ExactIndex, KNNClassifier, ReferenceStore
from repro.core.classifier import Prediction


def seed_predict(store: ReferenceStore, config: ClassifierConfig, embeddings: np.ndarray) -> List[Prediction]:
    """The original (pre-index) predict implementation, kept as ground truth."""
    queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    k = min(config.k, len(store))
    distances = cdist(queries, store.embeddings, metric=config.distance_metric)
    labels = store.labels
    predictions: List[Prediction] = []
    for row in range(queries.shape[0]):
        neighbour_order = np.argsort(distances[row], kind="stable")[:k]
        votes: Dict[str, float] = {}
        for neighbour in neighbour_order:
            label = str(labels[neighbour])
            if config.weighting == "distance":
                weight = 1.0 / (distances[row, neighbour] + 1e-9)
            else:
                weight = 1.0
            votes[label] = votes.get(label, 0.0) + weight
        closest: Dict[str, float] = {}
        for neighbour in neighbour_order:
            label = str(labels[neighbour])
            closest.setdefault(label, float(distances[row, neighbour]))
        ranked = sorted(votes, key=lambda label: (-votes[label], closest[label], label))
        predictions.append(Prediction(ranked_labels=ranked, scores=[votes[l] for l in ranked]))
    return predictions


def fuzz_store(seed: int, n_classes: int, per_class: int, dim: int, spread: float) -> ReferenceStore:
    rng = np.random.default_rng(seed)
    centres = rng.standard_normal((n_classes, dim)) * 3.0
    store = ReferenceStore(dim)
    # Interleave classes so label codes do not follow block structure.
    for _ in range(per_class):
        order = rng.permutation(n_classes)
        points = centres[order] + spread * rng.standard_normal((n_classes, dim))
        store.add(points, [f"page-{c:03d}" for c in order])
    return store


CORPUS = [
    # (seed, n_classes, per_class, dim, spread, k, n_queries)
    (0, 12, 9, 6, 1.0, 25, 40),
    (1, 5, 4, 3, 2.0, 7, 25),
    (2, 30, 6, 8, 0.5, 50, 60),
    (3, 8, 12, 4, 3.0, 96, 30),  # k == store size
    (4, 16, 5, 5, 1.5, 200, 20),  # k beyond store size (clamped)
]


class TestPredictEquivalence:
    @pytest.mark.parametrize("weighting", ["uniform", "distance"])
    @pytest.mark.parametrize("case", CORPUS, ids=[f"corpus{c[0]}" for c in CORPUS])
    def test_bit_identical_rankings(self, case, weighting):
        seed, n_classes, per_class, dim, spread, k, n_queries = case
        store = fuzz_store(seed, n_classes, per_class, dim, spread)
        config = ClassifierConfig(k=k, weighting=weighting)
        classifier = KNNClassifier(store, config)
        rng = np.random.default_rng(seed + 100)
        queries = rng.standard_normal((n_queries, dim)) * 3.0

        expected = seed_predict(store, config, queries)
        actual = classifier.predict(queries)
        assert len(actual) == len(expected)
        for got, want in zip(actual, expected):
            # Bit-identical rankings, including every tie-break.
            assert got.ranked_labels == want.ranked_labels
            if weighting == "uniform":
                # Uniform votes are integer sums: exactly equal.
                assert got.scores == want.scores
            else:
                # Distance-weighted sums match up to the last-ulp rounding
                # of the BLAS distance kernel vs scipy's scalar cdist loop.
                assert np.allclose(got.scores, want.scores, rtol=1e-9, atol=0.0)

    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "cityblock"])
    def test_bit_identical_across_metrics(self, metric):
        store = fuzz_store(7, 10, 6, 5, 1.0)
        config = ClassifierConfig(k=20, distance_metric=metric)
        classifier = KNNClassifier(store, config)
        queries = np.random.default_rng(8).standard_normal((30, 5))
        expected = seed_predict(store, config, queries)
        actual = classifier.predict(queries)
        for got, want in zip(actual, expected):
            assert got.ranked_labels == want.ranked_labels
            assert got.scores == want.scores

    def test_equivalence_with_exact_duplicate_references(self):
        """Coincident references (distance ties) keep the seed's ordering."""
        store = ReferenceStore(3)
        rng = np.random.default_rng(9)
        base = rng.standard_normal((6, 3))
        store.add(base, [f"p{i}" for i in range(6)])
        store.add(base, [f"p{i}" for i in range(6)])  # exact duplicates
        store.add(base + 0.01, ["q0"] * 6)
        for weighting in ("uniform", "distance"):
            config = ClassifierConfig(k=10, weighting=weighting)
            classifier = KNNClassifier(store, config)
            queries = np.concatenate([base[:3], rng.standard_normal((5, 3))])
            expected = seed_predict(store, config, queries)
            actual = classifier.predict(queries)
            for row, (got, want) in enumerate(zip(actual, expected)):
                assert got.ranked_labels == want.ranked_labels
                if weighting == "uniform":
                    assert got.scores == want.scores
                elif row >= 3:
                    assert np.allclose(got.scores, want.scores, rtol=1e-6, atol=1e-6)
                else:
                    # Rows 0-2 sit exactly on a reference: the BLAS kernel's
                    # cancellation makes the (capped) coincident weight differ
                    # from the seed's 1e9, but the ranking is untouched and
                    # the coincident label still dominates.
                    assert np.isfinite(got.scores).all()
                    assert got.scores[0] == max(got.scores)

    def test_equivalence_after_adaptation_mutations(self):
        """add/remove/replace keep predictions identical to a fresh seed run."""
        store = fuzz_store(11, 10, 6, 4, 1.0)
        store.remove_class("page-003")
        store.replace_class("page-005", np.random.default_rng(12).standard_normal((4, 4)))
        store.add(np.random.default_rng(13).standard_normal((5, 4)), ["brand-new"] * 5)
        config = ClassifierConfig(k=30)
        classifier = KNNClassifier(store, config)
        queries = np.random.default_rng(14).standard_normal((20, 4))
        expected = seed_predict(store, config, queries)
        actual = classifier.predict(queries)
        for got, want in zip(actual, expected):
            assert got.ranked_labels == want.ranked_labels
            assert got.scores == want.scores

    def test_fast_paths_match_predictions(self):
        store = fuzz_store(20, 9, 7, 5, 1.2)
        classifier = KNNClassifier(store, ClassifierConfig(k=21))
        rng = np.random.default_rng(21)
        queries = rng.standard_normal((25, 5))
        true_labels = [f"page-{rng.integers(0, 12):03d}" for _ in range(25)]

        predictions = classifier.predict(queries)
        labels_top3 = classifier.predict_labels(queries, n=3)
        assert labels_top3 == [p.top(3) for p in predictions]

        accuracy = classifier.topn_accuracy(queries, true_labels, ns=(1, 3, 5))
        for n in (1, 3, 5):
            expected = sum(p.contains(t, n) for p, t in zip(predictions, true_labels)) / 25
            assert accuracy[n] == expected

        guesses = classifier.guesses_needed(queries, true_labels)
        for row, (prediction, label) in enumerate(zip(predictions, true_labels)):
            if label in prediction.ranked_labels:
                assert guesses[row] == prediction.ranked_labels.index(label) + 1
            else:
                assert guesses[row] == len(prediction.ranked_labels) + 1


class TestIVFAgreement:
    def test_full_probe_matches_exact_top1(self):
        """Probing every cell must agree with exact search on top-1."""
        rng = np.random.default_rng(30)
        vectors = rng.standard_normal((600, 8))
        queries = rng.standard_normal((80, 8))
        exact = ExactIndex()
        ivf = CoarseQuantizedIndex(n_cells=16, n_probe=16, min_train_size=16)
        ivf.rebuild(vectors)
        assert ivf.trained
        _, exact_ids = exact.search(vectors, queries, 5)
        _, ivf_ids = ivf.search(vectors, queries, 5)
        assert np.array_equal(exact_ids[:, 0], ivf_ids[:, 0])

    def test_default_probe_agreement_on_clustered_data(self):
        from repro.core.index_bench import clustered_corpus

        rng = np.random.default_rng(31)
        vectors = clustered_corpus(3000, 16, seed=31)
        queries = vectors[rng.choice(3000, 100, replace=False)] + 0.05 * rng.standard_normal((100, 16))
        exact = ExactIndex()
        ivf = CoarseQuantizedIndex(n_probe=8)
        ivf.rebuild(vectors)
        _, exact_ids = exact.search(vectors, queries, 1)
        _, ivf_ids = ivf.search(vectors, queries, 1)
        assert (exact_ids[:, 0] == ivf_ids[:, 0]).mean() >= 0.95


class TestQueryValidation:
    def test_nan_queries_rejected(self):
        store = fuzz_store(40, 4, 5, 3, 1.0)
        classifier = KNNClassifier(store, ClassifierConfig(k=5))
        bad = np.zeros((3, 3))
        bad[1, 2] = np.nan
        with pytest.raises(ValueError, match="NaN/inf"):
            classifier.predict(bad)

    def test_inf_queries_rejected(self):
        store = fuzz_store(41, 4, 5, 3, 1.0)
        classifier = KNNClassifier(store, ClassifierConfig(k=5))
        bad = np.full((1, 3), np.inf)
        with pytest.raises(ValueError, match="NaN/inf"):
            classifier.predict_one(bad[0])

    def test_coincident_query_distance_weight_is_finite(self):
        """A query sitting exactly on a reference gets the documented 1e9
        weight cap from the 1e-9 distance floor, not an infinite vote."""
        store = fuzz_store(42, 4, 5, 3, 1.0)
        classifier = KNNClassifier(store, ClassifierConfig(k=5, weighting="distance"))
        coincident = np.asarray(store.embeddings[0])
        prediction = classifier.predict_one(coincident)
        assert all(np.isfinite(score) for score in prediction.scores)
        assert max(prediction.scores) <= 5 * 1e9


class TestLSTMGradientEquivalence:
    def test_bptt_matches_numerical_gradients_table1_shape(self):
        """Gradient-check the vectorised BPTT at a (scaled-down) Table I shape."""
        from repro.nn.lstm import LSTM

        rng = np.random.default_rng(50)
        layer = LSTM(3, 6, rng=rng)
        x = rng.standard_normal((3, 7, 3))

        def loss():
            return float(np.sum(layer.forward(x) ** 2) / 2)

        out = layer.forward(x)
        layer.zero_grad()
        layer.forward(x)
        grad_x = layer.backward(out)

        eps = 1e-6
        for name in ("W", "U", "b"):
            param = layer.params[name]
            numeric = np.zeros_like(param)
            flat, numeric_flat = param.reshape(-1), numeric.reshape(-1)
            for position in range(flat.size):
                original = flat[position]
                flat[position] = original + eps
                plus = loss()
                flat[position] = original - eps
                minus = loss()
                flat[position] = original
                numeric_flat[position] = (plus - minus) / (2 * eps)
            assert np.allclose(layer.grads[name], numeric, atol=1e-4), name

        numeric_x = np.zeros_like(x)
        flat, numeric_flat = x.reshape(-1), numeric_x.reshape(-1)
        for position in range(flat.size):
            original = flat[position]
            flat[position] = original + eps
            plus = loss()
            flat[position] = original - eps
            minus = loss()
            flat[position] = original
            numeric_flat[position] = (plus - minus) / (2 * eps)
        assert np.allclose(grad_x, numeric_x, atol=1e-4)
