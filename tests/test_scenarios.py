"""Scenario engine tests: specs, corpora, live replays, fault injection.

The live tests stand up one self-hosted front-end per module
(:class:`~repro.scenarios.engine.ServedScenarioHost`) and drive it over
the real wire protocol — the same path ``repro scenario run`` takes — so
what is asserted here (zero failed queries under churn and replica loss,
tenant isolation, structured rejection of corrupt configs) is what the CI
scenarios job measures at larger N.
"""

import json
import random

import numpy as np
import pytest

from repro.defences import DefenceConfigError, defence_from_spec
from repro.scenarios import (
    ScenarioCorpus,
    ScenarioRunner,
    ScenarioSpec,
    ScenarioSpecError,
    ServedScenarioHost,
    TraceEmbedder,
    builtin_scenarios,
    check_report_invariants,
    get_scenario,
    random_spec,
)
from repro.scenarios.bench import format_scenario_summary, run_scenario_bench
from repro.scenarios.strategies import HAVE_HYPOTHESIS, scenario_specs

if HAVE_HYPOTHESIS:
    from hypothesis import HealthCheck, given, settings


# ------------------------------------------------------------------ the specs
class TestScenarioSpec:
    def test_builtin_catalogue_is_complete_and_valid(self):
        scenarios = builtin_scenarios()
        assert len(scenarios) >= 6
        for required in (
            "baseline",
            "padding-adaptive",
            "padding-fixed",
            "padding-random",
            "drift-gradual",
            "openworld-surge",
            "churn-storm",
            "replica-flap",
        ):
            assert required in scenarios
            scenarios[required].validate()

    def test_unknown_scenario_name_lists_catalogue(self):
        with pytest.raises(KeyError, match="padding-adaptive"):
            get_scenario("nope")

    def test_corrupt_defence_config_is_a_structured_error(self):
        """A corrupt defence spec must surface a DefenceConfigError naming
        the bad field — before any server traffic, never a crash."""
        spec = ScenarioSpec(name="bad", defence={"kind": "adaptive", "fill_probability": 7.0})
        with pytest.raises(DefenceConfigError) as excinfo:
            spec.validate()
        assert excinfo.value.field == "fill_probability"
        with pytest.raises(DefenceConfigError):
            ScenarioSpec(name="bad", defence={"kind": "quantum"}).validate()

    def test_spec_validation_names_the_offending_field(self):
        cases = [
            (ScenarioSpec(name=""), "name"),
            (ScenarioSpec(name="x", generator="gopher"), "generator"),
            (ScenarioSpec(name="x", n_queries=0), "n_queries"),
            (ScenarioSpec(name="x", holdout_pages=10, n_pages=10), "holdout_pages"),
            (ScenarioSpec(name="x", drift={"kind": "warp"}), "drift"),
            (ScenarioSpec(name="x", drift={"kind": "minor", "fraction": 0.0}), "drift"),
            (ScenarioSpec(name="x", churn={"explode": 1}), "churn"),
            (ScenarioSpec(name="x", open_world={"fraction": 1.5}), "open_world"),
            (ScenarioSpec(name="x", faults=("meteor",)), "faults"),
        ]
        for spec, field in cases:
            with pytest.raises(ScenarioSpecError) as excinfo:
                spec.validate()
            assert excinfo.value.field == field, field

    def test_spec_round_trips_to_dict(self):
        spec = get_scenario("churn-storm")
        data = spec.as_dict()
        assert data["churn"] == {"replace": 2, "add": 1, "remove": 1}
        json.dumps(data)  # JSON-serialisable for BENCH snapshots


# ----------------------------------------------------------------- the corpus
class TestScenarioCorpus:
    def test_build_is_deterministic_in_seed(self):
        a = ScenarioCorpus.build(n_pages=6, visits_per_page=4, seed=5)
        b = ScenarioCorpus.build(n_pages=6, visits_per_page=4, seed=5)
        assert np.array_equal(a.embedder.embed(a.reference), b.embedder.embed(b.reference))
        emb_a, labels_a, _ = a.query_stream(10, rng=np.random.default_rng(1))
        emb_b, labels_b, _ = b.query_stream(10, rng=np.random.default_rng(1))
        assert np.array_equal(emb_a, emb_b)
        assert labels_a == labels_b

    def test_holdout_pages_are_not_monitored(self):
        corpus = ScenarioCorpus.build(n_pages=6, visits_per_page=4, seed=0, holdout_pages=2)
        assert len(corpus.holdout_labels) == 2
        assert not set(corpus.holdout_labels) & set(corpus.monitored_labels)
        assert set(corpus.reference_embeddings()) == set(corpus.monitored_labels)

    def test_embedder_rejects_mismatched_shapes(self):
        corpus = ScenarioCorpus.build(n_pages=6, visits_per_page=4, seed=0)
        other = TraceEmbedder(corpus.reference.n_sequences + 1, 8)
        with pytest.raises(ValueError, match="does not match"):
            other.embed(corpus.reference)
        with pytest.raises(ValueError, match="dim must be positive"):
            TraceEmbedder(3, 8, dim=0)

    def test_undefended_queries_separate_classes(self):
        """Held-out visits must land near their page's reference cluster —
        the property that makes scenario recall meaningful."""
        corpus = ScenarioCorpus.build(n_pages=8, visits_per_page=10, seed=3)
        references = corpus.reference_embeddings()
        names = list(references)
        centroids = np.stack([references[name].mean(axis=0) for name in names])
        embeddings, labels, overhead = corpus.query_stream(40, rng=np.random.default_rng(0))
        assert overhead == 0.0
        hits = sum(
            names[int(np.argmin(((centroids - e) ** 2).sum(axis=1)))] == label
            for e, label in zip(embeddings, labels)
        )
        assert hits / len(labels) >= 0.8

    def test_defence_displaces_queries_and_costs_bandwidth(self):
        corpus = ScenarioCorpus.build(n_pages=8, visits_per_page=10, seed=3)
        defence = defence_from_spec({"kind": "fixed-length"})
        _, _, overhead = corpus.query_stream(
            30, defence=defence, rng=np.random.default_rng(0)
        )
        assert overhead > 0.5  # padding to corpus max is expensive

    def test_recrawl_requires_pages(self):
        corpus = ScenarioCorpus.build(n_pages=6, visits_per_page=4, seed=0)
        with pytest.raises(ValueError, match="at least one page"):
            corpus.recrawl([])
        fresh = corpus.recrawl(corpus.monitored_labels[:2])
        assert set(fresh.class_names) == set(corpus.monitored_labels[:2])


# ------------------------------------------------------------- live scenarios
@pytest.fixture(scope="module")
def live_host():
    with ServedScenarioHost() as host:
        yield host


def _fast(spec: ScenarioSpec, n_queries: int = 24) -> ScenarioSpec:
    spec.n_queries = n_queries
    spec.n_pages = 7
    spec.visits_per_page = 6
    return spec


class TestLiveScenarios:
    def test_baseline_replay_zero_failed_and_isolated(self, live_host):
        runner = ScenarioRunner(live_host.host, live_host.port, tenants=2)
        report = runner.run(_fast(get_scenario("baseline")))
        check_report_invariants(report, min_baseline_recall=0.5)
        assert report.ok
        assert len(report.tenants) == 2
        assert report.n_queries == 2 * 24
        json.dumps(report.as_dict())

    def test_padding_defence_costs_recall_and_bandwidth(self, live_host):
        runner = ScenarioRunner(live_host.host, live_host.port, tenants=2)
        baseline = runner.run(_fast(get_scenario("baseline")))
        padded = runner.run(_fast(get_scenario("padding-fixed")))
        check_report_invariants(padded)
        assert padded.defence_overhead > 0.5
        assert padded.recall_at_1 < baseline.recall_at_1

    def test_replica_kill_mid_replay_recovers_with_zero_failed_queries(self, live_host):
        """The fault-injection acceptance: a replica dies between the two
        replay halves, the router drains around it, nothing fails, and the
        replica is restored afterwards."""
        runner = ScenarioRunner(live_host.host, live_host.port, tenants=2)
        report = runner.run(_fast(get_scenario("replica-flap")))
        check_report_invariants(report)
        assert report.faults_injected == ["replica-flap"]
        assert report.failed == 0

    def test_churn_storm_prices_updates_and_spares_bystanders(self, live_host):
        runner = ScenarioRunner(live_host.host, live_host.port, tenants=2)
        report = runner.run(_fast(get_scenario("churn-storm")))
        check_report_invariants(report)
        assert report.update_cost is not None
        assert report.update_cost["updated_classes"] == 4
        assert report.update_cost["total"] > 0
        bystander = report.tenants[1]
        assert not bystander.victim
        # The victim's churn must not move the bystander's generation.
        assert bystander.generation_start == bystander.generation_end

    def test_drift_triggers_retraining_free_adaptation(self, live_host):
        runner = ScenarioRunner(live_host.host, live_host.port, tenants=2)
        report = runner.run(_fast(get_scenario("drift-gradual")))
        check_report_invariants(report)
        assert report.drift_info is not None
        assert report.drift_info["monitored_updated"]
        assert report.update_cost is not None

    def test_corrupt_defence_config_rejected_before_any_traffic(self, live_host):
        runner = ScenarioRunner(live_host.host, live_host.port, tenants=1)
        spec = ScenarioSpec(name="bad", defence={"kind": "random", "max_fraction": -1})
        with pytest.raises(DefenceConfigError) as excinfo:
            runner.run(spec)
        assert excinfo.value.field == "max_fraction"
        # The rejection left no tenants behind on the server.
        assert live_host.registry.names() == ["default"]

    def test_random_specs_replay_clean(self, live_host):
        """Strategy-driven schedules: whatever valid spec the generator
        draws must replay with zero failures and intact isolation."""
        rng = random.Random(2024)
        runner = ScenarioRunner(live_host.host, live_host.port, tenants=2)
        for _ in range(2):
            spec = random_spec(rng, max_queries=20)
            report = runner.run(spec)
            check_report_invariants(report)

    def test_bench_snapshot_shape(self, live_host, tmp_path):
        out = tmp_path / "BENCH_8.json"
        snapshot = run_scenario_bench(
            ("baseline",),
            tenants=2,
            n_queries=16,
            seed=5,
            target=(live_host.host, live_host.port),
            out=out,
        )
        assert snapshot["snapshot"] == "BENCH_8"
        assert snapshot["acceptance"]["zero_failed_queries"]
        assert snapshot["acceptance"]["tenant_isolation"]
        reloaded = json.loads(out.read_text())
        assert reloaded["scenarios"][0]["scenario"] == "baseline"
        lines = format_scenario_summary(snapshot)
        assert any("baseline" in line for line in lines)
        assert "pass" in lines[-1]


# ----------------------------------------------------------------- strategies
class TestStrategies:
    def test_random_spec_always_validates(self):
        rng = random.Random(7)
        for _ in range(100):
            random_spec(rng).validate()

    def test_runner_rejects_bad_tenancy_knobs(self):
        with pytest.raises(ValueError, match="tenants must be positive"):
            ScenarioRunner("127.0.0.1", 1, tenants=0)
        with pytest.raises(Exception):
            ScenarioRunner("127.0.0.1", 1, tenant_prefix="-bad-")

    if HAVE_HYPOTHESIS:

        @given(spec=scenario_specs())
        @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
        def test_hypothesis_specs_always_validate(self, spec):
            spec.validate()
            assert spec.n_queries <= 48
            data = spec.as_dict()
            assert data["name"] == "property-draw"
