"""Integration tests for the experiment runners (smoke scale).

These tests check that every experiment runner produces well-formed results
and respects its structural invariants at the tiny "smoke" scale; the
paper-shape claims (accuracy levels, who beats whom) are exercised at the
larger "ci" scale by the benchmark harness in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.config import get_scale
from repro.experiments import (
    ExperimentContext,
    ci_hyperparameters,
    ci_training_config,
    run_experiment1,
    run_experiment2,
    run_experiment3,
    run_experiment4,
    run_experiment5,
    run_table3,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext.build("smoke")


class TestContext:
    def test_scale_lookup_errors(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_context_structure(self, context):
        scale = context.scale
        split = context.wiki_split
        assert split.set_a.n_classes == scale.train_classes
        assert set(split.set_a.class_names) == set(split.set_b.class_names)
        assert set(split.set_a.class_names).isdisjoint(split.set_c.class_names)
        assert context.fingerprinter.provisioned
        assert context.training_history.epoch_losses
        assert context.github_dataset.n_sequences == 2
        assert context.wiki_tls13_dataset.tls_version == "TLSv1.3"
        assert set(context.datasets_by_name) == {"wiki", "wiki_tls13", "github"}

    def test_slice_helpers(self, context):
        n = min(context.scale.exp1_class_counts)
        reference, test = context.slice_known(n)
        assert reference.n_classes == n and test.n_classes == n
        reference_u, test_u = context.slice_unknown(n)
        assert set(reference_u.class_names).isdisjoint(reference.class_names)

    def test_evaluate_slice_returns_accuracies(self, context):
        n = min(context.scale.exp1_class_counts)
        reference, test = context.slice_known(n)
        accuracy = context.evaluate_slice(reference, test, ns=(1, 3))
        assert set(accuracy) == {1, 3}
        assert 0.0 <= accuracy[1] <= accuracy[3] <= 1.0

    def test_ci_config_helpers(self):
        hp = ci_hyperparameters(embedding_dim=16)
        assert hp.embedding_dim == 16
        config = ci_training_config(get_scale("smoke"), epochs=3)
        assert config.epochs == 3


class TestExperiment1:
    def test_result_structure(self, context):
        result = run_experiment1(context, ns=(1, 3, 5))
        assert set(result.accuracy_by_classes) == set(context.scale.exp1_class_counts)
        for accuracy in result.accuracy_by_classes.values():
            assert set(accuracy) == {1, 3, 5}
            # top-n accuracy is monotone in n
            assert accuracy[1] <= accuracy[3] <= accuracy[5]
        assert result.tls13_classes == min(context.scale.exp1_class_counts)
        assert "Figure 6" in result.as_table()

    def test_tls13_can_be_skipped(self, context):
        result = run_experiment1(context, ns=(1,), include_tls13=False)
        assert result.tls13_accuracy == {}


class TestExperiment2:
    def test_result_structure(self, context):
        result = run_experiment2(context, ns=(1, 3), target_accuracy=0.8)
        assert set(result.accuracy_by_classes) == set(context.scale.exp2_class_counts)
        assert len(result.table2_rows) == len(context.scale.exp2_class_counts)
        for row in result.table2_rows:
            assert 1 <= row.n_for_target <= row.n_classes
            assert 0.0 < row.n_fraction_of_classes <= 1.0
        assert "Table II" in result.table2_as_table()
        assert "Figure 7" in result.as_table()

    def test_sublinear_requires_two_rows(self):
        from repro.experiments.exp2_adaptability import Experiment2Result

        assert not Experiment2Result().sublinear()


class TestExperiment3:
    def test_result_structure(self, context):
        result = run_experiment3(context, ns=(1, 3))
        assert result.wikipedia_classes == min(context.scale.exp1_class_counts)
        assert set(result.github_accuracy_by_classes) == set(context.scale.github_class_counts)
        for accuracy in result.github_accuracy_by_classes.values():
            assert accuracy[1] <= accuracy[3]
        assert "Figure 8" in result.as_table()


class TestExperiment4:
    def test_result_structure(self, context):
        result = run_experiment4(context)
        assert len(result.scenarios) == 4
        known = [name for name in result.scenarios if name.startswith("known (")]
        padded = [name for name in result.scenarios if "padded" in name]
        assert len(known) == 1 and len(padded) == 2
        for summary in result.scenarios.values():
            assert summary.n_classes > 0
            cdf = summary.cdf(result.cdf_thresholds)
            assert cdf == sorted(cdf)
            assert all(0.0 <= value <= 1.0 for value in cdf)
        assert "Figures 9-11" in result.as_table()


class TestExperiment5:
    def test_result_structure(self, context):
        result = run_experiment5(context, class_counts=[min(context.scale.exp1_class_counts)], ns=(1, 3))
        assert len(result.scenarios) == 2  # known + unknown for one class count
        for scenario in result.scenarios.values():
            assert scenario.overhead > 0.0
            assert set(scenario.unpadded_accuracy) == {1, 3}
        assert result.alternative_defences
        for scenario in result.alternative_defences.values():
            assert scenario.overhead > 0.0
        assert "Figures 12-13" in result.as_table()
        assert "overhead" in result.overhead_table()

    def test_alternatives_can_be_skipped(self, context):
        result = run_experiment5(
            context,
            class_counts=[min(context.scale.exp1_class_counts)],
            ns=(1,),
            include_alternatives=False,
        )
        assert result.alternative_defences == {}


class TestTable3:
    def test_catalogue_only(self, context):
        result = run_table3(context, measure=False)
        assert len(result.catalogue_rows) == 7
        assert result.measured == []
        assert len(result.modelled_update_costs) == 7
        # retraining systems model a higher yearly update cost than ours
        assert (
            result.modelled_update_costs["Deep Fingerprinting"]
            > result.modelled_update_costs["Adaptive Fingerprinting"]
        )
        assert "Table III" in result.as_table()

    def test_measured_costs(self, context):
        result = run_table3(context, measure=True)
        systems = {m.system for m in result.measured}
        assert any("Adaptive" in s for s in systems)
        assert any("k-fingerprinting" in s for s in systems)
        assert any("Deep Fingerprinting" in s for s in systems)
        for measured in result.measured:
            assert measured.provisioning_seconds >= 0.0
            assert measured.update_seconds >= 0.0
            assert 0.0 <= measured.topn1_accuracy <= 1.0
        assert "measured" in result.measured_as_table()
