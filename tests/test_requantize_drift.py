"""Drift-aware requantization, end to end through the serving layer.

The compression-v2 acceptance properties (ISSUE 5): when the corpus
churns to a distribution the IVF-PQ quantizer never saw, recall@10
degrades; after ``DeploymentManager.requantize()`` it recovers to within
1% of a fresh-trained index; and the copy-on-write swap fails zero
queries while a live scheduler keeps serving.  Plus the packed 4-bit
engine's equivalence and shared-memory publication contracts at the
serving layer.

``benchmarks/perf_snapshot.py::bench_drift_requantize`` measures this
same scenario at larger N for BENCH_5.json — keep the index factory,
churn recipe and swap harness in sync across the two files.
"""

import threading

import numpy as np
import pytest

from repro.config import ClassifierConfig
from repro.core.index import ExactIndex, IVFPQIndex
from repro.core.index_bench import clustered_corpus
from repro.core.reference_store import ReferenceStore
from repro.serving import BatchScheduler, DeploymentManager, ShardedReferenceStore

N, N_CLASSES, DIM, K = 6000, 60, 24, 10


def index_factory():
    """Moderate probe/rerank budgets so stale-quantizer error is visible."""
    return IVFPQIndex(bits=4, rerank=32, n_probe=8, min_train_size=64)


def build_deployment(seed=0, executor=None):
    original = clustered_corpus(N, DIM, n_clusters=N_CLASSES, seed=seed + 4)
    labels = [f"page-{i % N_CLASSES:04d}" for i in range(N)]
    flat = ReferenceStore(DIM)
    flat.add(original, labels)
    manager = DeploymentManager(
        ShardedReferenceStore.from_reference_store(
            flat, n_shards=2, index_factory=index_factory, executor=executor
        ),
        ClassifierConfig(k=K),
    )
    return manager


def churn_to_shifted_distribution(manager, seed=0):
    """Replace every monitored class with a shifted, rescaled cluster set."""
    drifted = clustered_corpus(N, DIM, n_clusters=N_CLASSES, seed=seed + 91) * 1.5 + 4.0
    for c in range(N_CLASSES):
        manager.replace_class(f"page-{c:04d}", drifted[c :: N_CLASSES])


def recall_at_k(store, queries, exact_ids):
    _, ids = store.search(queries, K)
    hits = [np.intersect1d(ids[q], exact_ids[q]).size for q in range(ids.shape[0])]
    return float(np.mean(hits) / K)


def drifted_queries(store, seed=0, n_queries=192):
    rng = np.random.default_rng(seed + 3)
    corpus = np.asarray(store.embeddings, dtype=np.float64)
    picks = corpus[rng.choice(len(store), size=n_queries, replace=False)]
    queries = picks + 0.1 * rng.standard_normal(picks.shape)
    _, exact_ids = ExactIndex().search(corpus, queries, K)
    return queries, exact_ids


class TestDriftRecallRecovery:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_recall_degrades_then_recovers_within_1pct_of_fresh(self, seed):
        manager = build_deployment(seed)
        assert not manager.retrain_needed()
        churn_to_shifted_distribution(manager, seed)
        assert manager.retrain_needed()
        assert manager.drift_ratio() > 10.0

        queries, exact_ids = drifted_queries(manager.store, seed)
        recall_stale = recall_at_k(manager.store, queries, exact_ids)

        fresh = ReferenceStore(DIM, index=index_factory())
        fresh.add(np.asarray(manager.store.embeddings), list(manager.store.labels))
        recall_fresh = recall_at_k(fresh, queries, exact_ids)

        # The stale quantizer visibly under-recalls the drifted corpus...
        assert recall_stale < recall_fresh - 0.03
        manager.requantize()
        # ...and requantization recovers to within 1% of a fresh-trained
        # index (in practice above it: per-shard quantizers are finer).
        recall_after = recall_at_k(manager.store, queries, exact_ids)
        assert recall_after >= recall_fresh - 0.01
        assert not manager.retrain_needed()
        assert manager.drift_ratio() == 1.0

    def test_requantize_preserves_ids_labels_and_rows(self):
        manager = build_deployment()
        churn_to_shifted_distribution(manager)
        store = manager.store
        before = (
            np.asarray(store.embeddings).copy(),
            list(store.labels),
            store.shard_sizes(),
        )
        clone = store.with_requantized(sample_size=2000)
        assert np.array_equal(np.asarray(clone.embeddings), before[0])
        assert list(clone.labels) == before[1]
        assert clone.shard_sizes() == before[2]
        assert clone.generation == store.generation + 1
        # Copy-on-write: the original store still serves its stale index.
        assert store.retrain_needed()
        assert not clone.retrain_needed()


class TestZeroDowntimeSwap:
    def test_zero_failed_queries_during_requantize(self):
        manager = build_deployment()
        churn_to_shifted_distribution(manager)
        queries, _ = drifted_queries(manager.store)
        scheduler = BatchScheduler(manager, max_batch_size=32, max_latency_s=0.001)
        tickets = []
        stop = threading.Event()

        def pump():
            position = 0
            while not stop.is_set():
                tickets.append(scheduler.submit(queries[position % queries.shape[0]]))
                position += 1

        with scheduler:
            pumper = threading.Thread(target=pump)
            pumper.start()
            try:
                snapshot = manager.requantize()
            finally:
                stop.set()
                pumper.join()
        assert len(tickets) > 0
        assert sum(1 for ticket in tickets if ticket.failed) == 0
        for ticket in tickets:
            assert ticket.result() is not None
        assert snapshot.generation == manager.generation

    def test_generation_bump_invalidates_scheduler_cache(self):
        manager = build_deployment()
        scheduler = BatchScheduler(manager, cache_size=64)
        query = np.asarray(manager.store.embeddings)[0]
        first = scheduler.classify([query])[0]
        cached = scheduler.submit(query)
        scheduler.flush()
        assert cached.cached  # warm within one generation
        manager.requantize()
        fresh = scheduler.submit(query)
        scheduler.flush()
        assert not fresh.cached  # the new generation can't serve stale entries
        assert fresh.result().ranked_labels[0] == first.ranked_labels[0]


class TestPackedEngineServingEquivalence:
    def test_probe_all_4bit_sharded_matches_flat_exact_bitwise(self):
        vectors = clustered_corpus(3000, 16, n_clusters=30, seed=5)
        labels = [f"page-{i % 30:03d}" for i in range(3000)]
        flat = ReferenceStore(16)
        flat.add(vectors, labels)
        sharded = ShardedReferenceStore.from_reference_store(
            flat,
            n_shards=3,
            index_factory=lambda: IVFPQIndex(
                bits=4, n_cells=8, n_probe=8, rerank=256, min_train_size=16
            ),
        )
        rng = np.random.default_rng(6)
        queries = vectors[rng.choice(3000, 64, replace=False)]
        queries = queries + 0.05 * rng.standard_normal(queries.shape)
        d_flat, i_flat = flat.search(queries, K)
        d_sharded, i_sharded = sharded.search(queries, K)
        # Every cell probed and rerank far above k: merged packed results
        # reproduce the flat exact ranking bit-for-bit.
        assert np.array_equal(i_sharded, i_flat)
        assert np.allclose(d_sharded, d_flat)

    def test_process_executor_ships_packed_segments(self):
        from repro.serving import ProcessShardExecutor

        vectors = clustered_corpus(3000, 32, n_clusters=30, seed=5)
        labels = [f"page-{i % 30:03d}" for i in range(3000)]
        flat = ReferenceStore(32)
        flat.add(vectors, labels)
        executor = ProcessShardExecutor(n_workers=2)
        try:
            sharded = ShardedReferenceStore.from_reference_store(
                flat,
                n_shards=2,
                executor=executor,
                index_factory=lambda: IVFPQIndex(bits=4, rerank=0, min_train_size=64),
            )
            queries = vectors[:16]
            _, ids = sharded.search(queries, K)
            assert ids.shape == (16, K)
            published = sum(executor.published_bytes().values())
            # Codes-only publication: far below the raw float64 matrix.
            assert 0 < published < 0.25 * vectors.nbytes
        finally:
            executor.close()


class TestRequantizeWireOp:
    def test_frontend_requantize_and_info_drift_fields(self):
        from repro.serving import FrontendClient, FrontendServer

        manager = build_deployment()
        churn_to_shifted_distribution(manager)
        scheduler = BatchScheduler(manager, max_batch_size=16, max_latency_s=0.001)
        with scheduler, FrontendServer(scheduler, manager=manager) as server:
            with FrontendClient(server.host, server.port) as client:
                info = client.info()
                assert info["retrain_needed"] is True
                assert info["drift_ratio"] > 10.0
                generation = info["generation"]
                reply = client.requantize(sample_size=2000)
                assert reply["generation"] == generation + 1
                assert reply["drift_ratio_before"] > 10.0
                assert reply["drift_ratio"] == 1.0
                assert client.info()["retrain_needed"] is False
                # Still serving after the swap.
                body = client.classify(
                    np.asarray(manager.store.embeddings)[:2], top_n=1
                )
                assert len(body["predictions"]) == 2

    def test_invalid_sample_size_is_a_structured_error(self):
        from repro.serving import FrontendClient, FrontendServer, ProtocolError

        manager = build_deployment()
        scheduler = BatchScheduler(manager, max_batch_size=16, max_latency_s=0.001)
        with scheduler, FrontendServer(scheduler, manager=manager) as server:
            with FrontendClient(server.host, server.port) as client:
                with pytest.raises(ProtocolError) as caught:
                    client.control({"op": "requantize", "sample_size": -3})
                assert caught.value.code == "bad-control"
                assert client.ping()  # connection survived the bad request
