"""Tests for the synthetic web substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import AddressAllocator, IPAddress
from repro.tls import TLSVersion
from repro.web import (
    Browser,
    Crawler,
    GithubLikeGenerator,
    GradualDrift,
    MajorUpdate,
    MinorUpdate,
    Resource,
    ResourceKind,
    Server,
    WebPage,
    Website,
    WikipediaLikeGenerator,
)


def make_simple_website():
    allocator = AddressAllocator()
    servers = [
        Server("text", allocator.allocate()),
        Server("media", allocator.allocate()),
    ]
    template = [Resource("theme.css", ResourceKind.STYLESHEET, 10_000, "text", shared=True)]
    pages = [
        WebPage(
            page_id=f"p{i}",
            url=f"https://example.org/p{i}",
            template_resources=template,
            content_resources=[
                Resource(f"p{i}.html", ResourceKind.HTML, 20_000 + i * 5_000, "text"),
                Resource(f"p{i}.jpg", ResourceKind.IMAGE, 30_000 + i * 7_000, "media"),
            ],
        )
        for i in range(4)
    ]
    return Website("example", TLSVersion.TLS_1_2, servers, pages)


class TestResource:
    def test_valid_resource(self):
        r = Resource("a.css", ResourceKind.STYLESHEET, 100, "text")
        assert r.size == 100 and not r.shared

    def test_invalid_resources(self):
        with pytest.raises(ValueError):
            Resource("a", ResourceKind.HTML, -1, "text")
        with pytest.raises(ValueError):
            Resource("", ResourceKind.HTML, 1, "text")
        with pytest.raises(ValueError):
            Resource("a", ResourceKind.HTML, 1, "")
        with pytest.raises(ValueError):
            Resource("a", ResourceKind.HTML, 1, "text", request_size=0)

    def test_resized_preserves_other_fields(self):
        r = Resource("a.jpg", ResourceKind.IMAGE, 100, "media", shared=True)
        r2 = r.resized(250)
        assert r2.size == 250 and r2.shared and r2.name == "a.jpg"


class TestWebPage:
    def test_totals_and_shared_fraction(self):
        page = make_simple_website().get_page("p0")
        assert page.total_bytes == 10_000 + 20_000 + 30_000
        assert page.unique_bytes == 50_000
        assert page.shared_fraction == pytest.approx(10_000 / 60_000)

    def test_bytes_by_server_and_kind(self):
        page = make_simple_website().get_page("p1")
        by_server = page.bytes_by_server()
        assert set(by_server) == {"text", "media"}
        by_kind = page.bytes_by_kind()
        assert ResourceKind.HTML in by_kind

    def test_with_content_bumps_version(self):
        page = make_simple_website().get_page("p0")
        updated = page.with_content([Resource("new.html", ResourceKind.HTML, 123, "text")])
        assert updated.version == page.version + 1
        assert updated.unique_bytes == 123
        assert updated.signature() != page.signature()

    def test_invalid_page(self):
        with pytest.raises(ValueError):
            WebPage(page_id="", url="https://x")
        with pytest.raises(ValueError):
            WebPage(page_id="p", url="")

    def test_empty_page_shared_fraction(self):
        page = WebPage(page_id="p", url="u")
        assert page.shared_fraction == 0.0


class TestWebsite:
    def test_page_management(self):
        site = make_simple_website()
        assert len(site) == 4
        assert "p0" in site
        site.remove_page("p0")
        assert "p0" not in site
        with pytest.raises(KeyError):
            site.get_page("p0")

    def test_duplicate_page_rejected(self):
        site = make_simple_website()
        with pytest.raises(ValueError):
            site.add_page(site.get_page("p1"))

    def test_unknown_server_role_rejected(self):
        site = make_simple_website()
        bad = WebPage(
            page_id="bad",
            url="https://example.org/bad",
            content_resources=[Resource("x.html", ResourceKind.HTML, 1, "nonexistent")],
        )
        with pytest.raises(ValueError):
            site.add_page(bad)

    def test_duplicate_server_role_rejected(self):
        allocator = AddressAllocator()
        with pytest.raises(ValueError):
            Website(
                "dup",
                TLSVersion.TLS_1_2,
                [Server("text", allocator.allocate()), Server("text", allocator.allocate())],
            )

    def test_requires_servers_and_name(self):
        with pytest.raises(ValueError):
            Website("x", TLSVersion.TLS_1_2, [])
        with pytest.raises(ValueError):
            Website("", TLSVersion.TLS_1_2, [Server("a", IPAddress("10.0.0.1"))])

    def test_link_graph(self):
        site = make_simple_website()
        site.add_link("p0", "p1")
        site.add_link("p0", "p2")
        assert set(site.outgoing_links("p0")) == {"p1", "p2"}
        with pytest.raises(KeyError):
            site.add_link("p0", "unknown")

    def test_update_page(self):
        site = make_simple_website()
        page = site.get_page("p2")
        site.update_page(page.with_content([Resource("new.html", ResourceKind.HTML, 1, "text")]))
        assert site.get_page("p2").version == 1
        with pytest.raises(KeyError):
            site.update_page(WebPage(page_id="ghost", url="u"))

    def test_statistics(self):
        site = make_simple_website()
        assert site.max_page_bytes() >= site.mean_page_bytes() > 0


class TestGenerators:
    def test_wikipedia_like_structure(self):
        site = WikipediaLikeGenerator(n_pages=20, seed=1).generate()
        assert len(site) == 20
        assert site.tls_version is TLSVersion.TLS_1_2
        assert {s.role for s in site.servers} == {"text", "media"}
        # All pages share the same template resources.
        signatures = {tuple(r.name for r in p.template_resources) for p in site.pages}
        assert len(signatures) == 1
        # Pages have different content.
        assert len({p.signature() for p in site.pages}) == 20

    def test_wikipedia_like_deterministic(self):
        a = WikipediaLikeGenerator(n_pages=10, seed=7).generate()
        b = WikipediaLikeGenerator(n_pages=10, seed=7).generate()
        assert [p.signature() for p in a.pages] == [p.signature() for p in b.pages]

    def test_wikipedia_like_seed_changes_content(self):
        a = WikipediaLikeGenerator(n_pages=10, seed=1).generate()
        b = WikipediaLikeGenerator(n_pages=10, seed=2).generate()
        assert [p.signature() for p in a.pages] != [p.signature() for p in b.pages]

    def test_github_like_structure(self):
        site = GithubLikeGenerator(n_pages=15, seed=3, cdn_pool_size=3, external_hosts=2).generate()
        assert site.tls_version is TLSVersion.TLS_1_3
        roles = {s.role for s in site.servers}
        assert "web" in roles and "cdn-0" in roles and "external-0" in roles
        pools = {s.pool for s in site.servers if s.pool}
        assert pools == {"cdn"}

    def test_generators_reject_bad_parameters(self):
        with pytest.raises(ValueError):
            WikipediaLikeGenerator(n_pages=0).generate()
        with pytest.raises(ValueError):
            GithubLikeGenerator(n_pages=0).generate()
        with pytest.raises(ValueError):
            GithubLikeGenerator(n_pages=5, cdn_pool_size=0).generate()

    def test_link_graph_present(self):
        site = WikipediaLikeGenerator(n_pages=12, seed=5).generate()
        assert any(site.outgoing_links(p) for p in site.page_ids)


class TestUpdates:
    def test_minor_update_changes_sizes_slightly(self):
        site = make_simple_website()
        page = site.get_page("p0")
        rng = np.random.default_rng(0)
        updated = MinorUpdate(relative_change=0.05).apply(page, rng)
        assert updated.version == page.version + 1
        assert updated.total_bytes != page.total_bytes
        assert abs(updated.unique_bytes - page.unique_bytes) < 0.5 * page.unique_bytes

    def test_major_update_replaces_content(self):
        site = make_simple_website()
        page = site.get_page("p1")
        rng = np.random.default_rng(1)
        updated = MajorUpdate().apply(page, rng)
        old_names = {r.name for r in page.content_resources}
        new_names = {r.name for r in updated.content_resources}
        assert old_names.isdisjoint(new_names)
        assert updated.template_resources == page.template_resources

    def test_gradual_drift_accumulates(self):
        site = make_simple_website()
        page = site.get_page("p2")
        rng = np.random.default_rng(2)
        drifted = GradualDrift(steps=15, per_step_change=0.1).apply(page, rng)
        assert drifted.version >= page.version + 15

    def test_apply_to_website_fraction(self):
        site = WikipediaLikeGenerator(n_pages=20, seed=1).generate()
        rng = np.random.default_rng(3)
        updated = MinorUpdate().apply_to_website(site, rng, fraction=0.5)
        assert len(updated) == 10
        assert all(site.get_page(p).version == 1 for p in updated)

    def test_apply_to_website_invalid_fraction(self):
        site = make_simple_website()
        with pytest.raises(ValueError):
            MinorUpdate().apply_to_website(site, np.random.default_rng(0), fraction=1.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MinorUpdate(relative_change=0.0)
        with pytest.raises(ValueError):
            GradualDrift(steps=0)


class TestBrowserAndCrawler:
    def test_page_load_produces_capture(self):
        site = WikipediaLikeGenerator(n_pages=5, seed=1).generate()
        browser = Browser()
        result = browser.load(site, site.page_ids[0], np.random.default_rng(0))
        assert result.capture.total_bytes > site.get_page(site.page_ids[0]).total_bytes
        assert len(result.servers_contacted) >= 1
        assert result.duration > 0

    def test_wikipedia_load_contacts_two_servers(self):
        site = WikipediaLikeGenerator(n_pages=5, seed=2).generate()
        # Pick a page with at least one image so both servers are used.
        page = next(p for p in site.pages if any(r.server_role == "media" for r in p.content_resources))
        result = Browser().load(site, page.page_id, np.random.default_rng(1))
        assert len(result.servers_contacted) == 2

    def test_github_load_server_count_varies(self):
        site = GithubLikeGenerator(n_pages=10, seed=4).generate()
        browser = Browser()
        counts = set()
        for i, page_id in enumerate(site.page_ids):
            result = browser.load(site, page_id, np.random.default_rng(i))
            counts.add(len(result.servers_contacted))
        assert len(counts) > 1

    def test_incognito_vs_warm_cache(self):
        site = WikipediaLikeGenerator(n_pages=3, seed=5).generate()
        page_id = site.page_ids[0]
        cold = Browser(incognito=True).load(site, page_id, np.random.default_rng(7))
        warm = Browser(incognito=False).load(site, page_id, np.random.default_rng(7))
        assert warm.capture.total_bytes < cold.capture.total_bytes

    def test_unknown_page_raises(self):
        site = make_simple_website()
        with pytest.raises(KeyError):
            Browser().load(site, "nope", np.random.default_rng(0))

    def test_crawler_produces_labeled_captures(self):
        site = WikipediaLikeGenerator(n_pages=4, seed=6).generate()
        crawler = Crawler(seed=1)
        captures = crawler.crawl(site, visits_per_page=3)
        assert len(captures) == 12
        labels = {c.page_id for c in captures}
        assert labels == set(site.page_ids)
        assert all(c.website == site.name for c in captures)

    def test_crawler_unknown_page_rejected(self):
        site = make_simple_website()
        with pytest.raises(KeyError):
            Crawler().crawl(site, page_ids=["ghost"], visits_per_page=1)

    def test_crawler_invalid_visits(self):
        site = make_simple_website()
        with pytest.raises(ValueError):
            Crawler().crawl(site, visits_per_page=0)

    def test_crawl_single(self):
        site = make_simple_website()
        labeled = Crawler(seed=2).crawl_single(site, "p0", visit=5)
        assert labeled.page_id == "p0" and labeled.visit == 5

    def test_repeated_loads_differ_but_same_magnitude(self):
        site = WikipediaLikeGenerator(n_pages=3, seed=8).generate()
        page_id = site.page_ids[0]
        browser = Browser()
        a = browser.load(site, page_id, np.random.default_rng(100)).capture
        b = browser.load(site, page_id, np.random.default_rng(200)).capture
        assert a.total_bytes != b.total_bytes
        assert abs(a.total_bytes - b.total_bytes) < 0.2 * max(a.total_bytes, b.total_bytes)
