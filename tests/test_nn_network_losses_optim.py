"""Tests for Sequential, the losses, the optimizers and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    Adam,
    BinaryCrossEntropy,
    ContrastiveLoss,
    Dense,
    Dropout,
    LeakyReLU,
    LSTM,
    ReLU,
    SGD,
    Sequential,
    SoftmaxCrossEntropy,
    euclidean_distance,
    load_weights,
    save_weights,
)


def make_mlp(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Dense(6, 16, rng=rng),
        ReLU(),
        Dense(16, 4, rng=rng),
        LeakyReLU(0.01),
    ])


class TestSequential:
    def test_forward_backward_shapes(self):
        net = make_mlp()
        x = np.random.default_rng(1).standard_normal((10, 6))
        out = net.forward(x)
        assert out.shape == (10, 4)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_requires_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_named_parameters_unique(self):
        net = make_mlp()
        names = [name for name, _ in net.named_parameters()]
        assert len(names) == len(set(names))
        assert all(name.startswith("layer") for name in names)

    def test_state_dict_roundtrip(self):
        net = make_mlp(seed=2)
        other = make_mlp(seed=3)
        x = np.random.default_rng(4).standard_normal((5, 6))
        assert not np.allclose(net.forward(x), other.forward(x))
        other.load_state_dict(net.state_dict())
        assert np.allclose(net.forward(x), other.forward(x))

    def test_load_state_dict_rejects_mismatch(self):
        net = make_mlp()
        state = net.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self):
        net = make_mlp()
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_n_params_counts_all(self):
        net = make_mlp()
        assert net.n_params == (6 * 16 + 16) + (16 * 4 + 4)

    def test_callable(self):
        net = make_mlp()
        x = np.zeros((2, 6))
        assert np.allclose(net(x), net.forward(x))


class TestContrastiveLoss:
    def test_positive_pair_loss_is_squared_distance(self):
        loss = ContrastiveLoss(margin=5.0)
        a = np.array([[0.0, 0.0]])
        b = np.array([[3.0, 4.0]])
        value = loss.forward(a, b, np.array([1]))
        assert value == pytest.approx(25.0, rel=1e-6)

    def test_negative_pair_beyond_margin_is_zero(self):
        loss = ContrastiveLoss(margin=2.0)
        a = np.array([[0.0, 0.0]])
        b = np.array([[10.0, 0.0]])
        assert loss.forward(a, b, np.array([0])) == pytest.approx(0.0, abs=1e-9)

    def test_negative_pair_within_margin_penalised(self):
        loss = ContrastiveLoss(margin=10.0)
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        assert loss.forward(a, b, np.array([0])) == pytest.approx(81.0, rel=1e-6)

    def test_rejects_non_positive_margin(self):
        with pytest.raises(ValueError):
            ContrastiveLoss(margin=0.0)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(7)
        loss = ContrastiveLoss(margin=3.0)
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((6, 4))
        labels = rng.integers(0, 2, size=6)
        grad_a, grad_b = loss.backward(a, b, labels)

        eps = 1e-6
        num_a = np.zeros_like(a)
        for idx in np.ndindex(a.shape):
            a[idx] += eps
            plus = loss.forward(a, b, labels)
            a[idx] -= 2 * eps
            minus = loss.forward(a, b, labels)
            a[idx] += eps
            num_a[idx] = (plus - minus) / (2 * eps)
        assert np.allclose(grad_a, num_a, atol=1e-5)
        assert np.allclose(grad_b, -grad_a)

    def test_euclidean_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.zeros((2, 3)), np.zeros((2, 4)))

    @given(st.integers(1, 8), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_loss_always_non_negative(self, batch, dim):
        rng = np.random.default_rng(batch * 100 + dim)
        loss = ContrastiveLoss(margin=4.0)
        a = rng.standard_normal((batch, dim))
        b = rng.standard_normal((batch, dim))
        labels = rng.integers(0, 2, size=batch)
        assert loss.forward(a, b, labels) >= 0.0


class TestOtherLosses:
    def test_bce_perfect_prediction_near_zero(self):
        loss = BinaryCrossEntropy()
        probs = np.array([0.9999, 0.0001])
        labels = np.array([1.0, 0.0])
        assert loss.forward(probs, labels) < 1e-3

    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((5, 7))
        probs = SoftmaxCrossEntropy.softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_ce_gradient_matches_numerical(self):
        rng = np.random.default_rng(8)
        loss = SoftmaxCrossEntropy()
        logits = rng.standard_normal((4, 5))
        labels = rng.integers(0, 5, size=4)
        grad = loss.backward(logits, labels)
        eps = 1e-6
        num = np.zeros_like(logits)
        for idx in np.ndindex(logits.shape):
            logits[idx] += eps
            plus = loss.forward(logits, labels)
            logits[idx] -= 2 * eps
            minus = loss.forward(logits, labels)
            logits[idx] += eps
            num[idx] = (plus - minus) / (2 * eps)
        assert np.allclose(grad, num, atol=1e-5)


class TestOptimizers:
    def _train_regression(self, optimizer_cls, **kwargs):
        rng = np.random.default_rng(11)
        net = Sequential([Dense(3, 16, rng=rng), ReLU(), Dense(16, 1, rng=rng)])
        optimizer = optimizer_cls(net, **kwargs)
        x = rng.standard_normal((64, 3))
        target = (x @ np.array([[1.0], [-2.0], [0.5]])) + 0.3

        def mse():
            return float(np.mean((net.forward(x) - target) ** 2))

        initial = mse()
        for _ in range(200):
            optimizer.zero_grad()
            pred = net.forward(x, training=True)
            grad = 2 * (pred - target) / x.shape[0]
            net.backward(grad)
            optimizer.step()
        return initial, mse()

    def test_sgd_reduces_loss(self):
        initial, final = self._train_regression(SGD, learning_rate=0.05)
        assert final < initial * 0.2

    def test_sgd_momentum_reduces_loss(self):
        initial, final = self._train_regression(SGD, learning_rate=0.02, momentum=0.9)
        assert final < initial * 0.2

    def test_adam_reduces_loss(self):
        initial, final = self._train_regression(Adam, learning_rate=0.01)
        assert final < initial * 0.2

    def test_gradient_clipping_bounds_update(self):
        rng = np.random.default_rng(12)
        net = Sequential([Dense(2, 2, rng=rng)])
        optimizer = SGD(net, learning_rate=1.0, gradient_clip=1e-3)
        x = np.full((4, 2), 1e6)
        before = net.state_dict()
        out = net.forward(x)
        net.backward(out)
        optimizer.step()
        after = net.state_dict()
        delta = sum(float(np.abs(after[k] - before[k]).max()) for k in before)
        assert delta < 1.0

    def test_invalid_hyperparameters(self):
        net = Sequential([Dense(2, 2)])
        with pytest.raises(ValueError):
            SGD(net, learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(net, learning_rate=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD(net, learning_rate=0.1, gradient_clip=-1)


class TestSerialization:
    def test_save_load_roundtrip(self, tmp_path):
        net = Sequential([LSTM(2, 4, rng=np.random.default_rng(1)), Dense(4, 3, rng=np.random.default_rng(2))])
        path = save_weights(net, tmp_path / "model")
        assert path.suffix == ".npz"
        fresh = Sequential([LSTM(2, 4, rng=np.random.default_rng(9)), Dense(4, 3, rng=np.random.default_rng(10))])
        x = np.random.default_rng(3).standard_normal((3, 5, 2))
        assert not np.allclose(net.forward(x), fresh.forward(x))
        load_weights(fresh, path)
        assert np.allclose(net.forward(x), fresh.forward(x))

    def test_load_missing_file_raises(self, tmp_path):
        net = Sequential([Dense(2, 2)])
        with pytest.raises(FileNotFoundError):
            load_weights(net, tmp_path / "absent.npz")

    def test_load_architecture_mismatch_raises(self, tmp_path):
        net = Sequential([Dense(2, 2)])
        path = save_weights(net, tmp_path / "weights.npz")
        other = Sequential([Dense(3, 3)])
        with pytest.raises(ValueError):
            load_weights(other, path)


class TestEndToEndSiamese:
    def test_contrastive_training_separates_two_clusters(self):
        """A tiny siamese run: embeddings of two synthetic classes separate."""
        rng = np.random.default_rng(21)
        net = Sequential([
            Dense(4, 16, rng=rng),
            ReLU(),
            Dropout(0.0),
            Dense(16, 2, rng=rng),
        ])
        loss_fn = ContrastiveLoss(margin=4.0)
        optimizer = Adam(net, learning_rate=0.01)

        def sample(cls, n):
            centre = np.array([2.0, -1.0, 0.5, 3.0]) if cls == 0 else np.array([-2.0, 1.0, -0.5, -3.0])
            return centre + 0.3 * rng.standard_normal((n, 4))

        for _ in range(150):
            a_cls, b_cls = rng.integers(0, 2), rng.integers(0, 2)
            xa, xb = sample(a_cls, 16), sample(b_cls, 16)
            labels = np.full(16, 1.0 if a_cls == b_cls else 0.0)
            optimizer.zero_grad()
            ea, eb = net.forward(xa, training=True), net.forward(xb, training=True)
            grad_a, grad_b = loss_fn.backward(ea, eb, labels)
            net.backward(grad_a)
            net.backward(grad_b)
            optimizer.step()

        emb0 = net.forward(sample(0, 32))
        emb1 = net.forward(sample(1, 32))
        intra = np.linalg.norm(emb0 - emb0.mean(axis=0), axis=1).mean()
        inter = np.linalg.norm(emb0.mean(axis=0) - emb1.mean(axis=0))
        assert inter > 2 * intra
