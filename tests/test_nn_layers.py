"""Unit and gradient-check tests for the feed-forward layers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.layers import Dense, Dropout, LeakyReLU, ReLU
from repro.nn.initializers import glorot_uniform, orthogonal, zeros_init


def numerical_gradient(func, x, eps=1e-6):
    """Central-difference numerical gradient of a scalar function."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestInitializers:
    def test_glorot_uniform_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform((50, 80), rng)
        limit = np.sqrt(6.0 / 130)
        assert w.shape == (50, 80)
        assert np.all(np.abs(w) <= limit)

    def test_orthogonal_is_orthogonal(self):
        rng = np.random.default_rng(1)
        w = orthogonal((16, 16), rng)
        identity = w @ w.T
        assert np.allclose(identity, np.eye(16), atol=1e-8)

    def test_orthogonal_rejects_non_2d(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError):
            orthogonal((4, 4, 4), rng)

    def test_zeros_init(self):
        assert np.all(zeros_init((3, 2)) == 0.0)


class TestDense:
    def test_forward_shape_and_value(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, rng=rng)
        layer.params["W"] = np.ones((4, 3))
        layer.params["b"] = np.full(3, 0.5)
        x = np.ones((2, 4))
        out = layer.forward(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, 4.5)

    def test_rejects_bad_input(self):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 5)))
        with pytest.raises(ValueError):
            layer.forward(np.ones(4))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_backward_before_forward_raises(self):
        layer = Dense(4, 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 3)))

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(3)
        layer = Dense(5, 4, rng=rng)
        x = rng.standard_normal((6, 5))

        def loss():
            return float(np.sum(layer.forward(x) ** 2) / 2)

        layer.forward(x)
        analytic_input = layer.backward(layer.forward(x))
        expected_w = numerical_gradient(loss, layer.params["W"])
        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out)
        assert np.allclose(layer.grads["W"], expected_w, atol=1e-4)
        assert analytic_input.shape == x.shape

    def test_gradient_accumulates(self):
        rng = np.random.default_rng(4)
        layer = Dense(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        first = layer.grads["W"].copy()
        layer.forward(x)
        layer.backward(np.ones_like(out))
        assert np.allclose(layer.grads["W"], 2 * first)
        layer.zero_grad()
        assert np.all(layer.grads["W"] == 0)

    def test_n_params(self):
        layer = Dense(10, 7)
        assert layer.n_params == 10 * 7 + 7


class TestActivations:
    def test_relu_forward_backward(self):
        layer = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        out = layer.forward(x)
        assert np.allclose(out, [[0.0, 0.0, 2.0]])
        grad = layer.backward(np.ones_like(x))
        assert np.allclose(grad, [[0.0, 0.0, 1.0]])

    def test_leaky_relu_forward_backward(self):
        layer = LeakyReLU(alpha=0.1)
        x = np.array([[-2.0, 3.0]])
        out = layer.forward(x)
        assert np.allclose(out, [[-0.2, 3.0]])
        grad = layer.backward(np.ones_like(x))
        assert np.allclose(grad, [[0.1, 1.0]])

    def test_leaky_relu_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(alpha=-0.5)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 1)))
        with pytest.raises(RuntimeError):
            LeakyReLU().backward(np.ones((1, 1)))

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_relu_never_negative(self, values):
        x = np.array([values])
        out = ReLU().forward(x)
        assert np.all(out >= 0.0)


class TestDropout:
    def test_identity_when_not_training(self):
        layer = Dropout(0.5)
        x = np.random.default_rng(0).standard_normal((8, 8))
        assert np.allclose(layer.forward(x, training=False), x)

    def test_scales_kept_units(self):
        rng = np.random.default_rng(5)
        layer = Dropout(0.5, rng=rng)
        x = np.ones((1000, 10))
        out = layer.forward(x, training=True)
        kept = out != 0
        # inverted dropout scales the kept activations by 1 / keep_prob
        assert np.allclose(out[kept], 2.0)
        assert 0.3 < kept.mean() < 0.7

    def test_backward_masks_gradient(self):
        rng = np.random.default_rng(6)
        layer = Dropout(0.3, rng=rng)
        x = np.ones((20, 20))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        assert np.allclose((grad == 0), (out == 0))

    def test_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_zero_rate_is_identity_even_training(self):
        layer = Dropout(0.0)
        x = np.ones((3, 3))
        assert np.allclose(layer.forward(x, training=True), x)
