"""Tests for the nearest-neighbour index layer and the store that owns it."""

import numpy as np
import pytest

from repro.core.index import (
    CoarseQuantizedIndex,
    ExactIndex,
    index_from_spec,
    top_k_by_distance,
)
from repro.core.reference_store import ReferenceStore


class TestTopK:
    def test_matches_stable_argsort(self):
        rng = np.random.default_rng(0)
        distances = rng.standard_normal((20, 50)) ** 2
        for k in (1, 7, 49, 50):
            dist, idx = top_k_by_distance(distances, k)
            for row in range(20):
                expected = np.argsort(distances[row], kind="stable")[:k]
                assert np.array_equal(idx[row], expected)
                assert np.array_equal(dist[row], distances[row, expected])

    def test_boundary_ties_resolved_by_id(self):
        # Columns 0..3 all tie at distance 1; k=2 must pick ids 0 and 1.
        distances = np.array([[1.0, 1.0, 1.0, 1.0, 5.0]])
        dist, idx = top_k_by_distance(distances, 2)
        assert idx.tolist() == [[0, 1]]
        assert dist.tolist() == [[1.0, 1.0]]

    def test_k_of_larger_than_row(self):
        distances = np.array([[3.0, 1.0, 2.0]])
        dist, idx = top_k_by_distance(distances, 10)
        assert idx.tolist() == [[1, 2, 0]]


class TestExactIndex:
    def test_search_orders_by_distance_then_id(self):
        vectors = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 0.0]])
        index = ExactIndex()
        dist, idx = index.search(vectors, np.array([[0.0, 0.0]]), 3)
        assert idx.tolist() == [[0, 2, 1]]

    def test_rejects_unknown_metric(self):
        with pytest.raises(ValueError):
            ExactIndex(metric="hamming")

    def test_empty_search_raises(self):
        with pytest.raises(ValueError):
            ExactIndex().search(np.empty((0, 2)), np.zeros((1, 2)), 1)


class TestCoarseQuantizedIndex:
    def test_untrained_below_min_size_falls_back_to_exact(self):
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((50, 4))
        ivf = CoarseQuantizedIndex(min_train_size=256)
        ivf.rebuild(vectors)
        assert not ivf.trained
        d1, i1 = ivf.search(vectors, vectors[:5], 3)
        d2, i2 = ExactIndex().search(vectors, vectors[:5], 3)
        assert np.array_equal(i1, i2) and np.array_equal(d1, d2)

    def test_trains_once_corpus_is_large_enough(self):
        rng = np.random.default_rng(2)
        ivf = CoarseQuantizedIndex(min_train_size=64)
        vectors = rng.standard_normal((40, 4))
        ivf.rebuild(vectors)
        assert not ivf.trained
        grown = np.concatenate([vectors, rng.standard_normal((60, 4))])
        ivf.add(grown, 60)
        assert ivf.trained

    def test_incremental_add_assigns_to_existing_cells(self):
        rng = np.random.default_rng(3)
        vectors = rng.standard_normal((300, 4))
        ivf = CoarseQuantizedIndex(n_cells=8, min_train_size=16)
        ivf.rebuild(vectors)
        centroids_before = ivf._centroids.copy()
        grown = np.concatenate([vectors, rng.standard_normal((50, 4))])
        ivf.add(grown, 50)
        # Retraining-free: centroids untouched, assignments extended.
        assert np.array_equal(ivf._centroids, centroids_before)
        assert ivf._assignments.size == 350
        d, i = ivf.search(grown, grown[-3:], 1)
        assert set(i[:, 0]) <= set(range(350))

    def test_remove_renumbers_ids(self):
        rng = np.random.default_rng(4)
        vectors = rng.standard_normal((200, 3))
        ivf = CoarseQuantizedIndex(n_cells=5, n_probe=5, min_train_size=16)
        ivf.rebuild(vectors)
        kept_mask = np.ones(200, dtype=bool)
        kept_mask[10:60] = False
        kept = vectors[kept_mask]
        ivf.remove(kept_mask)
        assert ivf._assignments.size == kept.shape[0]
        _, ids = ivf.search(kept, kept[:4], 1)
        assert np.array_equal(ids[:, 0], np.arange(4))

    def test_probe_shortfall_falls_back_to_exact(self):
        # One faraway point gets its own cell; probing only that cell for a
        # nearby query yields < k candidates and must not surface padding.
        rng = np.random.default_rng(5)
        vectors = np.concatenate([rng.standard_normal((299, 2)), [[500.0, 500.0]]])
        ivf = CoarseQuantizedIndex(n_cells=4, n_probe=1, min_train_size=16)
        ivf.rebuild(vectors)
        d, i = ivf.search(vectors, np.array([[499.0, 499.0]]), 10)
        assert np.all(i >= 0)
        assert np.all(np.isfinite(d))

    def test_cross_cell_distance_ties_ordered_by_id(self):
        # Two clusters far apart; the query sits exactly between two points
        # that live in different cells, so the tie must resolve by id even
        # though the probe layout visits cells in arbitrary order.
        rng = np.random.default_rng(6)
        left = rng.standard_normal((150, 2)) + [-50.0, 0.0]
        right = rng.standard_normal((150, 2)) + [50.0, 0.0]
        vectors = np.concatenate([left, right, [[-10.0, 0.0]], [[10.0, 0.0]]])
        ivf = CoarseQuantizedIndex(n_cells=2, n_probe=2, min_train_size=16)
        ivf.rebuild(vectors)
        d, i = ivf.search(vectors, np.array([[0.0, 0.0]]), 2)
        assert i[0].tolist() == [300, 301]
        assert d[0, 0] == d[0, 1]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CoarseQuantizedIndex(n_cells=0)
        with pytest.raises(ValueError):
            CoarseQuantizedIndex(n_probe=0)
        with pytest.raises(ValueError):
            CoarseQuantizedIndex(metric="hamming")

    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "cityblock"])
    def test_full_probe_matches_exact_per_metric(self, metric):
        rng = np.random.default_rng(9)
        vectors = rng.standard_normal((400, 6)) + 2.0
        queries = rng.standard_normal((30, 6))
        ivf = CoarseQuantizedIndex(n_cells=8, n_probe=8, metric=metric, min_train_size=16)
        ivf.rebuild(vectors)
        d_ivf, i_ivf = ivf.search(vectors, queries, 6)
        d_exact, i_exact = ExactIndex(metric).search(vectors, queries, 6)
        assert np.array_equal(i_ivf, i_exact)
        assert np.allclose(d_ivf, d_exact)

    @pytest.mark.parametrize("metric", ["cosine", "cityblock"])
    def test_incremental_mutation_per_metric(self, metric):
        rng = np.random.default_rng(10)
        vectors = rng.standard_normal((300, 5)) + 1.5
        ivf = CoarseQuantizedIndex(n_cells=6, n_probe=6, metric=metric, min_train_size=16)
        ivf.rebuild(vectors)
        grown = np.concatenate([vectors, rng.standard_normal((40, 5)) + 1.5])
        ivf.add(grown, 40)
        kept_mask = np.ones(340, dtype=bool)
        kept_mask[50:120] = False
        ivf.remove(kept_mask)
        kept = grown[kept_mask]
        queries = rng.standard_normal((12, 5))
        d_ivf, i_ivf = ivf.search(kept, queries, 4)
        d_exact, i_exact = ExactIndex(metric).search(kept, queries, 4)
        assert np.array_equal(i_ivf, i_exact)
        assert np.allclose(d_ivf, d_exact)

    @pytest.mark.parametrize("metric", ["cosine", "cityblock"])
    def test_partial_probe_mostly_agrees_per_metric(self, metric):
        rng = np.random.default_rng(11)
        vectors = rng.standard_normal((500, 6)) + 2.0
        queries = vectors[rng.choice(500, 40, replace=False)] + 0.05 * rng.standard_normal((40, 6))
        ivf = CoarseQuantizedIndex(n_cells=10, n_probe=4, metric=metric, min_train_size=16)
        ivf.rebuild(vectors)
        _, i_ivf = ivf.search(vectors, queries, 1)
        _, i_exact = ExactIndex(metric).search(vectors, queries, 1)
        assert (i_ivf[:, 0] == i_exact[:, 0]).mean() >= 0.85

    def test_metric_spec_roundtrip(self):
        ivf = CoarseQuantizedIndex(n_cells=7, n_probe=2, metric="cityblock", min_train_size=32)
        clone = index_from_spec(ivf.spec())
        assert isinstance(clone, CoarseQuantizedIndex)
        assert clone.metric == "cityblock"
        assert clone.spec() == ivf.spec()

    def test_spec_roundtrip(self):
        ivf = CoarseQuantizedIndex(n_cells=11, n_probe=3, min_train_size=99, seed=7)
        clone = index_from_spec(ivf.spec())
        assert isinstance(clone, CoarseQuantizedIndex)
        assert clone.spec() == ivf.spec()
        exact = index_from_spec(ExactIndex(metric="cosine").spec())
        assert isinstance(exact, ExactIndex) and exact.metric == "cosine"
        assert isinstance(index_from_spec(None), ExactIndex)
        with pytest.raises(ValueError):
            index_from_spec({"kind": "magic"})


class TestStoreIndexConsistency:
    def build_store(self, index, n=400, dim=4, seed=6):
        rng = np.random.default_rng(seed)
        store = ReferenceStore(dim, index=index)
        points = rng.standard_normal((n, dim))
        labels = [f"c{i % 20}" for i in range(n)]
        store.add(points, labels)
        return store, rng

    def test_ivf_store_tracks_mutations(self):
        store, rng = self.build_store(CoarseQuantizedIndex(n_cells=10, n_probe=10, min_train_size=16))
        exact_store = ReferenceStore(4)
        exact_store.add(store.embeddings, list(store.labels))

        store.remove_class("c3")
        exact_store.remove_class("c3")
        store.replace_class("c5", rng.standard_normal((7, 4)))
        exact_store.replace_class("c5", np.asarray(store.class_embeddings("c5")))
        queries = rng.standard_normal((25, 4))
        d1, i1 = store.search(queries, 5)
        d2, i2 = exact_store.search(queries, 5)
        # Full-probe IVF after arbitrary mutations == exact search.
        assert np.array_equal(i1, i2)
        assert np.allclose(d1, d2)

    def test_store_search_with_other_metric_falls_back(self):
        store, rng = self.build_store(CoarseQuantizedIndex(min_train_size=16))
        d, i = store.search(rng.standard_normal((3, 4)), 4, metric="cityblock")
        assert d.shape == (3, 4)

    def test_cached_class_accounting(self):
        store = ReferenceStore(2)
        store.add(np.zeros((3, 2)), ["a", "b", "a"])
        assert store.classes == ["a", "b"]
        assert store.n_classes == 2
        assert store.class_counts() == {"a": 2, "b": 1}
        assert store.has_class("a") and "b" in store and "zz" not in store
        assert store.label_codes.tolist() == [0, 1, 0]
        store.remove_class("a")
        assert store.classes == ["b"]
        assert store.label_codes.tolist() == [0]
        assert store.class_counts() == {"b": 1}
        store.add(np.ones((2, 2)), ["a", "c"])
        assert store.classes == ["b", "a", "c"]
        assert store.class_counts() == {"b": 1, "a": 1, "c": 1}

    def test_amortised_buffer_growth_preserves_content(self):
        store = ReferenceStore(3)
        rng = np.random.default_rng(8)
        chunks = [rng.standard_normal((n, 3)) for n in (1, 5, 40, 200)]
        for position, chunk in enumerate(chunks):
            store.add(chunk, [f"k{position}"] * chunk.shape[0])
        assert len(store) == 246
        assert np.array_equal(store.embeddings, np.concatenate(chunks))
        assert store._buffer.shape[0] >= 246  # doubling buffer over-allocates

    def test_embeddings_view_is_read_only(self):
        store = ReferenceStore(2)
        store.add(np.zeros((2, 2)), ["a", "b"])
        with pytest.raises(ValueError):
            store.embeddings[0, 0] = 5.0

    def test_clone_copies_index_state_without_retrain(self):
        rng = np.random.default_rng(12)
        store = ReferenceStore(
            4, index=CoarseQuantizedIndex(n_cells=4, n_probe=4, min_train_size=16)
        )
        store.add(rng.standard_normal((200, 4)), [f"c{i % 8}" for i in range(200)])
        centroids = store.index._centroids.copy()
        clone = store.clone()
        # The trained quantizer is deep-copied, not re-trained.
        assert clone.index is not store.index
        assert np.array_equal(clone.index._centroids, centroids)
        assert np.array_equal(clone.embeddings, store.embeddings)
        assert clone.class_counts() == store.class_counts()
        # Mutating the clone leaves the original untouched (and vice versa).
        clone.add(rng.standard_normal((3, 4)), ["c1"] * 3)
        clone.remove_class("c0")
        assert len(store) == 200 and store.has_class("c0")
        assert np.array_equal(store.index._centroids, centroids)
        queries = rng.standard_normal((5, 4))
        flat = ReferenceStore(4)
        flat.add(clone.embeddings, list(clone.labels))
        d_clone, i_clone = clone.search(queries, 3)
        d_flat, i_flat = flat.search(queries, 3)
        assert np.array_equal(i_clone, i_flat)
