"""Tests for pair generation, the reference store and the kNN classifier."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClassifierConfig
from repro.core import KNNClassifier, PairGenerator, ReferenceStore, hard_negative_pairs, random_pairs


class TestRandomPairs:
    def test_balanced_pair_labels(self):
        labels = np.repeat(np.arange(5), 10)
        left, right, sim = random_pairs(labels, 200, 0.5, np.random.default_rng(0))
        assert len(left) == len(right) == len(sim) == 200
        assert 0.4 < sim.mean() < 0.6

    def test_positive_pairs_share_class_negative_do_not(self):
        labels = np.repeat(np.arange(4), 6)
        left, right, sim = random_pairs(labels, 300, 0.5, np.random.default_rng(1))
        assert np.all(labels[left[sim == 1]] == labels[right[sim == 1]])
        assert np.all(labels[left[sim == 0]] != labels[right[sim == 0]])

    def test_positive_pairs_never_same_sample(self):
        labels = np.repeat(np.arange(3), 4)
        left, right, sim = random_pairs(labels, 200, 0.5, np.random.default_rng(2))
        positives = sim == 1
        assert np.all(left[positives] != right[positives])

    def test_invalid_arguments(self):
        labels = np.repeat(np.arange(3), 4)
        with pytest.raises(ValueError):
            random_pairs(labels, 0)
        with pytest.raises(ValueError):
            random_pairs(labels, 10, positive_fraction=1.0)
        with pytest.raises(ValueError):
            random_pairs(np.array([0]), 10)
        with pytest.raises(ValueError):
            random_pairs(np.array([0, 1]), 10)  # singleton classes only
        with pytest.raises(ValueError):
            random_pairs(np.array([0, 0, 0]), 10)  # single class

    @given(st.integers(2, 6), st.integers(2, 8), st.integers(10, 100))
    @settings(max_examples=25, deadline=None)
    def test_pair_indices_always_valid(self, n_classes, per_class, n_pairs):
        labels = np.repeat(np.arange(n_classes), per_class)
        left, right, sim = random_pairs(labels, n_pairs, 0.5, np.random.default_rng(n_pairs))
        assert left.max() < len(labels) and right.max() < len(labels)
        assert set(np.unique(sim)) <= {0.0, 1.0}


class TestHardNegativePairs:
    def test_hard_negatives_are_nearest_other_class(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        # Class 0 near origin, class 1 close by, class 2 far away.
        embeddings = np.array([
            [0.0, 0.0], [0.1, 0.0],
            [1.0, 0.0], [1.1, 0.0],
            [10.0, 0.0], [10.1, 0.0],
        ])
        left, right, sim = hard_negative_pairs(
            labels, embeddings, 40, 0.5, np.random.default_rng(0)
        )
        negatives = sim == 0
        # Anchors from class 0 should be paired with class 1 (never class 2).
        anchors_class0 = labels[left[negatives]] == 0
        partners = labels[right[negatives]][anchors_class0]
        assert len(partners) > 0
        assert np.all(partners == 1)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            hard_negative_pairs(np.array([0, 1]), np.zeros((3, 2)), 4)

    def test_pair_generator_strategies(self):
        labels = np.repeat(np.arange(3), 5)
        embeddings = np.random.default_rng(0).standard_normal((15, 4))
        for strategy in ("random", "hard_negative", "semi_hard"):
            generator = PairGenerator(strategy=strategy)
            left, right, sim = generator.generate(labels, 30, np.random.default_rng(1), embeddings)
            assert len(left) == 30
        with pytest.raises(ValueError):
            PairGenerator(strategy="magic")

    def test_pair_generator_mining_without_embeddings_falls_back(self):
        labels = np.repeat(np.arange(3), 5)
        generator = PairGenerator(strategy="hard_negative")
        left, right, sim = generator.generate(labels, 20, np.random.default_rng(2), embeddings=None)
        assert len(left) == 20


class TestReferenceStore:
    def test_add_and_query(self):
        store = ReferenceStore(4)
        store.add(np.ones((3, 4)), ["a", "a", "b"])
        assert len(store) == 3
        assert store.n_classes == 2
        assert store.class_counts() == {"a": 2, "b": 1}
        assert store.class_embeddings("a").shape == (3 - 1, 4)

    def test_add_validation(self):
        store = ReferenceStore(4)
        with pytest.raises(ValueError):
            store.add(np.ones((2, 3)), ["a", "b"])
        with pytest.raises(ValueError):
            store.add(np.ones((2, 4)), ["a"])
        with pytest.raises(ValueError):
            store.add(np.ones((1, 4)), [""])
        with pytest.raises(ValueError):
            ReferenceStore(0)

    def test_remove_and_replace_class(self):
        store = ReferenceStore(2)
        store.add(np.zeros((4, 2)), ["a", "a", "b", "b"])
        removed = store.remove_class("a")
        assert removed == 2 and len(store) == 2
        with pytest.raises(KeyError):
            store.remove_class("ghost")
        store.replace_class("b", np.ones((3, 2)))
        assert store.class_counts() == {"b": 3}
        assert np.allclose(store.class_embeddings("b"), 1.0)
        # Replacing an absent class simply adds it.
        store.replace_class("c", np.full((2, 2), 5.0))
        assert store.class_counts()["c"] == 2

    def test_classes_preserve_insertion_order(self):
        store = ReferenceStore(2)
        store.add(np.zeros((3, 2)), ["z", "a", "z"])
        assert store.classes == ["z", "a"]

    def test_save_load_roundtrip(self, tmp_path):
        store = ReferenceStore(3)
        store.add(np.arange(12, dtype=float).reshape(4, 3), ["a", "b", "a", "c"])
        path = store.save(tmp_path / "refs")
        loaded = ReferenceStore.load(path)
        assert len(loaded) == 4
        assert np.allclose(loaded.embeddings, store.embeddings)
        assert list(loaded.labels) == list(store.labels)

    def test_load_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ReferenceStore.load(tmp_path / "none.npz")

    def test_empty_store_roundtrip(self, tmp_path):
        store = ReferenceStore(5)
        loaded = ReferenceStore.load(store.save(tmp_path / "empty"))
        assert len(loaded) == 0 and loaded.embedding_dim == 5


def clustered_store(n_classes=5, per_class=20, dim=4, spread=0.2, seed=0):
    """A reference store with well-separated per-class clusters."""
    rng = np.random.default_rng(seed)
    centres = rng.standard_normal((n_classes, dim)) * 10
    store = ReferenceStore(dim)
    for class_id in range(n_classes):
        points = centres[class_id] + spread * rng.standard_normal((per_class, dim))
        store.add(points, [f"class-{class_id}"] * per_class)
    return store, centres


class TestKNNClassifier:
    def test_predicts_nearest_cluster(self):
        store, centres = clustered_store()
        classifier = KNNClassifier(store, ClassifierConfig(k=10))
        queries = centres + 0.05
        predictions = classifier.predict(queries)
        assert [p.best for p in predictions] == [f"class-{i}" for i in range(len(centres))]

    def test_topn_accuracy_perfect_for_separated_clusters(self):
        store, centres = clustered_store()
        classifier = KNNClassifier(store, ClassifierConfig(k=10))
        labels = [f"class-{i}" for i in range(len(centres))]
        accuracy = classifier.topn_accuracy(centres, labels, ns=(1, 3))
        assert accuracy[1] == 1.0 and accuracy[3] == 1.0

    def test_guesses_needed(self):
        store, centres = clustered_store()
        classifier = KNNClassifier(store, ClassifierConfig(k=10))
        labels = [f"class-{i}" for i in range(len(centres))]
        guesses = classifier.guesses_needed(centres, labels)
        assert np.all(guesses == 1)

    def test_k_larger_than_store_is_clamped(self):
        store, centres = clustered_store(per_class=3)
        classifier = KNNClassifier(store, ClassifierConfig(k=1000))
        prediction = classifier.predict_one(centres[0])
        assert prediction.best == "class-0"

    def test_distance_weighting(self):
        store, centres = clustered_store()
        classifier = KNNClassifier(store, ClassifierConfig(k=25, weighting="distance"))
        assert classifier.predict_one(centres[1]).best == "class-1"

    def test_empty_store_raises(self):
        classifier = KNNClassifier(ReferenceStore(3))
        with pytest.raises(RuntimeError):
            classifier.predict(np.zeros((1, 3)))

    def test_dimension_mismatch(self):
        store, _ = clustered_store(dim=4)
        classifier = KNNClassifier(store)
        with pytest.raises(ValueError):
            classifier.predict(np.zeros((1, 7)))

    def test_invalid_config(self):
        store, _ = clustered_store()
        with pytest.raises(ValueError):
            KNNClassifier(store, ClassifierConfig(k=0))
        with pytest.raises(ValueError):
            KNNClassifier(store, ClassifierConfig(distance_metric="hamming"))
        with pytest.raises(ValueError):
            KNNClassifier(store, ClassifierConfig(weighting="exotic"))

    def test_prediction_helpers(self):
        store, centres = clustered_store()
        prediction = KNNClassifier(store, ClassifierConfig(k=10)).predict_one(centres[2])
        assert prediction.contains("class-2", 1)
        assert prediction.top(2)[0] == "class-2"
        with pytest.raises(ValueError):
            prediction.top(0)

    def test_mismatched_label_count(self):
        store, centres = clustered_store()
        classifier = KNNClassifier(store)
        with pytest.raises(ValueError):
            classifier.topn_accuracy(centres, ["class-0"], ns=(1,))
