"""Tests for the TLS record-layer substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import IPAddress, LatencyModel, Sniffer, TransmissionChannel
from repro.tls import (
    AES_128_GCM_TLS12,
    AES_128_GCM_TLS13,
    CHACHA20_POLY1305_TLS13,
    CipherSuite,
    MAX_PLAINTEXT_FRAGMENT,
    NoRecordPadding,
    PadToBlock,
    PadToMaximum,
    RandomRecordPadding,
    RecordLayer,
    TLSSession,
    TLSVersion,
    handshake_flights,
)
from repro.tls.ciphersuites import default_suite
from repro.tls.handshake import handshake_bytes


class TestVersion:
    def test_record_header(self):
        assert TLSVersion.TLS_1_2.record_header_size == 5
        assert TLSVersion.TLS_1_3.record_header_size == 5

    def test_padding_support(self):
        assert not TLSVersion.TLS_1_2.supports_record_padding
        assert TLSVersion.TLS_1_3.supports_record_padding

    def test_round_trips(self):
        assert TLSVersion.TLS_1_2.handshake_round_trips == 2
        assert TLSVersion.TLS_1_3.handshake_round_trips == 1

    def test_str(self):
        assert str(TLSVersion.TLS_1_3) == "TLSv1.3"


class TestCipherSuites:
    def test_tls12_gcm_expansion(self):
        # 8-byte explicit nonce + 16-byte tag for TLS 1.2 AES-GCM.
        assert AES_128_GCM_TLS12.ciphertext_size(1000) == 1000 + 8 + 16

    def test_tls13_expansion_includes_content_type(self):
        # TLS 1.3: no explicit nonce, 16-byte tag, 1 content-type byte.
        assert AES_128_GCM_TLS13.ciphertext_size(1000) == 1000 + 16 + 1

    def test_tls13_padding_adds_bytes(self):
        padded = AES_128_GCM_TLS13.ciphertext_size(1000, padding=24)
        assert padded == AES_128_GCM_TLS13.ciphertext_size(1000) + 24

    def test_tls12_rejects_padding(self):
        with pytest.raises(ValueError):
            AES_128_GCM_TLS12.ciphertext_size(1000, padding=10)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValueError):
            AES_128_GCM_TLS13.ciphertext_size(-1)
        with pytest.raises(ValueError):
            AES_128_GCM_TLS13.ciphertext_size(10, padding=-1)
        with pytest.raises(ValueError):
            CipherSuite("bad", TLSVersion.TLS_1_3, -1, 16)

    def test_default_suites(self):
        assert default_suite(TLSVersion.TLS_1_2) is AES_128_GCM_TLS12
        assert default_suite(TLSVersion.TLS_1_3) is AES_128_GCM_TLS13
        assert CHACHA20_POLY1305_TLS13.version is TLSVersion.TLS_1_3


class TestHandshake:
    def test_tls12_has_four_flights(self):
        flights = handshake_flights(TLSVersion.TLS_1_2, rng=np.random.default_rng(0))
        assert len(flights) == 4
        assert flights[0].from_client

    def test_tls13_server_flight_carries_certificate(self):
        flights = handshake_flights(
            TLSVersion.TLS_1_3, certificate_chain_size=5000, rng=np.random.default_rng(0)
        )
        server_flights = [f for f in flights if not f.from_client]
        assert max(f.size for f in server_flights) > 5000

    def test_resumption_is_smaller(self):
        full = handshake_bytes(TLSVersion.TLS_1_3, rng=np.random.default_rng(1))
        resumed = handshake_bytes(
            TLSVersion.TLS_1_3, session_resumption=True, rng=np.random.default_rng(1)
        )
        assert resumed < full

    def test_rejects_bad_certificate_size(self):
        with pytest.raises(ValueError):
            handshake_flights(TLSVersion.TLS_1_2, certificate_chain_size=0)

    def test_flight_sizes_positive(self):
        for version in TLSVersion:
            for resumption in (False, True):
                for flight in handshake_flights(
                    version, session_resumption=resumption, rng=np.random.default_rng(2)
                ):
                    assert flight.size > 0


class TestPaddingPolicies:
    def test_no_padding(self):
        assert NoRecordPadding().padding_for(1234) == 0

    def test_pad_to_block(self):
        policy = PadToBlock(512)
        assert policy.padding_for(1) == 511
        assert policy.padding_for(512) == 0
        assert policy.padding_for(513) == 511
        assert policy.padding_for(0) == 512

    def test_pad_to_maximum(self):
        policy = PadToMaximum()
        assert policy.padding_for(100) == MAX_PLAINTEXT_FRAGMENT - 100
        assert policy.padding_for(MAX_PLAINTEXT_FRAGMENT) == 0
        with pytest.raises(ValueError):
            policy.padding_for(MAX_PLAINTEXT_FRAGMENT + 1)

    def test_random_padding_bounds(self):
        policy = RandomRecordPadding(max_padding=64)
        rng = np.random.default_rng(0)
        values = [policy.padding_for(100, rng) for _ in range(200)]
        assert all(0 <= v <= 64 for v in values)
        assert len(set(values)) > 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PadToBlock(0)
        with pytest.raises(ValueError):
            RandomRecordPadding(0)
        with pytest.raises(ValueError):
            NoRecordPadding().padding_for(-1)

    def test_names(self):
        assert "512" in PadToBlock(512).name
        assert NoRecordPadding().name == "NoRecordPadding"

    @given(st.integers(0, MAX_PLAINTEXT_FRAGMENT), st.integers(1, 4096))
    @settings(max_examples=100, deadline=None)
    def test_pad_to_block_always_aligns(self, size, block):
        policy = PadToBlock(block)
        padded = size + policy.padding_for(size)
        assert padded % block == 0
        assert padded >= size


class TestRecordLayer:
    def test_fragmentation_respects_max(self):
        layer = RecordLayer(AES_128_GCM_TLS12)
        fragments = layer.fragment(3 * MAX_PLAINTEXT_FRAGMENT + 17)
        assert fragments == [MAX_PLAINTEXT_FRAGMENT] * 3 + [17]
        assert layer.fragment(0) == []

    def test_wire_sizes_include_overhead(self):
        layer = RecordLayer(AES_128_GCM_TLS12)
        sizes = layer.wire_sizes(1000)
        assert sizes == [5 + 1000 + 8 + 16]

    def test_padding_policy_applied(self):
        layer = RecordLayer(AES_128_GCM_TLS13, PadToBlock(1024))
        unpadded = RecordLayer(AES_128_GCM_TLS13).total_wire_bytes(700)
        padded = layer.total_wire_bytes(700)
        assert padded > unpadded
        assert (padded - 5 - 16 - 1) % 1024 == 0

    def test_tls12_with_padding_policy_rejected(self):
        with pytest.raises(ValueError):
            RecordLayer(AES_128_GCM_TLS12, PadToBlock(512))

    def test_non_policy_rejected(self):
        with pytest.raises(TypeError):
            RecordLayer(AES_128_GCM_TLS13, padding_policy="pad please")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            RecordLayer(AES_128_GCM_TLS12).wire_sizes(-1)

    @given(st.integers(0, 100_000))
    @settings(max_examples=50, deadline=None)
    def test_wire_bytes_at_least_payload(self, payload):
        layer = RecordLayer(AES_128_GCM_TLS12)
        assert layer.total_wire_bytes(payload) >= payload


class TestTLSSession:
    def _make_session(self, version=TLSVersion.TLS_1_2, **kwargs):
        client = IPAddress("10.0.0.1")
        server = IPAddress("10.0.0.2")
        sniffer = Sniffer(client)
        sniffer.start()
        channel = TransmissionChannel(
            client_ip=client,
            server_ip=server,
            sniffer=sniffer,
            latency=LatencyModel(base_rtt=0.02, jitter=0.0),
        )
        return TLSSession(channel=channel, version=version, **kwargs), sniffer

    def test_handshake_then_exchange(self):
        session, sniffer = self._make_session()
        rng = np.random.default_rng(0)
        t = session.handshake(0.0, rng)
        assert session.established
        end = session.exchange(400, 30_000, t, rng)
        assert end > t
        capture = sniffer.stop()
        assert capture.total_bytes > 30_000

    def test_exchange_before_handshake_raises(self):
        session, _ = self._make_session()
        with pytest.raises(RuntimeError):
            session.exchange(100, 100, 0.0, np.random.default_rng(0))

    def test_double_handshake_raises(self):
        session, _ = self._make_session()
        rng = np.random.default_rng(0)
        session.handshake(0.0, rng)
        with pytest.raises(RuntimeError):
            session.handshake(1.0, rng)

    def test_mismatched_ciphersuite_rejected(self):
        client = IPAddress("10.0.0.1")
        channel = TransmissionChannel(client_ip=client, server_ip=IPAddress("10.0.0.2"))
        with pytest.raises(ValueError):
            TLSSession(channel=channel, version=TLSVersion.TLS_1_3, ciphersuite=AES_128_GCM_TLS12)

    def test_chunked_responses_preserve_volume_ordering(self):
        session, sniffer = self._make_session(version=TLSVersion.TLS_1_3)
        rng = np.random.default_rng(1)
        t = session.handshake(0.0, rng)
        session.exchange(500, 100_000, t, rng, response_chunks=8)
        chunky = sniffer.stop().total_bytes

        session2, sniffer2 = self._make_session(version=TLSVersion.TLS_1_3)
        rng2 = np.random.default_rng(2)
        t2 = session2.handshake(0.0, rng2)
        session2.exchange(500, 100_000, t2, rng2, response_chunks=1)
        whole = sniffer2.stop().total_bytes
        # Chunking adds per-record overhead but the payload dominates.
        assert abs(chunky - whole) < 0.05 * whole

    def test_invalid_chunk_count(self):
        session, _ = self._make_session()
        rng = np.random.default_rng(0)
        t = session.handshake(0.0, rng)
        with pytest.raises(ValueError):
            session.exchange(10, 10, t, rng, response_chunks=0)

    def test_tls13_padding_increases_bytes_on_wire(self):
        session, sniffer = self._make_session(
            version=TLSVersion.TLS_1_3, padding_policy=PadToBlock(4096)
        )
        rng = np.random.default_rng(3)
        t = session.handshake(0.0, rng)
        session.exchange(200, 10_000, t, rng)
        padded_bytes = sniffer.stop().total_bytes

        plain, plain_sniffer = self._make_session(version=TLSVersion.TLS_1_3)
        rng = np.random.default_rng(3)
        t = plain.handshake(0.0, rng)
        plain.exchange(200, 10_000, t, rng)
        assert padded_bytes > plain_sniffer.stop().total_bytes
