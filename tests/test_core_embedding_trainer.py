"""Tests for the embedding model and the contrastive trainer."""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.core import ContrastiveTrainer, EmbeddingModel
from repro.traces import Trace, TraceDataset

from tests.conftest import tiny_hyperparameters, tiny_training_config


class TestEmbeddingModel:
    def test_architecture_matches_table1_defaults(self):
        model = EmbeddingModel(n_sequences=3)
        hp = model.hyperparameters
        assert hp.lstm_units == 30
        assert hp.embedding_dim == 32
        assert hp.contrastive_margin == 10.0
        assert hp.batch_size == 512
        assert len(hp.hidden_layer_sizes) == 4
        # Output of the network is the embedding dimension.
        x = np.random.default_rng(0).random((2, 10, 3))
        assert model.embed(x).shape == (2, 32)

    def test_embed_shapes_and_batching(self):
        model = EmbeddingModel(n_sequences=2, hyperparameters=tiny_hyperparameters())
        x = np.random.default_rng(1).random((7, 12, 2))
        full = model.embed(x)
        batched = model.embed(x, batch_size=3)
        assert full.shape == (7, 8)
        assert np.allclose(full, batched)

    def test_embed_single_2d_input(self):
        model = EmbeddingModel(n_sequences=2, hyperparameters=tiny_hyperparameters())
        single = np.random.default_rng(2).random((12, 2))
        assert model.embed(single).shape == (1, 8)

    def test_embed_trace_and_dataset(self, wiki_dataset):
        model = EmbeddingModel(
            n_sequences=wiki_dataset.n_sequences, hyperparameters=tiny_hyperparameters()
        )
        embeddings = model.embed_dataset(wiki_dataset)
        assert embeddings.shape == (len(wiki_dataset), 8)
        trace = Trace(
            label=wiki_dataset.label_name(0),
            website="w",
            sequences=wiki_dataset.data[0],
        )
        assert model.embed_trace(trace).shape == (8,)

    def test_input_validation(self):
        model = EmbeddingModel(n_sequences=3, hyperparameters=tiny_hyperparameters())
        with pytest.raises(ValueError):
            model.embed(np.zeros((2, 10, 4)))
        with pytest.raises(ValueError):
            model.embed(np.zeros(10))
        with pytest.raises(ValueError):
            EmbeddingModel(n_sequences=0)
        with pytest.raises(ValueError):
            EmbeddingModel(n_sequences=3, hyperparameters=tiny_hyperparameters(hidden_activation="gelu"))

    def test_dataset_sequence_mismatch(self, wiki_dataset):
        model = EmbeddingModel(n_sequences=2, hyperparameters=tiny_hyperparameters())
        with pytest.raises(ValueError):
            model.embed_dataset(wiki_dataset)

    def test_save_load_roundtrip(self, tmp_path):
        model = EmbeddingModel(n_sequences=3, hyperparameters=tiny_hyperparameters(), seed=1)
        x = np.random.default_rng(3).random((4, 10, 3))
        expected = model.embed(x)
        path = model.save(tmp_path / "embedder")
        fresh = EmbeddingModel(n_sequences=3, hyperparameters=tiny_hyperparameters(), seed=99)
        assert not np.allclose(fresh.embed(x), expected)
        fresh.load(path)
        assert np.allclose(fresh.embed(x), expected)

    def test_different_seeds_different_weights(self):
        a = EmbeddingModel(n_sequences=2, hyperparameters=tiny_hyperparameters(), seed=1)
        b = EmbeddingModel(n_sequences=2, hyperparameters=tiny_hyperparameters(), seed=2)
        x = np.random.default_rng(0).random((3, 8, 2))
        assert not np.allclose(a.embed(x), b.embed(x))

    def test_n_params_positive(self):
        model = EmbeddingModel(n_sequences=3, hyperparameters=tiny_hyperparameters())
        assert model.n_params > 1000


class TestContrastiveTrainer:
    def test_training_reduces_loss(self, wiki_dataset):
        model = EmbeddingModel(
            n_sequences=wiki_dataset.n_sequences, hyperparameters=tiny_hyperparameters(), seed=0
        )
        trainer = ContrastiveTrainer(model, tiny_training_config(epochs=5, pairs_per_epoch=600))
        history = trainer.fit(wiki_dataset)
        assert len(history.epoch_losses) == 5
        assert history.improved
        assert history.wall_time_seconds > 0
        assert history.final_loss < history.epoch_losses[0]

    def test_trained_embeddings_separate_classes(self, wiki_dataset):
        model = EmbeddingModel(
            n_sequences=wiki_dataset.n_sequences, hyperparameters=tiny_hyperparameters(), seed=1
        )
        trainer = ContrastiveTrainer(model, tiny_training_config(epochs=6, pairs_per_epoch=800))
        trainer.fit(wiki_dataset)
        accuracy = trainer.pair_accuracy(wiki_dataset, n_pairs=300)
        assert accuracy > 0.7

    def test_training_requires_two_classes(self, wiki_dataset):
        single = wiki_dataset.first_n_classes(1)
        model = EmbeddingModel(n_sequences=3, hyperparameters=tiny_hyperparameters())
        trainer = ContrastiveTrainer(model, tiny_training_config())
        with pytest.raises(ValueError):
            trainer.fit(single)

    def test_train_step_shape_mismatch(self):
        model = EmbeddingModel(n_sequences=2, hyperparameters=tiny_hyperparameters())
        trainer = ContrastiveTrainer(model, tiny_training_config())
        with pytest.raises(ValueError):
            trainer.train_step(np.zeros((2, 5, 2)), np.zeros((3, 5, 2)), np.zeros(2))

    def test_sgd_optimizer_path(self, wiki_dataset):
        model = EmbeddingModel(
            n_sequences=wiki_dataset.n_sequences,
            hyperparameters=tiny_hyperparameters(optimizer="sgd", learning_rate=0.005),
            seed=2,
        )
        trainer = ContrastiveTrainer(model, tiny_training_config(epochs=2, pairs_per_epoch=200, momentum=0.9))
        history = trainer.fit(wiki_dataset)
        assert len(history.epoch_losses) == 2
        assert np.isfinite(history.final_loss)

    def test_unknown_optimizer_rejected(self):
        model = EmbeddingModel(n_sequences=2, hyperparameters=tiny_hyperparameters(optimizer="rmsprop"))
        with pytest.raises(ValueError):
            ContrastiveTrainer(model, tiny_training_config())

    def test_hard_negative_strategy_runs(self, wiki_dataset):
        model = EmbeddingModel(
            n_sequences=wiki_dataset.n_sequences, hyperparameters=tiny_hyperparameters(), seed=3
        )
        trainer = ContrastiveTrainer(
            model, tiny_training_config(epochs=2, pairs_per_epoch=200, pair_strategy="hard_negative")
        )
        history = trainer.fit(wiki_dataset)
        assert len(history.epoch_losses) == 2

    def test_history_validation(self):
        from repro.core.trainer import TrainingHistory

        empty = TrainingHistory()
        with pytest.raises(ValueError):
            _ = empty.final_loss
        assert not empty.improved
