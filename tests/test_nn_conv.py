"""Gradient-check and behaviour tests for Conv1D, MaxPool1D and Flatten."""

import numpy as np
import pytest

from repro.nn import Conv1D, Dense, Flatten, MaxPool1D, ReLU, Sequential, SoftmaxCrossEntropy, Adam


def numerical_gradient(func, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestConv1D:
    def test_output_shape(self):
        layer = Conv1D(3, 8, kernel_size=4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 20, 3))
        out = layer.forward(x)
        assert out.shape == (5, 20 - 4 + 1, 8)

    def test_known_convolution_value(self):
        layer = Conv1D(1, 1, kernel_size=2)
        layer.params["W"] = np.ones((2, 1, 1))
        layer.params["b"] = np.zeros(1)
        x = np.arange(5, dtype=float).reshape(1, 5, 1)
        out = layer.forward(x)
        # sliding sum of adjacent pairs: 0+1, 1+2, 2+3, 3+4
        assert np.allclose(out[0, :, 0], [1, 3, 5, 7])

    def test_input_validation(self):
        layer = Conv1D(3, 4, kernel_size=3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 10)))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 10, 4)))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 2, 3)))
        with pytest.raises(ValueError):
            Conv1D(0, 4, 3)
        with pytest.raises(RuntimeError):
            Conv1D(3, 4, 3).backward(np.zeros((1, 1, 4)))

    @pytest.mark.parametrize("param_name", ["W", "b"])
    def test_gradient_check_parameters(self, param_name):
        rng = np.random.default_rng(2)
        layer = Conv1D(2, 3, kernel_size=3, rng=rng)
        x = rng.standard_normal((3, 8, 2))

        def loss():
            return float(np.sum(layer.forward(x) ** 2) / 2)

        expected = numerical_gradient(loss, layer.params[param_name])
        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out)
        assert np.allclose(layer.grads[param_name], expected, atol=1e-4)

    def test_gradient_check_input(self):
        rng = np.random.default_rng(3)
        layer = Conv1D(2, 3, kernel_size=3, rng=rng)
        x = rng.standard_normal((2, 7, 2))

        def loss():
            return float(np.sum(layer.forward(x) ** 2) / 2)

        expected = numerical_gradient(loss, x)
        out = layer.forward(x)
        grad_x = layer.backward(out)
        assert np.allclose(grad_x, expected, atol=1e-4)


class TestMaxPool1D:
    def test_forward_picks_maxima(self):
        layer = MaxPool1D(pool_size=2)
        x = np.array([[[1.0], [5.0], [2.0], [3.0], [9.0], [0.0]]])
        out = layer.forward(x)
        assert np.allclose(out[0, :, 0], [5.0, 3.0, 9.0])

    def test_trims_remainder(self):
        layer = MaxPool1D(pool_size=2)
        x = np.random.default_rng(0).standard_normal((2, 7, 3))
        out = layer.forward(x)
        assert out.shape == (2, 3, 3)

    def test_backward_routes_gradient_to_maxima(self):
        layer = MaxPool1D(pool_size=2)
        x = np.array([[[1.0], [5.0], [2.0], [3.0]]])
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(out))
        assert np.allclose(grad[0, :, 0], [0.0, 1.0, 0.0, 1.0])

    def test_gradient_check_input(self):
        rng = np.random.default_rng(4)
        layer = MaxPool1D(pool_size=3)
        x = rng.standard_normal((2, 9, 2))

        def loss():
            return float(np.sum(layer.forward(x) ** 2) / 2)

        expected = numerical_gradient(loss, x)
        out = layer.forward(x)
        grad_x = layer.backward(out)
        assert np.allclose(grad_x, expected, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            MaxPool1D(0)
        with pytest.raises(ValueError):
            MaxPool1D(4).forward(np.zeros((1, 2, 1)))
        with pytest.raises(ValueError):
            MaxPool1D(2).forward(np.zeros((2, 4)))
        with pytest.raises(RuntimeError):
            MaxPool1D(2).backward(np.zeros((1, 1, 1)))


class TestFlatten:
    def test_roundtrip(self):
        layer = Flatten()
        x = np.random.default_rng(5).standard_normal((4, 6, 3))
        out = layer.forward(x)
        assert out.shape == (4, 18)
        grad = layer.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Flatten().backward(np.zeros((1, 4)))


class TestSmallCNNTraining:
    def test_cnn_learns_a_temporal_pattern(self):
        """A tiny CNN separates sequences by where their burst occurs."""
        rng = np.random.default_rng(6)
        n, time = 120, 16
        x = np.zeros((n, time, 1))
        labels = rng.integers(0, 2, size=n)
        for i in range(n):
            position = 2 if labels[i] == 0 else 10
            x[i, position : position + 3, 0] = 5.0 + rng.normal(0, 0.2, size=3)

        network = Sequential([
            Conv1D(1, 4, kernel_size=3, rng=rng),
            ReLU(),
            MaxPool1D(2),
            Flatten(),
            Dense(7 * 4, 2, rng=rng),
        ])
        loss_fn = SoftmaxCrossEntropy()
        optimizer = Adam(network, learning_rate=0.01)
        for _ in range(60):
            optimizer.zero_grad()
            logits = network.forward(x, training=True)
            network.backward(loss_fn.backward(logits, labels))
            optimizer.step()
        predictions = network.forward(x).argmax(axis=1)
        assert (predictions == labels).mean() > 0.95
