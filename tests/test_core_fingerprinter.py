"""End-to-end tests of the AdaptiveFingerprinter facade and adaptation."""

import numpy as np
import pytest

from repro.config import ClassifierConfig
from repro.core import AdaptationPolicy, AdaptiveFingerprinter
from repro.traces import SequenceExtractor, Trace, reference_test_split
from repro.web import Crawler, MajorUpdate, WikipediaLikeGenerator

from tests.conftest import tiny_hyperparameters, tiny_training_config


@pytest.fixture(scope="module")
def trained_fingerprinter(wiki_dataset):
    """A fingerprinter provisioned and initialised on the shared dataset."""
    fingerprinter = AdaptiveFingerprinter(
        n_sequences=wiki_dataset.n_sequences,
        sequence_length=wiki_dataset.sequence_length,
        hyperparameters=tiny_hyperparameters(),
        training_config=tiny_training_config(epochs=6, pairs_per_epoch=800),
        classifier_config=ClassifierConfig(k=10),
        seed=0,
    )
    reference, test = reference_test_split(wiki_dataset, 0.8, seed=0)
    fingerprinter.provision(reference)
    fingerprinter.initialize(reference)
    return fingerprinter, reference, test


class TestLifecycle:
    def test_must_provision_before_initialize(self, wiki_dataset):
        fingerprinter = AdaptiveFingerprinter(hyperparameters=tiny_hyperparameters())
        with pytest.raises(RuntimeError):
            fingerprinter.initialize(wiki_dataset)

    def test_must_initialize_before_fingerprinting(self, wiki_dataset):
        fingerprinter = AdaptiveFingerprinter(
            n_sequences=3,
            sequence_length=wiki_dataset.sequence_length,
            hyperparameters=tiny_hyperparameters(),
            training_config=tiny_training_config(epochs=1, pairs_per_epoch=100),
        )
        fingerprinter.provision(wiki_dataset)
        with pytest.raises(RuntimeError):
            fingerprinter.evaluate(wiki_dataset)

    def test_mark_provisioned_skips_training(self, wiki_dataset):
        fingerprinter = AdaptiveFingerprinter(
            n_sequences=3,
            sequence_length=wiki_dataset.sequence_length,
            hyperparameters=tiny_hyperparameters(),
        )
        fingerprinter.mark_provisioned()
        fingerprinter.initialize(wiki_dataset)
        assert fingerprinter.initialized


class TestFingerprinting:
    def test_accuracy_well_above_chance(self, trained_fingerprinter):
        fingerprinter, reference, test = trained_fingerprinter
        result = fingerprinter.evaluate(test, ns=(1, 3))
        chance = 1.0 / test.n_classes
        assert result.topn_accuracy[1] > 3 * chance
        assert result.topn_accuracy[3] >= result.topn_accuracy[1]
        assert result.n_classes == test.n_classes
        assert result.accuracy(1) == result.topn_accuracy[1]
        with pytest.raises(KeyError):
            result.accuracy(99)

    def test_fingerprint_single_trace(self, trained_fingerprinter, wiki_dataset):
        fingerprinter, _, test = trained_fingerprinter
        trace = Trace(
            label=test.label_name(test.labels[0]),
            website="w",
            sequences=test.data[0],
        )
        prediction = fingerprinter.fingerprint(trace)
        assert len(prediction.ranked_labels) >= 1
        assert prediction.best in wiki_dataset.class_names

    def test_fingerprint_raw_array_and_validation(self, trained_fingerprinter, wiki_dataset):
        fingerprinter, _, test = trained_fingerprinter
        raw = test.data[0].T  # (time, features)
        prediction = fingerprinter.fingerprint(raw)
        assert prediction.best in wiki_dataset.class_names
        with pytest.raises(ValueError):
            fingerprinter.fingerprint(np.zeros((5, 9)))

    def test_fingerprint_capture_directly(self, trained_fingerprinter, wiki_website):
        fingerprinter, _, _ = trained_fingerprinter
        crawler = Crawler(seed=77)
        labeled = crawler.crawl_single(wiki_website, wiki_website.page_ids[0], visit=0)
        prediction = fingerprinter.fingerprint(labeled.capture)
        assert len(prediction.ranked_labels) >= 1

    def test_guesses_needed_bounds(self, trained_fingerprinter):
        fingerprinter, _, test = trained_fingerprinter
        guesses = fingerprinter.guesses_needed(test)
        assert guesses.shape == (len(test),)
        assert np.all(guesses >= 1)
        assert np.all(guesses <= test.n_classes + 1)


class TestAdaptation:
    def test_adapt_replaces_references(self, trained_fingerprinter, wiki_dataset):
        fingerprinter, reference, test = trained_fingerprinter
        label = wiki_dataset.class_names[0]
        before = fingerprinter.reference_store.class_counts()[label]
        fresh = [
            Trace(label=label, website="w", sequences=wiki_dataset.data[i])
            for i in np.flatnonzero(wiki_dataset.labels == 0)[:3]
        ]
        fingerprinter.adapt(fresh, replace=True)
        after = fingerprinter.reference_store.class_counts()[label]
        assert after == 3 and after != before
        # Restore the original references for the remaining tests.
        original = [
            Trace(label=label, website="w", sequences=reference.data[i])
            for i in np.flatnonzero(reference.labels == reference.class_names.index(label))
        ]
        fingerprinter.adapt(original, replace=True)

    def test_adapt_adds_new_class(self, trained_fingerprinter, wiki_dataset):
        fingerprinter, _, _ = trained_fingerprinter
        new_traces = [
            Trace(label="brand-new-page", website="w", sequences=wiki_dataset.data[i])
            for i in range(2)
        ]
        fingerprinter.adapt(new_traces, replace=False)
        assert "brand-new-page" in fingerprinter.reference_store.classes
        fingerprinter.remove_page("brand-new-page")
        assert "brand-new-page" not in fingerprinter.reference_store.classes

    def test_adapt_requires_traces(self, trained_fingerprinter):
        fingerprinter, _, _ = trained_fingerprinter
        with pytest.raises(ValueError):
            fingerprinter.adapt([])

    def test_adaptation_recovers_accuracy_after_drift(self, wiki_website, wiki_dataset):
        """The paper's core claim: swapping references (no retraining)
        restores accuracy after a major content change."""
        extractor = SequenceExtractor(max_sequences=3, sequence_length=wiki_dataset.sequence_length)
        fingerprinter = AdaptiveFingerprinter(
            n_sequences=3,
            sequence_length=wiki_dataset.sequence_length,
            hyperparameters=tiny_hyperparameters(),
            training_config=tiny_training_config(epochs=6, pairs_per_epoch=800),
            classifier_config=ClassifierConfig(k=10),
            extractor=extractor,
            seed=1,
        )
        reference, _ = reference_test_split(wiki_dataset, 0.8, seed=1)
        fingerprinter.provision(reference)
        fingerprinter.initialize(reference)

        # Drift: rewrite half the pages of the website.
        drifted = WikipediaLikeGenerator(n_pages=8, seed=11).generate()
        rng = np.random.default_rng(5)
        changed = MajorUpdate().apply_to_website(drifted, rng, fraction=0.5)
        assert changed

        crawler = Crawler(seed=123)
        policy = AdaptationPolicy(probe_top_n=1, refresh_samples=4)
        report = policy.run(fingerprinter, drifted, crawler, extractor=extractor)
        assert set(report.probed_pages) == set(drifted.page_ids)
        # Changed pages that the probe missed were refreshed with new samples.
        for page in report.refreshed_pages:
            assert fingerprinter.reference_store.class_counts()[page] == 4

        # After adaptation the deployment still recognises the drifted pages.
        post = collect_post_drift_accuracy(fingerprinter, drifted, extractor)
        assert post >= 0.5

    def test_adaptation_policy_validation(self):
        with pytest.raises(ValueError):
            AdaptationPolicy(probe_top_n=0)
        with pytest.raises(ValueError):
            AdaptationPolicy(refresh_samples=0)

    def test_adaptation_adds_unmonitored_pages(self, wiki_website, trained_fingerprinter):
        fingerprinter, _, _ = trained_fingerprinter
        fingerprinter.remove_page(wiki_website.page_ids[-1])
        crawler = Crawler(seed=9)
        policy = AdaptationPolicy(probe_top_n=3, refresh_samples=2)
        report = policy.run(
            fingerprinter,
            wiki_website,
            crawler,
            pages=[wiki_website.page_ids[-1]],
        )
        assert report.added_pages == [wiki_website.page_ids[-1]]
        assert report.refresh_fraction == 0.0


def collect_post_drift_accuracy(fingerprinter, website, extractor, visits=2):
    """Top-3 accuracy against freshly crawled traces of the drifted site."""
    crawler = Crawler(seed=321)
    hits, total = 0, 0
    for page_id in website.page_ids:
        for visit in range(visits):
            labeled = crawler.crawl_single(website, page_id, visit=visit)
            trace = extractor.extract(labeled.capture, label=page_id, website=website.name)
            prediction = fingerprinter.fingerprint(trace)
            hits += int(prediction.contains(page_id, 3))
            total += 1
    return hits / total
