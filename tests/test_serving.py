"""Tests for the serving subsystem: sharding, micro-batching, zero-downtime."""

import numpy as np
import pytest

from repro.config import ClassifierConfig
from repro.core import KNNClassifier, OpenWorldDetector, ReferenceStore
from repro.core.index import CoarseQuantizedIndex, IVFPQIndex
from repro.serving import (
    BatchScheduler,
    DeploymentManager,
    LoadGenerator,
    OpenWorldConfig,
    ProcessShardExecutor,
    ReplicaSet,
    SegmentPublisher,
    ServingError,
    ShardedReferenceStore,
    open_world_mix,
)


def clustered_corpus(n=600, dim=8, n_classes=20, seed=0):
    rng = np.random.default_rng(seed)
    centres = rng.standard_normal((n_classes, dim)) * 8.0
    assignment = rng.integers(0, n_classes, size=n)
    corpus = centres[assignment] + rng.standard_normal((n, dim))
    labels = [f"page-{code:03d}" for code in assignment]
    return corpus, labels, rng


def flat_and_sharded(n_shards=3, assignment="hash", executor=None, **kwargs):
    corpus, labels, rng = clustered_corpus(**kwargs)
    flat = ReferenceStore(corpus.shape[1])
    flat.add(corpus, labels)
    sharded = ShardedReferenceStore.from_reference_store(
        flat, n_shards=n_shards, assignment=assignment, executor=executor
    )
    return flat, sharded, corpus, rng


class TestShardedReferenceStore:
    def test_flat_read_surface_matches(self):
        flat, sharded, _, _ = flat_and_sharded()
        assert len(sharded) == len(flat)
        assert sharded.embedding_dim == flat.embedding_dim
        assert sharded.class_names == flat.class_names
        assert sharded.n_classes == flat.n_classes
        assert sharded.class_counts() == flat.class_counts()
        assert np.array_equal(sharded.label_codes, flat.label_codes)
        assert np.array_equal(sharded.embeddings, flat.embeddings)
        assert list(sharded.labels) == list(flat.labels)
        assert sum(sharded.shard_sizes()) == len(flat)

    def test_merged_search_identical_to_flat(self):
        flat, sharded, corpus, rng = flat_and_sharded()
        queries = corpus[rng.choice(len(flat), 40, replace=False)] + 0.1
        d_flat, i_flat = flat.search(queries, 9)
        d_sharded, i_sharded = sharded.search(queries, 9)
        assert np.array_equal(i_flat, i_sharded)
        assert np.allclose(d_flat, d_sharded)

    def test_classifier_predictions_identical_to_flat(self):
        flat, sharded, corpus, rng = flat_and_sharded()
        config = ClassifierConfig(k=15)
        queries = corpus[:50] + 0.05 * rng.standard_normal((50, corpus.shape[1]))
        flat_predictions = KNNClassifier(flat, config).predict(queries)
        sharded_predictions = KNNClassifier(sharded, config).predict(queries)
        for a, b in zip(flat_predictions, sharded_predictions):
            assert a.ranked_labels == b.ranked_labels
            assert a.scores == pytest.approx(b.scores)

    def test_churn_mirrors_flat_store(self):
        flat, sharded, corpus, rng = flat_and_sharded()
        fresh = rng.standard_normal((7, corpus.shape[1]))
        for store in (flat, sharded):
            store.remove_class("page-003")
            store.replace_class("page-001", fresh)
            store.add(fresh + 2.0, ["new-page"] * 7)
        assert sharded.class_names == flat.class_names
        assert np.array_equal(sharded.label_codes, flat.label_codes)
        assert np.array_equal(sharded.embeddings, flat.embeddings)
        queries = corpus[:20]
        _, i_flat = flat.search(queries, 11)
        _, i_sharded = sharded.search(queries, 11)
        assert np.array_equal(i_flat, i_sharded)

    def test_balanced_assignment_evens_shards(self):
        _, sharded, _, _ = flat_and_sharded(n_shards=4, assignment="balanced")
        sizes = sharded.shard_sizes()
        assert max(sizes) - min(sizes) <= max(sharded.class_counts().values())

    def test_replace_keeps_shard_affinity(self):
        _, sharded, corpus, rng = flat_and_sharded()
        home = sharded.shard_of("page-002")
        sharded.replace_class("page-002", rng.standard_normal((5, corpus.shape[1])))
        assert sharded.shard_of("page-002") == home

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedReferenceStore(0)
        with pytest.raises(ValueError):
            ShardedReferenceStore(4, n_shards=0)
        with pytest.raises(ValueError):
            ShardedReferenceStore(4, assignment="round-robin")
        sharded = ShardedReferenceStore(4, n_shards=2)
        with pytest.raises(RuntimeError):
            sharded.search(np.zeros((1, 4)), 1)
        with pytest.raises(ValueError):
            sharded.add(np.zeros((2, 3)), ["a", "b"])
        with pytest.raises(KeyError):
            sharded.remove_class("absent")
        sharded.add(np.zeros((1, 4)), ["a"])
        with pytest.raises(ValueError):
            sharded.search(np.zeros((1, 3)), 1)

    def test_openworld_detector_matches_flat_calibration(self):
        flat, sharded, _, _ = flat_and_sharded()
        flat_detector = OpenWorldDetector(flat, neighbour=3, percentile=95)
        sharded_detector = OpenWorldDetector(sharded, neighbour=3, percentile=95)
        assert sharded_detector.threshold == pytest.approx(flat_detector.threshold)

    def test_copy_on_write_leaves_original_untouched(self):
        flat, sharded, corpus, rng = flat_and_sharded()
        before_names = sharded.class_names
        before_size = len(sharded)
        fresh = rng.standard_normal((6, corpus.shape[1]))

        replaced = sharded.with_class_replaced("page-000", fresh)
        removed = sharded.with_class_removed("page-001")
        added = sharded.with_class_added("brand-new", fresh)

        assert sharded.class_names == before_names and len(sharded) == before_size
        assert not replaced.has_class("brand-new")
        assert np.array_equal(replaced.class_embeddings("page-000"), fresh)
        assert not removed.has_class("page-001")
        assert added.has_class("brand-new")

        # The updated store still merges exactly like its flat equivalent.
        twin = ReferenceStore(corpus.shape[1])
        twin.add(flat.embeddings, list(flat.labels))
        twin.replace_class("page-000", fresh)
        _, i_twin = twin.search(corpus[:15], 8)
        _, i_cow = replaced.search(corpus[:15], 8)
        assert np.array_equal(i_twin, i_cow)

    def test_cow_shares_untouched_shard_stores(self):
        _, sharded, corpus, rng = flat_and_sharded()
        home = sharded.shard_of("page-000")
        clone = sharded.with_class_replaced("page-000", rng.standard_normal((4, corpus.shape[1])))
        for shard_id, (old, new) in enumerate(zip(sharded._shards, clone._shards)):
            if shard_id == home:
                assert old.store is not new.store
            else:
                assert old.store is new.store

    def test_to_reference_store_roundtrip(self):
        flat, sharded, _, _ = flat_and_sharded()
        collapsed = sharded.to_reference_store()
        assert np.array_equal(collapsed.embeddings, flat.embeddings)
        assert list(collapsed.labels) == list(flat.labels)

    def test_ivf_shards(self):
        corpus, labels, rng = clustered_corpus(n=500)
        flat = ReferenceStore(corpus.shape[1])
        flat.add(corpus, labels)
        sharded = ShardedReferenceStore.from_reference_store(
            flat,
            n_shards=2,
            index_factory=lambda: CoarseQuantizedIndex(n_cells=6, n_probe=6, min_train_size=16),
        )
        queries = corpus[:20]
        _, i_flat = flat.search(queries, 7)
        _, i_sharded = sharded.search(queries, 7)
        # Full-probe IVF shards merge to the exact answer.
        assert np.array_equal(i_flat, i_sharded)

    def test_ivfpq_shards_under_churn_match_exact(self):
        # Full probe + a rerank pool well above k makes each IVF-PQ shard
        # exact on this corpus, so the merged result must stay
        # bit-identical to the flat exact store through an adaptation
        # round.
        corpus, labels, rng = clustered_corpus(n=900, dim=12)
        flat = ReferenceStore(corpus.shape[1])
        flat.add(corpus, labels)
        sharded = ShardedReferenceStore.from_reference_store(
            flat,
            n_shards=2,
            index_factory=lambda: IVFPQIndex(
                n_cells=8, n_probe=8, n_subspaces=4, rerank=64, min_train_size=16
            ),
        )
        queries = corpus[:25] + 0.05 * rng.standard_normal((25, corpus.shape[1]))
        _, i_flat = flat.search(queries, 9)
        _, i_sharded = sharded.search(queries, 9)
        assert np.array_equal(i_flat, i_sharded)

        fresh = corpus[:6] + 0.02 * rng.standard_normal((6, corpus.shape[1]))
        for store in (flat, sharded):
            store.replace_class("page-003", fresh)
            store.remove_class("page-007")
            store.add(fresh + 1.0, ["page-new"] * 6)
        _, i_flat2 = flat.search(queries, 9)
        _, i_sharded2 = sharded.search(queries, 9)
        assert np.array_equal(i_flat2, i_sharded2)

    def test_float32_storage_dtype_carries_over(self):
        corpus, labels, _ = clustered_corpus(n=400, dim=8)
        flat = ReferenceStore(corpus.shape[1], storage_dtype="float32")
        flat.add(corpus, labels)
        sharded = ShardedReferenceStore.from_reference_store(flat, n_shards=2)
        assert sharded.storage_dtype == "float32"
        assert sharded.embeddings.dtype == np.float32
        assert all(
            shard.store.storage_dtype == "float32" for shard in sharded._shards
        )
        clone = sharded.with_class_replaced("page-000", corpus[:4])
        assert clone.storage_dtype == "float32"
        assert clone.to_reference_store().storage_dtype == "float32"


class TestProcessShardExecutor:
    def test_matches_serial_and_survives_republish(self):
        executor = ProcessShardExecutor(n_workers=2)
        try:
            flat, sharded, corpus, rng = flat_and_sharded(
                n_shards=2, executor=executor, n=300, dim=6
            )
            queries = corpus[:25]
            _, i_flat = flat.search(queries, 6)
            _, i_process = sharded.search(queries, 6)
            assert np.array_equal(i_flat, i_process)
            # Mutate -> the affected shard republishes, results stay exact.
            fresh = rng.standard_normal((5, corpus.shape[1]))
            sharded.replace_class("page-000", fresh)
            flat.replace_class("page-000", fresh)
            _, i_flat2 = flat.search(queries, 6)
            _, i_process2 = sharded.search(queries, 6)
            assert np.array_equal(i_flat2, i_process2)
        finally:
            executor.close()

    def test_closed_executor_rejects_searches(self):
        executor = ProcessShardExecutor(n_workers=1)
        executor.close()
        with pytest.raises(ServingError):
            executor.search([], np.zeros((1, 4)), 1, "euclidean")

    def test_ivfpq_shards_publish_codes_not_vectors(self):
        # A trained rerank=0 IVF-PQ shard ships only codes + codebooks into
        # shared memory: the segment must be several times smaller than the
        # raw float64 matrix, and searches must still work (and agree with
        # the serial executor) after an adaptation republish.
        executor = ProcessShardExecutor(n_workers=2)
        try:
            corpus, labels, rng = clustered_corpus(n=2000, dim=16)
            flat = ReferenceStore(corpus.shape[1])
            flat.add(corpus, labels)
            factory = lambda: IVFPQIndex(  # noqa: E731
                n_cells=12, n_probe=6, n_subspaces=4, rerank=0, min_train_size=16
            )
            sharded = ShardedReferenceStore.from_reference_store(
                flat, n_shards=2, index_factory=factory, executor=executor
            )
            serial = ShardedReferenceStore.from_reference_store(
                flat, n_shards=2, index_factory=factory
            )
            queries = corpus[:30]
            d_proc, i_proc = sharded.search(queries, 8)
            d_serial, i_serial = serial.search(queries, 8)
            assert np.array_equal(i_proc, i_serial)
            assert np.allclose(d_proc, d_serial, rtol=1e-4, atol=1e-3)

            raw_bytes_per_shard = flat.embeddings.nbytes / 2
            for segment_bytes in executor.published_bytes().values():
                assert segment_bytes < raw_bytes_per_shard / 2

            fresh = corpus[:10] + 0.01 * rng.standard_normal((10, corpus.shape[1]))
            for store in (sharded, serial):
                store.replace_class("page-001", fresh)
            d2_proc, i2_proc = sharded.search(queries, 8)
            d2_serial, i2_serial = serial.search(queries, 8)
            assert np.array_equal(i2_proc, i2_serial)
        finally:
            executor.close()

    def test_float32_vectors_halve_segments(self):
        executor = ProcessShardExecutor(n_workers=1)
        try:
            corpus, labels, _ = clustered_corpus(n=800, dim=16)
            flat64 = ReferenceStore(corpus.shape[1])
            flat64.add(corpus, labels)
            sharded = ShardedReferenceStore.from_reference_store(
                flat64, n_shards=2, executor=executor, storage_dtype="float32"
            )
            _, i32 = sharded.search(corpus[:20], 6)
            _, i64 = flat64.search(corpus[:20], 6)
            assert (i32 == i64).mean() > 0.99
            raw_bytes_per_shard = flat64.embeddings.nbytes / 2
            # Allow for the fixed RSG1 header + page-aligned data region.
            for segment_bytes in executor.published_bytes().values():
                assert segment_bytes <= raw_bytes_per_shard / 2 + 8192
        finally:
            executor.close()


def build_manager(n_shards=2, k=15, **kwargs):
    flat, sharded, corpus, rng = flat_and_sharded(n_shards=n_shards, **kwargs)
    manager = DeploymentManager(sharded, ClassifierConfig(k=k))
    return manager, flat, corpus, rng


class TestBatchScheduler:
    def test_inline_batching_matches_direct_predict(self):
        manager, flat, corpus, _ = build_manager()
        scheduler = BatchScheduler(manager, max_batch_size=16, cache_size=0)
        queries = corpus[:40]
        predictions = scheduler.classify(queries)
        expected = KNNClassifier(flat, ClassifierConfig(k=15)).predict(queries)
        assert [p.ranked_labels for p in predictions] == [p.ranked_labels for p in expected]
        assert scheduler.stats.batches == 3  # 16 + 16 + 8
        assert scheduler.stats.largest_batch == 16
        assert scheduler.stats.completed == 40

    def test_cache_serves_duplicates_and_generation_invalidates(self):
        manager, _, corpus, rng = build_manager()
        scheduler = BatchScheduler(manager, max_batch_size=8, cache_size=64)
        query = corpus[0]
        first = scheduler.submit(query)
        scheduler.flush()
        second = scheduler.submit(query)  # exact revisit -> cache hit
        assert second.done() and second.cached
        assert second.result().ranked_labels == first.result().ranked_labels
        assert scheduler.stats.cache_hits == 1

        manager.replace_class("page-000", rng.standard_normal((4, corpus.shape[1])))
        third = scheduler.submit(query)  # new generation -> cache miss
        scheduler.flush()
        assert not third.cached
        assert scheduler.stats.cache_misses == 2

    def test_background_thread_ages_out_partial_batches(self):
        manager, _, corpus, _ = build_manager()
        with BatchScheduler(manager, max_batch_size=1024, max_latency_s=0.01) as scheduler:
            ticket = scheduler.submit(corpus[0])
            prediction = ticket.result(timeout=5.0)
        assert prediction.ranked_labels
        assert ticket.latency_s is not None and ticket.latency_s < 5.0

    def test_batch_failure_fails_tickets_not_scheduler(self):
        manager, _, corpus, _ = build_manager()
        scheduler = BatchScheduler(manager, max_batch_size=8, cache_size=0)
        bad = scheduler.submit(np.zeros(3))  # wrong dimension
        scheduler.flush()
        with pytest.raises(ServingError):
            bad.result(timeout=1.0)
        assert scheduler.stats.failed == 1
        good = scheduler.classify(corpus[:2])
        assert len(good) == 2

    def test_validation(self):
        manager, _, _, _ = build_manager()
        with pytest.raises(ValueError):
            BatchScheduler(manager, max_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(manager, max_latency_s=-1.0)
        with pytest.raises(ValueError):
            BatchScheduler(manager, cache_size=-1)


class TestDeploymentManager:
    def test_snapshot_swap_is_atomic_and_cow(self):
        manager, _, corpus, rng = build_manager()
        before = manager.snapshot()
        manager.replace_class("page-000", rng.standard_normal((5, corpus.shape[1])))
        after = manager.snapshot()
        assert after.generation == before.generation + 1
        assert before.store is not after.store
        # The old snapshot still answers queries (in-flight batches).
        distances, _ = before.store.search(corpus[:3], 4)
        assert np.isfinite(distances).all()

    def test_open_world_detector_recalibrates_on_swap(self):
        flat, sharded, corpus, rng = flat_and_sharded()
        manager = DeploymentManager(
            sharded, ClassifierConfig(k=15), open_world=OpenWorldConfig(neighbour=3, percentile=95)
        )
        first = manager.snapshot()
        assert first.detector is not None
        far = corpus[:4] + 500.0
        assert first.is_unknown(far).all()
        manager.remove_class("page-000")
        second = manager.snapshot()
        assert second.detector is not None and second.detector is not first.detector

    def test_zero_failed_queries_during_mid_run_replace(self):
        manager, flat, corpus, rng = build_manager()
        queries, _ = open_world_mix(corpus, 120, unmonitored_fraction=0.2, seed=3)
        fresh = rng.standard_normal((6, corpus.shape[1]))
        generations = []

        def swap():
            generations.append(manager.generation)
            manager.replace_class("page-000", fresh)
            generations.append(manager.generation)

        scheduler = BatchScheduler(manager, max_batch_size=16, max_latency_s=0.001)
        result = LoadGenerator(queries).replay(scheduler, mid_run=swap)
        assert result.failed == 0
        assert all(prediction is not None for prediction in result.predictions)
        assert generations[1] == generations[0] + 1
        assert result.report.n_queries == 120
        assert result.report.throughput_qps > 0

    def test_zero_failed_queries_with_background_thread_and_processes(self):
        executor = ProcessShardExecutor(n_workers=2)
        try:
            manager, _, corpus, rng = build_manager(executor=executor, n=300, dim=6)
            queries, _ = open_world_mix(corpus, 80, seed=4)
            fresh = rng.standard_normal((5, corpus.shape[1]))
            with BatchScheduler(manager, max_batch_size=16, max_latency_s=0.001) as scheduler:
                result = LoadGenerator(queries).replay(
                    scheduler, mid_run=lambda: manager.replace_class("page-001", fresh)
                )
            assert result.failed == 0
        finally:
            executor.close()

    def test_concurrent_swap_and_serving_share_process_executor(self):
        # The swap recalibrates the open-world detector, whose calibration
        # searches through the same executor the flusher thread is using —
        # the executor must serialise the two scatter/gathers.
        executor = ProcessShardExecutor(n_workers=2)
        try:
            flat, sharded, corpus, rng = flat_and_sharded(n_shards=2, executor=executor, n=300, dim=6)
            manager = DeploymentManager(
                sharded,
                ClassifierConfig(k=10),
                open_world=OpenWorldConfig(neighbour=3, percentile=95),
            )
            queries, _ = open_world_mix(corpus, 80, seed=6)
            fresh = rng.standard_normal((5, corpus.shape[1]))
            with BatchScheduler(manager, max_batch_size=8, max_latency_s=0.001) as scheduler:
                result = LoadGenerator(queries).replay(
                    scheduler, mid_run=lambda: manager.replace_class("page-002", fresh)
                )
            assert result.failed == 0
            assert manager.snapshot().detector is not None
        finally:
            executor.close()

    def test_process_executor_evicts_retired_shard_segments(self):
        executor = ProcessShardExecutor(n_workers=2)
        try:
            _, sharded, corpus, rng = flat_and_sharded(n_shards=2, executor=executor, n=200, dim=6)
            queries = corpus[:5]
            sharded.search(queries, 3)
            assert len(executor.published_bytes()) == 2
            # Copy-on-write swaps retire one shard uid per update; after the
            # grace window the retired segments must be unlinked.
            grace = SegmentPublisher._EVICT_AFTER_CALLS
            store = sharded
            for round_ in range(grace + 2):
                store = store.with_class_replaced(
                    "page-000", rng.standard_normal((4, corpus.shape[1]))
                )
                store.search(queries, 3)
            assert len(executor.published_bytes()) <= 2 + grace
        finally:
            executor.close()

    def test_adapt_requires_fingerprinter(self):
        manager, _, _, _ = build_manager()
        with pytest.raises(ServingError):
            manager.adapt([object()])
        with pytest.raises(ServingError):
            manager.save("/tmp/never-written")


class TestOpenWorldMix:
    def test_mix_shapes_and_fractions(self):
        corpus, _, _ = clustered_corpus(n=200)
        queries, is_unmonitored = open_world_mix(
            corpus, 100, unmonitored_fraction=0.3, revisit_fraction=0.2, seed=0
        )
        assert queries.shape == (100, corpus.shape[1])
        assert is_unmonitored.sum() == 30
        # Revisits duplicate earlier monitored queries exactly.
        monitored = queries[~is_unmonitored]
        unique = np.unique(monitored, axis=0)
        assert unique.shape[0] < monitored.shape[0]

    def test_unmonitored_queries_are_outliers(self):
        corpus, labels, _ = clustered_corpus(n=200)
        store = ReferenceStore(corpus.shape[1])
        store.add(corpus, labels)
        detector = OpenWorldDetector(store, neighbour=3, percentile=95)
        queries, is_unmonitored = open_world_mix(corpus, 100, outlier_shift=50.0, seed=1)
        flags = detector.is_unknown(queries)
        assert flags[is_unmonitored].mean() > 0.95
        assert flags[~is_unmonitored].mean() < 0.3

    def test_validation(self):
        corpus, _, _ = clustered_corpus(n=20)
        with pytest.raises(ValueError):
            open_world_mix(np.empty((0, 4)), 10)
        with pytest.raises(ValueError):
            open_world_mix(corpus, 10, unmonitored_fraction=1.5)
        with pytest.raises(ValueError):
            open_world_mix(corpus, 10, revisit_fraction=1.0)


class TestSchedulerCacheKey:
    """The satellite fix: the LRU result cache keys on the snapshot's
    (generation, index signature), never on the generation alone."""

    class SwappableSource:
        def __init__(self, manager):
            self.manager = manager

        def snapshot(self):
            return self.manager.snapshot()

    def build(self, label, index_factory):
        rng = np.random.default_rng(hash(label) % (2**32))
        corpus = rng.standard_normal((300, 6)) + 4.0
        flat = ReferenceStore(6)
        flat.add(corpus, [label] * 300)
        return DeploymentManager(
            ShardedReferenceStore.from_reference_store(
                flat, n_shards=2, index_factory=index_factory
            ),
            ClassifierConfig(k=5),
        )

    def test_cache_token_includes_index_signature(self):
        exact = self.build("page-exact", None)
        ivf = self.build(
            "page-ivf", lambda: CoarseQuantizedIndex(n_cells=4, n_probe=4, min_train_size=16)
        )
        token_a = exact.snapshot().cache_token
        token_b = ivf.snapshot().cache_token
        assert exact.generation == ivf.generation == 0
        assert token_a != token_b  # same generation, different index spec

    def test_index_config_swap_never_serves_stale_predictions(self):
        # Two deployments, both at generation 0, same query — but different
        # corpora AND different index specs (a redeploy with a new index
        # config).  Keying on the generation alone would serve deployment
        # A's cached prediction for deployment B.
        manager_a = self.build("page-aaa", None)
        manager_b = self.build(
            "page-bbb", lambda: CoarseQuantizedIndex(n_cells=4, n_probe=4, min_train_size=16)
        )
        source = self.SwappableSource(manager_a)
        scheduler = BatchScheduler(source, max_batch_size=4, cache_size=64)
        query = np.full(6, 4.0)
        first = scheduler.classify([query])[0]
        assert first.best == "page-aaa"
        assert scheduler.stats.cache_misses == 1

        source.manager = manager_b  # redeploy with a different index config
        second = scheduler.classify([query])[0]
        assert second.best == "page-bbb", "stale cached prediction served across index configs"
        # And within one deployment the cache still hits.
        third = scheduler.classify([query])[0]
        assert third.best == "page-bbb"
        assert scheduler.stats.cache_hits == 1

    def test_same_config_same_generation_still_hits(self):
        manager = self.build("page-hit", None)
        scheduler = BatchScheduler(manager, max_batch_size=4, cache_size=64)
        query = np.full(6, 4.0)
        scheduler.classify([query])
        scheduler.classify([query])
        assert scheduler.stats.cache_hits == 1


class TestReplicaSet:
    def test_round_robin_rotates(self):
        flat, sharded, corpus, _ = flat_and_sharded(
            executor=ReplicaSet.in_process(2, router="round_robin")
        )
        for _ in range(4):
            sharded.search(corpus[:3], 5)
        assert sharded.executor.routed_counts() == [2, 2]

    def test_least_loaded_is_deterministic_when_serial(self):
        _, sharded, corpus, _ = flat_and_sharded(
            executor=ReplicaSet.in_process(3, router="least_loaded")
        )
        for _ in range(3):
            sharded.search(corpus[:3], 5)
        assert sharded.executor.routed_counts() == [3, 0, 0]

    def test_replica_results_identical_to_flat(self):
        flat, sharded, corpus, rng = flat_and_sharded(
            executor=ReplicaSet.in_process(3, router="round_robin")
        )
        queries = corpus[:30] + 0.1 * rng.standard_normal((30, corpus.shape[1]))
        d_flat, i_flat = flat.search(queries, 9)
        for _ in range(3):  # every replica must answer identically
            d_rep, i_rep = sharded.search(queries, 9)
            assert np.array_equal(i_flat, i_rep)
            assert np.allclose(d_flat, d_rep)

    def test_process_replicas_share_one_publication(self):
        replica_set = ReplicaSet.processes(2, n_workers=1, router="round_robin")
        try:
            flat, sharded, corpus, _ = flat_and_sharded(
                n_shards=2, executor=replica_set, n=200, dim=6
            )
            _, i_flat = flat.search(corpus[:5], 4)
            for _ in range(2):  # route through both replicas
                _, i_rep = sharded.search(corpus[:5], 4)
                assert np.array_equal(i_flat, i_rep)
            # One publication serves both replicas: one segment per shard,
            # not per (shard, replica).
            assert len(replica_set.published_bytes()) == 2
            assert replica_set.routed_counts() == [1, 1]
        finally:
            replica_set.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaSet([])
        with pytest.raises(ValueError):
            ReplicaSet.in_process(0)
        with pytest.raises(ValueError):
            ReplicaSet.in_process(2, router="random")


class TestZipfMix:
    def test_zipf_mix_is_head_heavy(self):
        corpus, labels, _ = clustered_corpus(n=400, n_classes=10)
        store = ReferenceStore(corpus.shape[1])
        store.add(corpus, labels)
        queries, is_unmonitored = open_world_mix(
            corpus,
            600,
            unmonitored_fraction=0.0,
            noise_scale=0.01,
            class_mix="zipf",
            zipf_s=1.5,
            reference_labels=labels,
            seed=3,
        )
        predictions = KNNClassifier(store, ClassifierConfig(k=5)).predict(queries)
        counts = {}
        for p in predictions:
            counts[p.best] = counts.get(p.best, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # The hottest class dominates; the head outweighs the tail.
        assert ranked[0] > 600 / 10 * 2
        assert ranked[0] > 5 * ranked[-1]

    def test_zipf_requires_labels(self):
        corpus, labels, _ = clustered_corpus(n=50)
        with pytest.raises(ValueError):
            open_world_mix(corpus, 10, class_mix="zipf")
        with pytest.raises(ValueError):
            open_world_mix(corpus, 10, class_mix="zipf", reference_labels=labels[:-1])
        with pytest.raises(ValueError):
            open_world_mix(corpus, 10, class_mix="zipf", reference_labels=labels, zipf_s=0.0)
        with pytest.raises(ValueError):
            open_world_mix(corpus, 10, class_mix="pareto")


class TestSegmentPublisherPins:
    def test_pinned_segments_survive_eviction_until_released(self):
        _, sharded, _, _ = flat_and_sharded(n_shards=2, n=200, dim=6)
        publisher = SegmentPublisher()
        shard = sharded._shards[0]
        publisher.begin_search()
        name, metas = publisher.publish(shard)  # pins the segment
        assert len(publisher.published_bytes()) == 1
        # Age the segment far past the grace window while still pinned: an
        # in-flight scatter may sit between publish and worker attach, so
        # eviction must not unlink under it, no matter the load.
        for _ in range(SegmentPublisher._EVICT_AFTER_CALLS + 5):
            publisher.begin_search()
        publisher.evict_stale()
        assert len(publisher.published_bytes()) == 1
        publisher.release([shard.uid])
        publisher.evict_stale()
        assert publisher.published_bytes() == {}
        publisher.close()

    def test_eviction_runs_under_sustained_churn(self):
        # Retired shard uids (copy-on-write swaps) must be unlinked even
        # when every search call is busy — no idle window required.
        executor = ProcessShardExecutor(n_workers=1)
        try:
            _, sharded, corpus, rng = flat_and_sharded(n_shards=2, executor=executor, n=150, dim=6)
            store = sharded
            grace = SegmentPublisher._EVICT_AFTER_CALLS
            for _ in range(3 * grace):
                store = store.with_class_replaced(
                    "page-000", rng.standard_normal((4, corpus.shape[1]))
                )
                store.search(corpus[:3], 3)
            # One live uid per shard plus at most the grace window of
            # retired ones awaiting their age-out.
            assert len(executor.published_bytes()) <= 2 + grace + 1
        finally:
            executor.close()

    def test_republish_defers_unlink_while_old_version_is_pinned(self):
        # Replica A pins (uid, v) and its worker has not attached yet when
        # replica B publishes (uid, v+1): the v segment's name must stay
        # attachable until A releases its pin.
        from multiprocessing import shared_memory

        _, sharded, corpus, rng = flat_and_sharded(n_shards=2, n=150, dim=6)
        publisher = SegmentPublisher()
        shard = sharded._shards[0]
        publisher.begin_search()
        _, old_name = publisher.publish(shard)  # A pins version v
        victim = next(label for label in sharded.class_names if sharded.shard_of(label) == 0)
        sharded.replace_class(victim, rng.standard_normal((4, 6)))  # bumps shard 0's version
        publisher.begin_search()
        _, new_name = publisher.publish(shard)  # B publishes v+1
        assert new_name != old_name
        attached = shared_memory.SharedMemory(name=old_name)  # A's worker attaches late
        attached.close()
        publisher.release([shard.uid])  # A done with v
        publisher.release([shard.uid])  # B done with v+1
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=old_name)  # now retired for real
        shared_memory.SharedMemory(name=new_name).close()  # live version remains
        publisher.close()

    def test_publish_released_on_every_search_even_after_failure(self):
        publisher = SegmentPublisher()
        _, sharded, corpus, _ = flat_and_sharded(n_shards=2, n=150, dim=6)
        for shard in sharded._shards:
            publisher.begin_search()
            publisher.publish(shard)
            publisher.release([shard.uid])
        assert publisher._pins == {}
        publisher.close()
        with pytest.raises(ServingError):
            publisher.publish(sharded._shards[0])
