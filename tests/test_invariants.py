"""Cross-module property-based invariants.

These tests use hypothesis to exercise invariants that hold across module
boundaries: preprocessing must conserve byte volume, defences may only add
traffic, dataset algebra must never lose or duplicate samples, and the
classifier's metrics must be internally consistent.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClassifierConfig
from repro.core import KNNClassifier, ReferenceStore
from repro.defences import AdaptivePaddingDefence, FixedLengthPadding, RandomPaddingDefence, bandwidth_overhead
from repro.metrics import accuracy_curve, n_for_target_accuracy
from repro.net import IPAddress, Packet, PacketCapture
from repro.traces import SequenceExtractor, Trace, TraceDataset


CLIENT = IPAddress("10.0.0.1")
SERVERS = [IPAddress("10.0.0.2"), IPAddress("10.0.0.3"), IPAddress("10.0.0.4")]


@st.composite
def captures(draw):
    """Random small packet captures involving the client and 1-3 servers."""
    n_packets = draw(st.integers(1, 40))
    n_servers = draw(st.integers(1, 3))
    packets = []
    time = 0.0
    for _ in range(n_packets):
        time += draw(st.floats(0.001, 0.1))
        size = draw(st.integers(1, 20_000))
        if draw(st.booleans()):
            src, dst = CLIENT, SERVERS[draw(st.integers(0, n_servers - 1))]
        else:
            src, dst = SERVERS[draw(st.integers(0, n_servers - 1))], CLIENT
        packets.append(Packet(time, src, dst, size))
    capture = PacketCapture(client_ip=CLIENT)
    capture.extend(packets)
    return capture


class TestPreprocessingConservation:
    @given(captures())
    @settings(max_examples=60, deadline=None)
    def test_volume_conserved_with_tail_aggregation(self, capture):
        """With tail aggregation, no quantization and enough sequences, the
        extracted sequences carry exactly the capture's byte volume."""
        extractor = SequenceExtractor(
            max_sequences=4, sequence_length=16, log_scale=False, tail_aggregate=True
        )
        array = extractor.extract_array(capture)
        assert array.sum() == pytest.approx(capture.total_bytes)

    @given(captures())
    @settings(max_examples=60, deadline=None)
    def test_client_row_matches_outgoing_bytes(self, capture):
        extractor = SequenceExtractor(
            max_sequences=4, sequence_length=16, log_scale=False, tail_aggregate=True
        )
        array = extractor.extract_array(capture)
        outgoing = sum(p.size for p in capture.packets if p.src == CLIENT)
        assert array[0].sum() == pytest.approx(outgoing)

    @given(captures(), st.integers(2, 4), st.integers(4, 32))
    @settings(max_examples=40, deadline=None)
    def test_extracted_shape_and_non_negativity(self, capture, max_sequences, length):
        extractor = SequenceExtractor(max_sequences=max_sequences, sequence_length=length)
        array = extractor.extract_array(capture)
        assert array.shape == (max_sequences, length)
        assert np.all(array >= 0.0)


def random_dataset(rng, n_classes=4, samples=5):
    traces = []
    for class_id in range(n_classes):
        for _ in range(samples):
            sequences = np.abs(rng.normal(loc=(class_id + 1) * 1000, scale=100, size=(3, 8)))
            traces.append(Trace(label=f"p{class_id}", website="w", sequences=sequences))
    return TraceDataset.from_traces(traces)


class TestDefenceInvariants:
    @pytest.mark.parametrize(
        "defence",
        [FixedLengthPadding(), FixedLengthPadding(per_sequence=False), RandomPaddingDefence(0.4), AdaptivePaddingDefence(0.5)],
        ids=["fl-per-seq", "fl-total", "random", "adaptive"],
    )
    def test_padding_only_adds_bytes(self, defence):
        rng = np.random.default_rng(1)
        dataset = random_dataset(rng)
        defended = defence.apply(dataset, log_scaled=False, seed=3)
        assert defended.data.shape == dataset.data.shape
        assert np.all(defended.data + 1e-9 >= dataset.data)
        assert bandwidth_overhead(dataset, defended, log_scaled=False) >= 0.0
        assert np.array_equal(defended.labels, dataset.labels)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_fl_padding_equalises_for_any_seed(self, seed):
        rng = np.random.default_rng(seed)
        dataset = random_dataset(rng, n_classes=3, samples=4)
        defended = FixedLengthPadding().apply(dataset, log_scaled=False)
        totals = defended.data.sum(axis=2)
        assert np.allclose(totals, totals[0][None, :], rtol=1e-9)


class TestDatasetAlgebra:
    @given(st.integers(2, 6), st.integers(2, 6), st.floats(0.2, 0.8))
    @settings(max_examples=30, deadline=None)
    def test_filter_then_split_conserves_samples(self, n_classes, samples, fraction):
        rng = np.random.default_rng(n_classes * 7 + samples)
        dataset = random_dataset(rng, n_classes=n_classes, samples=samples)
        kept = dataset.filter_classes(range(max(1, n_classes - 1)))
        first, second = kept.split_per_class(fraction, seed=0)
        assert len(first) + len(second) == len(kept)
        assert set(first.class_names) == set(kept.class_names)
        # No trace appears on both sides: totals of the union match.
        assert first.data.shape[0] + second.data.shape[0] == kept.data.shape[0]

    @given(st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_merge_is_size_additive(self, a_classes, b_classes):
        rng = np.random.default_rng(a_classes * 13 + b_classes)
        a = random_dataset(rng, n_classes=a_classes, samples=3)
        b = random_dataset(rng, n_classes=b_classes, samples=2)
        merged = a.merge(b)
        assert len(merged) == len(a) + len(b)
        assert set(merged.class_names) == set(a.class_names) | set(b.class_names)


class TestClassifierMetricConsistency:
    @given(st.integers(2, 6), st.integers(3, 10))
    @settings(max_examples=20, deadline=None)
    def test_guesses_and_topn_agree(self, n_classes, per_class):
        rng = np.random.default_rng(n_classes * 31 + per_class)
        store = ReferenceStore(4)
        centres = rng.standard_normal((n_classes, 4)) * 6
        for class_id in range(n_classes):
            points = centres[class_id] + 0.4 * rng.standard_normal((per_class, 4))
            store.add(points, [f"c{class_id}"] * per_class)
        classifier = KNNClassifier(store, ClassifierConfig(k=per_class))
        queries = centres + 0.2 * rng.standard_normal(centres.shape)
        labels = [f"c{i}" for i in range(n_classes)]

        guesses = classifier.guesses_needed(queries, labels)
        for n in (1, 2, n_classes):
            direct = classifier.topn_accuracy(queries, labels, ns=(n,))[n]
            from_guesses = float(np.mean(guesses <= n))
            assert direct == pytest.approx(from_guesses)
        curve = accuracy_curve(guesses, max_n=n_classes)
        assert curve[-1] >= curve[0]
        target_n = n_for_target_accuracy(guesses, 1.0, max_n=n_classes)
        assert 1 <= target_n <= n_classes
