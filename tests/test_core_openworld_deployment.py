"""Tests for open-world detection and deployment persistence."""

import numpy as np
import pytest

from repro.config import ClassifierConfig
from repro.core import (
    AdaptiveFingerprinter,
    OpenWorldDetector,
    ReferenceStore,
    load_deployment,
    save_deployment,
)
from repro.traces import SequenceExtractor, collect_dataset, reference_test_split
from repro.web import WikipediaLikeGenerator

from tests.conftest import tiny_hyperparameters, tiny_training_config


def clustered_store(n_classes=4, per_class=15, dim=6, spread=0.3, seed=0):
    rng = np.random.default_rng(seed)
    centres = rng.standard_normal((n_classes, dim)) * 8
    store = ReferenceStore(dim)
    for class_id in range(n_classes):
        points = centres[class_id] + spread * rng.standard_normal((per_class, dim))
        store.add(points, [f"class-{class_id}"] * per_class)
    return store, centres, rng


class TestOpenWorldDetector:
    def test_flags_far_away_queries(self):
        store, centres, rng = clustered_store()
        detector = OpenWorldDetector(store, neighbour=3, percentile=95)
        monitored = centres + 0.1 * rng.standard_normal(centres.shape)
        unmonitored = centres + 40.0  # far outside every cluster
        result = detector.evaluate(monitored, unmonitored)
        assert result.true_positive_rate == 1.0
        assert result.false_positive_rate <= 0.25
        assert result.youden_j > 0.7
        assert detector.threshold > 0.0

    def test_scores_and_is_unknown_shapes(self):
        store, centres, _ = clustered_store()
        detector = OpenWorldDetector(store)
        scores = detector.scores(centres)
        flags = detector.is_unknown(centres)
        assert scores.shape == (len(centres),)
        assert flags.dtype == bool

    def test_validation(self):
        store, centres, _ = clustered_store()
        with pytest.raises(ValueError):
            OpenWorldDetector(ReferenceStore(4))
        with pytest.raises(ValueError):
            OpenWorldDetector(store, neighbour=0)
        with pytest.raises(ValueError):
            OpenWorldDetector(store, percentile=0.0)
        detector = OpenWorldDetector(store)
        with pytest.raises(ValueError):
            detector.scores(np.zeros((2, 99)))
        with pytest.raises(ValueError):
            detector.evaluate(np.zeros((0, store.embedding_dim)), centres)

    def test_neighbour_clamped_to_store_size(self):
        store = ReferenceStore(3)
        store.add(np.random.default_rng(0).standard_normal((4, 3)), ["a", "a", "b", "b"])
        detector = OpenWorldDetector(store, neighbour=50)
        assert detector.neighbour <= 3

    def test_end_to_end_with_trained_model(self, wiki_dataset):
        """Monitored pages stay below the threshold, unmonitored ones mostly above."""
        monitored = wiki_dataset.filter_classes(range(5))
        unmonitored = wiki_dataset.filter_classes(range(5, wiki_dataset.n_classes))
        reference, test = reference_test_split(monitored, 0.8, seed=0)

        fingerprinter = AdaptiveFingerprinter(
            n_sequences=wiki_dataset.n_sequences,
            sequence_length=wiki_dataset.sequence_length,
            hyperparameters=tiny_hyperparameters(),
            # The fixture-default training budget: a 6-epoch run leaves the
            # embedding marginal enough that the assertion below becomes a
            # coin flip on the training trajectory.
            training_config=tiny_training_config(),
            classifier_config=ClassifierConfig(k=10),
            seed=0,
        )
        fingerprinter.provision(reference)
        fingerprinter.initialize(reference)

        detector = OpenWorldDetector(fingerprinter.reference_store, neighbour=3, percentile=97)
        monitored_embeddings = fingerprinter.model.embed_dataset(test)
        unmonitored_embeddings = fingerprinter.model.embed_dataset(unmonitored)
        result = detector.evaluate(monitored_embeddings, unmonitored_embeddings)
        # Unmonitored pages are flagged more often than monitored ones.
        assert result.true_positive_rate > result.false_positive_rate


class TestDeploymentPersistence:
    @pytest.fixture(scope="class")
    def deployment(self, tmp_path_factory):
        website = WikipediaLikeGenerator(n_pages=6, seed=33).generate()
        extractor = SequenceExtractor(max_sequences=3, sequence_length=20)
        dataset = collect_dataset(website, extractor, visits_per_page=10, seed=2)
        reference, test = reference_test_split(dataset, 0.8, seed=0)
        fingerprinter = AdaptiveFingerprinter(
            n_sequences=3,
            sequence_length=20,
            hyperparameters=tiny_hyperparameters(),
            training_config=tiny_training_config(epochs=5, pairs_per_epoch=500),
            classifier_config=ClassifierConfig(k=8),
            extractor=extractor,
            seed=4,
        )
        fingerprinter.provision(reference)
        fingerprinter.initialize(reference)
        directory = tmp_path_factory.mktemp("deployment")
        save_deployment(fingerprinter, directory)
        return fingerprinter, directory, test

    def test_directory_contents(self, deployment):
        _, directory, _ = deployment
        assert (directory / "config.json").exists()
        assert (directory / "weights.npz").exists()
        assert (directory / "references.rsg").exists()

    def test_roundtrip_preserves_predictions(self, deployment):
        original, directory, test = deployment
        restored = load_deployment(directory)
        assert restored.provisioned and restored.initialized
        original_accuracy = original.evaluate(test, ns=(1, 3)).topn_accuracy
        restored_accuracy = restored.evaluate(test, ns=(1, 3)).topn_accuracy
        assert original_accuracy == restored_accuracy
        # Embeddings are bit-identical after the round trip.
        assert np.allclose(
            original.model.embed_dataset(test), restored.model.embed_dataset(test)
        )

    def test_restored_deployment_can_adapt(self, deployment):
        _, directory, test = deployment
        restored = load_deployment(directory)
        from repro.traces import Trace

        label = restored.reference_store.classes[0]
        fresh = [Trace(label=label, website="w", sequences=test.data[0])]
        restored.adapt(fresh, replace=True)
        assert restored.reference_store.class_counts()[label] == 1

    def test_unprovisioned_save_rejected(self, tmp_path):
        fingerprinter = AdaptiveFingerprinter(hyperparameters=tiny_hyperparameters())
        with pytest.raises(RuntimeError):
            save_deployment(fingerprinter, tmp_path / "nope")

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_deployment(tmp_path / "absent")
