"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out.lower()

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "exp99"])

    def test_unknown_scale_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "exp1", "--scale", "galactic"])

    def test_experiment_index_flags(self):
        parser = build_parser()
        arguments = parser.parse_args(
            ["experiment", "exp1", "--index", "ivf", "--n-cells", "32", "--n-probe", "4"]
        )
        assert arguments.index == "ivf"
        assert arguments.n_cells == 32
        assert arguments.n_probe == 4
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "exp1", "--index", "quantum"])

    def test_serve_bench_flags(self):
        parser = build_parser()
        arguments = parser.parse_args(["serve-bench", "--smoke", "--shards", "3"])
        assert arguments.command == "serve-bench"
        assert arguments.smoke and arguments.shards == 3
        with pytest.raises(SystemExit):
            parser.parse_args(["serve-bench", "--executor", "quantum"])


class TestInfo:
    def test_info_lists_scales_and_experiments(self, capsys):
        assert main(["info"]) == 0
        output = capsys.readouterr().out
        assert "smoke" in output and "ci" in output and "paper" in output
        for experiment_id in ("exp1", "exp2", "exp3", "exp4", "exp5", "table3"):
            assert experiment_id in output


class TestTable3Command:
    def test_catalogue_only(self, capsys):
        assert main(["table3", "--no-measure"]) == 0
        output = capsys.readouterr().out
        assert "Adaptive Fingerprinting" in output
        assert "Deep Fingerprinting" in output


class TestExperimentCommand:
    def test_exp1_smoke_runs_and_writes_output(self, capsys, tmp_path):
        assert main(["experiment", "exp1", "--scale", "smoke", "--output-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert (tmp_path / "exp1.txt").exists()
        assert "Figure 6" in (tmp_path / "exp1.txt").read_text()


class TestServeBenchCommand:
    def test_smoke_writes_bench_snapshot(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serving.json"
        assert main(["serve-bench", "--smoke", "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "identical to baseline: True" in output
        assert "failed queries: 0" in output
        import json

        snapshot = json.loads(out.read_text())
        assert snapshot["identical_to_exact_baseline"]["serial"] is True
        assert snapshot["adaptation"]["failed_queries"] == 0
        assert snapshot["serving"]["serial"]["report"]["p99_ms"] > 0
