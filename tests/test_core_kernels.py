"""Native ADC-scan kernel contract: bitwise parity, fallback, knobs.

The fused C kernels (:mod:`repro.core.kernels`) are an *optional*
acceleration of the IVF-PQ scan, so the contract under test is strict:

* kernels-on and kernels-off searches return **bitwise identical**
  ``(distances, ids)`` — across bit widths, OPQ, uneven subspace dims,
  degenerate probes, ``k`` larger than the probed candidates, and after
  add/remove churn invalidates the transposed scan layout;
* the raw blocked scanners reproduce the NumPy uint32 LUT sums exactly;
* without a working compiler everything still runs on the NumPy path
  (exercised in a subprocess with ``CC=/bin/false`` and a fresh cache,
  because the build result latches process-wide), and
  ``native_kernels="on"`` raises instead of silently degrading;
* the ``auto``/``on``/``off`` mode lattice (process-global env knob x
  per-index knob) resolves with ``off`` winning, then ``on``;
* ``max_cell_fraction`` (the skew knob that rides along with the scan
  work) actually caps coarse-cell occupancy on both clustered engines.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import kernels as kern
from repro.core.index import (
    CoarseQuantizedIndex,
    ExactIndex,
    IVFPQIndex,
    index_from_spec,
)
from repro.core.index_bench import clustered_corpus
from repro.kernel_cache import kernel_cache_dir

KERNELS = kern.ivfpq_kernels()
needs_kernels = pytest.mark.skipif(
    KERNELS is None, reason="no system C compiler / kernel build failed"
)

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


def corpus(n=4000, dim=24, seed=1):
    return clustered_corpus(n, dim, n_clusters=max(8, n // 50), seed=seed)


def queries_near(vectors, n_queries=48, seed=2, noise=0.1):
    rng = np.random.default_rng(seed)
    picks = vectors[rng.choice(vectors.shape[0], n_queries, replace=False)]
    return picks + noise * rng.standard_normal(picks.shape)


def search_both_ways(index, vectors, queries, k):
    """Search with the native kernels forced on and forced off; assert the
    results are bitwise identical and return them."""
    index.native_kernels = "off"
    d_off, i_off = index.search(vectors, queries, k)
    index.native_kernels = "on"
    d_on, i_on = index.search(vectors, queries, k)
    index.native_kernels = "auto"
    np.testing.assert_array_equal(i_on, i_off)
    np.testing.assert_array_equal(d_on, d_off)
    return d_on, i_on


# ------------------------------------------------------------- bitwise parity
@needs_kernels
@pytest.mark.parametrize(
    "bits,opq,rerank",
    [(4, False, 0), (4, True, 64), (8, False, 0), (8, True, 64)],
)
def test_native_scan_bitwise_identical(bits, opq, rerank):
    vectors = corpus()
    queries = queries_near(vectors)
    index = IVFPQIndex(bits=bits, opq=opq, rerank=rerank, min_train_size=256)
    index.rebuild(vectors)
    search_both_ways(index, vectors, queries, k=10)


@needs_kernels
@pytest.mark.parametrize("bits", [4, 8])
def test_native_scan_uneven_subspaces(bits):
    # dim=30 with m=7 subspaces: subspace dims 5/5/4/4/4/4/4, and for the
    # packed engine an odd m leaves a half-used last byte the scanner must
    # not read past.
    vectors = corpus(n=2500, dim=30)
    queries = queries_near(vectors, n_queries=32)
    index = IVFPQIndex(bits=bits, n_subspaces=7, rerank=0, min_train_size=256)
    index.rebuild(vectors)
    search_both_ways(index, vectors, queries, k=12)


@needs_kernels
def test_native_scan_short_probe_and_k_exceeding_candidates():
    # n_probe=1 on a small corpus: some queries see fewer candidates than
    # k, so both paths must agree on the short result rows too.
    vectors = corpus(n=400, dim=12)
    queries = queries_near(vectors, n_queries=16)
    index = IVFPQIndex(
        n_cells=16, n_probe=1, rerank=0, min_train_size=64
    )
    index.rebuild(vectors)
    d, ids = search_both_ways(index, vectors, queries, k=60)
    assert ids.shape[0] == queries.shape[0]


@needs_kernels
def test_native_scan_full_probe():
    vectors = corpus(n=1500, dim=16)
    queries = queries_near(vectors, n_queries=24)
    index = IVFPQIndex(n_probe=10**6, rerank=0, min_train_size=64)
    index.rebuild(vectors)
    search_both_ways(index, vectors, queries, k=10)


@needs_kernels
@pytest.mark.parametrize("bits", [4, 8])
def test_native_scan_survives_add_remove_churn(bits):
    # The transposed cell-major code layout is a lazy cache; add/remove
    # must invalidate it, and the rebuilt layout must stay bitwise-parity
    # with the NumPy scan.
    rng = np.random.default_rng(7)
    vectors = corpus(n=3000, dim=16, seed=5)
    queries = queries_near(vectors, n_queries=32, seed=6)
    index = IVFPQIndex(bits=bits, rerank=0, min_train_size=256)
    index.rebuild(vectors)
    search_both_ways(index, vectors, queries, k=10)  # builds the layout

    extra = vectors[:200] + 0.3 * rng.standard_normal((200, vectors.shape[1]))
    grown = np.vstack([vectors, extra])
    index.add(grown, extra.shape[0])
    kept = np.ones(grown.shape[0], dtype=bool)
    kept[50:150] = False
    index.remove(kept)
    search_both_ways(index, grown[kept], queries, k=10)


@needs_kernels
@pytest.mark.parametrize("bits", [4, 8])
def test_raw_scan_sums_match_numpy(bits):
    vectors = corpus(n=1200, dim=16, seed=9)
    queries = queries_near(vectors, n_queries=4, seed=10)
    index = IVFPQIndex(bits=bits, rerank=0, min_train_size=128)
    index.rebuild(vectors)
    lut_u8, _, _ = index.pq.quantized_query_tables(queries)
    _, members, _, codes_t = index._scan_layout()

    packed = bits <= 4
    rows = index._code_buffer[: index._n][members]
    codes = index.pq.unpack_codes(rows) if packed else rows
    expected = (
        lut_u8[0][np.arange(index.pq.n_subspaces), codes.astype(np.int64)]
        .sum(axis=1, dtype=np.uint32)
    )
    sums = KERNELS.scan_sums(codes_t, lut_u8[0], packed=packed)
    np.testing.assert_array_equal(sums, expected)
    # A windowed scan must see the same columns.
    window = KERNELS.scan_sums(codes_t, lut_u8[0], packed=packed, start=100, count=64)
    np.testing.assert_array_equal(window, expected[100:164])


# ------------------------------------------------------- fallback + mode knobs
def test_forced_fallback_runs_numpy_path(tmp_path):
    # CC=/bin/false + an empty cache directory: the build must fail, the
    # failure must latch to the NumPy path (searches still work), and
    # native_kernels="on" must raise instead of silently degrading.  A
    # subprocess is required because ivfpq_kernels() latches per process.
    code = "\n".join(
        [
            "import numpy as np",
            "from repro.core.index import IVFPQIndex",
            "from repro.core.index_bench import clustered_corpus",
            "from repro.core.kernels import ivfpq_kernels, kernel_status",
            "assert ivfpq_kernels() is None",
            "status = kernel_status()",
            "assert status['active'] is False",
            "vectors = clustered_corpus(1200, 16, seed=3)",
            "index = IVFPQIndex(min_train_size=64, rerank=0)",
            "index.rebuild(vectors)",
            "d, ids = index.search(None, vectors[:8], 5)",
            "assert ids.shape == (8, 5)",
            "on = IVFPQIndex(min_train_size=64, native_kernels='on')",
            "on.rebuild(vectors)",
            "try:",
            "    on.search(vectors, vectors[:4], 5)",
            "except RuntimeError:",
            "    pass",
            "else:",
            "    raise AssertionError('native_kernels=on must raise without a compiler')",
            "print('fallback-ok')",
        ]
    )
    env = dict(os.environ)
    env.update(CC="/bin/false", REPRO_KERNEL_CACHE=str(tmp_path / "kcache"))
    env.pop("REPRO_NATIVE_KERNELS", None)
    env.pop("REPRO_DISABLE_KERNELS", None)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True, timeout=300
    )
    assert result.returncode == 0, result.stderr
    assert "fallback-ok" in result.stdout


def test_native_on_raises_when_kernels_unavailable(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_KERNELS", raising=False)
    monkeypatch.setattr(kern, "_build_attempted", True)
    monkeypatch.setattr(kern, "_cached", None)
    vectors = corpus(n=600, dim=12)
    index = IVFPQIndex(native_kernels="on", min_train_size=64)
    index.rebuild(vectors)
    with pytest.raises(RuntimeError, match="native_kernels"):
        index.search(vectors, vectors[:4], 5)


def test_mode_resolution_lattice(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_KERNELS", raising=False)
    assert kern.native_kernels_mode() == "auto"
    assert kern.resolve_mode("auto") == "auto"
    assert kern.resolve_mode("on") == "on"
    assert kern.resolve_mode("off") == "off"

    kern.set_native_kernels_mode("on")
    assert kern.resolve_mode("auto") == "on"
    assert kern.resolve_mode("off") == "off"  # off anywhere wins

    kern.set_native_kernels_mode("off")
    assert kern.resolve_mode("on") == "off"

    monkeypatch.setenv("REPRO_NATIVE_KERNELS", "bogus")
    assert kern.native_kernels_mode() == "auto"  # unrecognised -> auto
    with pytest.raises(ValueError):
        kern.set_native_kernels_mode("bogus")
    with pytest.raises(ValueError):
        kern.resolve_mode("bogus")


def test_invalid_knobs_raise():
    with pytest.raises(ValueError):
        IVFPQIndex(native_kernels="sometimes")
    with pytest.raises(ValueError):
        IVFPQIndex(max_cell_fraction=0.0)
    with pytest.raises(ValueError):
        IVFPQIndex(max_cell_fraction=1.5)
    with pytest.raises(ValueError):
        CoarseQuantizedIndex(max_cell_fraction=-0.1)


def test_kernel_status_shape(monkeypatch):
    monkeypatch.delenv("REPRO_NATIVE_KERNELS", raising=False)
    status = kern.kernel_status()
    assert set(status) >= {
        "mode", "compiler", "compiler_available", "active", "source_hash", "cache_dir"
    }
    assert status["mode"] == "auto"
    assert isinstance(status["compiler_available"], bool)
    assert len(status["source_hash"]) == 16
    # Mode off reports inactive regardless of the build result.
    monkeypatch.setenv("REPRO_NATIVE_KERNELS", "off")
    assert kern.kernel_status()["active"] is False


def test_kernel_cache_dir_override(monkeypatch, tmp_path):
    target = tmp_path / "kernels-here"
    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(target))
    assert kernel_cache_dir() == target
    assert target.is_dir()


def test_no_build_artifacts_in_source_tree():
    # The whole point of repro.kernel_cache: compiled objects never land in
    # the git-tracked tree again (one .so got committed once).
    assert not list(SRC_DIR.rglob("*.so"))


# --------------------------------------------------------- max_cell_fraction
def skewed_corpus(n=3000, dim=16, seed=0, hot_fraction=0.9):
    """A corpus where one tight blob holds ``hot_fraction`` of all rows —
    k-means reliably gives it a dominant cell without a cap."""
    rng = np.random.default_rng(seed)
    n_hot = int(n * hot_fraction)
    hot = 0.05 * rng.standard_normal((n_hot, dim))
    cold = 8.0 * rng.standard_normal((n - n_hot, dim)) + 25.0
    return np.vstack([hot, cold])


def cell_occupancy(index) -> np.ndarray:
    if isinstance(index, IVFPQIndex):
        assignments = index._assign_buffer[: index._n].astype(np.int64)
    else:
        assignments = index._assignments.astype(np.int64)
    return np.bincount(assignments, minlength=index._centroids.shape[0])


@pytest.mark.parametrize(
    "factory",
    [
        lambda frac: CoarseQuantizedIndex(
            n_cells=16, n_probe=4, min_train_size=64, max_cell_fraction=frac
        ),
        lambda frac: IVFPQIndex(
            n_cells=16, n_probe=4, rerank=32, min_train_size=64, max_cell_fraction=frac
        ),
    ],
    ids=["ivf", "ivfpq"],
)
def test_max_cell_fraction_caps_skewed_occupancy(factory):
    vectors = skewed_corpus()
    n = vectors.shape[0]

    uncapped = factory(None)
    uncapped.rebuild(vectors)
    cap = int(np.ceil(0.2 * n))
    assert cell_occupancy(uncapped).max() > cap  # the corpus really is skewed

    capped = factory(0.2)
    capped.rebuild(vectors)
    counts = cell_occupancy(capped)
    assert counts.max() <= cap
    assert counts.sum() == n  # every row still assigned somewhere

    # The capped index still answers queries over the whole corpus.
    queries = queries_near(vectors, n_queries=16, seed=3)
    _, ids = capped.search(vectors, queries, 10)
    assert ids.shape == (16, 10)
    assert (ids >= 0).all()

    # Churn keeps the (growing) cap enforced: append 300 more hot rows.
    rng = np.random.default_rng(11)
    fresh = 0.05 * rng.standard_normal((300, vectors.shape[1]))
    capped.add(np.vstack([vectors, fresh]), fresh.shape[0])
    grown_cap = int(np.ceil(0.2 * (n + 300)))
    assert cell_occupancy(capped).max() <= grown_cap


def test_max_cell_fraction_infeasible_cap_relaxes():
    # f so small that n_cells * cap < N: the cap must relax to an even
    # spread instead of dropping rows.
    vectors = skewed_corpus(n=1000)
    index = CoarseQuantizedIndex(
        n_cells=4, n_probe=4, min_train_size=64, max_cell_fraction=0.01
    )
    index.rebuild(vectors)
    counts = cell_occupancy(index)
    assert counts.sum() == 1000
    assert counts.max() <= int(np.ceil(1000 / 4))


def test_knobs_survive_spec_roundtrip():
    vectors = corpus(n=800, dim=12)
    for index in (
        CoarseQuantizedIndex(n_cells=8, min_train_size=64, max_cell_fraction=0.3),
        IVFPQIndex(
            n_cells=8, min_train_size=64, native_kernels="off", max_cell_fraction=0.25
        ),
    ):
        index.rebuild(vectors)
        clone = index_from_spec(index.spec())
        assert clone.spec() == index.spec()
