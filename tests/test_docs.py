"""The docs/ subsystem stays honest.

Three contracts, enforced in tier-1 so documentation cannot rot silently:

* every intra-repo markdown link in README.md and docs/ resolves to a
  real file;
* docs/wire-protocol.md matches the constants, caps, error codes and the
  example hexdump of :mod:`repro.serving.protocol` byte for byte, and
  docs/segment-format.md does the same for :mod:`repro.core.segment`;
* every public symbol of ``core/index.py``, the ``serving`` package and
  the ``scenarios`` package carries a docstring, docs/index-tuning.md
  documents every knob the CLI's single source of truth
  (:mod:`repro.core.knobs`) lists, and docs/scenarios.md documents every
  built-in scenario, trace generator and fault kind the engine exports.
"""

import importlib
import inspect
import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.knobs import INDEX_KNOB_HELP
from repro.serving import protocol

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

DOCUMENTED_MODULES = [
    "repro.core.index",
    "repro.core.knobs",
    "repro.core.segment",
    "repro.serving",
    "repro.serving.sharded_store",
    "repro.serving.scheduler",
    "repro.serving.manager",
    "repro.serving.frontend",
    "repro.serving.protocol",
    "repro.serving.loadgen",
    "repro.serving.bench",
    "repro.serving.tenancy",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.obs.export",
    "repro.scenarios",
    "repro.scenarios.corpus",
    "repro.scenarios.engine",
    "repro.scenarios.builtin",
    "repro.scenarios.strategies",
    "repro.scenarios.bench",
]


class TestMarkdownLinks:
    def test_doc_files_exist(self):
        assert (REPO / "docs" / "architecture.md").exists()
        assert (REPO / "docs" / "index-tuning.md").exists()
        assert (REPO / "docs" / "wire-protocol.md").exists()
        assert (REPO / "docs" / "scenarios.md").exists()

    @pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
    def test_intra_repo_links_resolve(self, path):
        text = path.read_text()
        broken = []
        for match in re.finditer(r"\[[^\]]+\]\(([^)\s]+)\)", text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if relative and not (path.parent / relative).exists():
                broken.append(target)
        assert not broken, f"{path.name} has broken links: {broken}"


class TestWireProtocolSpec:
    @pytest.fixture(scope="class")
    def spec(self):
        return (REPO / "docs" / "wire-protocol.md").read_text()

    def test_magic_and_struct_formats(self, spec):
        assert protocol.MAGIC.decode() == "RSF1"
        assert '"RSF1"' in spec
        assert "`!4sBI`" in spec and protocol.HEADER.format == "!4sBI"
        assert "`<III`" in spec and protocol.QUERY_HEADER.format == "<III"
        assert f"The {protocol.HEADER.size}-byte header" in spec

    def test_frame_type_values(self, spec):
        for name, value in [
            ("QUERY", protocol.QUERY),
            ("RESULT", protocol.RESULT),
            ("CONTROL", protocol.CONTROL),
            ("ERROR", protocol.ERROR),
        ]:
            assert re.search(rf"`{name}`\s*\|\s*{value}\s*\|", spec), (
                f"frame type {name}={value} not documented"
            )

    def test_caps(self, spec):
        assert f"`MAX_PAYLOAD` | {protocol.MAX_PAYLOAD} " in spec
        assert f"`MAX_BATCH`   | {protocol.MAX_BATCH} " in spec
        assert f"`MAX_DIM`     | {protocol.MAX_DIM} " in spec

    def test_tenant_block(self, spec):
        assert "`<H`" in spec and protocol.TENANT_HEADER.format == "<H"
        assert f"`MAX_TENANT` ({protocol.MAX_TENANT})" in spec
        assert f"`{protocol.TENANT_PATTERN.pattern}`" in spec

    def test_error_codes_documented(self, spec):
        # Every code the implementation can emit appears in the spec table.
        source = (REPO / "src/repro/serving/protocol.py").read_text()
        source += (REPO / "src/repro/serving/frontend.py").read_text()
        emitted = set(re.findall(r'ProtocolError\(\s*"([a-z-]+)"', source))
        documented = set(re.findall(r"\|\s*`([a-z-]+)`\s*\|\s*(?:yes|\*\*no\*\*)", spec))
        assert emitted <= documented, f"undocumented error codes: {emitted - documented}"

    def test_control_ops_documented(self, spec):
        source = (REPO / "src/repro/serving/frontend.py").read_text()
        handled = set(re.findall(r'if op == "([a-z]+)"', source))
        for op in handled:
            assert f"`{op}`" in spec, f"control op {op!r} not documented"

    def test_example_hexdump_is_exact(self, spec):
        # Parse the hex columns of the example block and compare against a
        # real encode of the documented query (1 query, dim 2, [1.0, 2.0],
        # top_n 3) — the spec's bytes must be the implementation's bytes.
        block = spec.split("### Example hexdump", 1)[1].split("```")[1]
        raw = []
        for line in block.strip().splitlines():
            columns = re.split(r"\s{4,}", line.strip(), maxsplit=1)
            raw.extend(re.findall(r"\b[0-9a-f]{2}\b", columns[0]))
        frame = protocol.encode_query(np.array([[1.0, 2.0]]), top_n=3)
        assert bytes(int(byte, 16) for byte in raw) == frame

    def test_result_and_error_fields(self, spec):
        assert '"generation"' in spec and '"predictions"' in spec
        assert '"recoverable"' in spec


class TestSegmentFormatSpec:
    @pytest.fixture(scope="class")
    def spec(self):
        return (REPO / "docs" / "segment-format.md").read_text()

    def test_magic_and_struct_formats(self, spec):
        from repro.core import segment

        assert segment.MAGIC == b"RSG1" and '"RSG1"' in spec
        assert "`<4sBBHQQI36x`" in spec and segment.HEADER.format == "<4sBBHQQI36x"
        assert "`<64s8sQQI4x8Q`" in spec and segment.ENTRY.format == "<64s8sQQI4x8Q"
        assert f"Header ({segment.HEADER_SIZE} bytes" in spec
        assert f"Array-table entry ({segment.ENTRY_SIZE} bytes each" in spec
        assert f"checksum at offset {segment.CHECKSUM_OFFSET}" in spec

    def test_alignment_constants(self, spec):
        from repro.core import segment

        assert f"`PAGE_ALIGNMENT`  | {segment.PAGE_ALIGNMENT} " in spec
        assert f"`ARRAY_ALIGNMENT` | {segment.ARRAY_ALIGNMENT} " in spec
        assert segment.FORMAT_VERSION == 1 and "currently 1" in spec

    def test_example_hexdump_is_exact(self, spec):
        # Parse the hex columns of the example block and compare against a
        # real encode of the documented segment (one uint8 array "codes"
        # of shape (2, 3)).  The doc elides the zero padding between the
        # array table and the page-aligned data region, so the dumped
        # bytes are header+table followed by the data region.
        from repro.core import segment

        blob = segment.pack_segment({"codes": np.arange(6, dtype=np.uint8).reshape(2, 3)})
        _, _, _, n_arrays, data_offset, total, _ = segment.HEADER.unpack_from(blob, 0)
        table_end = segment.HEADER_SIZE + n_arrays * segment.ENTRY_SIZE
        assert blob[table_end:data_offset] == b"\x00" * (data_offset - table_end)

        block = spec.split("### Example hexdump", 1)[1].split("```")[1]
        raw = []
        for line in block.strip().splitlines():
            columns = re.split(r"\s{4,}", line.strip(), maxsplit=1)
            raw.extend(re.findall(r"\b[0-9a-f]{2}\b", columns[0]))
        assert bytes(int(byte, 16) for byte in raw) == blob[:table_end] + blob[data_offset:total]

    def test_storage_tiers_documented(self, spec):
        from repro.serving.sharded_store import STORAGE_TIERS

        for tier in STORAGE_TIERS:
            assert f"`{tier}`" in spec, f"storage tier {tier!r} not documented"

    def test_archive_schema_names_match_store_writes(self, spec):
        source = (REPO / "src/repro/core/reference_store.py").read_text()
        for name in ("embeddings", "label_codes", "class_names", "meta", "index_state__"):
            assert f"`{name}" in spec, f"archive array {name!r} not documented"
            assert name in source


class TestScenarioDocs:
    @pytest.fixture(scope="class")
    def guide(self):
        return (REPO / "docs" / "scenarios.md").read_text()

    def test_every_builtin_scenario_documented(self, guide):
        from repro.scenarios import builtin_scenarios

        for name in builtin_scenarios():
            assert f"`{name}`" in guide, f"built-in scenario {name!r} not documented"

    def test_generators_and_faults_documented(self, guide):
        from repro.scenarios import FAULT_KINDS, GENERATOR_KINDS

        for kind in (*GENERATOR_KINDS, *FAULT_KINDS):
            assert f"`{kind}`" in guide, f"scenario kind {kind!r} not documented"

    def test_cli_entry_points_documented(self, guide):
        assert "repro scenario run" in guide
        assert "repro scenario list" in guide
        assert "BENCH_8" in guide


class TestKnobSync:
    def test_index_tuning_covers_every_knob(self):
        tuning = (REPO / "docs" / "index-tuning.md").read_text()
        for knob in INDEX_KNOB_HELP:
            assert f"`{knob}`" in tuning, f"docs/index-tuning.md misses knob {knob!r}"

    def test_cli_exposes_every_knob_on_index_bench(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if action.__class__.__name__ == "_SubParsersAction"
        )
        for command in ("experiment", "index-bench"):
            help_text = subparsers.choices[command].format_help()
            for knob in INDEX_KNOB_HELP:
                flag = "--" + knob.replace("_", "-")
                assert flag in help_text, f"repro {command} misses {flag}"


def _public_symbols_missing_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    if not (module.__doc__ or "").strip():
        missing.append(module_name)
    for attr, obj in vars(module).items():
        if attr.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-exports are documented where they live
        if not (obj.__doc__ or "").strip():
            missing.append(f"{module_name}.{attr}")
        if inspect.isclass(obj):
            for name, member in vars(obj).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(member) or isinstance(member, property)):
                    continue
                target = member.fget if isinstance(member, property) else member
                if target is None or not (target.__doc__ or "").strip():
                    missing.append(f"{module_name}.{attr}.{name}")
    return missing


class TestPublicDocstrings:
    @pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
    def test_public_api_is_docstringed(self, module_name):
        missing = _public_symbols_missing_docstrings(module_name)
        assert not missing, f"public symbols without docstrings: {missing}"
