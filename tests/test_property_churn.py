"""Property-based churn harness for the serving storage layer.

Two stateful harnesses share one core:

* :class:`MultiTenantChurnCore` drives churn through a
  :class:`~repro.serving.tenancy.TenantRegistry` with a live
  :class:`~repro.serving.scheduler.BatchScheduler` on top — when
  `hypothesis`_ is installed its :class:`RuleBasedStateMachine` wrapper
  explores op interleavings with shrinking; otherwise a seeded stdlib
  ``random`` driver walks the same rules, so the properties hold on
  minimal environments too.  Invariants: full-ranking equivalence against
  a per-tenant flat exact oracle, zero failed tickets, and tenant
  isolation (mutating one tenant never moves another tenant's generation
  or leaks its labels into another tenant's rankings).

* :class:`ChurnHarness` (stdlib-random, schemathesis-style) drives a long
  randomized sequence of ``add`` / ``remove_class`` / ``replace_class`` /
  ``save``+``load`` / ``rebalance`` operations, applied *identically* to

.. _hypothesis: https://hypothesis.readthedocs.io/

* a flat :class:`ReferenceStore` with an :class:`ExactIndex` (the oracle),
* a sharded store whose shards run :class:`ExactIndex`,
* a sharded store on :class:`CoarseQuantizedIndex` probing every cell, and
* a sharded store on :class:`IVFPQIndex` probing every cell with
  ``rerank >= k``,

and after **every** step classifies a fresh query batch through all four.
The invariants (the acceptance criteria of the serving layer, stated once
instead of once per hand-written scenario):

1. full ranked predictions agree bit-for-bit across all stores — sharding,
   probe-all IVF, re-ranked IVF-PQ, persistence round-trips and rebalance
   moves never change a single ranking;
2. zero queries fail at any step (no exceptions, no ``None`` results);
3. the flat read surface (sizes, labels, global row order) of every
   sharded store mirrors the oracle exactly.

Runs are reproducible from the seed printed in the parametrization; CI
pins the seeds.
"""

import itertools
import random

import numpy as np
import pytest

from repro.config import ClassifierConfig
from repro.core import KNNClassifier, ReferenceStore
from repro.core.index import CoarseQuantizedIndex, ExactIndex, IVFPQIndex
from repro.serving import (
    BatchScheduler,
    DeploymentManager,
    ReplicaSet,
    ShardedReferenceStore,
    TenantRegistry,
)

try:
    from hypothesis import settings
    from hypothesis import strategies as st
    from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - minimal environments
    HAVE_HYPOTHESIS = False

DIM = 6
K = 7
PROBE_ALL = 1_000_000  # n_probe >= n_cells degrades to an exact scan
MIN_TRAIN = 24  # low enough that per-shard quantizers actually train mid-run


def index_factories():
    """The three engines under test; approximate ones configured to be
    provably exact (probe every cell, re-rank at least k candidates)."""
    return {
        "exact": lambda: ExactIndex(),
        "ivf": lambda: CoarseQuantizedIndex(n_probe=PROBE_ALL, min_train_size=MIN_TRAIN),
        "ivfpq": lambda: IVFPQIndex(
            n_probe=PROBE_ALL,
            rerank=64,
            n_subspaces=DIM,
            min_train_size=MIN_TRAIN,
        ),
    }


class ChurnHarness:
    """The stateful system under test plus its oracle."""

    def __init__(self, seed: int, n_shards: int = 3, assignment: str = "hash") -> None:
        self.rng = random.Random(seed)
        self.n_shards = n_shards
        self.assignment = assignment
        self.flat = ReferenceStore(DIM)
        self.stores = {
            name: ShardedReferenceStore(
                DIM, n_shards, assignment=assignment, index_factory=factory
            )
            for name, factory in index_factories().items()
        }
        self.centers = {}
        self.classifier_config = ClassifierConfig(k=K)
        self.label_counter = itertools.count()
        self.ops_applied = 0

    # ------------------------------------------------------------- generators
    def _numpy_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.rng.getrandbits(32))

    def _class_batch(self, label: str, n_rows: int) -> np.ndarray:
        center = self.centers[label]
        return center + self._numpy_rng().normal(0.0, 1.0, size=(n_rows, DIM))

    def _new_label(self) -> str:
        label = f"page-{next(self.label_counter):04d}"
        self.centers[label] = self._numpy_rng().normal(0.0, 8.0, size=DIM)
        return label

    def _pick_label(self):
        labels = self.flat.class_names
        return self.rng.choice(labels) if labels else None

    def all_stores(self):
        return [("flat", self.flat)] + list(self.stores.items())

    # ------------------------------------------------------------- operations
    def op_add_new_class(self) -> str:
        label = self._new_label()
        batch = self._class_batch(label, self.rng.randint(3, 18))
        for _, store in self.all_stores():
            store.add(batch, [label] * batch.shape[0])
        return f"add_new_class({label})"

    def op_add_to_existing(self) -> str:
        label = self._pick_label()
        if label is None:
            return self.op_add_new_class()
        batch = self._class_batch(label, self.rng.randint(1, 9))
        for _, store in self.all_stores():
            store.add(batch, [label] * batch.shape[0])
        return f"add_to_existing({label})"

    def op_remove_class(self) -> str:
        if self.flat.n_classes <= 1:
            return self.op_add_new_class()
        label = self._pick_label()
        for _, store in self.all_stores():
            store.remove_class(label)
        return f"remove_class({label})"

    def op_replace_class(self) -> str:
        label = self._pick_label()
        if label is None:
            return self.op_add_new_class()
        batch = self._class_batch(label, self.rng.randint(2, 12))
        for _, store in self.all_stores():
            store.replace_class(label, batch)
        return f"replace_class({label})"

    def op_rebalance(self) -> str:
        threshold = self.rng.choice([0.0, 0.1, 0.25, 0.5])
        moved = {
            name: len(store.rebalance(threshold=threshold))
            for name, store in self.stores.items()
        }
        return f"rebalance(threshold={threshold}, moved={moved})"

    def op_save_load(self, tmp_path) -> str:
        """Round-trip every sharded store through npz persistence.

        The reloaded store must keep serving identically: the flat row
        order is the global-id order, and trained index state (IVF cells,
        PQ codebooks + codes) is adopted rather than retrained.
        """
        factories = index_factories()
        for name in list(self.stores):
            path = tmp_path / f"churn-{name}-{self.ops_applied}.npz"
            self.stores[name].to_reference_store().save(path)
            reloaded = ReferenceStore.load(path, index=factories[name]())
            self.stores[name] = ShardedReferenceStore.from_reference_store(
                reloaded,
                n_shards=self.n_shards,
                assignment=self.assignment,
                index_factory=factories[name],
            )
        return "save_load()"

    # -------------------------------------------------------------- invariants
    def check_read_surface(self) -> None:
        for name, store in self.stores.items():
            assert len(store) == len(self.flat), name
            assert store.class_names == self.flat.class_names, name
            assert np.array_equal(store.label_codes, self.flat.label_codes), name
            assert np.array_equal(store.embeddings, self.flat.embeddings), name
            assert sum(store.shard_sizes()) == len(self.flat), name

    def check_predictions(self) -> str:
        """Classify a fresh batch everywhere; rankings must be identical."""
        if len(self.flat) == 0:
            return "empty store, nothing to classify"
        rng = self._numpy_rng()
        labels = list(self.centers.keys() & set(self.flat.class_names))
        near = np.stack(
            [
                self.centers[self.rng.choice(labels)] + rng.normal(0.0, 1.5, size=DIM)
                for _ in range(6)
            ]
        )
        far = rng.normal(0.0, 1.0, size=(2, DIM)) * 40.0  # open-world outliers
        queries = np.concatenate([near, far], axis=0)
        oracle = KNNClassifier(self.flat, self.classifier_config).predict(queries)
        assert len(oracle) == queries.shape[0] and all(p is not None for p in oracle)
        for name, store in self.stores.items():
            predictions = KNNClassifier(store, self.classifier_config).predict(queries)
            assert all(p is not None for p in predictions), name
            for position, (got, expected) in enumerate(zip(predictions, oracle)):
                assert got.ranked_labels == expected.ranked_labels, (
                    f"{name} ranking diverged from the flat exact oracle on "
                    f"query {position} after {self.ops_applied} ops"
                )
                assert got.scores == pytest.approx(expected.scores), name
        return f"checked {queries.shape[0]} queries"

    # --------------------------------------------------------------------- run
    def run(self, n_ops: int, tmp_path) -> None:
        # Weighted op mix: adds dominate (corpora grow), persistence is
        # periodic (it is the slowest op), everything else is churn.
        weighted = (
            [self.op_add_new_class] * 3
            + [self.op_add_to_existing] * 5
            + [self.op_remove_class] * 3
            + [self.op_replace_class] * 5
            + [self.op_rebalance] * 3
        )
        for _ in range(4):  # a corpus to churn against
            self.op_add_new_class()
            self.ops_applied += 1
        while self.ops_applied < n_ops:
            if self.ops_applied % 40 == 20:
                description = self.op_save_load(tmp_path)
            else:
                description = self.rng.choice(weighted)()
            self.ops_applied += 1
            self.check_predictions(), description
            if self.ops_applied % 10 == 0:
                self.check_read_surface()
        self.check_read_surface()


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("assignment", ["hash", "balanced"])
def test_churn_sequence_preserves_equivalence(seed, assignment, tmp_path):
    """>= 200 randomized ops with queries after every step (CI-pinned seeds)."""
    harness = ChurnHarness(seed=seed, assignment=assignment)
    harness.run(200, tmp_path)
    assert harness.ops_applied >= 200
    # The run must have exercised trained quantizers, not just the
    # brute-force fallback of tiny shards.
    assert any(
        shard.store.index.trained
        for shard in harness.stores["ivfpq"]._shards
        if len(shard.store)
    ) or max(harness.stores["ivfpq"].shard_sizes()) < MIN_TRAIN


def test_rebalance_moves_preserve_global_ids_and_predictions():
    """Directed version of the property: heavy skew, then rebalance."""
    rng = np.random.default_rng(7)
    flat = ReferenceStore(DIM)
    sharded = ShardedReferenceStore(DIM, 3, assignment="hash")
    # One giant class plus many small ones lands everything lopsided.
    for store in (flat, sharded):
        store.add(rng.standard_normal((90, DIM)) + 5.0, ["hot-page"] * 90)
        for i in range(12):
            store.add(
                rng.standard_normal((5, DIM)) - 5.0 * i, [f"cold-{i:02d}"] * 5
            )
        rng = np.random.default_rng(7)  # same data both times
    queries = np.asarray(flat.embeddings)[::7] + 0.1
    config = ClassifierConfig(k=K)
    before = KNNClassifier(sharded, config).predict(queries)
    spread_before = sharded.shard_spread()
    moves = sharded.rebalance(threshold=0.2)
    assert moves, "the skewed layout must trigger at least one move"
    assert sharded.shard_spread() < spread_before
    assert np.array_equal(sharded.embeddings, flat.embeddings)  # global ids stable
    after = KNNClassifier(sharded, config).predict(queries)
    oracle = KNNClassifier(flat, config).predict(queries)
    for a, b, c in zip(before, after, oracle):
        assert a.ranked_labels == b.ranked_labels == c.ranked_labels
    # Idempotence: a balanced store has nothing to move.
    assert sharded.rebalance(threshold=0.2) == []


def test_rebalance_never_splits_a_class():
    rng = np.random.default_rng(11)
    sharded = ShardedReferenceStore(DIM, 2, assignment="balanced")
    sharded.add(rng.standard_normal((60, DIM)), ["big"] * 60)
    sharded.add(rng.standard_normal((4, DIM)), ["small"] * 4)
    assert sharded.shard_sizes() == [60, 4]
    # The donor's only class is bigger than the spread itself: moving it
    # would just swap the imbalance to the other shard, so nothing moves —
    # classes are the unit of placement and are never split across shards.
    assert sharded.rebalance(threshold=0.0) == []


# --------------------------------------------------------- multi-tenant rules
TENANTS = ("t-a", "t-b")


class MultiTenantChurnCore:
    """Rule implementations shared by the hypothesis machine and the
    stdlib fallback driver: two tenants behind one registry + scheduler,
    each mirrored by a flat exact oracle."""

    def __init__(self) -> None:
        self.registry = TenantRegistry(self._make_manager(), max_tenants=8)
        for tenant in TENANTS:
            self.registry.register(tenant, self._make_manager(), owned=True)
        self.scheduler = BatchScheduler(
            self.registry, max_batch_size=8, max_latency_s=0.001, n_executors=2
        )
        self.scheduler.__enter__()
        self.oracles = {tenant: ReferenceStore(DIM) for tenant in TENANTS}
        self.centers = {tenant: {} for tenant in TENANTS}
        self.mutations = {tenant: 0 for tenant in TENANTS}
        self.tickets = []
        self.counter = itertools.count()

    @staticmethod
    def _make_manager() -> DeploymentManager:
        return DeploymentManager(ShardedReferenceStore(DIM, 2), ClassifierConfig(k=K))

    def close(self) -> None:
        self.scheduler.__exit__(None, None, None)
        self.registry.close()

    # ---------------------------------------------------------------- rules
    def add_class(self, tenant: str, seed: int) -> None:
        rng = np.random.default_rng(seed)
        label = f"{tenant}/page-{next(self.counter):04d}"
        center = rng.normal(0.0, 8.0, size=DIM)
        batch = center + rng.standard_normal((5, DIM))
        self.centers[tenant][label] = center
        self.oracles[tenant].add(batch, [label] * 5)
        self.registry.get(tenant).add_class(label, batch)
        self.mutations[tenant] += 1

    def replace_class(self, tenant: str, seed: int) -> None:
        labels = self.oracles[tenant].class_names
        if not labels:
            return self.add_class(tenant, seed)
        rng = np.random.default_rng(seed)
        label = labels[int(rng.integers(len(labels)))]
        batch = self.centers[tenant][label] + rng.standard_normal((4, DIM))
        self.oracles[tenant].replace_class(label, batch)
        self.registry.get(tenant).replace_class(label, batch)
        self.mutations[tenant] += 1

    def remove_class(self, tenant: str, seed: int) -> None:
        labels = self.oracles[tenant].class_names
        if len(labels) <= 1:
            return self.add_class(tenant, seed)
        rng = np.random.default_rng(seed)
        label = labels[int(rng.integers(len(labels)))]
        self.oracles[tenant].remove_class(label)
        self.centers[tenant].pop(label)
        self.registry.get(tenant).remove_class(label)
        self.mutations[tenant] += 1

    def submit_queries(self, tenant: str, seed: int) -> None:
        if not self.oracles[tenant].class_names:
            return
        rng = np.random.default_rng(seed)
        centers = list(self.centers[tenant].values())
        for _ in range(3):
            query = centers[int(rng.integers(len(centers)))] + rng.standard_normal(DIM)
            self.tickets.append((tenant, self.scheduler.submit(query, tenant=tenant)))

    # ----------------------------------------------------------- invariants
    def check_equivalence_and_isolation(self, seed: int) -> None:
        rng = np.random.default_rng(seed)
        for tenant in TENANTS:
            oracle_store = self.oracles[tenant]
            manager = self.registry.get(tenant)
            # Generations are per-tenant: exactly this tenant's mutations.
            assert manager.generation == self.mutations[tenant], tenant
            if not oracle_store.class_names:
                continue
            centers = list(self.centers[tenant].values())
            queries = np.stack(
                [
                    centers[int(rng.integers(len(centers)))] + rng.standard_normal(DIM)
                    for _ in range(4)
                ]
            )
            oracle = KNNClassifier(oracle_store, ClassifierConfig(k=K)).predict(queries)
            served = manager.snapshot().predict(queries)
            for got, expected in zip(served, oracle):
                assert got.ranked_labels == expected.ranked_labels, tenant
                assert got.scores == pytest.approx(expected.scores), tenant
                # Tenant isolation: every ranked label carries this
                # tenant's namespace prefix, never a neighbour's.
                assert all(label.startswith(f"{tenant}/") for label in got.ranked_labels)

    def drain_tickets(self) -> None:
        results = [(tenant, ticket.result(timeout=30.0)) for tenant, ticket in self.tickets]
        assert all(r is not None and r.ranked_labels for _, r in results)
        assert self.scheduler.stats.failed == 0
        for tenant, result in results:
            # Zero failed tickets AND no cross-tenant label in any ranking.
            assert all(label.startswith(f"{tenant}/") for label in result.ranked_labels)
        self.tickets = []


if HAVE_HYPOTHESIS:

    class MultiTenantChurnMachine(RuleBasedStateMachine):
        """Hypothesis explores op interleavings across the two tenants."""

        def __init__(self) -> None:
            super().__init__()
            self.core = MultiTenantChurnCore()

        tenants = st.sampled_from(TENANTS)
        seeds = st.integers(min_value=0, max_value=2**32 - 1)

        @rule(tenant=tenants, seed=seeds)
        def add_class(self, tenant, seed):
            self.core.add_class(tenant, seed)

        @rule(tenant=tenants, seed=seeds)
        def replace_class(self, tenant, seed):
            self.core.replace_class(tenant, seed)

        @rule(tenant=tenants, seed=seeds)
        def remove_class(self, tenant, seed):
            self.core.remove_class(tenant, seed)

        @rule(tenant=tenants, seed=seeds)
        def submit_queries(self, tenant, seed):
            self.core.submit_queries(tenant, seed)

        @invariant()
        def equivalence_and_isolation(self):
            self.core.check_equivalence_and_isolation(seed=0)

        def teardown(self):
            try:
                self.core.drain_tickets()
            finally:
                self.core.close()

    MultiTenantChurnMachine.TestCase.settings = settings(
        max_examples=5, stateful_step_count=15, deadline=None
    )
    TestMultiTenantChurn = MultiTenantChurnMachine.TestCase


@pytest.mark.parametrize("seed", [3, 4])
def test_multi_tenant_churn_stdlib_fallback(seed):
    """The same rules driven by stdlib random — the no-hypothesis path,
    kept running everywhere so both drivers stay honest."""
    driver = random.Random(seed)
    core = MultiTenantChurnCore()
    try:
        rules = [core.add_class, core.replace_class, core.remove_class, core.submit_queries]
        for step in range(40):
            rule_fn = driver.choice(rules)
            rule_fn(driver.choice(TENANTS), driver.getrandbits(32))
            if step % 5 == 4:
                core.check_equivalence_and_isolation(driver.getrandbits(32))
        core.drain_tickets()
    finally:
        core.close()


def test_manager_churn_with_running_scheduler_zero_failures(tmp_path):
    """Ops through the zero-downtime manager while a background scheduler
    (replica-routed) keeps classifying: no query may ever fail."""
    seed_rng = random.Random(42)
    rng = np.random.default_rng(43)
    flat = ReferenceStore(DIM)
    centers = {f"page-{i:03d}": rng.normal(0.0, 8.0, size=DIM) for i in range(10)}
    for label, center in centers.items():
        flat.add(center + rng.standard_normal((8, DIM)), [label] * 8)
    replica_set = ReplicaSet.in_process(2, router="round_robin")
    manager = DeploymentManager(
        ShardedReferenceStore.from_reference_store(flat, n_shards=3, executor=replica_set),
        ClassifierConfig(k=5),
    )
    scheduler = BatchScheduler(manager, max_batch_size=8, max_latency_s=0.001, n_executors=2)
    tickets = []
    with scheduler:
        for step in range(60):
            label = seed_rng.choice(sorted(centers))
            batch = centers[label] + rng.standard_normal((6, DIM))
            action = step % 4
            if action == 0:
                manager.replace_class(label, batch)
            elif action == 1:
                manager.add_class(f"new-{step:03d}", batch + 3.0)
            elif action == 2 and manager.store.n_classes > 2:
                manager.remove_class(sorted(manager.store.class_names)[-1])
            else:
                manager.rebalance(threshold=0.1)
            for _ in range(4):
                query = centers[label] + rng.standard_normal(DIM)
                tickets.append(scheduler.submit(query))
    results = [ticket.result(timeout=30.0) for ticket in tickets]
    assert len(results) == 240
    assert all(r is not None and r.ranked_labels for r in results)
    assert scheduler.stats.failed == 0
    assert sum(replica_set.routed_counts()) > 0
    manager.close()
