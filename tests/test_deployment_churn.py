"""Deployment round-trips under churn, atomic writes and serving warm restarts.

The operational contract: ``save -> load -> adapt (add/remove/replace) ->
predict`` must behave exactly like a fingerprinter that was never
persisted, including the open-world detector's calibration and the
persisted index spec, and an interrupted or incomplete save must never be
mistaken for a valid deployment.
"""

import json

import numpy as np
import pytest

from repro.config import ClassifierConfig
from repro.core import (
    AdaptiveFingerprinter,
    CoarseQuantizedIndex,
    DeploymentError,
    IVFPQIndex,
    OpenWorldDetector,
    load_deployment,
    save_deployment,
)
from repro.serving import DeploymentManager
from repro.traces import SequenceExtractor, Trace, collect_dataset, reference_test_split
from repro.web import WikipediaLikeGenerator

from tests.conftest import tiny_hyperparameters, tiny_training_config


@pytest.fixture(scope="module")
def trained():
    """A small provisioned+initialised fingerprinter and its datasets."""
    website = WikipediaLikeGenerator(n_pages=6, seed=71).generate()
    extractor = SequenceExtractor(max_sequences=3, sequence_length=20)
    dataset = collect_dataset(website, extractor, visits_per_page=10, seed=5)
    reference, test = reference_test_split(dataset, 0.8, seed=0)
    fingerprinter = AdaptiveFingerprinter(
        n_sequences=3,
        sequence_length=20,
        hyperparameters=tiny_hyperparameters(),
        training_config=tiny_training_config(epochs=5, pairs_per_epoch=500),
        classifier_config=ClassifierConfig(k=8),
        extractor=extractor,
        seed=7,
    )
    fingerprinter.provision(reference)
    fingerprinter.initialize(reference)
    return fingerprinter, reference, test


def churn(fingerprinter, test):
    """One adaptation round: replace a page, add a new one, drop a third."""
    classes = fingerprinter.reference_store.classes
    replaced, dropped = classes[0], classes[1]
    fresh = [Trace(label=replaced, website="w", sequences=test.data[i]) for i in range(3)]
    fingerprinter.adapt(fresh, replace=True)
    new_page = [Trace(label="page-brand-new", website="w", sequences=test.data[i]) for i in range(2)]
    fingerprinter.adapt(new_page, replace=False)
    fingerprinter.remove_page(dropped)


class TestRoundTripUnderChurn:
    def test_adapt_after_load_matches_never_persisted(self, trained, tmp_path):
        original, _, test = trained
        directory = tmp_path / "deployment"
        save_deployment(original, directory)
        restored = load_deployment(directory)

        # Apply the identical churn to the restored copy and the
        # never-persisted original; every prediction must agree.
        churn(original, test)
        churn(restored, test)
        embeddings = original.model.embed_dataset(test)
        observations = [sequences.T for sequences in test.data]
        for a, b in zip(original.fingerprint_many(observations), restored.fingerprint_many(observations)):
            assert a.ranked_labels == b.ranked_labels
            assert a.scores == pytest.approx(b.scores)
        assert restored.reference_store.classes == original.reference_store.classes
        assert np.allclose(embeddings, restored.model.embed_dataset(test))

    def test_openworld_calibration_survives_roundtrip(self, trained, tmp_path):
        original, _, _ = trained
        directory = tmp_path / "deployment-ow"
        save_deployment(original, directory)
        restored = load_deployment(directory)
        original_detector = OpenWorldDetector(original.reference_store, neighbour=3, percentile=95)
        restored_detector = OpenWorldDetector(restored.reference_store, neighbour=3, percentile=95)
        assert restored_detector.threshold == pytest.approx(original_detector.threshold)

    def test_index_spec_preserved_through_churn(self, trained, tmp_path):
        original, reference, test = trained
        ivf = AdaptiveFingerprinter(
            n_sequences=3,
            sequence_length=20,
            hyperparameters=original.model.hyperparameters,
            classifier_config=ClassifierConfig(k=8),
            extractor=original.extractor,
            seed=7,
            index_factory=lambda: CoarseQuantizedIndex(n_cells=4, n_probe=4, min_train_size=8),
        )
        original.model.save(tmp_path / "weights.npz")
        ivf.model.load(tmp_path / "weights.npz")
        ivf.mark_provisioned()
        ivf.initialize(reference)
        spec = ivf.reference_store.index.spec()
        assert spec["kind"] == "ivf"

        directory = tmp_path / "deployment-ivf"
        save_deployment(ivf, directory)
        restored = load_deployment(directory)
        assert restored.reference_store.index.spec() == spec
        churn(restored, test)
        churn(ivf, test)
        # Adaptation keeps the restored store on the same engine.
        assert restored.reference_store.index.spec() == spec
        observations = [sequences.T for sequences in test.data[:4]]
        for a, b in zip(ivf.fingerprint_many(observations), restored.fingerprint_many(observations)):
            assert a.ranked_labels == b.ranked_labels

    def test_ivfpq_codebooks_roundtrip_without_retrain(self, trained, tmp_path):
        original, reference, test = trained
        pq = AdaptiveFingerprinter(
            n_sequences=3,
            sequence_length=20,
            hyperparameters=original.model.hyperparameters,
            classifier_config=ClassifierConfig(k=8),
            extractor=original.extractor,
            seed=7,
            index_factory=lambda: IVFPQIndex(
                n_cells=4, n_probe=4, n_subspaces=4, rerank=32, min_train_size=8
            ),
        )
        original.model.save(tmp_path / "weights.npz")
        pq.model.load(tmp_path / "weights.npz")
        pq.mark_provisioned()
        pq.initialize(reference)
        spec = pq.reference_store.index.spec()
        assert spec["kind"] == "ivfpq"
        assert pq.reference_store.index.trained

        directory = tmp_path / "deployment-ivfpq"
        save_deployment(pq, directory)
        restored = load_deployment(directory)
        assert restored.reference_store.index.spec() == spec
        # Codebooks, codes and centroids were adopted from the archive, not
        # re-learned (k-means is seeded, but adoption must be exact).
        assert np.array_equal(
            restored.reference_store.index._centroids, pq.reference_store.index._centroids
        )
        assert np.array_equal(restored.reference_store.index.codes, pq.reference_store.index.codes)

        churn(restored, test)
        churn(pq, test)
        assert restored.reference_store.index.spec() == spec
        observations = [sequences.T for sequences in test.data[:4]]
        for a, b in zip(pq.fingerprint_many(observations), restored.fingerprint_many(observations)):
            assert a.ranked_labels == b.ranked_labels


class TestAtomicWrites:
    def test_overwrite_leaves_single_clean_directory(self, trained, tmp_path):
        original, _, _ = trained
        directory = tmp_path / "deployment"
        save_deployment(original, directory)
        save_deployment(original, directory)  # second save swaps atomically
        assert sorted(p.name for p in directory.iterdir()) == [
            "config.json",
            "references.rsg",
            "weights.npz",
        ]
        # No staging/retired leftovers next to the deployment.
        assert [p.name for p in tmp_path.iterdir()] == ["deployment"]
        assert load_deployment(directory).provisioned

    def test_missing_file_raises_deployment_error(self, trained, tmp_path):
        original, _, _ = trained
        directory = tmp_path / "deployment"
        save_deployment(original, directory)
        (directory / "weights.npz").unlink()
        with pytest.raises(DeploymentError, match="weights.npz"):
            load_deployment(directory)

    def test_unknown_index_spec_raises_deployment_error(self, trained, tmp_path):
        original, _, _ = trained
        directory = tmp_path / "deployment"
        save_deployment(original, directory)
        config = json.loads((directory / "config.json").read_text())
        config["index"] = {"kind": "warp-drive"}
        (directory / "config.json").write_text(json.dumps(config))
        with pytest.raises(DeploymentError, match="warp-drive"):
            load_deployment(directory)

    def test_corrupt_config_raises_deployment_error(self, trained, tmp_path):
        original, _, _ = trained
        directory = tmp_path / "deployment"
        save_deployment(original, directory)
        (directory / "config.json").write_text("{ not json")
        with pytest.raises(DeploymentError, match="config.json"):
            load_deployment(directory)

    def test_malformed_schema_raises_deployment_error(self, trained, tmp_path):
        original, _, _ = trained
        directory = tmp_path / "deployment"
        save_deployment(original, directory)
        config = json.loads((directory / "config.json").read_text())
        del config["hyperparameters"]
        (directory / "config.json").write_text(json.dumps(config))
        with pytest.raises(DeploymentError, match="config.json"):
            load_deployment(directory)

    def test_successful_save_cleans_stale_backups(self, trained, tmp_path):
        original, _, _ = trained
        stale = tmp_path / ".deployment.replaced.99"
        stale.mkdir()
        (stale / "config.json").write_text("{}")
        save_deployment(original, tmp_path / "deployment")
        assert not stale.exists()
        assert load_deployment(tmp_path / "deployment").provisioned

    def test_non_object_config_raises_deployment_error(self, trained, tmp_path):
        original, _, _ = trained
        directory = tmp_path / "deployment"
        save_deployment(original, directory)
        (directory / "config.json").write_text("[]")
        with pytest.raises(DeploymentError, match="JSON object"):
            load_deployment(directory)

    def test_interrupted_overwrite_recovers_previous_deployment(self, trained, tmp_path):
        original, _, _ = trained
        directory = tmp_path / "deployment"
        save_deployment(original, directory)
        # Simulate a crash between the overwrite's two renames: the target
        # is gone, the previous deployment sits under the retired name.
        retired = tmp_path / ".deployment.replaced.12345"
        directory.rename(retired)
        restored = load_deployment(directory)
        assert restored.provisioned and restored.initialized
        assert directory.is_dir() and not retired.exists()

    def test_missing_directory_is_both_error_kinds(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_deployment(tmp_path / "absent")
        with pytest.raises(DeploymentError):
            load_deployment(tmp_path / "absent")


class TestServingWarmRestart:
    def test_manager_save_load_preserves_predictions(self, trained, tmp_path):
        original, _, test = trained
        manager = DeploymentManager.from_fingerprinter(original, n_shards=2)
        # Mutate through the serving path, then persist the live corpus.
        fresh = original.model.embed(np.stack([test.data[0].T, test.data[1].T]))
        manager.replace_class(manager.store.classes[0], fresh)
        directory = tmp_path / "serving-deployment"
        manager.save(directory)

        restored = DeploymentManager.load(directory, n_shards=2)
        queries = original.model.embed_dataset(test)
        live = manager.snapshot().predict(queries)
        warm = restored.snapshot().predict(queries)
        for a, b in zip(live, warm):
            assert a.ranked_labels == b.ranked_labels
        assert restored.store.class_counts() == manager.store.class_counts()
