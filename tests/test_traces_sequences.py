"""Tests for trace preprocessing: IP sequences, quantization, Trace."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import IPAddress, Packet, PacketCapture
from repro.traces import SequenceExtractor, Trace, extract_ip_runs, quantize_counts


CLIENT = IPAddress("10.0.0.1")
TEXT = IPAddress("10.0.0.2")
MEDIA = IPAddress("10.0.0.3")
EXTRA = IPAddress("10.0.0.4")


def capture_from(events):
    """Build a capture from (time, sender, size) triples; receiver inferred."""
    capture = PacketCapture(client_ip=CLIENT)
    for time, sender, size in events:
        dst = TEXT if sender == CLIENT else CLIENT
        capture.add(Packet(time, sender, dst, size))
    return capture


class TestExtractIPRuns:
    def test_consecutive_same_sender_aggregated(self):
        capture = capture_from([
            (0.0, CLIENT, 300),
            (0.1, TEXT, 1000),
            (0.2, TEXT, 500),
            (0.3, CLIENT, 200),
        ])
        runs = extract_ip_runs(capture)
        assert runs == [(CLIENT, 300), (TEXT, 1500), (CLIENT, 200)]

    def test_interleaving_breaks_runs(self):
        capture = capture_from([
            (0.0, TEXT, 100),
            (0.1, MEDIA, 200),
            (0.2, TEXT, 300),
        ])
        runs = extract_ip_runs(capture)
        assert runs == [(TEXT, 100), (MEDIA, 200), (TEXT, 300)]

    def test_empty_capture(self):
        assert extract_ip_runs(PacketCapture(client_ip=CLIENT)) == []


class TestQuantize:
    def test_disabled_for_small_step(self):
        counts = np.array([1.0, 1499.0, 3.0])
        assert np.allclose(quantize_counts(counts, 0), counts)
        assert np.allclose(quantize_counts(counts, 1), counts)

    def test_rounds_to_step(self):
        counts = np.array([0.0, 100.0, 749.0, 751.0])
        assert np.allclose(quantize_counts(counts, 500), [0.0, 500.0, 500.0, 1000.0])

    def test_nonzero_never_erased(self):
        counts = np.array([1.0, 10.0, 0.0])
        quantized = quantize_counts(counts, 1000)
        assert quantized[0] == 1000.0 and quantized[1] == 1000.0 and quantized[2] == 0.0

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError):
            quantize_counts(np.array([1.0]), -5)

    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=50), st.integers(2, 4096))
    @settings(max_examples=50, deadline=None)
    def test_quantization_properties(self, values, step):
        counts = np.array(values, dtype=float)
        quantized = quantize_counts(counts, step)
        # Zero stays zero, non-zero stays non-zero, and the error is bounded.
        assert np.all((counts == 0) == (quantized == 0))
        nonzero = counts > 0
        assert np.all(np.abs(quantized[nonzero] - counts[nonzero]) <= step)
        assert np.all(quantized[nonzero] % step == 0)


class TestTrace:
    def test_valid_trace(self):
        trace = Trace(label="page", website="w", sequences=np.zeros((3, 10)))
        assert trace.n_sequences == 3 and trace.length == 10
        assert trace.total_volume == 0.0

    def test_model_input_is_time_major(self):
        sequences = np.arange(6, dtype=float).reshape(2, 3)
        trace = Trace(label="p", website="w", sequences=sequences)
        model_input = trace.as_model_input()
        assert model_input.shape == (3, 2)
        assert np.allclose(model_input, sequences.T)

    def test_invalid_traces(self):
        with pytest.raises(ValueError):
            Trace(label="", website="w", sequences=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            Trace(label="p", website="w", sequences=np.zeros(5))
        with pytest.raises(ValueError):
            Trace(label="p", website="w", sequences=-np.ones((2, 2)))


class TestSequenceExtractor:
    def test_client_is_always_first_sequence(self):
        capture = capture_from([
            (0.0, CLIENT, 300),
            (0.1, TEXT, 5000),
            (0.2, MEDIA, 7000),
        ])
        extractor = SequenceExtractor(max_sequences=3, sequence_length=10, log_scale=False)
        array = extractor.extract_array(capture)
        assert array.shape == (3, 10)
        assert array[0, 0] == 300.0  # client's first transmission
        assert array[1, 1] == 5000.0  # first remote (text) second event
        assert array[2, 2] == 7000.0

    def test_zero_padding_preserves_relative_order(self):
        capture = capture_from([
            (0.0, CLIENT, 100),
            (0.1, TEXT, 200),
            (0.2, CLIENT, 300),
        ])
        array = SequenceExtractor(max_sequences=3, sequence_length=5, log_scale=False).extract_array(capture)
        # Event positions: client@0, text@1, client@2 — zeros elsewhere.
        assert array[0, 0] == 100 and array[0, 1] == 0 and array[0, 2] == 300
        assert array[1, 0] == 0 and array[1, 1] == 200 and array[1, 2] == 0

    def test_overflow_servers_folded_into_last_slot(self):
        capture = capture_from([
            (0.0, CLIENT, 100),
            (0.1, TEXT, 200),
            (0.2, MEDIA, 300),
            (0.3, EXTRA, 400),
        ])
        array = SequenceExtractor(max_sequences=3, sequence_length=8, log_scale=False).extract_array(capture)
        # EXTRA is beyond the 2-server budget: folded into MEDIA's row.
        assert array[2, 2] == 300 and array[2, 3] == 400

    def test_two_sequence_encoding_merges_servers(self):
        capture = capture_from([
            (0.0, CLIENT, 100),
            (0.1, TEXT, 200),
            (0.2, MEDIA, 300),
            (0.3, CLIENT, 50),
        ])
        extractor = SequenceExtractor(max_sequences=2, merge_servers=True, sequence_length=6, log_scale=False)
        array = extractor.extract_array(capture)
        assert array.shape == (2, 6)
        assert array[0, 0] == 100 and array[0, 3] == 50
        assert array[1, 1] == 200 and array[1, 2] == 300

    def test_truncation_and_padding(self):
        events = [(0.01 * i, CLIENT if i % 2 == 0 else TEXT, 10 + i) for i in range(30)]
        capture = capture_from(events)
        short = SequenceExtractor(max_sequences=2, sequence_length=5, log_scale=False).extract_array(capture)
        long = SequenceExtractor(max_sequences=2, sequence_length=100, log_scale=False).extract_array(capture)
        assert short.shape == (2, 5)
        assert long.shape == (2, 100)
        assert np.all(long[:, 30:] == 0)

    def test_log_scale_and_quantization(self):
        capture = capture_from([(0.0, CLIENT, 1000), (0.1, TEXT, 2100)])
        raw = SequenceExtractor(sequence_length=4, log_scale=False).extract_array(capture)
        logged = SequenceExtractor(sequence_length=4, log_scale=True).extract_array(capture)
        quantized = SequenceExtractor(
            sequence_length=4, log_scale=False, quantization_step=500
        ).extract_array(capture)
        assert np.allclose(logged, np.log1p(raw))
        assert quantized[1, 1] == 2000.0

    def test_aggregation_toggle(self):
        capture = capture_from([
            (0.0, TEXT, 100),
            (0.1, TEXT, 200),
        ])
        aggregated = SequenceExtractor(sequence_length=5, log_scale=False).extract_array(capture)
        raw = SequenceExtractor(
            sequence_length=5, log_scale=False, aggregate_consecutive=False
        ).extract_array(capture)
        assert aggregated[1, 0] == 300
        assert raw[1, 0] == 100 and raw[1, 1] == 200

    def test_extract_returns_labelled_trace(self):
        capture = capture_from([(0.0, CLIENT, 10), (0.1, TEXT, 20)])
        trace = SequenceExtractor(sequence_length=4).extract(capture, label="page-1", website="wiki")
        assert trace.label == "page-1" and trace.website == "wiki"
        assert "total_bytes" in trace.metadata

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SequenceExtractor(max_sequences=1)
        with pytest.raises(ValueError):
            SequenceExtractor(sequence_length=0)
        with pytest.raises(ValueError):
            SequenceExtractor(quantization_step=-1)
        with pytest.raises(ValueError):
            SequenceExtractor(max_sequences=3, merge_servers=True)

    def test_empty_capture_gives_zero_array(self):
        array = SequenceExtractor(sequence_length=6).extract_array(PacketCapture(client_ip=CLIENT))
        assert array.shape == (3, 6)
        assert np.all(array == 0)
