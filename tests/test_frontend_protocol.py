"""Fuzz and conformance tests for the TCP serving front-end.

The server's failure contract: every malformed input — truncated frames,
hostile length prefixes, garbage bytes, wrong dimensions, NaN payloads,
invalid JSON — is answered with a structured ``ERROR`` frame (or a clean
close when the stream cannot be re-synchronised), the server process never
crashes, and no connection handler leaks.  After every storm the server
must still answer a well-formed query with predictions identical to the
direct in-process classifier.
"""

import json
import socket
import struct

import numpy as np
import pytest

from repro.config import ClassifierConfig
from repro.core import KNNClassifier, ReferenceStore
from repro.serving import (
    BatchScheduler,
    DeploymentManager,
    FrontendClient,
    FrontendServer,
    ProtocolError,
    ShardedReferenceStore,
)
from repro.serving import protocol

DIM = 8
K = 9


@pytest.fixture(scope="module")
def serving():
    rng = np.random.default_rng(0)
    centres = rng.standard_normal((10, DIM)) * 8.0
    assignment = rng.integers(0, 10, size=300)
    corpus = centres[assignment] + rng.standard_normal((300, DIM))
    labels = [f"page-{code:03d}" for code in assignment]
    flat = ReferenceStore(DIM)
    flat.add(corpus, labels)
    config = ClassifierConfig(k=K)
    manager = DeploymentManager(
        ShardedReferenceStore.from_reference_store(flat, n_shards=2), config
    )
    scheduler = BatchScheduler(manager, max_batch_size=16, max_latency_s=0.001)
    with scheduler:
        with FrontendServer(scheduler, manager=manager) as server:
            yield {
                "server": server,
                "manager": manager,
                "scheduler": scheduler,
                "classifier": KNNClassifier(flat, config),
                "corpus": corpus,
                "address": (server.host, server.port),
            }
    manager.close()


def raw_exchange(address, data, *, read_reply=True, timeout_s=5.0):
    """Send raw bytes; return the decoded reply frame or None on close."""
    with socket.create_connection(address, timeout=timeout_s) as sock:
        sock.sendall(data)
        if not read_reply:
            return None
        sock.settimeout(timeout_s)
        try:
            frame_type, payload = protocol.recv_frame(sock)
        except (ProtocolError, OSError):
            return None
        body = json.loads(payload.decode("utf-8")) if payload else {}
        return frame_type, body


def assert_server_alive(serving):
    """The recovery probe every fuzz test ends with: a valid query must
    come back bit-identical to the direct in-process classifier."""
    queries = serving["corpus"][:4] + 0.05
    expected = serving["classifier"].predict(queries)
    with FrontendClient(*serving["address"]) as client:
        body = client.classify(queries, top_n=len(expected[0].ranked_labels))
    assert len(body["predictions"]) == 4
    for entry, prediction in zip(body["predictions"], expected):
        assert entry["labels"] == prediction.ranked_labels
        assert entry["scores"] == pytest.approx(prediction.scores)


# ------------------------------------------------------------- happy path
class TestRoundTrip:
    def test_query_roundtrip_matches_direct_classifier(self, serving):
        assert_server_alive(serving)

    def test_top_n_truncates_rankings(self, serving):
        queries = serving["corpus"][:2]
        expected = serving["classifier"].predict(queries)
        with FrontendClient(*serving["address"]) as client:
            body = client.classify(queries, top_n=3)
        for entry, prediction in zip(body["predictions"], expected):
            assert entry["labels"] == prediction.ranked_labels[:3]

    def test_control_ping_stats_info(self, serving):
        with FrontendClient(*serving["address"]) as client:
            assert client.ping()
            stats = client.stats()
            assert stats["frontend"]["connections"] >= 1
            assert "scheduler" in stats
            info = client.info()
            assert info["n_references"] == 300
            assert info["embedding_dim"] == DIM
            assert info["n_shards"] == 2

    def test_control_rebalance(self, serving):
        with FrontendClient(*serving["address"]) as client:
            reply = client.rebalance(threshold=0.5)
        assert "moved" in reply and "shard_sizes" in reply
        assert sum(reply["shard_sizes"]) == 300

    def test_multiple_requests_per_connection(self, serving):
        with FrontendClient(*serving["address"]) as client:
            for _ in range(5):
                body = client.classify(serving["corpus"][:1], top_n=1)
                assert len(body["predictions"]) == 1


# ----------------------------------------------------------- malformed frames
class TestMalformedFrames:
    def test_truncated_header_then_close(self, serving):
        raw_exchange(serving["address"], b"RS", read_reply=False)
        assert_server_alive(serving)

    def test_truncated_payload_then_close(self, serving):
        header = protocol.HEADER.pack(protocol.MAGIC, protocol.QUERY, 1000)
        raw_exchange(serving["address"], header + b"\x00" * 10, read_reply=False)
        assert_server_alive(serving)

    def test_bad_magic_gets_error_then_close(self, serving):
        reply = raw_exchange(serving["address"], b"XXXX" + b"\x01" + b"\x00" * 4)
        assert reply is not None
        frame_type, body = reply
        assert frame_type == protocol.ERROR
        assert body["error"] == "bad-magic"
        assert body["recoverable"] is False
        assert_server_alive(serving)

    def test_hostile_length_prefix_rejected_before_allocation(self, serving):
        huge = protocol.HEADER.pack(protocol.MAGIC, protocol.QUERY, protocol.MAX_PAYLOAD + 1)
        reply = raw_exchange(serving["address"], huge)
        assert reply is not None and reply[1]["error"] == "frame-too-large"
        assert reply[1]["recoverable"] is False
        assert_server_alive(serving)

    def test_unknown_frame_type_is_recoverable(self, serving):
        frame = protocol.HEADER.pack(protocol.MAGIC, 77, 0)
        with socket.create_connection(serving["address"], timeout=5.0) as sock:
            sock.sendall(frame)
            frame_type, payload = protocol.recv_frame(sock)
            assert frame_type == protocol.ERROR
            assert json.loads(payload)["error"] == "bad-frame-type"
            # Same connection keeps working: framing never lost sync.
            protocol.send_frame(sock, protocol.encode_query(serving["corpus"][:1], top_n=1))
            frame_type, payload = protocol.recv_frame(sock)
            assert frame_type == protocol.RESULT
        assert_server_alive(serving)

    def test_result_frame_from_client_is_rejected(self, serving):
        reply = raw_exchange(serving["address"], protocol.encode_json(protocol.RESULT, {}))
        assert reply is not None and reply[1]["error"] == "bad-frame-type"

    def test_unknown_type_with_hostile_length_is_fatal(self, serving):
        # The length cap must win over the recoverable unknown-type path:
        # otherwise the server would "drain" an attacker-declared 4 GiB
        # payload into memory.
        frame = protocol.HEADER.pack(protocol.MAGIC, 77, 0xFFFFFFFF)
        reply = raw_exchange(serving["address"], frame)
        assert reply is not None
        assert reply[1]["error"] == "frame-too-large"
        assert reply[1]["recoverable"] is False
        assert_server_alive(serving)

    def test_generation_reflects_the_serving_snapshot(self, serving):
        # Fresh deployment so the shared fixture's corpus stays untouched.
        rng = np.random.default_rng(9)
        flat = ReferenceStore(DIM)
        flat.add(rng.standard_normal((60, DIM)), ["page-x"] * 60)
        manager = DeploymentManager(
            ShardedReferenceStore.from_reference_store(flat, n_shards=2),
            ClassifierConfig(k=3),
        )
        scheduler = BatchScheduler(manager, max_batch_size=8, max_latency_s=0.001)
        with scheduler, FrontendServer(scheduler, manager=manager) as server:
            with FrontendClient(server.host, server.port) as client:
                body = client.classify(np.zeros((1, DIM)), top_n=1)
                assert body["generation"] == 0
                manager.replace_class("page-x", rng.standard_normal((60, DIM)))
                body = client.classify(np.zeros((1, DIM)), top_n=1)
                # The RESULT frame reports the generation that actually
                # served the query, not a pre-submit snapshot.
                assert body["generation"] == manager.generation == 1
        manager.close()


# ------------------------------------------------------------ bad query bodies
class TestBadQueries:
    def test_query_payload_shorter_than_header(self, serving):
        reply = raw_exchange(
            serving["address"], protocol.encode_frame(protocol.QUERY, b"\x01\x02")
        )
        assert reply is not None and reply[1]["error"] == "bad-query"
        assert_server_alive(serving)

    def test_declared_shape_disagrees_with_byte_count(self, serving):
        payload = protocol.QUERY_HEADER.pack(4, DIM, 1) + b"\x00" * 12  # needs 128
        reply = raw_exchange(serving["address"], protocol.encode_frame(protocol.QUERY, payload))
        assert reply is not None and reply[1]["error"] == "bad-query"
        assert_server_alive(serving)

    def test_zero_query_batch(self, serving):
        payload = protocol.QUERY_HEADER.pack(0, DIM, 1)
        reply = raw_exchange(serving["address"], protocol.encode_frame(protocol.QUERY, payload))
        assert reply is not None and reply[1]["error"] == "bad-query"

    def test_overdeclared_batch_rejected(self, serving):
        payload = protocol.QUERY_HEADER.pack(protocol.MAX_BATCH + 1, DIM, 1)
        reply = raw_exchange(serving["address"], protocol.encode_frame(protocol.QUERY, payload))
        assert reply is not None and reply[1]["error"] == "bad-query"

    def test_wrong_dimension_is_structured_error(self, serving):
        with socket.create_connection(serving["address"], timeout=5.0) as sock:
            protocol.send_frame(sock, protocol.encode_query(np.zeros((2, DIM + 3)), top_n=1))
            frame_type, payload = protocol.recv_frame(sock)
            body = json.loads(payload)
            assert frame_type == protocol.ERROR and body["error"] == "bad-dim"
            assert str(DIM) in body["message"]
            # Recoverable: the same connection then answers a good query.
            protocol.send_frame(sock, protocol.encode_query(serving["corpus"][:1], top_n=1))
            frame_type, _ = protocol.recv_frame(sock)
            assert frame_type == protocol.RESULT

    def test_nan_payload_is_structured_error(self, serving):
        bad = np.full((2, DIM), np.nan)
        with FrontendClient(*serving["address"]) as client:
            with pytest.raises(ProtocolError) as excinfo:
                client.classify(bad, top_n=1)
            assert excinfo.value.code == "bad-values"
            assert excinfo.value.recoverable
            # The connection survives the refused batch.
            assert client.ping()

    def test_inf_payload_is_structured_error(self, serving):
        bad = np.full((1, DIM), np.inf)
        with FrontendClient(*serving["address"]) as client:
            with pytest.raises(ProtocolError) as excinfo:
                client.classify(bad, top_n=1)
            assert excinfo.value.code == "bad-values"


# ------------------------------------------------------------- bad control
class TestBadControl:
    def test_garbage_json(self, serving):
        reply = raw_exchange(
            serving["address"], protocol.encode_frame(protocol.CONTROL, b"{not json")
        )
        assert reply is not None and reply[1]["error"] == "bad-control"
        assert_server_alive(serving)

    def test_non_object_json(self, serving):
        reply = raw_exchange(
            serving["address"], protocol.encode_frame(protocol.CONTROL, b"[1, 2]")
        )
        assert reply is not None and reply[1]["error"] == "bad-control"

    def test_unknown_op(self, serving):
        with FrontendClient(*serving["address"]) as client:
            with pytest.raises(ProtocolError) as excinfo:
                client.control({"op": "drop-tables"})
            assert excinfo.value.code == "bad-control"
            assert client.ping()

    def test_invalid_rebalance_threshold(self, serving):
        with FrontendClient(*serving["address"]) as client:
            with pytest.raises(ProtocolError) as excinfo:
                client.control({"op": "rebalance", "threshold": "soon"})
            assert excinfo.value.code == "bad-control"


# ------------------------------------------------------------------ fuzz storm
class TestFuzzStorm:
    def test_random_garbage_never_kills_the_server(self, serving):
        """Seeded byte blobs — raw noise, noise with a valid magic, and
        corrupted valid frames — over many short connections."""
        import random

        rng = random.Random(0xF422)
        for round_ in range(60):
            shape = rng.randrange(3)
            if shape == 0:  # pure noise
                blob = rng.randbytes(rng.randrange(1, 200))
            elif shape == 1:  # valid magic, noisy remainder
                blob = protocol.MAGIC + rng.randbytes(rng.randrange(1, 64))
            else:  # a valid query frame with flipped bytes
                frame = bytearray(
                    protocol.encode_query(np.zeros((2, DIM)) + round_, top_n=1)
                )
                for _ in range(rng.randrange(1, 6)):
                    frame[rng.randrange(len(frame))] = rng.randrange(256)
                blob = bytes(frame)
            try:
                # Short timeout: half the blobs never earn a reply (the
                # server is waiting for the rest of a "frame"), and the
                # storm should be a storm, not a sleep.
                raw_exchange(
                    serving["address"], blob, read_reply=bool(rng.randrange(2)), timeout_s=0.25
                )
            except (ProtocolError, OSError):
                pass  # the client side may lose the connection; the server may not
        assert_server_alive(serving)

    def test_connections_do_not_leak(self, serving):
        import time

        for _ in range(10):
            raw_exchange(serving["address"], b"junk", read_reply=False)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if serving["server"].stats.open_connections == 0:
                break
            time.sleep(0.05)
        assert serving["server"].stats.open_connections == 0
        assert serving["server"].stats.errors_by_code.get("bad-magic", 0) >= 1


# ----------------------------------------------------------- protocol unit
class TestProtocolModule:
    def test_frame_roundtrip(self):
        frame = protocol.encode_json(protocol.CONTROL, {"op": "ping"})
        frame_type, length = protocol.parse_header(frame[: protocol.HEADER.size])
        assert frame_type == protocol.CONTROL
        assert length == len(frame) - protocol.HEADER.size

    def test_query_roundtrip_preserves_float32_values(self):
        batch = np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0
        frame = protocol.encode_query(batch, top_n=5)
        decoded, top_n, tenant = protocol.decode_query(frame[protocol.HEADER.size :])
        assert top_n == 5
        assert tenant is None
        assert decoded.dtype == np.float64
        np.testing.assert_allclose(decoded, batch, rtol=1e-6)  # float32 wire

    def test_encode_rejects_oversized_and_empty(self):
        with pytest.raises(ProtocolError):
            protocol.encode_query(np.zeros((0, 4)))
        with pytest.raises(ProtocolError):
            protocol.encode_query(np.zeros((2, 4)), top_n=0)
        with pytest.raises(ProtocolError):
            protocol.encode_frame(99, b"")

    def test_parse_header_flags_unrecoverable_errors(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_header(b"nope" + struct.pack("!BI", protocol.QUERY, 0))
        assert not excinfo.value.recoverable
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_header(
                protocol.HEADER.pack(protocol.MAGIC, protocol.QUERY, protocol.MAX_PAYLOAD + 1)
            )
        assert not excinfo.value.recoverable

    def test_length_check_precedes_frame_type_check(self):
        # Unknown type + hostile length must be the fatal length error, not
        # the recoverable type error (whose handler trusts the length).
        with pytest.raises(ProtocolError) as excinfo:
            protocol.parse_header(protocol.HEADER.pack(protocol.MAGIC, 77, 0xFFFFFFFF))
        assert excinfo.value.code == "frame-too-large"
        assert not excinfo.value.recoverable
