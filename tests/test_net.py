"""Tests for the packet-level network substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    AddressAllocator,
    Direction,
    Endpoint,
    IPAddress,
    LatencyModel,
    Packet,
    PacketCapture,
    Sniffer,
    TransmissionChannel,
)


class TestIPAddress:
    def test_valid_address(self):
        ip = IPAddress("192.168.1.10")
        assert str(ip) == "192.168.1.10"

    @pytest.mark.parametrize("bad", ["1.2.3", "256.1.1.1", "a.b.c.d", "1.2.3.4.5", ""])
    def test_invalid_addresses(self, bad):
        with pytest.raises(ValueError):
            IPAddress(bad)

    def test_int_roundtrip(self):
        ip = IPAddress("10.0.3.200")
        assert IPAddress.from_int(ip.as_int) == ip

    def test_from_int_out_of_range(self):
        with pytest.raises(ValueError):
            IPAddress.from_int(-1)
        with pytest.raises(ValueError):
            IPAddress.from_int(2**32)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_int_roundtrip_property(self, packed):
        assert IPAddress.from_int(packed).as_int == packed

    def test_ordering_is_stable(self):
        ips = [IPAddress("10.0.0.2"), IPAddress("10.0.0.1")]
        assert sorted(ips)[0] == IPAddress("10.0.0.1")


class TestEndpointAndAllocator:
    def test_endpoint_str(self):
        assert str(Endpoint(IPAddress("1.2.3.4"), 443)) == "1.2.3.4:443"

    def test_endpoint_rejects_bad_port(self):
        with pytest.raises(ValueError):
            Endpoint(IPAddress("1.2.3.4"), 0)
        with pytest.raises(ValueError):
            Endpoint(IPAddress("1.2.3.4"), 70000)

    def test_allocator_unique_and_deterministic(self):
        a = AddressAllocator()
        b = AddressAllocator()
        ips_a = a.allocate_many(50)
        ips_b = b.allocate_many(50)
        assert ips_a == ips_b
        assert len(set(ips_a)) == 50

    def test_allocator_rejects_negative(self):
        with pytest.raises(ValueError):
            AddressAllocator().allocate_many(-1)


class TestPacket:
    def setup_method(self):
        self.client = IPAddress("10.0.0.1")
        self.server = IPAddress("10.0.0.2")

    def test_direction(self):
        out = Packet(0.0, self.client, self.server, 100)
        inc = Packet(0.1, self.server, self.client, 200)
        assert out.direction(self.client) is Direction.OUTGOING
        assert inc.direction(self.client) is Direction.INCOMING

    def test_direction_unrelated_ip_raises(self):
        packet = Packet(0.0, self.client, self.server, 100)
        with pytest.raises(ValueError):
            packet.direction(IPAddress("10.0.0.99"))

    def test_rejects_negative_size_or_time(self):
        with pytest.raises(ValueError):
            Packet(0.0, self.client, self.server, -1)
        with pytest.raises(ValueError):
            Packet(-0.5, self.client, self.server, 1)

    def test_direction_flip(self):
        assert Direction.OUTGOING.flip() is Direction.INCOMING
        assert Direction.INCOMING.flip() is Direction.OUTGOING


class TestLatencyModel:
    def test_delays_positive(self):
        model = LatencyModel(base_rtt=0.05, jitter=0.01)
        rng = np.random.default_rng(0)
        delays = [model.one_way_delay(1500, rng) for _ in range(100)]
        assert all(d > 0 for d in delays)

    def test_serialization_delay_grows_with_size(self):
        model = LatencyModel(base_rtt=0.05, jitter=0.0, bandwidth=1e6)
        small = model.one_way_delay(100)
        large = model.one_way_delay(1_000_000)
        assert large > small

    def test_scaled(self):
        model = LatencyModel(base_rtt=0.04, jitter=0.004)
        far = model.scaled(3.0)
        assert far.base_rtt == pytest.approx(0.12)
        with pytest.raises(ValueError):
            model.scaled(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LatencyModel(base_rtt=0.0)
        with pytest.raises(ValueError):
            LatencyModel(jitter=-1.0)
        with pytest.raises(ValueError):
            LatencyModel(bandwidth=0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().one_way_delay(-5)


class TestPacketCapture:
    def setup_method(self):
        self.client = IPAddress("10.0.0.1")
        self.text = IPAddress("10.0.0.2")
        self.media = IPAddress("10.0.0.3")
        self.capture = PacketCapture(client_ip=self.client)
        self.capture.extend([
            Packet(0.3, self.media, self.client, 900),
            Packet(0.1, self.client, self.text, 300),
            Packet(0.2, self.text, self.client, 1400),
        ])

    def test_sorted_packets(self):
        times = [p.timestamp for p in self.capture.sorted_packets()]
        assert times == sorted(times)

    def test_duration_and_total_bytes(self):
        assert self.capture.duration == pytest.approx(0.2)
        assert self.capture.total_bytes == 2600

    def test_bytes_by_direction(self):
        totals = self.capture.bytes_by_direction()
        assert totals[Direction.OUTGOING] == 300
        assert totals[Direction.INCOMING] == 2300

    def test_remote_ips_order_of_appearance(self):
        assert self.capture.remote_ips() == [self.text, self.media]

    def test_filter_ip(self):
        subset = self.capture.filter_ip(self.media)
        assert len(subset) == 1
        assert subset.total_bytes == 900

    def test_transmissions_triples(self):
        triples = self.capture.transmissions()
        assert triples[0] == (0.1, self.client, 300)
        assert len(triples) == 3

    def test_empty_capture(self):
        empty = PacketCapture(client_ip=self.client)
        assert empty.duration == 0.0
        assert empty.total_bytes == 0
        assert empty.remote_ips() == []


class TestSniffer:
    def setup_method(self):
        self.client = IPAddress("10.0.0.1")
        self.server = IPAddress("10.0.0.2")

    def test_capture_lifecycle(self):
        sniffer = Sniffer(self.client)
        sniffer.start()
        assert sniffer.running
        sniffer.observe(Packet(0.0, self.client, self.server, 100))
        capture = sniffer.stop()
        assert not sniffer.running
        assert len(capture) == 1

    def test_observe_before_start_is_ignored(self):
        sniffer = Sniffer(self.client)
        sniffer.observe(Packet(0.0, self.client, self.server, 100))
        sniffer.start()
        assert len(sniffer.stop()) == 0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Sniffer(self.client).stop()

    def test_observable_filter(self):
        other = IPAddress("10.0.0.3")
        sniffer = Sniffer(self.client, observable_ips=[self.client, self.server])
        sniffer.start()
        sniffer.observe(Packet(0.0, self.client, self.server, 10))
        sniffer.observe(Packet(0.1, other, IPAddress("10.0.0.4"), 10))
        assert len(sniffer.stop()) == 1


class TestTransmissionChannel:
    def setup_method(self):
        self.client = IPAddress("10.0.0.1")
        self.server = IPAddress("10.0.0.2")
        self.sniffer = Sniffer(self.client)
        self.sniffer.start()
        self.channel = TransmissionChannel(
            client_ip=self.client,
            server_ip=self.server,
            sniffer=self.sniffer,
            latency=LatencyModel(base_rtt=0.02, jitter=0.0),
        )

    def test_segments_respect_mss(self):
        rng = np.random.default_rng(0)
        self.channel.transmit([4000], from_client=False, start_time=0.0, rng=rng)
        capture = self.sniffer.stop()
        sizes = [p.size for p in capture]
        assert all(size <= self.channel.mss for size in sizes)
        assert sum(sizes) == 4000

    def test_timestamps_monotonic(self):
        rng = np.random.default_rng(1)
        end = self.channel.transmit([1500, 1500, 200], from_client=True, start_time=0.0, rng=rng)
        capture = self.sniffer.stop()
        times = [p.timestamp for p in capture.sorted_packets()]
        assert times == sorted(times)
        assert end >= times[-1]

    def test_retransmissions_are_flagged(self):
        channel = TransmissionChannel(
            client_ip=self.client,
            server_ip=self.server,
            sniffer=self.sniffer,
            retransmission_rate=0.5,
            latency=LatencyModel(base_rtt=0.02, jitter=0.0),
        )
        rng = np.random.default_rng(2)
        channel.transmit([1460] * 30, from_client=False, start_time=0.0, rng=rng)
        capture = self.sniffer.stop()
        flags = [p.retransmission for p in capture]
        assert any(flags) and not all(flags)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            TransmissionChannel(self.client, self.server, mss=0)
        with pytest.raises(ValueError):
            TransmissionChannel(self.client, self.server, retransmission_rate=1.0)

    def test_negative_record_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            self.channel.transmit([-5], from_client=True, start_time=0.0, rng=rng)

    @given(st.lists(st.integers(0, 20000), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_total_bytes_preserved(self, records):
        sniffer = Sniffer(self.client)
        sniffer.start()
        channel = TransmissionChannel(
            client_ip=self.client,
            server_ip=self.server,
            sniffer=sniffer,
            latency=LatencyModel(base_rtt=0.01, jitter=0.0),
        )
        channel.transmit(list(records), from_client=False, start_time=0.0, rng=np.random.default_rng(3))
        capture = sniffer.stop()
        assert capture.total_bytes == sum(records)
