"""Gradient-check and behavioural tests for the LSTM layer."""

import numpy as np
import pytest

from repro.nn.lstm import LSTM, _sigmoid


def numerical_gradient(func, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func()
        flat[i] = original - eps
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestSigmoid:
    def test_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        s = _sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert np.allclose(s + _sigmoid(-x), 1.0)

    def test_extreme_values_do_not_overflow(self):
        s = _sigmoid(np.array([-1000.0, 1000.0]))
        assert np.allclose(s, [0.0, 1.0])


class TestLSTMForward:
    def test_output_shape(self):
        layer = LSTM(3, 8, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 12, 3))
        out = layer.forward(x)
        assert out.shape == (5, 8)

    def test_rejects_wrong_rank(self):
        layer = LSTM(3, 8)
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 3)))

    def test_rejects_wrong_features(self):
        layer = LSTM(3, 8)
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 12, 4)))

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            LSTM(0, 8)

    def test_zero_input_gives_bounded_output(self):
        layer = LSTM(2, 4, rng=np.random.default_rng(2))
        out = layer.forward(np.zeros((3, 6, 2)))
        assert np.all(np.abs(out) < 1.0)

    def test_deterministic_given_same_seed(self):
        a = LSTM(2, 4, rng=np.random.default_rng(7))
        b = LSTM(2, 4, rng=np.random.default_rng(7))
        x = np.random.default_rng(3).standard_normal((2, 5, 2))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_forget_bias_initialised_to_one(self):
        layer = LSTM(2, 4)
        assert np.allclose(layer.params["b"][4:8], 1.0)


class TestLSTMBackward:
    def test_backward_before_forward_raises(self):
        layer = LSTM(2, 3)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 3)))

    @pytest.mark.parametrize("param_name", ["W", "U", "b"])
    def test_gradient_check_parameters(self, param_name):
        rng = np.random.default_rng(42)
        layer = LSTM(2, 3, rng=rng)
        x = rng.standard_normal((4, 5, 2))

        def loss():
            return float(np.sum(layer.forward(x) ** 2) / 2)

        expected = numerical_gradient(loss, layer.params[param_name])
        layer.zero_grad()
        out = layer.forward(x)
        layer.backward(out)
        assert np.allclose(layer.grads[param_name], expected, atol=1e-4), param_name

    def test_gradient_check_input(self):
        rng = np.random.default_rng(43)
        layer = LSTM(2, 3, rng=rng)
        x = rng.standard_normal((3, 4, 2))

        def loss():
            return float(np.sum(layer.forward(x) ** 2) / 2)

        expected = numerical_gradient(loss, x)
        out = layer.forward(x)
        grad_x = layer.backward(out)
        assert np.allclose(grad_x, expected, atol=1e-4)

    def test_grad_shapes_match_params(self):
        layer = LSTM(3, 5)
        x = np.random.default_rng(4).standard_normal((2, 6, 3))
        out = layer.forward(x)
        layer.backward(np.ones_like(out))
        for name, param in layer.params.items():
            assert layer.grads[name].shape == param.shape
