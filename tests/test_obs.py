"""The observability layer: metrics registry, tracing, Prometheus exposition.

Covers the acceptance criteria of the telemetry PR:

* metric primitives (counter/gauge/histogram) are correct and mergeable,
  and histogram quantile estimates land within one bucket width of exact
  numpy percentiles;
* the text exposition renders and survives a strict parser that enforces
  the format invariants (TYPE before samples, cumulative buckets, +Inf);
* the server-side latency histogram agrees with the client-side
  ``report_from_latencies`` percentiles to within one bucket width;
* per-stage trace spans cover the full pipeline (queue wait, batch
  assembly, scatter, per-shard scan incl. the native flag, merge) and the
  slow-query log fires when a query blows its threshold;
* instrumentation overhead with sampling off stays small (NullRegistry
  vs. live registry replay);
* the ``metrics`` control op and the standalone HTTP endpoint both return
  valid exposition, and ``stats`` reports replica-router state.
"""

import json
import logging
import time
import urllib.request

import numpy as np
import pytest

from repro.config import ClassifierConfig
from repro.core.reference_store import ReferenceStore
from repro.obs import (
    CONTENT_TYPE,
    LATENCY_BUCKETS_S,
    Histogram,
    MetricError,
    MetricsHTTPServer,
    MetricsRegistry,
    NullRegistry,
    Tracer,
    exponential_buckets,
    format_metrics_table,
    histogram_quantile,
    parse_prometheus,
    render_prometheus,
)
from repro.obs import tracing as obs_tracing
from repro.serving import (
    BatchScheduler,
    DeploymentManager,
    FrontendClient,
    FrontendServer,
    FrontendStats,
    LoadGenerator,
    ReplicaSet,
    SchedulerStats,
    ShardedReferenceStore,
)
from repro.serving.loadgen import report_from_histogram, report_from_latencies
from repro.serving.sharded_store import ProcessShardExecutor

DIM = 8


def _flat_store(n=240, n_classes=12, seed=0):
    rng = np.random.default_rng(seed)
    centres = rng.standard_normal((n_classes, DIM)) * 8.0
    assignment = rng.integers(0, n_classes, size=n)
    corpus = centres[assignment] + rng.standard_normal((n, DIM))
    flat = ReferenceStore(DIM)
    flat.add(corpus, [f"page-{code:03d}" for code in assignment])
    return flat, corpus


# ------------------------------------------------------------ metric units
class TestMetrics:
    def test_counter_increments_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total", "t")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_labeled_counter_tracks_series_independently(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_t_total", "t", labels=("code",))
        counter.inc(code="bad_frame")
        counter.inc(2, code="bad_json")
        assert counter.value(code="bad_frame") == 1
        assert counter.value(code="bad_json") == 2
        assert counter.total() == 3
        with pytest.raises(MetricError):
            counter.inc()  # missing the declared label

    def test_gauge_set_max_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_g", "g")
        gauge.set(3.0)
        gauge.set_max(1.0)
        assert gauge.value() == 3.0
        gauge.set_max(9.0)
        assert gauge.value() == 9.0
        depth = [0]
        live = registry.gauge("repro_live", "g")
        live.set_function(lambda: float(depth[0]))
        depth[0] = 7
        assert live.value() == 7.0

    def test_registry_is_idempotent_and_type_safe(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_t_total", "t")
        assert registry.counter("repro_t_total", "t") is first
        with pytest.raises(MetricError):
            registry.gauge("repro_t_total", "t")
        with pytest.raises(MetricError):
            registry.counter("repro_t_total", "t", labels=("other",))
        with pytest.raises(MetricError):
            registry.counter("not a metric name", "t")

    def test_exponential_buckets_are_log_spaced(self):
        buckets = exponential_buckets(1e-3, 1.0, per_decade=4)
        assert buckets[0] == pytest.approx(1e-3)
        assert buckets[-1] == pytest.approx(1.0)
        ratios = np.diff(np.log10(buckets))
        assert np.allclose(ratios, ratios[0])

    def test_histogram_quantile_within_one_bucket_of_numpy(self):
        rng = np.random.default_rng(1)
        latencies = np.abs(rng.lognormal(mean=-6.0, sigma=1.2, size=4000))
        hist = Histogram("repro_h_seconds", "h")
        for value in latencies:
            hist.observe(float(value))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(latencies, q))
            estimate = hist.quantile(q)
            lower, upper = hist.bucket_bounds(exact)
            width = upper - lower
            assert abs(estimate - exact) <= width, (q, exact, estimate)

    def test_histogram_merge_is_exact(self):
        left = Histogram("repro_h_seconds", "h")
        right = Histogram("repro_h_seconds", "h")
        rng = np.random.default_rng(2)
        for value in rng.uniform(1e-4, 1e-1, size=500):
            left.observe(float(value))
        for value in rng.uniform(1e-4, 1e-1, size=300):
            right.observe(float(value))
        merged = Histogram("repro_h_seconds", "h")
        merged.merge_from(left)
        merged.merge_from(right)
        assert merged.count() == 800
        assert merged.sum() == pytest.approx(left.sum() + right.sum())
        assert merged.bucket_counts() == [
            a + b for a, b in zip(left.bucket_counts(), right.bucket_counts())
        ]

    def test_histogram_merge_rejects_mismatched_buckets(self):
        left = Histogram("repro_h_seconds", "h")
        other = Histogram(
            "repro_h_seconds", "h", buckets=exponential_buckets(1e-3, 1.0, per_decade=2)
        )
        with pytest.raises(MetricError):
            left.merge_from(other)

    def test_overflow_observation_lands_in_inf_bucket(self):
        hist = Histogram("repro_h_seconds", "h")
        hist.observe(LATENCY_BUCKETS_S[-1] * 10)
        assert hist.count() == 1
        assert hist.bucket_counts()[-1] == 1
        lower, upper = hist.bucket_bounds(LATENCY_BUCKETS_S[-1] * 10)
        assert upper == float("inf")

    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        counter = registry.counter("repro_t_total", "t")
        counter.inc()
        hist = registry.histogram("repro_h_seconds", "h")
        hist.observe(0.5)
        gauge = registry.gauge("repro_g", "g")
        gauge.set(3.0)
        gauge.set_function(lambda: 9.0)
        assert counter.value() == 0.0
        assert hist.count() == 0
        assert gauge.value() == 0.0
        assert registry.collect() == []
        assert render_prometheus(registry) == ""


# -------------------------------------------------------------- exposition
class TestExposition:
    def _populated_registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_q_total", "Queries.").inc(5)
        errors = registry.counter("repro_e_total", "Errors.", labels=("code",))
        errors.inc(code='bad "frame"\\n')
        gauge = registry.gauge("repro_depth", "Depth.")
        gauge.set(3.0)
        hist = registry.histogram("repro_lat_seconds", "Latency.")
        for value in (1e-4, 3e-4, 2e-3, 0.5, 200.0):
            hist.observe(value)
        return registry

    def test_round_trip_through_strict_parser(self):
        registry = self._populated_registry()
        text = render_prometheus(registry)
        families = parse_prometheus(text)
        assert families["repro_q_total"]["type"] == "counter"
        assert families["repro_q_total"]["samples"] == [("repro_q_total", {}, 5.0)]
        (sample,) = families["repro_e_total"]["samples"]
        assert sample[1] == {"code": 'bad "frame"\\n'}
        assert families["repro_depth"]["samples"] == [("repro_depth", {}, 3.0)]
        hist_family = families["repro_lat_seconds"]
        count = [s for s in hist_family["samples"] if s[0] == "repro_lat_seconds_count"]
        assert count[0][2] == 5.0

    def test_scraper_side_quantile_matches_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", "Latency.")
        rng = np.random.default_rng(3)
        for value in rng.lognormal(mean=-5.0, sigma=1.0, size=2000):
            hist.observe(float(value))
        families = parse_prometheus(render_prometheus(registry))
        for q in (0.5, 0.99):
            assert histogram_quantile(families["repro_lat_seconds"], q) == pytest.approx(
                hist.quantile(q), rel=1e-9
            )

    def test_parser_rejects_sample_before_type(self):
        with pytest.raises(ValueError):
            parse_prometheus("repro_q_total 5\n# TYPE repro_q_total counter\n")

    def test_parser_rejects_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus(text)

    def test_parser_rejects_missing_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus(text)

    def test_parser_rejects_inf_bucket_count_mismatch(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 4\n'
            "repro_h_sum 1\n"
            "repro_h_count 5\n"
        )
        with pytest.raises(ValueError):
            parse_prometheus(text)

    def test_parser_rejects_malformed_samples(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE repro_q counter\nrepro_q not-a-number\n")
        with pytest.raises(ValueError):
            parse_prometheus('# TYPE repro_q counter\nrepro_q{code=unquoted} 1\n')

    def test_format_metrics_table_summarises_histograms(self):
        text = render_prometheus(self._populated_registry())
        table = format_metrics_table(text)
        assert "repro_q_total 5" in table
        assert "count=5" in table and "p99=" in table

    def test_http_endpoint_serves_exposition(self):
        registry = self._populated_registry()
        with MetricsHTTPServer(registry, port=0) as server:
            with urllib.request.urlopen(server.url(), timeout=5) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
            parse_prometheus(body)
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(server.url().replace("/metrics", "/x"), timeout=5)


# ----------------------------------------------------------------- tracing
class TestTracing:
    def test_sampling_one_in_n(self):
        tracer = Tracer(MetricsRegistry(), sample_every=4)
        traces = [tracer.maybe_trace() for _ in range(100)]
        assert sum(trace is not None for trace in traces) == 25
        assert Tracer(MetricsRegistry()).maybe_trace() is None  # sampling off

    def test_collector_stack_scopes_records(self):
        assert not obs_tracing.enabled()
        collector = obs_tracing.push()
        try:
            assert obs_tracing.enabled()
            with obs_tracing.timed("stage_a", detail=1):
                time.sleep(0.001)
            obs_tracing.record("stage_b", 0.5, native=True)
        finally:
            assert obs_tracing.pop() is collector
        assert not obs_tracing.enabled()
        stages = [span.stage for span in collector]
        assert stages == ["stage_a", "stage_b"]
        assert collector[0].seconds >= 0.001
        assert collector[1].detail == {"native": True}

    def test_timed_is_inert_without_collector(self):
        with obs_tracing.timed("nothing"):
            pass  # must not raise or record anywhere

    def test_slow_query_log_fires(self, caplog):
        tracer = Tracer(MetricsRegistry(), slow_threshold_s=0.010)
        trace = obs_tracing.QueryTrace()
        trace.add("queue_wait", 0.040)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            tracer.finish(trace, 0.042)
            tracer.finish(None, 0.001)  # below threshold, untraced
        assert len(tracer.slow()) == 1
        assert tracer.slow()[0]["latency_s"] == pytest.approx(0.042)
        assert any("slow query" in message for message in caplog.messages)
        counter = tracer.registry.get("repro_trace_slow_queries_total")
        assert counter.value() == 1

    def test_finish_observes_span_histogram(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry, sample_every=1)
        trace = tracer.maybe_trace()
        trace.add("scatter", 0.002, shard=0)
        trace.add("merge", 0.001)
        tracer.finish(trace, 0.004)
        hist = registry.get("repro_trace_span_seconds")
        assert hist.count(stage="scatter") == 1
        assert hist.count(stage="merge") == 1
        assert tracer.recent()[0]["latency_s"] == pytest.approx(0.004)


# ------------------------------------------------- stats backward compat
class TestStatsCompat:
    def test_scheduler_stats_as_dict_keys(self):
        stats = SchedulerStats()
        stats.count_submitted()
        stats.count_cache_miss()
        stats.count_batch(4)
        stats.count_completed(1)
        assert stats.as_dict() == {
            "submitted": 1,
            "completed": 1,
            "failed": 0,
            "batches": 1,
            "cache_hits": 0,
            "cache_misses": 1,
            "largest_batch": 4,
            "cache_hit_rate": 0.0,
        }

    def test_frontend_stats_as_dict_keys(self):
        stats = FrontendStats()
        stats.count_connection_opened()
        stats.count_frame()
        stats.count_queries(3)
        stats.count_error("bad_frame")
        stats.count_error("bad_frame")
        as_dict = stats.as_dict()
        assert as_dict["connections"] == 1
        assert as_dict["open_connections"] == 1
        assert as_dict["frames"] == 1
        assert as_dict["queries"] == 3
        assert as_dict["errors"] == 2
        assert as_dict["errors_by_code"] == {"bad_frame": 2}


# --------------------------------------------------- end-to-end pipeline
@pytest.fixture(scope="module")
def served():
    """A full serving stack (replicas, scheduler, TCP front-end) sharing
    one registry, with 1-in-1 trace sampling so every span stage shows."""
    flat, corpus = _flat_store()
    registry = MetricsRegistry()
    tracer = Tracer(registry, sample_every=1, slow_threshold_s=30.0)
    replica_set = ReplicaSet.in_process(2)
    manager = DeploymentManager(
        ShardedReferenceStore.from_reference_store(flat, n_shards=2, executor=replica_set),
        ClassifierConfig(k=9),
    )
    manager.attach_metrics(registry)
    scheduler = BatchScheduler(
        manager,
        max_batch_size=16,
        max_latency_s=0.001,
        n_executors=2,
        registry=registry,
        tracer=tracer,
    )
    with scheduler:
        with FrontendServer(scheduler, manager=manager) as server:
            queries = corpus[:64] + 0.05
            result = LoadGenerator(queries).replay(scheduler)
            yield {
                "registry": registry,
                "scheduler": scheduler,
                "manager": manager,
                "result": result,
                "address": (server.host, server.port),
                "corpus": corpus,
            }
    manager.close()


class TestServingTelemetry:
    def test_server_histogram_matches_client_report(self, served):
        result = served["result"]
        latencies = np.array(
            [t.latency_s for t in result.tickets if t.latency_s is not None]
        )
        report = report_from_latencies(
            latencies, len(latencies), result.report.duration_s, 0
        )
        hist = served["registry"].get("repro_query_latency_seconds")
        assert hist.count() >= len(latencies)
        for q, exact_ms in ((0.50, report.p50_ms), (0.99, report.p99_ms)):
            exact_s = exact_ms / 1e3
            lower, upper = hist.bucket_bounds(exact_s)
            width = upper - lower
            assert abs(hist.quantile(q) - exact_s) <= width

    def test_client_histogram_report_matches_exact(self, served):
        result = served["result"]
        hist = result.latency_histogram
        approx = report_from_histogram(hist, result.report.duration_s, 0)
        assert approx.n_queries == hist.count()
        lower, upper = hist.bucket_bounds(result.report.p50_ms / 1e3)
        assert abs(approx.p50_ms - result.report.p50_ms) / 1e3 <= (upper - lower)

    def test_trace_spans_cover_the_pipeline(self, served):
        hist = served["registry"].get("repro_trace_span_seconds")
        for stage in ("queue_wait", "batch_assemble", "batch_execute", "scatter",
                      "shard_scan", "merge", "cache_lookup"):
            assert hist.count(stage=stage) > 0, stage

    def test_metrics_control_op_returns_valid_exposition(self, served):
        with FrontendClient(*served["address"]) as client:
            body = client.metrics()
        assert body["content_type"] == CONTENT_TYPE
        families = parse_prometheus(body["exposition"])
        assert "repro_query_latency_seconds" in families
        assert "repro_frontend_frames_total" in families
        assert "repro_deployment_generation" in families

    def test_stats_op_reports_replica_router_state(self, served):
        with FrontendClient(*served["address"]) as client:
            queries = served["corpus"][:4]
            client.classify(queries, top_n=1)
            stats = client.stats()
        replicas = stats["replicas"]
        assert replicas["n_replicas"] == 2
        assert len(replicas["routed_counts"]) == 2
        assert sum(replicas["routed_counts"]) >= 1
        assert len(replicas["in_flight"]) == 2

    def test_exposition_is_json_safe(self, served):
        with FrontendClient(*served["address"]) as client:
            body = client.metrics()
        json.dumps(body)  # the control channel is JSON frames


class TestProcessExecutorPiggyback:
    def test_worker_scan_timings_ride_the_scatter_reply(self):
        flat, corpus = _flat_store(n=120, n_classes=6, seed=4)
        executor = ProcessShardExecutor(n_workers=2)
        try:
            store = ShardedReferenceStore.from_reference_store(
                flat, n_shards=2, executor=executor
            )
            collector = obs_tracing.push()
            try:
                store.search(corpus[:4], k=5)
            finally:
                obs_tracing.pop()
            scans = [span for span in collector if span.stage == "shard_scan"]
            assert len(scans) == 2
            for span in scans:
                assert span.seconds >= 0.0
                assert span.detail["native"] in (True, False)
                assert "shard" in span.detail
            stages = {span.stage for span in collector}
            assert {"scatter", "merge"} <= stages
        finally:
            executor.close()


class TestOverhead:
    def test_sampling_off_instrumentation_overhead_is_small(self):
        """Classify the same stream against a live registry (sampling off)
        and a NullRegistry in inline-flush mode — the identical submit ->
        batch -> observe path minus flusher-thread jitter.  The live path
        must stay within 1.5x best-of-5 (the CI obs job enforces the
        tighter <5% gate on the same methodology)."""
        flat, corpus = _flat_store(n=200, n_classes=10, seed=5)
        queries = np.repeat(corpus[:50], 8, axis=0) + 0.01
        manager = DeploymentManager(
            ShardedReferenceStore.from_reference_store(flat, n_shards=2),
            ClassifierConfig(k=9),
        )

        def run_once(registry):
            scheduler = BatchScheduler(
                manager,
                max_batch_size=64,
                max_latency_s=0.001,
                cache_size=0,
                registry=registry,
                tracer=Tracer(registry, sample_every=0),
            )
            start = time.perf_counter()
            scheduler.classify(queries)
            return time.perf_counter() - start

        try:
            run_once(NullRegistry())  # warm up imports / allocator
            live_runs, null_runs = [], []
            for _ in range(5):  # interleaved so machine-load drift hits both
                live_runs.append(run_once(MetricsRegistry()))
                null_runs.append(run_once(NullRegistry()))
        finally:
            manager.close()
        live, null = min(live_runs), min(null_runs)
        assert live <= null * 1.5 + 0.050, (live, null)
