"""Tests for the trace-level padding defences and overhead accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.defences import (
    AdaptivePaddingDefence,
    AnonymitySetPadding,
    FixedLengthPadding,
    RandomPaddingDefence,
    bandwidth_overhead,
    defence_report,
)
from repro.traces import Trace, TraceDataset


def raw_dataset(n_classes=5, samples_per_class=6, seed=0, log_scaled=False):
    """A dataset of raw (non-log) byte counts with class-dependent volume."""
    rng = np.random.default_rng(seed)
    traces = []
    for class_id in range(n_classes):
        for _ in range(samples_per_class):
            sequences = np.zeros((3, 12))
            sequences[0, 0] = 400 + rng.integers(0, 50)
            sequences[1, 1:6] = (class_id + 1) * 10_000 + rng.integers(0, 500, size=5)
            sequences[2, 2:4] = 5_000 + rng.integers(0, 300, size=2)
            if log_scaled:
                sequences = np.log1p(sequences)
            traces.append(Trace(label=f"page-{class_id}", website="w", sequences=sequences))
    return TraceDataset.from_traces(traces)


class TestFixedLengthPadding:
    def test_per_sequence_totals_equalised(self):
        dataset = raw_dataset()
        defended = FixedLengthPadding(per_sequence=True).apply(dataset, log_scaled=False)
        totals = defended.data.sum(axis=2)
        # After FL padding every trace has the same per-sequence totals.
        assert np.allclose(totals, totals[0][None, :], rtol=1e-9)

    def test_whole_trace_totals_equalised(self):
        dataset = raw_dataset()
        defended = FixedLengthPadding(per_sequence=False).apply(dataset, log_scaled=False)
        totals = defended.data.sum(axis=(1, 2))
        assert np.allclose(totals, totals.max())

    def test_padding_never_removes_bytes(self):
        dataset = raw_dataset()
        defended = FixedLengthPadding().apply(dataset, log_scaled=False)
        assert np.all(defended.data + 1e-9 >= dataset.data)

    def test_log_scaled_roundtrip(self):
        dataset = raw_dataset(log_scaled=True)
        defended = FixedLengthPadding().apply(dataset, log_scaled=True)
        totals = np.expm1(defended.data).sum(axis=2)
        assert np.allclose(totals, totals[0][None, :], rtol=1e-6)

    def test_explicit_targets(self):
        dataset = raw_dataset()
        targets = np.array([10_000.0, 400_000.0, 50_000.0])
        defended = FixedLengthPadding(target_totals=targets).apply(dataset, log_scaled=False)
        totals = defended.data.sum(axis=2)
        assert np.allclose(totals, targets[None, :])

    def test_bad_targets_rejected(self):
        dataset = raw_dataset()
        with pytest.raises(ValueError):
            FixedLengthPadding(target_totals=np.array([1.0, 2.0])).apply(dataset, log_scaled=False)

    def test_labels_and_classes_preserved(self):
        dataset = raw_dataset()
        defended = FixedLengthPadding().apply(dataset, log_scaled=False)
        assert np.array_equal(defended.labels, dataset.labels)
        assert defended.class_names == dataset.class_names

    def test_name(self):
        assert "per_sequence" in FixedLengthPadding().name


class TestOtherDefences:
    def test_random_padding_adds_bounded_overhead(self):
        dataset = raw_dataset()
        defence = RandomPaddingDefence(max_fraction=0.2)
        defended = defence.apply(dataset, log_scaled=False, seed=1)
        overhead = bandwidth_overhead(dataset, defended, log_scaled=False)
        assert 0.0 < overhead < 0.2
        with pytest.raises(ValueError):
            RandomPaddingDefence(max_fraction=0.0)

    def test_adaptive_padding_fills_silent_slots(self):
        dataset = raw_dataset()
        defence = AdaptivePaddingDefence(fill_probability=1.0)
        defended = defence.apply(dataset, log_scaled=False, seed=2)
        # every position that had real traffic elsewhere in the row is filled
        assert (defended.data > 0).sum() > (dataset.data > 0).sum()
        assert np.all(defended.data + 1e-9 >= dataset.data)
        with pytest.raises(ValueError):
            AdaptivePaddingDefence(fill_probability=0.0)
        with pytest.raises(ValueError):
            AdaptivePaddingDefence(burst_scale=0.0)

    def test_anonymity_sets_group_similar_sizes(self):
        dataset = raw_dataset(n_classes=6)
        defence = AnonymitySetPadding(set_size=3)
        assignments = defence.class_assignments(dataset, log_scaled=False)
        assert set(assignments) == set(range(6))
        assert len(set(assignments.values())) == 2
        # classes sorted by volume: 0,1,2 -> set 0; 3,4,5 -> set 1
        assert assignments[0] == assignments[1] == assignments[2]
        assert assignments[3] == assignments[4] == assignments[5]

    def test_anonymity_sets_equalise_within_set(self):
        dataset = raw_dataset(n_classes=4, samples_per_class=5)
        defence = AnonymitySetPadding(set_size=2)
        defended = defence.apply(dataset, log_scaled=False)
        assignments = defence.class_assignments(dataset, log_scaled=False)
        totals = defended.data.sum(axis=2)
        for set_id in set(assignments.values()):
            members = [i for i, label in enumerate(dataset.labels) if assignments[int(label)] == set_id]
            member_totals = totals[members]
            assert np.allclose(member_totals, member_totals[0][None, :])

    def test_anonymity_set_cheaper_than_fl(self):
        dataset = raw_dataset(n_classes=6, samples_per_class=5)
        fl = FixedLengthPadding().apply(dataset, log_scaled=False)
        sets = AnonymitySetPadding(set_size=2).apply(dataset, log_scaled=False)
        assert bandwidth_overhead(dataset, sets, log_scaled=False) < bandwidth_overhead(
            dataset, fl, log_scaled=False
        )

    def test_anonymity_set_validation(self):
        with pytest.raises(ValueError):
            AnonymitySetPadding(set_size=1)


class TestOverhead:
    def test_overhead_zero_for_identity(self):
        dataset = raw_dataset()
        assert bandwidth_overhead(dataset, dataset, log_scaled=False) == pytest.approx(0.0)

    def test_overhead_shape_mismatch(self):
        a = raw_dataset(n_classes=2)
        b = raw_dataset(n_classes=3)
        with pytest.raises(ValueError):
            bandwidth_overhead(a, b, log_scaled=False)

    def test_defence_report(self):
        dataset = raw_dataset()
        defended = FixedLengthPadding().apply(dataset, log_scaled=False)
        report = defence_report(
            "FL",
            dataset,
            defended,
            accuracy_before={1: 0.9, 3: 0.95},
            accuracy_after={1: 0.3, 3: 0.5},
            log_scaled=False,
        )
        assert report.overhead > 0
        assert report.accuracy_drop(1) == pytest.approx(0.6)
        assert report.defence_name == "FL"

    @given(st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_fl_padding_overhead_non_negative(self, n_classes, samples):
        dataset = raw_dataset(n_classes=n_classes, samples_per_class=samples, seed=n_classes)
        defended = FixedLengthPadding().apply(dataset, log_scaled=False)
        assert bandwidth_overhead(dataset, defended, log_scaled=False) >= 0.0
