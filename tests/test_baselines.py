"""Tests for the comparator attacks (k-FP, CUMUL, DF, HMM, Bissias)."""

import numpy as np
import pytest

from repro.baselines import (
    CrossCorrelationAttack,
    CumulAttack,
    DecisionTree,
    DeepFingerprintingClassifier,
    KFingerprintingAttack,
    LinearSVM,
    RandomForest,
    UserJourneyHMM,
    feature_names,
    handcrafted_features,
)
from repro.baselines.cumul import cumulative_features
from repro.traces import Trace, TraceDataset, reference_test_split
from repro.web import WikipediaLikeGenerator


def synthetic_dataset(n_classes=4, samples_per_class=12, seed=0):
    """Class volume differs strongly -> easy for any sensible attack."""
    rng = np.random.default_rng(seed)
    traces = []
    for class_id in range(n_classes):
        for _ in range(samples_per_class):
            sequences = np.zeros((3, 10))
            sequences[0, 0] = 400 + rng.normal(0, 20)
            sequences[1, 1:5] = (class_id + 1) * 8_000 + rng.normal(0, 200, size=4)
            sequences[2, 3:5] = 3_000 + class_id * 2_000 + rng.normal(0, 100, size=2)
            traces.append(
                Trace(label=f"page-{class_id}", website="w", sequences=np.log1p(np.abs(sequences)))
            )
    return TraceDataset.from_traces(traces)


class TestFeatures:
    def test_feature_matrix_shape_and_names(self):
        dataset = synthetic_dataset()
        features = handcrafted_features(dataset)
        names = feature_names(dataset.n_sequences)
        assert features.shape == (len(dataset), len(names))
        assert "seq0_total_bytes" in names and "trace_total_bytes" in names

    def test_features_separate_classes(self):
        dataset = synthetic_dataset()
        features = handcrafted_features(dataset)
        totals = features[:, feature_names(3).index("trace_total_bytes")]
        class_means = [totals[dataset.labels == c].mean() for c in range(dataset.n_classes)]
        assert sorted(class_means) == class_means  # volumes grow with class id

    def test_cumulative_features(self):
        dataset = synthetic_dataset()
        features = cumulative_features(dataset, n_points=10)
        assert features.shape == (len(dataset), 3 * 10 + 2)
        assert np.all(np.isfinite(features))
        with pytest.raises(ValueError):
            cumulative_features(dataset, n_points=1)


class TestRandomForest:
    def test_tree_fits_simple_rule(self):
        rng = np.random.default_rng(0)
        features = rng.standard_normal((200, 3))
        labels = (features[:, 1] > 0).astype(int)
        tree = DecisionTree(max_depth=3, rng=np.random.default_rng(1)).fit(features, labels)
        accuracy = (tree.predict(features) == labels).mean()
        assert accuracy > 0.95
        assert tree.n_leaves >= 2

    def test_tree_validation(self):
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((3, 2)), np.zeros(4, dtype=int))
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_forest_accuracy_and_proba(self):
        rng = np.random.default_rng(2)
        features = rng.standard_normal((300, 4))
        labels = ((features[:, 0] + features[:, 2]) > 0).astype(int)
        forest = RandomForest(n_trees=15, max_depth=4, seed=0).fit(features, labels)
        probabilities = forest.predict_proba(features)
        assert probabilities.shape == (300, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert (forest.predict(features) == labels).mean() > 0.9

    def test_forest_apply_leaf_vectors(self):
        rng = np.random.default_rng(3)
        features = rng.standard_normal((100, 3))
        labels = (features[:, 0] > 0).astype(int)
        forest = RandomForest(n_trees=7, max_depth=3, seed=1).fit(features, labels)
        leaves = forest.apply(features)
        assert leaves.shape == (100, 7)
        assert leaves.dtype == np.int64

    def test_forest_validation(self):
        with pytest.raises(ValueError):
            RandomForest(n_trees=0)
        with pytest.raises(RuntimeError):
            RandomForest().predict_proba(np.zeros((1, 2)))


class TestKFingerprinting:
    def test_high_accuracy_on_separable_data(self):
        dataset = synthetic_dataset()
        reference, test = reference_test_split(dataset, 0.75, seed=0)
        attack = KFingerprintingAttack(n_trees=15, max_depth=6, k_neighbours=3, seed=0).fit(reference)
        accuracy = attack.topn_accuracy(test, ns=(1, 3))
        assert accuracy[1] > 0.7
        assert accuracy[3] >= accuracy[1]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KFingerprintingAttack().rank_labels(synthetic_dataset())
        with pytest.raises(ValueError):
            KFingerprintingAttack(k_neighbours=0)


class TestCumul:
    def test_svm_separates_linear_data(self):
        rng = np.random.default_rng(4)
        features = rng.standard_normal((200, 5))
        labels = (features @ np.array([1.0, -1.0, 0.5, 0.0, 2.0]) > 0).astype(int)
        svm = LinearSVM(epochs=30, learning_rate=0.1, seed=0).fit(features, labels)
        assert (svm.predict(features) == labels).mean() > 0.9

    def test_svm_validation(self):
        with pytest.raises(ValueError):
            LinearSVM(c=0)
        with pytest.raises(RuntimeError):
            LinearSVM().decision_function(np.zeros((1, 3)))

    def test_cumul_attack_accuracy(self):
        dataset = synthetic_dataset()
        reference, test = reference_test_split(dataset, 0.75, seed=1)
        attack = CumulAttack(n_points=12, epochs=40, learning_rate=0.1, seed=0).fit(reference)
        accuracy = attack.topn_accuracy(test, ns=(1, 3))
        assert accuracy[1] > 0.6
        with pytest.raises(RuntimeError):
            CumulAttack().rank_labels(dataset)


class TestDeepFingerprinting:
    def test_classifier_learns_and_ranks(self):
        dataset = synthetic_dataset()
        reference, test = reference_test_split(dataset, 0.75, seed=2)
        classifier = DeepFingerprintingClassifier(
            hidden_sizes=(32,), epochs=40, batch_size=16, learning_rate=0.01, dropout=0.0, seed=0
        ).fit(reference)
        assert classifier.loss_history[-1] < classifier.loss_history[0]
        accuracy = classifier.topn_accuracy(test, ns=(1, 3))
        assert accuracy[1] > 0.7
        probabilities = classifier.predict_proba(test)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_cnn_architecture_learns_and_ranks(self):
        dataset = synthetic_dataset()
        reference, test = reference_test_split(dataset, 0.75, seed=4)
        classifier = DeepFingerprintingClassifier(
            architecture="cnn",
            conv_filters=(8,),
            kernel_size=3,
            pool_size=2,
            hidden_sizes=(32,),
            epochs=40,
            batch_size=16,
            learning_rate=0.01,
            dropout=0.0,
            seed=0,
        ).fit(reference)
        accuracy = classifier.topn_accuracy(test, ns=(1, 3))
        assert accuracy[1] > 0.6
        assert accuracy[3] >= accuracy[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            DeepFingerprintingClassifier(epochs=0)
        with pytest.raises(ValueError):
            DeepFingerprintingClassifier(architecture="transformer")
        with pytest.raises(RuntimeError):
            DeepFingerprintingClassifier().predict_proba(synthetic_dataset())


class TestUserJourneyHMM:
    @pytest.fixture(scope="class")
    def website(self):
        return WikipediaLikeGenerator(n_pages=6, seed=5).generate()

    def test_transition_matrix_is_stochastic(self, website):
        hmm = UserJourneyHMM(website)
        matrix = hmm.transition_matrix
        assert matrix.shape == (6, 6)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix >= 0)

    def test_decode_recovers_journey_with_good_emissions(self, website):
        hmm = UserJourneyHMM(website)
        rng = np.random.default_rng(0)
        journey = hmm.sample_journey(8, rng)
        emissions = np.full((8, 6), 0.02)
        for step, page in enumerate(journey):
            emissions[step, hmm.states.index(page)] = 0.9
        decoded = hmm.decode(emissions)
        assert decoded == journey
        assert hmm.journey_accuracy(emissions, journey) == 1.0

    def test_link_graph_prior_improves_noisy_emissions(self, website):
        """The HMM should beat per-load argmax when emissions are noisy."""
        hmm = UserJourneyHMM(website, self_transition=0.05)
        rng = np.random.default_rng(1)
        journeys = [hmm.sample_journey(12, rng) for _ in range(5)]
        hmm_hits, argmax_hits, total = 0, 0, 0
        for journey in journeys:
            emissions = np.zeros((len(journey), len(hmm.states)))
            for step, page in enumerate(journey):
                noise = rng.random(len(hmm.states))
                emissions[step] = noise / noise.sum() * 0.65
                emissions[step, hmm.states.index(page)] += 0.35
            decoded = hmm.decode(emissions)
            argmax = [hmm.states[int(np.argmax(row))] for row in emissions]
            hmm_hits += sum(p == a for p, a in zip(decoded, journey))
            argmax_hits += sum(p == a for p, a in zip(argmax, journey))
            total += len(journey)
        # The link-graph prior should help (or at worst cost a step or two
        # to noise) compared with classifying every load independently.
        assert hmm_hits + 2 >= argmax_hits
        assert hmm_hits > 0.3 * total

    def test_validation(self, website):
        hmm = UserJourneyHMM(website)
        with pytest.raises(ValueError):
            hmm.decode(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            hmm.journey_accuracy(np.full((2, 6), 1.0 / 6), ["a"])
        with pytest.raises(ValueError):
            hmm.sample_journey(0, np.random.default_rng(0))
        with pytest.raises(KeyError):
            hmm.sample_journey(3, np.random.default_rng(0), start="ghost")
        with pytest.raises(ValueError):
            UserJourneyHMM(website, self_transition=1.0)


class TestBissias:
    def test_cross_correlation_accuracy(self):
        dataset = synthetic_dataset()
        reference, test = reference_test_split(dataset, 0.75, seed=3)
        attack = CrossCorrelationAttack().fit(reference)
        accuracy = attack.topn_accuracy(test, ns=(1, 3))
        assert accuracy[1] > 0.5
        assert accuracy[3] >= accuracy[1]

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CrossCorrelationAttack().rank_labels(synthetic_dataset())
