"""Shared fixtures: small-scale datasets and hyperparameters for fast tests."""

import numpy as np
import pytest

from repro.config import ClassifierConfig, EmbeddingHyperparameters, TrainingConfig
from repro.traces import SequenceExtractor, TraceDataset, collect_dataset
from repro.web import WikipediaLikeGenerator, GithubLikeGenerator


def tiny_hyperparameters(**overrides):
    """A small Table-I-shaped network that trains in seconds on a CPU."""
    defaults = dict(
        lstm_units=12,
        hidden_layer_sizes=(32, 16),
        embedding_dim=8,
        optimizer="adam",
        dropout=0.0,
        learning_rate=0.03,
        batch_size=64,
        contrastive_margin=3.0,
    )
    defaults.update(overrides)
    return EmbeddingHyperparameters(**defaults)


def tiny_training_config(**overrides):
    defaults = dict(epochs=10, pairs_per_epoch=800, seed=0)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


@pytest.fixture(scope="session")
def wiki_website():
    """A small Wikipedia-like website shared across tests."""
    return WikipediaLikeGenerator(n_pages=8, seed=11).generate()


@pytest.fixture(scope="session")
def wiki_dataset(wiki_website):
    """Preprocessed traces from the shared Wikipedia-like website."""
    extractor = SequenceExtractor(max_sequences=3, sequence_length=24)
    return collect_dataset(wiki_website, extractor, visits_per_page=12, seed=3)


@pytest.fixture(scope="session")
def github_dataset():
    """A small Github-like (TLS 1.3) dataset in the two-sequence encoding."""
    website = GithubLikeGenerator(n_pages=6, seed=21).generate()
    extractor = SequenceExtractor(max_sequences=2, merge_servers=True, sequence_length=24)
    return collect_dataset(website, extractor, visits_per_page=10, seed=4)
