"""Tests for the cost model, Table III catalogue and the metrics package."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.costs import CostModel, Complexity, TABLE_III_SYSTEMS, system_profiles, table_iii_rows
from repro.metrics import (
    PerClassDistinguishability,
    accuracy_curve,
    format_accuracy_table,
    format_table,
    guess_cdf,
    n_for_target_accuracy,
    per_class_mean_guesses,
    topn_accuracy_from_rankings,
)


class TestCostModel:
    def make_models(self):
        adaptive = CostModel(
            name="adaptive", instances_per_class=90, requires_retraining=False, training_cost_per_trace=0.2
        )
        retraining = CostModel(
            name="retraining", instances_per_class=90, requires_retraining=True, training_cost_per_trace=0.2
        )
        return adaptive, retraining

    def test_collection_cost_formula(self):
        model = CostModel(name="x", instances_per_class=10, collection_cost_per_trace=2.0)
        assert model.collection_cost(n_classes=5, versions=3) == 2.0 * 5 * 3 * 10

    def test_training_cost_scales_with_classes(self):
        model, _ = self.make_models()
        small = model.training_cost(100).total
        large = model.training_cost(1000).total
        assert large == pytest.approx(10 * small)

    def test_update_cost_retraining_vs_adaptive(self):
        adaptive, retraining = self.make_models()
        total_classes = 1000
        adaptive_cost = adaptive.update_cost(updated_classes=10, total_classes=total_classes)
        retraining_cost = retraining.update_cost(updated_classes=10, total_classes=total_classes)
        # Same collection cost, but the retraining system pays a full refit.
        assert adaptive_cost.collection == retraining_cost.collection
        assert retraining_cost.computation > 10 * adaptive_cost.computation

    def test_update_cost_zero_updates(self):
        adaptive, _ = self.make_models()
        assert adaptive.update_cost(0, 100).total == 0.0

    def test_testing_cost_no_collection(self):
        adaptive, _ = self.make_models()
        cost = adaptive.testing_cost(victims=3, pages_per_victim=50)
        assert cost.collection == 0.0
        assert cost.computation > 0.0

    def test_yearly_update_cost_grows_with_churn(self):
        adaptive, _ = self.make_models()
        low = adaptive.yearly_update_cost(1000, 0.01)
        high = adaptive.yearly_update_cost(1000, 0.10)
        assert high > low

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(name="bad", instances_per_class=0)
        model, _ = self.make_models()
        with pytest.raises(ValueError):
            model.collection_cost(0)
        with pytest.raises(ValueError):
            model.testing_cost(0, 5)
        with pytest.raises(ValueError):
            model.update_cost(-1, 10)
        with pytest.raises(ValueError):
            model.yearly_update_cost(100, 1.5)

    @given(st.integers(1, 50), st.integers(1, 2000))
    @settings(max_examples=30, deadline=None)
    def test_update_cheaper_than_full_retrain_for_adaptive(self, updated, total):
        updated = min(updated, total)
        adaptive = CostModel(name="a", instances_per_class=90, requires_retraining=False)
        assert adaptive.update_cost(updated, total).total <= adaptive.training_cost(total).total + 1e-9


class TestCatalogue:
    def test_all_paper_systems_present(self):
        names = {profile.name for profile in TABLE_III_SYSTEMS}
        expected = {
            "Adaptive Fingerprinting",
            "Miller et al.",
            "Bissias et al.",
            "Triplet Fingerprinting",
            "Deep Fingerprinting",
            "Var-CNN",
            "k-fingerprinting",
        }
        assert expected == names

    def test_adaptive_row_matches_paper(self):
        adaptive = system_profiles()["Adaptive Fingerprinting"]
        assert adaptive.protocol == "TLS"
        assert adaptive.max_classes == 13_000
        assert adaptive.handles_distribution_shift
        assert not adaptive.requires_retraining
        assert adaptive.training_instances == "90"
        assert adaptive.complexity is Complexity.HIGH

    def test_retraining_systems_flagged(self):
        profiles = system_profiles()
        for name in ("Deep Fingerprinting", "Var-CNN", "Miller et al."):
            assert profiles[name].requires_retraining
        for name in ("Adaptive Fingerprinting", "k-fingerprinting", "Triplet Fingerprinting", "Bissias et al."):
            assert not profiles[name].requires_retraining

    def test_table_rows_shape(self):
        rows = table_iii_rows()
        assert len(rows) == len(TABLE_III_SYSTEMS)
        assert all("Name" in row and "Retraining" in row for row in rows)


class TestTopNMetrics:
    def test_topn_from_rankings(self):
        rankings = [["a", "b", "c"], ["b", "a", "c"], ["c", "b", "a"]]
        truth = ["a", "a", "a"]
        accuracy = topn_accuracy_from_rankings(rankings, truth, ns=(1, 2, 3))
        assert accuracy[1] == pytest.approx(1 / 3)
        assert accuracy[2] == pytest.approx(2 / 3)
        assert accuracy[3] == pytest.approx(1.0)

    def test_topn_validation(self):
        with pytest.raises(ValueError):
            topn_accuracy_from_rankings([["a"]], ["a", "b"], ns=(1,))
        with pytest.raises(ValueError):
            topn_accuracy_from_rankings([], [], ns=(1,))
        with pytest.raises(ValueError):
            topn_accuracy_from_rankings([["a"]], ["a"], ns=(0,))

    def test_accuracy_curve_monotone(self):
        guesses = np.array([1, 2, 2, 5, 3, 1])
        curve = accuracy_curve(guesses, max_n=5)
        assert len(curve) == 5
        assert curve == sorted(curve)
        assert curve[-1] == pytest.approx(1.0)

    def test_accuracy_curve_validation(self):
        with pytest.raises(ValueError):
            accuracy_curve(np.array([]), 3)
        with pytest.raises(ValueError):
            accuracy_curve(np.array([0.5]), 3)
        with pytest.raises(ValueError):
            accuracy_curve(np.array([1.0]), 0)

    def test_n_for_target_accuracy(self):
        guesses = np.array([1, 1, 2, 3, 10])
        assert n_for_target_accuracy(guesses, 0.4, max_n=20) == 1
        assert n_for_target_accuracy(guesses, 0.8, max_n=20) == 3
        assert n_for_target_accuracy(guesses, 1.0, max_n=20) == 10
        # unreachable target within max_n falls back to max_n
        assert n_for_target_accuracy(guesses, 1.0, max_n=5) == 5
        with pytest.raises(ValueError):
            n_for_target_accuracy(guesses, 0.0, max_n=5)

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_curve_matches_direct_computation(self, ranks):
        guesses = np.array(ranks, dtype=float)
        curve = accuracy_curve(guesses, max_n=50)
        for n in (1, 10, 50):
            assert curve[n - 1] == pytest.approx(np.mean(guesses <= n))


class TestPerClassMetrics:
    def test_per_class_means(self):
        guesses = np.array([1, 3, 2, 10])
        labels = ["a", "a", "b", "b"]
        means = per_class_mean_guesses(guesses, labels)
        assert means == {"a": 2.0, "b": 6.0}

    def test_per_class_validation(self):
        with pytest.raises(ValueError):
            per_class_mean_guesses(np.array([1.0]), ["a", "b"])
        with pytest.raises(ValueError):
            per_class_mean_guesses(np.array([]), [])

    def test_guess_cdf(self):
        means = {"a": 1.0, "b": 2.5, "c": 9.0}
        cdf = guess_cdf(means, thresholds=[2, 5, 10])
        assert cdf == [pytest.approx(1 / 3), pytest.approx(2 / 3), pytest.approx(1.0)]
        with pytest.raises(ValueError):
            guess_cdf({}, [1])
        with pytest.raises(ValueError):
            guess_cdf(means, [0])

    def test_distinguishability_summary(self):
        summary = PerClassDistinguishability(
            scenario="known", per_class_guesses={"a": 1.0, "b": 4.0, "c": 20.0}
        )
        assert summary.n_classes == 3
        assert summary.fraction_below(2) == pytest.approx(1 / 3)
        assert summary.hardest_classes(1) == [("c", 20.0)]
        assert summary.easiest_classes(1) == [("a", 1.0)]
        assert summary.cdf([2, 30]) == [pytest.approx(1 / 3), pytest.approx(1.0)]
        with pytest.raises(ValueError):
            summary.hardest_classes(0)


class TestReports:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["long-name", True]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.235" in table and "yes" in table

    def test_format_table_validation(self):
        with pytest.raises(ValueError):
            format_table([], [])
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_accuracy_table(self):
        table = format_accuracy_table({"500 classes": {1: 0.58, 3: 0.9}}, ns=(1, 3, 10))
        assert "top-1" in table and "0.580" in table and "-" in table
