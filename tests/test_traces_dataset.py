"""Tests for TraceDataset, the Figure-5 splits and dataset collection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traces import (
    FourWaySplit,
    SequenceExtractor,
    Trace,
    TraceDataset,
    collect_dataset,
    four_way_split,
    reference_test_split,
)
from repro.web import WikipediaLikeGenerator


def make_dataset(n_classes=6, samples_per_class=10, seed=0):
    """A small synthetic dataset with class-dependent trace patterns."""
    rng = np.random.default_rng(seed)
    traces = []
    for class_id in range(n_classes):
        for _ in range(samples_per_class):
            base = np.zeros((3, 8))
            base[1, :] = class_id * 10 + rng.normal(0, 0.5, size=8)
            base = np.abs(base)
            traces.append(Trace(label=f"page-{class_id:03d}", website="w", sequences=base))
    return TraceDataset.from_traces(traces)


class TestTraceDataset:
    def test_from_traces_basics(self):
        dataset = make_dataset(4, 5)
        assert len(dataset) == 20
        assert dataset.n_classes == 4
        assert dataset.n_sequences == 3 and dataset.sequence_length == 8
        assert dataset.samples_per_class() == {0: 5, 1: 5, 2: 5, 3: 5}
        assert dataset.label_name(0) == "page-000"

    def test_from_traces_rejects_empty_and_mixed_shapes(self):
        with pytest.raises(ValueError):
            TraceDataset.from_traces([])
        traces = [
            Trace(label="a", website="w", sequences=np.zeros((3, 8))),
            Trace(label="b", website="w", sequences=np.zeros((2, 8))),
        ]
        with pytest.raises(ValueError):
            TraceDataset.from_traces(traces)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TraceDataset(np.zeros((2, 3)), np.zeros(2), ["a"])
        with pytest.raises(ValueError):
            TraceDataset(np.zeros((2, 3, 4)), np.zeros(3), ["a"])
        with pytest.raises(ValueError):
            TraceDataset(np.zeros((2, 3, 4)), np.array([0, 5]), ["a"])

    def test_model_inputs_time_major(self):
        dataset = make_dataset(2, 3)
        inputs = dataset.model_inputs()
        assert inputs.shape == (6, 8, 3)
        assert np.allclose(inputs[0], dataset.data[0].T)

    def test_subset_and_filter_classes(self):
        dataset = make_dataset(5, 4)
        subset = dataset.subset(range(8))
        assert len(subset) == 8
        filtered = dataset.filter_classes([1, 3])
        assert filtered.n_classes == 2
        assert set(filtered.class_names) == {"page-001", "page-003"}
        assert set(np.unique(filtered.labels)) == {0, 1}

    def test_filter_classes_validation(self):
        dataset = make_dataset(3, 2)
        with pytest.raises(ValueError):
            dataset.filter_classes([])
        with pytest.raises(ValueError):
            dataset.filter_classes([99])

    def test_first_n_classes(self):
        dataset = make_dataset(6, 2)
        sliced = dataset.first_n_classes(3)
        assert sliced.n_classes == 3
        with pytest.raises(ValueError):
            dataset.first_n_classes(0)
        with pytest.raises(ValueError):
            dataset.first_n_classes(7)

    def test_split_per_class_fractions(self):
        dataset = make_dataset(4, 10)
        reference, test = dataset.split_per_class(0.9, seed=1)
        assert len(reference) == 36 and len(test) == 4
        # No overlap: the totals add up and every class is present in both.
        assert len(reference) + len(test) == len(dataset)
        assert set(np.unique(test.labels)) == set(range(4))

    def test_split_per_class_invalid(self):
        dataset = make_dataset(2, 4)
        with pytest.raises(ValueError):
            dataset.split_per_class(0.0)
        with pytest.raises(ValueError):
            dataset.split_per_class(1.0)

    def test_merge_unions_class_names(self):
        a = make_dataset(3, 2, seed=0)
        b = make_dataset(5, 2, seed=1)
        merged = a.merge(b)
        assert merged.n_classes == 5
        assert len(merged) == len(a) + len(b)

    def test_merge_shape_mismatch(self):
        a = make_dataset(2, 2)
        traces = [Trace(label="x", website="w", sequences=np.zeros((2, 8)))]
        b = TraceDataset.from_traces(traces)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_save_load_roundtrip(self, tmp_path):
        dataset = make_dataset(3, 4)
        path = dataset.save(tmp_path / "wiki")
        loaded = TraceDataset.load(path)
        assert np.allclose(loaded.data, dataset.data)
        assert np.array_equal(loaded.labels, dataset.labels)
        assert loaded.class_names == dataset.class_names

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceDataset.load(tmp_path / "nope.npz")

    @given(st.integers(2, 6), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_split_never_loses_samples(self, n_classes, samples):
        dataset = make_dataset(n_classes, samples, seed=n_classes)
        reference, test = dataset.split_per_class(0.8, seed=0)
        assert len(reference) + len(test) == len(dataset)
        # every class retains at least one sample on each side
        assert set(np.unique(reference.labels)) == set(range(n_classes))
        assert set(np.unique(test.labels)) == set(range(n_classes))


class TestFourWaySplit:
    def test_figure5_geometry(self):
        dataset = make_dataset(10, 8)
        split = four_way_split(dataset, train_classes=6, reference_fraction=0.75, seed=3)
        assert isinstance(split, FourWaySplit)
        # A and B share classes; C and D share classes; the two sides are disjoint.
        assert set(split.set_a.class_names) == set(split.set_b.class_names)
        assert set(split.set_c.class_names) == set(split.set_d.class_names)
        assert set(split.set_a.class_names).isdisjoint(split.set_c.class_names)
        assert split.set_a.n_classes == 6 and split.set_c.n_classes == 4
        total = sum(len(s) for s in (split.set_a, split.set_b, split.set_c, split.set_d))
        assert total == len(dataset)
        assert "Set A" in split.summary()

    def test_four_way_split_validation(self):
        dataset = make_dataset(4, 4)
        with pytest.raises(ValueError):
            four_way_split(dataset, train_classes=0)
        with pytest.raises(ValueError):
            four_way_split(dataset, train_classes=4)

    def test_reference_test_split_helper(self):
        dataset = make_dataset(3, 10)
        reference, test = reference_test_split(dataset, 0.9, seed=0)
        assert len(reference) == 27 and len(test) == 3


class TestCollectDataset:
    def test_end_to_end_collection(self):
        website = WikipediaLikeGenerator(n_pages=4, seed=1).generate()
        dataset = collect_dataset(
            website,
            SequenceExtractor(max_sequences=3, sequence_length=20),
            visits_per_page=3,
            seed=0,
        )
        assert dataset.n_classes == 4
        assert len(dataset) == 12
        assert dataset.website == website.name
        assert dataset.tls_version == str(website.tls_version)
        # Traces from the same page are similar but not identical.
        class0 = dataset.data[dataset.labels == 0]
        assert not np.allclose(class0[0], class0[1])

    def test_collection_is_deterministic(self):
        website = WikipediaLikeGenerator(n_pages=3, seed=2).generate()
        a = collect_dataset(website, visits_per_page=2, seed=5)
        website_again = WikipediaLikeGenerator(n_pages=3, seed=2).generate()
        b = collect_dataset(website_again, visits_per_page=2, seed=5)
        assert np.allclose(a.data, b.data)

    def test_page_subset(self):
        website = WikipediaLikeGenerator(n_pages=5, seed=3).generate()
        subset_ids = website.page_ids[:2]
        dataset = collect_dataset(website, page_ids=subset_ids, visits_per_page=2, seed=0)
        assert dataset.n_classes == 2
