"""Product quantization: codebooks, the IVF-PQ engine, float32 stores.

Covers the compressed-index contract end to end at the core layer:
ADC + exact re-rank agreement with :class:`ExactIndex`, recall lower
bounds without re-rank, add/remove keeping codes consistent with the
store buffer, spec/state persistence round-trips (flat store archives),
the float32 storage path, and the k-means++ seeding shared by both
quantizers.
"""

import numpy as np
import pytest

from repro.core.index import (
    CoarseQuantizedIndex,
    ExactIndex,
    IVFPQIndex,
    ProductQuantizer,
    _kmeans,
    index_from_spec,
)
from repro.core.index_bench import clustered_corpus
from repro.core.reference_store import ReferenceStore


def corpus(n=3000, dim=24, seed=1):
    return clustered_corpus(n, dim, n_clusters=max(8, n // 50), seed=seed)


def queries_near(vectors, n_queries=64, seed=2, noise=0.1):
    rng = np.random.default_rng(seed)
    picks = vectors[rng.choice(vectors.shape[0], n_queries, replace=False)]
    return picks + noise * rng.standard_normal(picks.shape)


def recall(ids, exact_ids):
    k = ids.shape[1]
    return np.mean(
        [np.intersect1d(ids[q], exact_ids[q]).size / k for q in range(ids.shape[0])]
    )


class TestProductQuantizer:
    def test_decode_is_closer_than_shuffled_codes(self):
        vectors = corpus(2000, 24)
        pq = ProductQuantizer(n_subspaces=6, bits=6, seed=0)
        pq.fit(vectors)
        codes = pq.encode(vectors)
        decoded = pq.decode(codes)
        err = np.linalg.norm(vectors - decoded, axis=1).mean()
        rng = np.random.default_rng(0)
        shuffled = pq.decode(codes[rng.permutation(codes.shape[0])])
        err_shuffled = np.linalg.norm(vectors - shuffled, axis=1).mean()
        assert err < 0.5 * err_shuffled  # codes carry real geometry

    def test_uneven_subspace_split(self):
        vectors = corpus(600, 13)  # 13 dims across 4 subspaces -> 4,3,3,3
        pq = ProductQuantizer(n_subspaces=4, bits=4)
        pq.fit(vectors)
        assert pq._sub_dims.tolist() == [4, 3, 3, 3]
        decoded = pq.decode(pq.encode(vectors))
        assert decoded.shape == vectors.shape

    def test_codes_are_uint8_and_bounded(self):
        vectors = corpus(800, 16)
        pq = ProductQuantizer(n_subspaces=4, bits=5)
        pq.fit(vectors)
        codes = pq.encode(vectors)
        assert codes.dtype == np.uint8
        assert codes.max() < 2**5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProductQuantizer(n_subspaces=0)
        with pytest.raises(ValueError):
            ProductQuantizer(bits=9)
        with pytest.raises(ValueError):
            ProductQuantizer(bits=0)
        pq = ProductQuantizer(n_subspaces=40)
        with pytest.raises(ValueError):
            pq.fit(corpus(500, 16))  # more subspaces than dimensions
        with pytest.raises(RuntimeError):
            ProductQuantizer().encode(corpus(10, 16))


class TestIVFPQIndex:
    def test_full_probe_rerank_matches_exact_bitwise(self):
        vectors = corpus(4000, 24)
        q = queries_near(vectors)
        pq = IVFPQIndex(n_cells=16, n_probe=16, rerank=64, min_train_size=16)
        pq.rebuild(vectors)
        d_pq, i_pq = pq.search(vectors, q, 10)
        d_ex, i_ex = ExactIndex().search(vectors, q, 10)
        # Every cell probed and rerank (64) well above k: the true top-10
        # sit inside the re-ranked pool, so the returned ranking is the
        # exact ranking (ids bit-for-bit; distances to fp rounding).
        assert np.array_equal(i_pq, i_ex)
        assert np.allclose(d_pq, d_ex)

    def test_partial_probe_recall_with_rerank(self):
        vectors = corpus(4000, 24)
        q = queries_near(vectors)
        pq = IVFPQIndex(min_train_size=16)  # engine defaults, rerank=64
        pq.rebuild(vectors)
        _, i_pq = pq.search(vectors, q, 10)
        _, i_ex = ExactIndex().search(vectors, q, 10)
        assert recall(i_pq, i_ex) >= 0.95

    def test_adc_only_recall_lower_bound(self):
        vectors = corpus(4000, 24)
        q = queries_near(vectors)
        pq = IVFPQIndex(rerank=0, min_train_size=16)
        pq.rebuild(vectors)
        _, i_pq = pq.search(None, q, 10)  # never touches raw vectors
        _, i_ex = ExactIndex().search(vectors, q, 10)
        assert recall(i_pq, i_ex) >= 0.6

    def test_rerank_without_vectors_raises(self):
        vectors = corpus(1000, 16)
        pq = IVFPQIndex(rerank=8, min_train_size=16)
        pq.rebuild(vectors)
        with pytest.raises(ValueError):
            pq.search(None, vectors[:3], 5)

    def test_untrained_falls_back_to_exact(self):
        rng = np.random.default_rng(3)
        vectors = rng.standard_normal((60, 8))
        pq = IVFPQIndex(min_train_size=256)
        pq.rebuild(vectors)
        assert not pq.trained
        d1, i1 = pq.search(vectors, vectors[:5], 4)
        d2, i2 = ExactIndex().search(vectors, vectors[:5], 4)
        assert np.array_equal(i1, i2) and np.array_equal(d1, d2)
        with pytest.raises(ValueError):
            pq.search(None, vectors[:5], 4)

    def test_add_encodes_with_existing_codebooks(self):
        vectors = corpus(2000, 16)
        pq = IVFPQIndex(n_cells=32, min_train_size=16)
        pq.rebuild(vectors)
        centroids = pq._centroids.copy()
        extra = corpus(200, 16, seed=9)
        grown = np.concatenate([vectors, extra])
        pq.add(grown, 200)
        # Retraining-free: centroids and codebooks untouched, codes appended.
        assert np.array_equal(pq._centroids, centroids)
        assert pq._n == 2200
        assigned = pq._assign_buffer[2000:2200]
        expected = pq.pq.encode(extra - centroids[assigned])
        assert np.array_equal(pq.codes[2000:2200], expected)

    def test_remove_compacts_codes_consistently(self):
        vectors = corpus(2000, 16)
        pq = IVFPQIndex(n_cells=32, min_train_size=16)
        pq.rebuild(vectors)
        before_codes = pq.codes.copy()
        before_consts = pq._const_buffer[:2000].copy()
        kept_mask = np.ones(2000, dtype=bool)
        kept_mask[300:700] = False
        pq.remove(kept_mask)
        assert pq._n == 1600
        assert np.array_equal(pq.codes, before_codes[kept_mask])
        assert np.array_equal(pq._const_buffer[:1600], before_consts[kept_mask])
        kept = vectors[kept_mask]
        _, ids = pq.search(kept, kept[:4], 1)
        assert np.array_equal(ids[:, 0], np.arange(4))

    def test_spec_roundtrip(self):
        pq = IVFPQIndex(n_cells=11, n_probe=3, n_subspaces=4, bits=6, rerank=17, seed=5)
        clone = index_from_spec(pq.spec())
        assert isinstance(clone, IVFPQIndex)
        assert clone.spec() == pq.spec()

    def test_state_roundtrip_search_identical(self):
        vectors = corpus(2500, 16)
        pq = IVFPQIndex(min_train_size=16)
        pq.rebuild(vectors)
        q = queries_near(vectors, 32)
        d1, i1 = pq.search(vectors, q, 8)
        clone = index_from_spec(pq.spec())
        clone.load_state({k: v.copy() for k, v in pq.state().items()})
        d2, i2 = clone.search(vectors, q, 8)
        assert np.array_equal(i1, i2) and np.array_equal(d1, d2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IVFPQIndex(metric="cosine")
        with pytest.raises(ValueError):
            IVFPQIndex(n_cells=0)
        with pytest.raises(ValueError):
            IVFPQIndex(n_probe=0)
        with pytest.raises(ValueError):
            IVFPQIndex(rerank=-1)

    def test_inconsistent_state_rejected(self):
        vectors = corpus(600, 8)
        pq = IVFPQIndex(min_train_size=16)
        pq.rebuild(vectors)
        state = {k: v.copy() for k, v in pq.state().items()}
        state["assignments"] = state["assignments"][:-5]  # codes/assignments disagree
        with pytest.raises(ValueError):
            index_from_spec(pq.spec()).load_state(state)


class TestStoreArchivePersistence:
    def test_save_load_restores_codebooks_without_retrain(self, tmp_path):
        vectors = corpus(2000, 16)
        labels = [f"c{i % 25}" for i in range(2000)]
        store = ReferenceStore(16, index=IVFPQIndex(min_train_size=16))
        store.add(vectors, labels)
        q = queries_near(vectors, 32)
        d1, i1 = store.search(q, 7)
        path = store.save(tmp_path / "refs.npz")

        restored = ReferenceStore.load(path, index=index_from_spec(store.index.spec()))
        # The trained state was adopted, not re-learned.
        assert np.array_equal(restored.index._centroids, store.index._centroids)
        assert np.array_equal(restored.index.codes, store.index.codes)
        d2, i2 = restored.search(q, 7)
        assert np.array_equal(i1, i2) and np.array_equal(d1, d2)
        assert list(restored.labels) == labels

    def test_load_with_mismatched_index_retrains(self, tmp_path):
        vectors = corpus(1200, 16)
        store = ReferenceStore(16, index=IVFPQIndex(min_train_size=16))
        store.add(vectors, ["x"] * 1200)
        path = store.save(tmp_path / "refs.npz")
        # Loading the same archive into an IVF index must reject the PQ
        # state and rebuild cleanly — with its *own* cell resolution
        # (ceil(sqrt(N))), not the finer IVF-PQ cell layout.
        restored = ReferenceStore.load(path, index=CoarseQuantizedIndex(min_train_size=16))
        assert restored.index.trained
        assert restored.index._centroids.shape[0] == int(np.ceil(np.sqrt(1200)))
        d, i = restored.search(vectors[:3], 4)
        assert d.shape == (3, 4)

    def test_load_with_different_pq_shape_retrains(self, tmp_path):
        vectors = corpus(1200, 16)
        store = ReferenceStore(16, index=IVFPQIndex(n_subspaces=8, min_train_size=16))
        store.add(vectors, ["x"] * 1200)
        path = store.save(tmp_path / "refs8.npz")
        # Same kind, different code geometry: the stale state must be
        # rejected at load time and the index retrained with its own shape.
        restored = ReferenceStore.load(
            path, index=IVFPQIndex(n_subspaces=4, min_train_size=16)
        )
        assert restored.index.trained
        assert restored.index.codes.shape[1] == 4
        d, i = restored.search(vectors[:3], 4)
        assert d.shape == (3, 4)

    def test_save_load_roundtrip_after_churn(self, tmp_path):
        vectors = corpus(2000, 16)
        labels = [f"c{i % 20}" for i in range(2000)]
        store = ReferenceStore(16, index=IVFPQIndex(min_train_size=16))
        store.add(vectors, labels)
        rng = np.random.default_rng(4)
        store.remove_class("c3")
        store.replace_class("c5", rng.standard_normal((40, 16)) + vectors[:40])
        store.add(rng.standard_normal((30, 16)) + vectors[:30], ["brand-new"] * 30)
        q = queries_near(vectors, 32)
        d1, i1 = store.search(q, 9)
        restored = ReferenceStore.load(
            store.save(tmp_path / "churned.npz"), index=index_from_spec(store.index.spec())
        )
        d2, i2 = restored.search(q, 9)
        assert np.array_equal(i1, i2) and np.array_equal(d1, d2)


class TestFloat32Store:
    def test_buffer_and_view_dtype(self):
        store = ReferenceStore(8, storage_dtype="float32")
        store.add(np.ones((3, 8)), ["a", "b", "a"])
        assert store.embeddings.dtype == np.float32
        assert store.storage_dtype == "float32"
        assert store.memory_bytes() == 3 * 8 * 4

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            ReferenceStore(8, storage_dtype="float16")

    def test_search_matches_float64_within_tolerance(self):
        vectors = corpus(1500, 16)
        labels = [f"c{i % 10}" for i in range(1500)]
        f64 = ReferenceStore(16)
        f32 = ReferenceStore(16, storage_dtype="float32")
        f64.add(vectors, labels)
        f32.add(vectors, labels)
        q = queries_near(vectors, 48)
        d64, i64 = f64.search(q, 10)
        d32, i32 = f32.search(q, 10)
        assert np.allclose(d64, d32, rtol=1e-4, atol=1e-3)
        # On continuous data the ranking survives the precision drop.
        assert (i64 == i32).mean() > 0.99

    def test_clone_and_save_preserve_dtype(self, tmp_path):
        store = ReferenceStore(8, storage_dtype="float32")
        store.add(np.ones((4, 8)), ["a"] * 4)
        assert store.clone().storage_dtype == "float32"
        restored = ReferenceStore.load(store.save(tmp_path / "f32.npz"))
        assert restored.storage_dtype == "float32"
        assert restored.embeddings.dtype == np.float32

    def test_ivfpq_over_float32_store(self):
        vectors = corpus(2000, 16)
        labels = [f"c{i % 20}" for i in range(2000)]
        store = ReferenceStore(16, index=IVFPQIndex(min_train_size=16), storage_dtype="float32")
        store.add(vectors, labels)
        exact = ReferenceStore(16)
        exact.add(vectors, labels)
        q = queries_near(vectors, 32)
        _, i_pq = store.search(q, 10)
        _, i_ex = exact.search(q, 10)
        assert recall(i_pq, i_ex) >= 0.95


class TestKMeansPlusPlusSeeding:
    def test_cells_less_skewed_than_random_init(self):
        # Clustered corpus: random seeding routinely drops several seeds in
        # one dense cluster, leaving skewed cells; k-means++ spreads them.
        def skew(init, seed):
            vectors = clustered_corpus(2000, 12, n_clusters=16, seed=seed)
            _, assignments = _kmeans(vectors, 16, n_iter=4, seed=seed, init=init)
            counts = np.bincount(assignments, minlength=16)
            return counts.std() / counts.mean()

        seeds = range(3)
        skew_pp = np.mean([skew("kmeans++", s) for s in seeds])
        skew_random = np.mean([skew("random", s) for s in seeds])
        assert skew_pp < skew_random

    def test_unknown_init_rejected(self):
        with pytest.raises(ValueError):
            _kmeans(np.zeros((10, 2)), 2, init="magic")

    @pytest.mark.parametrize("metric", ["euclidean", "cosine", "cityblock"])
    def test_seeding_works_per_metric(self, metric):
        rng = np.random.default_rng(6)
        vectors = rng.standard_normal((300, 6)) + 2.0
        centroids, assignments = _kmeans(vectors, 8, metric=metric, n_iter=3, seed=0)
        assert centroids.shape == (8, 6)
        assert assignments.shape == (300,)
        assert np.bincount(assignments, minlength=8).sum() == 300


class TestPackedPQ:
    def test_pack_unpack_roundtrip_even_and_odd(self):
        from repro.core.index import PackedPQ

        rng = np.random.default_rng(0)
        for m in (4, 5, 8, 9):
            pq = PackedPQ(n_subspaces=m)
            codes = rng.integers(0, 16, size=(37, m)).astype(np.uint8)
            packed = pq.pack_codes(codes)
            assert packed.shape == (37, (m + 1) // 2)
            assert np.array_equal(pq.unpack_codes(packed), codes)

    def test_code_width_halves_storage(self):
        from repro.core.index import PackedPQ

        pq = PackedPQ(n_subspaces=8)
        assert pq.code_width == 4
        assert ProductQuantizer(n_subspaces=8).code_width == 8

    def test_bits_above_four_rejected(self):
        from repro.core.index import PackedPQ

        with pytest.raises(ValueError):
            PackedPQ(bits=5)
        with pytest.raises(ValueError):
            PackedPQ(bits=0)

    def test_quantized_tables_reconstruct_float_tables(self):
        from repro.core.index import PackedPQ

        vectors = corpus(2000, 16)
        pq = PackedPQ(n_subspaces=4)
        pq.fit(vectors)
        q = queries_near(vectors, 16)
        exact_tables = pq.query_tables(q)
        lut, scale, bias = pq.quantized_query_tables(q)
        assert lut.dtype == np.uint8
        approx = scale[:, None, None].astype(np.float64) * lut + bias[:, None, None]
        # Affine uint8 quantization: within half a step of the float table.
        spread = exact_tables.max(axis=(1, 2)) - exact_tables.min(axis=(1, 2))
        assert np.all(np.abs(approx - exact_tables) <= spread[:, None, None] / 255.0)


class TestPacked4BitIndex:
    def test_full_probe_rerank_matches_exact_bitwise(self):
        vectors = corpus(4000, 24)
        q = queries_near(vectors)
        pq = IVFPQIndex(n_cells=16, n_probe=16, bits=4, rerank=128, min_train_size=16)
        pq.rebuild(vectors)
        d_pq, i_pq = pq.search(vectors, q, 10)
        d_ex, i_ex = ExactIndex().search(vectors, q, 10)
        # Full probe + a deep rerank margin over the coarser 4-bit ADC band.
        assert np.array_equal(i_pq, i_ex)
        assert np.allclose(d_pq, d_ex)

    def test_partial_probe_recall_with_rerank(self):
        vectors = corpus(4000, 24)
        q = queries_near(vectors)
        pq = IVFPQIndex(bits=4, min_train_size=16)  # engine defaults, rerank=64
        pq.rebuild(vectors)
        _, i_pq = pq.search(vectors, q, 10)
        _, i_ex = ExactIndex().search(vectors, q, 10)
        assert recall(i_pq, i_ex) >= 0.95

    def test_memory_at_most_60pct_of_8bit(self):
        vectors = corpus(6000, 24)
        narrow = IVFPQIndex(bits=4, min_train_size=16)
        wide = IVFPQIndex(bits=8, min_train_size=16)
        narrow.rebuild(vectors)
        wide.rebuild(vectors)
        # Packed codes + slim dtypes: well under the 8-bit footprint even
        # with the shared centroid overhead at this small N.
        assert narrow.memory_bytes() <= 0.6 * wide.memory_bytes()
        assert narrow.codes.shape[1] == 4  # two codes per byte

    def test_adc_only_search_never_touches_vectors(self):
        vectors = corpus(3000, 16)
        q = queries_near(vectors)
        pq = IVFPQIndex(bits=4, rerank=0, min_train_size=16)
        pq.rebuild(vectors)
        assert pq.needs_vectors is False
        _, i_pq = pq.search(None, q, 10)
        _, i_ex = ExactIndex().search(vectors, q, 10)
        assert recall(i_pq, i_ex) >= 0.5

    def test_add_remove_keep_packed_codes_consistent(self):
        vectors = corpus(2000, 16)
        pq = IVFPQIndex(bits=4, n_cells=12, n_probe=12, rerank=64, min_train_size=16)
        pq.rebuild(vectors)
        extra = corpus(300, 16, seed=9)
        grown = np.concatenate([vectors, extra])
        pq.add(grown, 300)
        kept = np.ones(grown.shape[0], dtype=bool)
        kept[100:400] = False
        pq.remove(kept)
        remaining = grown[kept]
        d_pq, i_pq = pq.search(remaining, queries_near(remaining, 32), 5)
        assert i_pq.shape == (32, 5)
        assert np.isfinite(d_pq).all()

    def test_state_roundtrip_search_identical(self):
        vectors = corpus(3000, 16)
        q = queries_near(vectors, 32)
        pq = IVFPQIndex(bits=4, min_train_size=16)
        pq.rebuild(vectors)
        clone = IVFPQIndex(bits=4, min_train_size=16)
        clone.load_state(pq.state())
        d1, i1 = pq.search(vectors, q, 10)
        d2, i2 = clone.search(vectors, q, 10)
        assert np.array_equal(i1, i2)
        assert np.allclose(d1, d2)

    def test_8bit_state_rejected_by_4bit_index(self):
        vectors = corpus(1000, 16)
        wide = IVFPQIndex(bits=8, min_train_size=16)
        wide.rebuild(vectors)
        narrow = IVFPQIndex(bits=4, min_train_size=16)
        with pytest.raises(ValueError):
            narrow.load_state(wide.state())

    def test_spec_roundtrip_with_bits_and_opq(self):
        pq = IVFPQIndex(bits=4, opq=True, n_subspaces=4, rerank=32)
        rebuilt = index_from_spec(pq.spec())
        assert rebuilt.spec() == pq.spec()
        assert rebuilt.pq.packed and rebuilt.pq.opq

    def test_archive_roundtrip_through_reference_store(self, tmp_path):
        vectors = corpus(2000, 16)
        labels = [f"c{i % 20}" for i in range(2000)]
        store = ReferenceStore(16, index=IVFPQIndex(bits=4, opq=True, min_train_size=16))
        store.add(vectors, labels)
        path = store.save(tmp_path / "packed.npz")
        loaded = ReferenceStore.load(
            path, index=IVFPQIndex(bits=4, opq=True, min_train_size=16)
        )
        q = queries_near(vectors, 32)
        d1, i1 = store.search(q, 10)
        d2, i2 = loaded.search(q, 10)
        assert np.array_equal(i1, i2)
        assert np.allclose(d1, d2)


class TestOPQRotation:
    def test_rotation_is_orthogonal(self):
        pq = ProductQuantizer(n_subspaces=4, opq=True)
        pq.fit(corpus(1500, 16))
        rotation = pq.rotation
        assert rotation is not None
        assert np.allclose(rotation @ rotation.T, np.eye(16), atol=1e-8)

    def test_opq_reduces_packed_reconstruction_error_on_correlated_data(self):
        from repro.core.index import PackedPQ

        rng = np.random.default_rng(0)
        base = clustered_corpus(4000, 24, seed=4)
        correlated = base @ rng.standard_normal((24, 24))

        def err(opq):
            pq = PackedPQ(n_subspaces=6, opq=opq, seed=0)
            pq.fit(correlated)
            return np.linalg.norm(correlated - pq.decode(pq.encode(correlated)), axis=1).mean()

        assert err(True) < 0.95 * err(False)

    def test_decode_returns_original_space(self):
        vectors = corpus(1500, 16)
        plain = ProductQuantizer(n_subspaces=4, seed=0)
        rotated = ProductQuantizer(n_subspaces=4, opq=True, seed=0)
        plain.fit(vectors)
        rotated.fit(vectors)
        # Both reconstructions live in the original space: comparable error
        # against the raw vectors (rotation must not leak into decode()).
        err_plain = np.linalg.norm(vectors - plain.decode(plain.encode(vectors)), axis=1).mean()
        err_rot = np.linalg.norm(vectors - rotated.decode(rotated.encode(vectors)), axis=1).mean()
        assert err_rot < 2.0 * err_plain

    def test_query_tables_match_decoded_inner_products(self):
        vectors = corpus(1500, 16)
        pq = ProductQuantizer(n_subspaces=4, opq=True, seed=0)
        pq.fit(vectors)
        q = queries_near(vectors, 8)
        codes = pq.encode(vectors[:50])
        tables = pq.query_tables(q)
        # sum_j table[q, j, code_j] must equal q . decode(code) — the
        # identity the ADC decomposition relies on, rotation included.
        gathered = sum(tables[:, j, codes[:, j]] for j in range(4))
        assert np.allclose(gathered, q @ pq.decode(codes).T)

    def test_opq_index_state_roundtrip_preserves_rotation(self):
        vectors = corpus(3000, 16)
        pq = IVFPQIndex(opq=True, min_train_size=16)
        pq.rebuild(vectors)
        clone = IVFPQIndex(opq=True, min_train_size=16)
        clone.load_state(pq.state())
        assert np.array_equal(clone.pq.rotation, pq.pq.rotation)
        q = queries_near(vectors, 16)
        _, i1 = pq.search(vectors, q, 10)
        _, i2 = clone.search(vectors, q, 10)
        assert np.array_equal(i1, i2)

    def test_opq_state_rejected_by_non_opq_index(self):
        vectors = corpus(1000, 16)
        rotated = IVFPQIndex(opq=True, min_train_size=16)
        rotated.rebuild(vectors)
        plain = IVFPQIndex(min_train_size=16)
        with pytest.raises(ValueError):
            plain.load_state(rotated.state())


class TestDriftStatistics:
    def test_no_drift_signal_after_training(self):
        pq = IVFPQIndex(bits=4, min_train_size=16)
        pq.rebuild(corpus(2000, 16))
        assert pq.drift_ratio() == 1.0
        assert not pq.retrain_needed()

    def test_in_distribution_adds_do_not_trigger(self):
        vectors = corpus(2000, 16)
        pq = IVFPQIndex(bits=4, min_train_size=16)
        pq.rebuild(vectors)
        # Same cluster centres (same seed and n_clusters as `vectors`).
        more = clustered_corpus(400, 16, n_clusters=40, seed=1)
        pq.add(np.concatenate([vectors, more]), 400)
        assert pq.drift_ratio() < 1.5
        assert not pq.retrain_needed()

    def test_shifted_adds_trigger_and_retrain_resets(self):
        vectors = corpus(2000, 16)
        pq = IVFPQIndex(bits=4, min_train_size=16)
        pq.rebuild(vectors)
        shifted = clustered_corpus(400, 16, n_clusters=40, seed=77) * 1.5 + 3.0
        grown = np.concatenate([vectors, shifted])
        pq.add(grown, 400)
        assert pq.drift_ratio() > 1.5
        assert pq.retrain_needed()
        pq.retrain(grown, sample_size=1000)
        assert pq.drift_ratio() == 1.0
        assert not pq.retrain_needed()

    def test_min_samples_guard(self):
        vectors = corpus(2000, 16)
        pq = IVFPQIndex(bits=4, min_train_size=16)
        pq.rebuild(vectors)
        shifted = clustered_corpus(16, 16, n_clusters=4, seed=77) * 2.0 + 5.0
        pq.add(np.concatenate([vectors, shifted]), 16)
        assert pq.drift_ratio() > 1.5
        assert not pq.retrain_needed(min_samples=64)
        assert pq.retrain_needed(min_samples=8)

    def test_drift_survives_state_roundtrip(self):
        vectors = corpus(2000, 16)
        pq = IVFPQIndex(bits=4, min_train_size=16)
        pq.rebuild(vectors)
        shifted = clustered_corpus(200, 16, n_clusters=20, seed=77) * 1.5 + 3.0
        pq.add(np.concatenate([vectors, shifted]), 200)
        clone = IVFPQIndex(bits=4, min_train_size=16)
        clone.load_state(pq.state())
        assert clone.retrain_needed() == pq.retrain_needed()
        assert np.isclose(clone.drift_ratio(), pq.drift_ratio())

    def test_reference_store_requantize_delegates(self):
        vectors = corpus(2000, 16)
        labels = [f"c{i % 20}" for i in range(2000)]
        store = ReferenceStore(16, index=IVFPQIndex(bits=4, min_train_size=16))
        store.add(vectors, labels)
        shifted = clustered_corpus(300, 16, n_clusters=20, seed=77) * 1.5 + 3.0
        store.add(shifted, [f"c{i % 20}" for i in range(300)])
        assert store.retrain_needed()
        store.requantize(sample_size=800)
        assert not store.retrain_needed()
        assert store.index.drift_ratio() == 1.0

    def test_exact_index_never_needs_retraining(self):
        store = ReferenceStore(8)
        store.add(np.random.default_rng(0).standard_normal((100, 8)), ["a"] * 100)
        assert store.retrain_needed() is False
        store.requantize()  # rebuild on a stateless index: a no-op, no error

    def test_retrain_sample_size_below_cell_count(self):
        # A sample cap smaller than the resolved cell count must shrink the
        # cell count instead of crashing k-means (repro requantize
        # --sample-size exercises exactly this).
        vectors = corpus(3000, 16)
        pq = IVFPQIndex(bits=4, min_train_size=16)  # resolves ~493 cells
        pq.rebuild(vectors)
        pq.retrain(vectors, sample_size=64)
        assert pq.trained
        assert pq._centroids.shape[0] <= 64
        _, ids = pq.search(vectors, queries_near(vectors, 16), 5)
        assert ids.shape == (16, 5)

    def test_removing_drifted_rows_clears_the_signal(self):
        # Drift pressure must follow the *current* corpus: once the drifted
        # rows are removed again, retrain_needed() may not stay latched.
        vectors = corpus(2000, 16)
        pq = IVFPQIndex(bits=4, min_train_size=16)
        pq.rebuild(vectors)
        shifted = clustered_corpus(400, 16, n_clusters=40, seed=77) * 1.5 + 3.0
        grown = np.concatenate([vectors, shifted])
        pq.add(grown, 400)
        assert pq.retrain_needed()
        kept = np.ones(grown.shape[0], dtype=bool)
        kept[2000:] = False  # drop exactly the drifted rows
        pq.remove(kept)
        assert not pq.retrain_needed()
        assert pq.drift_ratio() == 1.0

    def test_ivf_retrain_honours_sample_size(self):
        # The base-class contract: sample_size caps training points while
        # every row still gets an exact assignment (IVF override).
        vectors = corpus(3000, 16)
        ivf = CoarseQuantizedIndex(min_train_size=16)
        ivf.rebuild(vectors)
        ivf.retrain(vectors, sample_size=48)
        assert ivf.trained
        assert ivf._centroids.shape[0] <= 48
        assert ivf._assignments.shape[0] == 3000
        _, ids = ivf.search(vectors, queries_near(vectors, 16), 5)
        assert ids.shape == (16, 5)
        with pytest.raises(ValueError):
            ivf.retrain(vectors, sample_size=0)

    def test_large_scale_embeddings_stay_rankable(self):
        # ADC member constants beyond float16 range are clipped, not
        # overflowed to inf: every row stays in the candidate pool and a
        # deeper rerank recovers the ranking.
        rng = np.random.default_rng(0)
        vectors = (rng.standard_normal((2000, 16)) + 5.0) * 120.0
        pq = IVFPQIndex(bits=4, rerank=256, min_train_size=16)
        pq.rebuild(vectors)
        consts = pq._const_buffer[: pq._n].astype(np.float64)
        assert np.isfinite(consts).all()
        q = vectors[:32] + rng.standard_normal((32, 16))
        _, i_pq = pq.search(vectors, q, 10)
        _, i_ex = ExactIndex().search(vectors, q, 10)
        assert recall(i_pq, i_ex) >= 0.7
