"""Experiment runners reproducing the paper's evaluation (Section VI-VII).

Each module reproduces one table or figure:

* :mod:`repro.experiments.exp1_static` — Figure 6 (static classification,
  class-count sweep, plus the TLS 1.3 series of Experiment 3).
* :mod:`repro.experiments.exp2_adaptability` — Figure 7 and Table II
  (classes never seen during training, sub-linear growth of n).
* :mod:`repro.experiments.exp3_transfer` — Figure 8 (two-sequence model
  transferred from the Wikipedia-like to the Github-like site).
* :mod:`repro.experiments.exp4_distinguishability` — Figures 9, 10, 11
  (per-class guess CDFs, known / unknown / padded).
* :mod:`repro.experiments.exp5_padding` — Figures 12, 13 (FL padding on
  known and unknown classes) plus bandwidth overheads.
* :mod:`repro.experiments.table3` — Table III (operational costs).

:class:`repro.experiments.setup.ExperimentContext` builds the shared
datasets and the provisioned model once per scale so the runners (and the
benchmark harness) do not repeat the expensive steps.
"""

from repro.experiments.setup import (
    ExperimentContext,
    ci_hyperparameters,
    ci_training_config,
    experiment_index_factory,
)
from repro.experiments.exp1_static import run_experiment1, Experiment1Result
from repro.experiments.exp2_adaptability import run_experiment2, Experiment2Result
from repro.experiments.exp3_transfer import run_experiment3, Experiment3Result
from repro.experiments.exp4_distinguishability import run_experiment4, Experiment4Result
from repro.experiments.exp5_padding import run_experiment5, Experiment5Result
from repro.experiments.table3 import run_table3, Table3Result

__all__ = [
    "ExperimentContext",
    "ci_hyperparameters",
    "ci_training_config",
    "experiment_index_factory",
    "run_experiment1",
    "Experiment1Result",
    "run_experiment2",
    "Experiment2Result",
    "run_experiment3",
    "Experiment3Result",
    "run_experiment4",
    "Experiment4Result",
    "run_experiment5",
    "Experiment5Result",
    "run_table3",
    "Table3Result",
]
