"""Table III — operational-cost comparison across fingerprinting systems.

Two complementary views are produced:

* the *catalogue* view reproduces the paper's qualitative table (protocol,
  class counts, instances per class, complexity, retraining required) and
  quantifies it with the Juarez-style cost model of :mod:`repro.costs`;
* the *measured* view times this reproduction's own implementations
  (adaptive fingerprinting vs. the retraining baselines) on the same
  dataset, confirming the qualitative claim — updates are cheap for the
  embedding approach and expensive for class-coupled classifiers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.baselines.deep_fingerprinting import DeepFingerprintingClassifier
from repro.baselines.kfp import KFingerprintingAttack
from repro.costs.catalogue import TABLE_III_SYSTEMS, table_iii_rows
from repro.experiments.setup import ExperimentContext
from repro.metrics.reports import format_table
from repro.traces import Trace


@dataclass
class MeasuredCosts:
    """Wall-clock costs measured on this reproduction's implementations."""

    system: str
    provisioning_seconds: float
    update_seconds: float
    requires_retraining: bool
    topn1_accuracy: float


@dataclass
class Table3Result:
    catalogue_rows: List[Dict[str, object]] = field(default_factory=list)
    modelled_update_costs: Dict[str, float] = field(default_factory=dict)
    measured: List[MeasuredCosts] = field(default_factory=list)

    def as_table(self) -> str:
        headers = ["Name", "Protocol", "Classes", "D. Shift", "Instances", "Complexity", "Retraining", "Update Instances"]
        rows = [[row[h] for h in headers] for row in self.catalogue_rows]
        return format_table(headers, rows, title="Table III — operational costs (catalogue)")

    def measured_as_table(self) -> str:
        rows = [
            [m.system, f"{m.provisioning_seconds:.2f}s", f"{m.update_seconds:.2f}s", m.requires_retraining, f"{m.topn1_accuracy:.2f}"]
            for m in self.measured
        ]
        return format_table(
            ["System", "Provisioning", "Update (1 class changed)", "Retraining", "Top-1 accuracy"],
            rows,
            title="Table III — measured on this reproduction",
        )

    def adaptive_updates_cheaper(self, factor: float = 2.0) -> bool:
        """Whether the adaptive system's update is at least ``factor`` x cheaper
        than every retraining baseline's update."""
        adaptive = [m for m in self.measured if not m.requires_retraining]
        retraining = [m for m in self.measured if m.requires_retraining]
        if not adaptive or not retraining:
            return False
        cheapest_adaptive = min(m.update_seconds for m in adaptive)
        cheapest_retraining = min(m.update_seconds for m in retraining)
        return cheapest_retraining >= factor * cheapest_adaptive


def run_table3(
    context: ExperimentContext,
    *,
    n_classes: int | None = None,
    churn_fraction: float = 0.05,
    measure: bool = True,
) -> Table3Result:
    """Build Table III: catalogue rows, modelled update costs, measured timings."""
    result = Table3Result(catalogue_rows=table_iii_rows())

    # Modelled yearly update cost at a common scale for every catalogued system.
    reference_classes = 1000
    for profile in TABLE_III_SYSTEMS:
        result.modelled_update_costs[profile.name] = profile.cost_model.yearly_update_cost(
            reference_classes, churn_fraction
        )

    if not measure:
        return result

    classes = n_classes or min(context.scale.exp1_class_counts)
    reference, test = context.slice_known(classes)

    # --- adaptive fingerprinting: provisioning already happened in the
    # context; measure re-provisioning cost as the recorded training time and
    # the update as re-embedding one class's fresh samples.
    fingerprinter = context.fingerprinter
    fingerprinter.initialize(reference)
    adaptive_accuracy = fingerprinter.evaluate(test, ns=(1,)).topn_accuracy[1]
    updated_class = reference.class_names[0]
    class_mask = reference.labels == reference.class_names.index(updated_class)
    fresh_traces = [
        Trace(label=updated_class, website=reference.website, sequences=reference.data[i])
        for i in class_mask.nonzero()[0]
    ]
    start = time.perf_counter()
    fingerprinter.adapt(fresh_traces, replace=True)
    adaptive_update = time.perf_counter() - start
    result.measured.append(
        MeasuredCosts(
            system="Adaptive Fingerprinting (ours)",
            provisioning_seconds=context.training_history.wall_time_seconds,
            update_seconds=adaptive_update,
            requires_retraining=False,
            topn1_accuracy=adaptive_accuracy,
        )
    )

    # --- k-fingerprinting: the forest stays fixed after calibration; the
    # update only refreshes the leaf-vector reference corpus for the
    # changed class (its cheap path), like the paper's Table III notes.
    start = time.perf_counter()
    kfp = KFingerprintingAttack(n_trees=20, max_depth=8, k_neighbours=3, seed=0).fit(reference)
    kfp_provision = time.perf_counter() - start
    kfp_accuracy = kfp.topn_accuracy(test, ns=(1,))[1]
    updated_slice = reference.filter_classes([0])
    start = time.perf_counter()
    kfp.refresh_reference(updated_slice)
    kfp_update = time.perf_counter() - start
    result.measured.append(
        MeasuredCosts(
            system="k-fingerprinting",
            provisioning_seconds=kfp_provision,
            update_seconds=kfp_update,
            requires_retraining=False,
            topn1_accuracy=kfp_accuracy,
        )
    )

    # --- Deep-Fingerprinting-style softmax classifier: any change to the
    # monitored set forces a full retrain.
    start = time.perf_counter()
    df = DeepFingerprintingClassifier(hidden_sizes=(64,), epochs=15, seed=0).fit(reference)
    df_provision = time.perf_counter() - start
    df_accuracy = df.topn_accuracy(test, ns=(1,))[1]
    start = time.perf_counter()
    DeepFingerprintingClassifier(hidden_sizes=(64,), epochs=15, seed=1).fit(reference)
    df_update = time.perf_counter() - start
    result.measured.append(
        MeasuredCosts(
            system="Deep Fingerprinting (softmax)",
            provisioning_seconds=df_provision,
            update_seconds=df_update,
            requires_retraining=True,
            topn1_accuracy=df_accuracy,
        )
    )
    return result
