"""Experiment 3 — TLS version & theme sensitivity (Figure 8).

Because Github page loads involve a varying number of servers, the paper
switches to the two-sequence (outgoing / incoming) encoding for this
experiment and retrains the embedding model on two-sequence Wikipedia
traces.  The retrained model is evaluated both on Wikipedia (the baseline
series of Figure 8) and on Github slices of 100/250/500 classes — a
transfer across website theme *and* TLS version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.config import ClassifierConfig
from repro.core.fingerprinter import AdaptiveFingerprinter
from repro.experiments.setup import ExperimentContext, ci_hyperparameters, ci_training_config
from repro.metrics.reports import format_accuracy_table
from repro.traces import SequenceExtractor, collect_dataset
from repro.traces.splits import reference_test_split
from repro.web.generators import WikipediaLikeGenerator
from repro.experiments.setup import WIKI_SEED


@dataclass
class Experiment3Result:
    """Figure 8: two-sequence model on Wikipedia vs. Github slices."""

    wikipedia_accuracy: Dict[int, float] = field(default_factory=dict)
    wikipedia_classes: int = 0
    github_accuracy_by_classes: Dict[int, Dict[int, float]] = field(default_factory=dict)
    ns: Tuple[int, ...] = (1, 3, 5, 10, 20)

    def as_table(self) -> str:
        rows: Dict[str, Dict[int, float]] = {}
        if self.wikipedia_accuracy:
            rows[f"Wikipedia-like baseline ({self.wikipedia_classes} classes, TLS 1.2)"] = self.wikipedia_accuracy
        for classes, accuracy in self.github_accuracy_by_classes.items():
            rows[f"Github-like {classes} classes (TLS 1.3)"] = accuracy
        return format_accuracy_table(rows, ns=self.ns, title="Figure 8 — cross-website, cross-version transfer")

    def transfer_retains_signal(self, n: int = 10, chance_multiplier: float = 3.0) -> bool:
        """The paper's qualitative claim: accuracy drops but stays well above chance.

        For every Github slice larger than ``n`` classes, the top-``n``
        accuracy must beat ``chance_multiplier`` times the random-guessing
        baseline (capped at 0.8 so the criterion stays satisfiable for
        slices close to ``n`` classes).
        """
        for classes, accuracy in self.github_accuracy_by_classes.items():
            if classes <= n:
                continue
            threshold = min(0.8, chance_multiplier * n / classes)
            if accuracy.get(n, 0.0) < threshold:
                return False
        return bool(self.github_accuracy_by_classes)


def run_experiment3(
    context: ExperimentContext,
    ns: Sequence[int] = (1, 3, 5, 10, 20),
) -> Experiment3Result:
    """Train a two-sequence model on Wikipedia-like traces, evaluate on Github-like."""
    result = Experiment3Result(ns=tuple(int(n) for n in ns))
    scale = context.scale
    sequence_length = context.wiki_dataset.sequence_length

    # Re-collect the training classes in the two-sequence encoding.
    extractor2 = SequenceExtractor(max_sequences=2, merge_servers=True, sequence_length=sequence_length)
    wiki_site = WikipediaLikeGenerator(
        n_pages=scale.train_classes + max(scale.exp2_class_counts), seed=WIKI_SEED
    ).generate()
    train_page_ids = context.wiki_split.set_a.class_names
    wiki_two_seq = collect_dataset(
        wiki_site,
        extractor2,
        page_ids=train_page_ids,
        visits_per_page=scale.samples_per_class,
        seed=WIKI_SEED,
    )

    fingerprinter = AdaptiveFingerprinter(
        n_sequences=2,
        sequence_length=sequence_length,
        hyperparameters=ci_hyperparameters(),
        training_config=ci_training_config(scale),
        classifier_config=ClassifierConfig(k=scale.knn_k),
        extractor=extractor2,
        seed=1,
    )
    fingerprinter.provision(wiki_two_seq)

    # Baseline: the same-website recognition task in the two-sequence encoding.
    baseline_classes = min(scale.exp1_class_counts)
    wiki_baseline = wiki_two_seq.first_n_classes(baseline_classes)
    reference, test = reference_test_split(wiki_baseline, scale.reference_fraction, seed=0)
    fingerprinter.initialize(reference)
    result.wikipedia_classes = baseline_classes
    result.wikipedia_accuracy = fingerprinter.evaluate(test, ns=result.ns).topn_accuracy

    # Github slices (Github 100 / 250 / 500 in the paper).
    for n_classes in scale.github_class_counts:
        github_slice = context.github_dataset.first_n_classes(
            min(n_classes, context.github_dataset.n_classes)
        )
        reference_g, test_g = reference_test_split(github_slice, scale.reference_fraction, seed=1)
        fingerprinter.initialize(reference_g)
        result.github_accuracy_by_classes[n_classes] = fingerprinter.evaluate(test_g, ns=result.ns).topn_accuracy
    return result
