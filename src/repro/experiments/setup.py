"""Shared experiment setup: datasets, splits and the provisioned model.

The paper's experiments share one trained embedding model (trained once on
Set A of the Wikipedia dataset, Figure 5) and several datasets.  Building
these is the expensive part of every experiment, so
:class:`ExperimentContext` constructs them once per scale and the per-
experiment runners reuse the context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from typing import Callable

from repro.config import (
    ClassifierConfig,
    EmbeddingHyperparameters,
    ExperimentScale,
    TrainingConfig,
    get_scale,
)
from repro.core.fingerprinter import AdaptiveFingerprinter
from repro.core.index import (
    CoarseQuantizedIndex,
    ExactIndex,
    IVFPQIndex,
    NearestNeighbourIndex,
)
from repro.core.trainer import TrainingHistory
from repro.traces import SequenceExtractor, TraceDataset, collect_dataset, four_way_split, FourWaySplit
from repro.tls.version import TLSVersion
from repro.web.generators import GithubLikeGenerator, WikipediaLikeGenerator

SEQUENCE_LENGTH = 24
WIKI_SEED = 101
GITHUB_SEED = 202


def ci_hyperparameters(**overrides) -> EmbeddingHyperparameters:
    """Reduced Table-I hyperparameters that train in seconds on a CPU.

    The architecture keeps the paper's shape (LSTM input layer, dense ReLU
    stack, LeakyReLU embedding output, contrastive loss, Euclidean
    distance) but shrinks the widths so a pure-NumPy implementation can run
    every experiment in minutes; the contrastive margin and learning rate
    were re-tuned for the smaller network via the same grid-search
    procedure the paper describes.
    """
    defaults = dict(
        lstm_units=16,
        hidden_layer_sizes=(48, 32),
        embedding_dim=12,
        optimizer="adam",
        dropout=0.0,
        learning_rate=0.03,
        batch_size=64,
        contrastive_margin=3.0,
    )
    defaults.update(overrides)
    return EmbeddingHyperparameters(**defaults)


def ci_training_config(scale: ExperimentScale, **overrides) -> TrainingConfig:
    defaults = dict(epochs=scale.epochs, pairs_per_epoch=scale.pairs_per_epoch, seed=0)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


INDEX_KINDS = ("exact", "ivf", "ivfpq")


def experiment_index_factory(
    index_kind: str = "exact",
    *,
    n_cells: Optional[int] = None,
    n_probe: Optional[int] = None,
    metric: str = "euclidean",
    n_subspaces: int = 8,
    bits: int = 8,
    opq: bool = False,
    rerank: int = 64,
    native_kernels: str = "auto",
    max_cell_fraction: Optional[float] = None,
) -> Callable[[], NearestNeighbourIndex]:
    """Index factory for the experiment runners (``--index`` on the CLI).

    ``"exact"`` is the default brute-force engine; ``"ivf"`` builds the
    sublinear :class:`CoarseQuantizedIndex` so paper-scale runs (thousands
    of monitored classes, 100 samples each) keep classification cheap;
    ``"ivfpq"`` builds the product-quantized :class:`IVFPQIndex` whose
    uint8 codes shrink resident reference memory ~16-32x on top of that
    (``n_subspaces``/``bits`` size the codes — ``bits <= 4`` packs two per
    byte, ``opq`` adds the learned rotation, ``rerank`` exact-rescores the
    top ADC candidates).  ``native_kernels`` picks the fused C ADC-scan
    path per index and ``max_cell_fraction`` caps coarse-cell occupancy
    on the clustered engines (see :mod:`repro.core.knobs`).
    """
    if index_kind not in INDEX_KINDS:
        raise ValueError(f"unknown index kind {index_kind!r}; expected one of {INDEX_KINDS}")
    if index_kind == "exact":
        return lambda: ExactIndex(metric=metric)
    if index_kind == "ivfpq":
        probe = n_probe if n_probe is not None else 16
        return lambda: IVFPQIndex(
            n_cells=n_cells,
            n_probe=probe,
            n_subspaces=n_subspaces,
            bits=bits,
            opq=opq,
            rerank=rerank,
            metric=metric,
            native_kernels=native_kernels,
            max_cell_fraction=max_cell_fraction,
        )
    probe = n_probe if n_probe is not None else 8
    return lambda: CoarseQuantizedIndex(
        n_cells=n_cells, n_probe=probe, metric=metric, max_cell_fraction=max_cell_fraction
    )


@dataclass
class ExperimentContext:
    """Everything the experiment runners share for one scale."""

    scale: ExperimentScale
    wiki_dataset: TraceDataset
    wiki_split: FourWaySplit
    wiki_tls13_dataset: TraceDataset
    github_dataset: TraceDataset
    fingerprinter: AdaptiveFingerprinter
    training_history: TrainingHistory
    extractor: SequenceExtractor
    datasets_by_name: Dict[str, TraceDataset] = field(default_factory=dict)

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls,
        scale: ExperimentScale | str = "ci",
        *,
        sequence_length: int = SEQUENCE_LENGTH,
        index_kind: str = "exact",
        n_cells: Optional[int] = None,
        n_probe: Optional[int] = None,
        n_subspaces: int = 8,
        bits: int = 8,
        opq: bool = False,
        rerank: int = 64,
        native_kernels: str = "auto",
        max_cell_fraction: Optional[float] = None,
    ) -> "ExperimentContext":
        """Build datasets, the Figure-5 split and the provisioned model.

        ``index_kind``/``n_cells``/``n_probe`` pick the k-NN query engine
        every reference store of the shared fingerprinter uses, so the CLI
        experiment runners can run paper-scale sweeps on the IVF index;
        ``n_subspaces``/``bits``/``opq``/``rerank`` size the IVF-PQ codes
        when ``index_kind == "ivfpq"``; ``native_kernels``/
        ``max_cell_fraction`` pass through to the same engines.
        """
        if isinstance(scale, str):
            scale = get_scale(scale)

        extractor = SequenceExtractor(max_sequences=3, sequence_length=sequence_length)

        total_wiki_classes = scale.train_classes + max(scale.exp2_class_counts)
        wiki_site = WikipediaLikeGenerator(n_pages=total_wiki_classes, seed=WIKI_SEED).generate()
        wiki_dataset = collect_dataset(
            wiki_site, extractor, visits_per_page=scale.samples_per_class, seed=WIKI_SEED
        )
        wiki_split = four_way_split(
            wiki_dataset,
            train_classes=scale.train_classes,
            reference_fraction=scale.reference_fraction,
            seed=0,
        )

        # The TLS 1.3 slice of the Wikipedia dataset (Exp. 3, Figure 6): the
        # same pages as the smallest Exp. 1 slice, served over TLS 1.3.
        tls13_classes = min(scale.exp1_class_counts)
        tls13_page_ids = wiki_split.set_a.class_names[:tls13_classes]
        wiki13_site = WikipediaLikeGenerator(
            n_pages=total_wiki_classes, seed=WIKI_SEED, tls_version=TLSVersion.TLS_1_3
        ).generate()
        wiki_tls13_dataset = collect_dataset(
            wiki13_site,
            extractor,
            page_ids=tls13_page_ids,
            visits_per_page=scale.samples_per_class,
            seed=WIKI_SEED + 1,
        )

        # The Github-like TLS 1.3 dataset in the two-sequence encoding.
        github_extractor = SequenceExtractor(
            max_sequences=2, merge_servers=True, sequence_length=sequence_length
        )
        github_site = GithubLikeGenerator(
            n_pages=max(scale.github_class_counts), seed=GITHUB_SEED
        ).generate()
        github_dataset = collect_dataset(
            github_site, github_extractor, visits_per_page=scale.samples_per_class, seed=GITHUB_SEED
        )

        # Provision the model once on Set A (the paper's Experiment 1 model).
        fingerprinter = AdaptiveFingerprinter(
            n_sequences=3,
            sequence_length=sequence_length,
            hyperparameters=ci_hyperparameters(),
            training_config=ci_training_config(scale),
            classifier_config=ClassifierConfig(k=scale.knn_k),
            extractor=extractor,
            seed=0,
            index_factory=experiment_index_factory(
                index_kind,
                n_cells=n_cells,
                n_probe=n_probe,
                n_subspaces=n_subspaces,
                bits=bits,
                opq=opq,
                rerank=rerank,
                native_kernels=native_kernels,
                max_cell_fraction=max_cell_fraction,
            ),
        )
        history = fingerprinter.provision(wiki_split.set_a)

        return cls(
            scale=scale,
            wiki_dataset=wiki_dataset,
            wiki_split=wiki_split,
            wiki_tls13_dataset=wiki_tls13_dataset,
            github_dataset=github_dataset,
            fingerprinter=fingerprinter,
            training_history=history,
            extractor=extractor,
            datasets_by_name={
                "wiki": wiki_dataset,
                "wiki_tls13": wiki_tls13_dataset,
                "github": github_dataset,
            },
        )

    # --------------------------------------------------------------- utilities
    def slice_known(self, n_classes: int) -> tuple[TraceDataset, TraceDataset]:
        """Reference/test slices of the first ``n_classes`` *training* classes."""
        reference = self.wiki_split.set_a.first_n_classes(n_classes)
        test = self.wiki_split.set_b.first_n_classes(n_classes)
        return reference, test

    def slice_unknown(self, n_classes: int) -> tuple[TraceDataset, TraceDataset]:
        """Reference/test slices of classes never seen during training."""
        reference = self.wiki_split.set_c.first_n_classes(n_classes)
        test = self.wiki_split.set_d.first_n_classes(n_classes)
        return reference, test

    def evaluate_slice(
        self,
        reference: TraceDataset,
        test: TraceDataset,
        ns: tuple = (1, 3, 5, 10, 20),
    ) -> Dict[int, float]:
        """Initialise the shared model on ``reference`` and evaluate on ``test``."""
        self.fingerprinter.initialize(reference)
        return self.fingerprinter.evaluate(test, ns=ns).topn_accuracy

    def guesses_for_slice(self, reference: TraceDataset, test: TraceDataset) -> np.ndarray:
        self.fingerprinter.initialize(reference)
        return self.fingerprinter.guesses_needed(test)
