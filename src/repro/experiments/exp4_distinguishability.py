"""Experiment 4 — per-class distinguishability (Figures 9, 10, 11).

Instead of per-sample accuracy, this experiment asks how many guesses the
adversary needs *per class* on average, and plots the cumulative
distribution of that number across classes for three scenarios: classes
seen during training (Figure 9), classes never seen during training
(Figure 10) and fixed-length-padded traces of both kinds (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.defences.fixed_length import FixedLengthPadding
from repro.experiments.setup import ExperimentContext
from repro.metrics.perclass import PerClassDistinguishability, per_class_mean_guesses
from repro.metrics.reports import format_table
from repro.traces.dataset import TraceDataset


@dataclass
class Experiment4Result:
    """Per-class guess distributions for the known / unknown / padded scenarios."""

    scenarios: Dict[str, PerClassDistinguishability] = field(default_factory=dict)
    cdf_thresholds: Sequence[float] = (2, 3, 5, 10, 20)

    def as_table(self) -> str:
        headers = ["scenario"] + [f"<{int(t)} guesses" for t in self.cdf_thresholds]
        rows = []
        for name, summary in self.scenarios.items():
            rows.append([name] + [f"{value:.2f}" for value in summary.cdf(self.cdf_thresholds)])
        return format_table(headers, rows, title="Figures 9-11 — per-class guess CDFs")

    def padding_reduces_distinguishability(self, threshold: float = 2.0) -> bool:
        """Figure 11's claim: FL padding shrinks the mass of easy classes."""
        unpadded = [s for name, s in self.scenarios.items() if "padded" not in name]
        padded = [s for name, s in self.scenarios.items() if "padded" in name]
        if not unpadded or not padded:
            return False
        best_unpadded = max(s.fraction_below(threshold) for s in unpadded)
        worst_padded = max(s.fraction_below(threshold) for s in padded)
        return worst_padded <= best_unpadded


def _per_class(
    context: ExperimentContext, reference: TraceDataset, test: TraceDataset, scenario: str
) -> PerClassDistinguishability:
    guesses = context.guesses_for_slice(reference, test)
    labels = [test.label_name(label) for label in test.labels]
    return PerClassDistinguishability(scenario=scenario, per_class_guesses=per_class_mean_guesses(guesses, labels))


def run_experiment4(
    context: ExperimentContext,
    n_classes: int | None = None,
    cdf_thresholds: Sequence[float] = (2, 3, 5, 10, 20),
) -> Experiment4Result:
    """Compute the per-class guess CDFs for known, unknown and padded traces."""
    result = Experiment4Result(cdf_thresholds=tuple(cdf_thresholds))
    known_classes = n_classes or min(context.scale.exp1_class_counts)
    unknown_classes = min(known_classes, max(context.scale.exp2_class_counts))

    reference_known, test_known = context.slice_known(known_classes)
    result.scenarios[f"known ({known_classes} classes)"] = _per_class(
        context, reference_known, test_known, "known"
    )

    reference_unknown, test_unknown = context.slice_unknown(unknown_classes)
    result.scenarios[f"unknown ({unknown_classes} classes)"] = _per_class(
        context, reference_unknown, test_unknown, "unknown"
    )

    # Figure 11: the same two scenarios on FL-padded traces.  The padding
    # targets are derived from the reference corpus (what a deployed
    # per-website policy would know) and applied to both sides.
    import numpy as np

    log_scaled = context.extractor.log_scale
    for label, (reference, test) in (
        (f"known padded ({known_classes} classes)", (reference_known, test_known)),
        (f"unknown padded ({unknown_classes} classes)", (reference_unknown, test_unknown)),
    ):
        raw_reference = np.expm1(reference.data) if log_scaled else reference.data
        targets = raw_reference.sum(axis=2).max(axis=0)
        padding = FixedLengthPadding(per_sequence=True, target_totals=targets)
        padded_reference = padding.apply(reference, log_scaled=log_scaled)
        padded_test = padding.apply(test, log_scaled=log_scaled)
        result.scenarios[label] = _per_class(context, padded_reference, padded_test, label)
    return result
