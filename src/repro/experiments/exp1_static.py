"""Experiment 1 — static webpage classification (Figure 6).

The embedding model is trained on Set A; Set A also provides the labelled
reference corpus and the previously-unseen samples of Set B are classified.
The experiment sweeps the number of classes (the paper uses 500, 1000,
3000 and 6000 Wikipedia articles) and reports top-n accuracy per slice,
plus the TLS 1.3 series of the same figure (the smallest slice re-crawled
over TLS 1.3, Exp. 3's version-sensitivity check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.experiments.setup import ExperimentContext
from repro.metrics.reports import format_accuracy_table
from repro.traces.splits import reference_test_split


@dataclass
class Experiment1Result:
    """Top-n accuracies per class-count slice (the series of Figure 6)."""

    accuracy_by_classes: Dict[int, Dict[int, float]] = field(default_factory=dict)
    tls13_accuracy: Dict[int, float] = field(default_factory=dict)
    tls13_classes: int = 0
    ns: Tuple[int, ...] = (1, 3, 5, 10, 20)

    def as_table(self) -> str:
        rows = {f"{classes} classes (TLS 1.2)": acc for classes, acc in self.accuracy_by_classes.items()}
        if self.tls13_accuracy:
            rows[f"{self.tls13_classes} classes (TLS 1.3)"] = self.tls13_accuracy
        return format_accuracy_table(rows, ns=self.ns, title="Figure 6 — static webpage classification")


def run_experiment1(
    context: ExperimentContext,
    ns: Sequence[int] = (1, 3, 5, 10, 20),
    include_tls13: bool = True,
) -> Experiment1Result:
    """Run the Figure-6 sweep at the context's scale."""
    result = Experiment1Result(ns=tuple(int(n) for n in ns))
    for n_classes in context.scale.exp1_class_counts:
        reference, test = context.slice_known(n_classes)
        result.accuracy_by_classes[n_classes] = context.evaluate_slice(reference, test, ns=result.ns)

    if include_tls13 and len(context.wiki_tls13_dataset):
        reference13, test13 = reference_test_split(
            context.wiki_tls13_dataset, context.scale.reference_fraction, seed=0
        )
        result.tls13_classes = context.wiki_tls13_dataset.n_classes
        result.tls13_accuracy = context.evaluate_slice(reference13, test13, ns=result.ns)
    return result
