"""Experiment 2 — adaptability & transferability (Figure 7, Table II).

The model trained on Set A is reused, without any retraining, to embed
reference samples from Set C and classify samples from Set D — classes the
model never saw during training (an extreme-distributional-shift scenario).
Besides the top-n accuracy sweep the experiment reports Table II: the
smallest n reaching ~90 % accuracy for each class count, and that n's
fraction of the class count, demonstrating the sub-linear growth the paper
highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.experiments.setup import ExperimentContext
from repro.metrics.reports import format_accuracy_table, format_table
from repro.metrics.topn import n_for_target_accuracy


@dataclass
class Table2Row:
    """One row of Table II."""

    n_classes: int
    n_for_target: int
    accuracy_at_n: float
    n_fraction_of_classes: float


@dataclass
class Experiment2Result:
    """Figure 7 accuracy sweep plus the Table II rows."""

    accuracy_by_classes: Dict[int, Dict[int, float]] = field(default_factory=dict)
    table2_rows: List[Table2Row] = field(default_factory=list)
    ns: Tuple[int, ...] = (1, 3, 5, 10, 20)
    target_accuracy: float = 0.9

    def as_table(self) -> str:
        rows = {f"{classes} unseen classes": acc for classes, acc in self.accuracy_by_classes.items()}
        return format_accuracy_table(rows, ns=self.ns, title="Figure 7 — classes never seen in training")

    def table2_as_table(self) -> str:
        rows = [
            [row.n_classes, row.n_for_target, f"{row.accuracy_at_n:.0%}", f"{row.n_fraction_of_classes:.2%}"]
            for row in self.table2_rows
        ]
        return format_table(
            ["# Classes", "n", f"Top-n accuracy (target {self.target_accuracy:.0%})", "n / #Classes"],
            rows,
            title="Table II — guesses needed for the target accuracy",
        )

    def sublinear(self) -> bool:
        """Whether n grows more slowly than the number of classes (Table II's claim).

        The paper's own fractions are not strictly monotone (0.6 %, 0.4 %,
        0.33 %, 0.33 %, 0.23 %); the claim is that the fraction shrinks
        overall as the class count grows, so the check compares the largest
        class count against the smallest.
        """
        if len(self.table2_rows) < 2:
            return False
        return self.table2_rows[-1].n_fraction_of_classes <= self.table2_rows[0].n_fraction_of_classes + 1e-9


def run_experiment2(
    context: ExperimentContext,
    ns: Sequence[int] = (1, 3, 5, 10, 20),
    target_accuracy: float = 0.9,
) -> Experiment2Result:
    """Run the Figure-7 sweep and derive Table II at the context's scale."""
    result = Experiment2Result(ns=tuple(int(n) for n in ns), target_accuracy=target_accuracy)
    for n_classes in context.scale.exp2_class_counts:
        reference, test = context.slice_unknown(n_classes)
        result.accuracy_by_classes[n_classes] = context.evaluate_slice(reference, test, ns=result.ns)

        guesses = context.guesses_for_slice(reference, test)
        max_n = max(1, n_classes)
        n_needed = n_for_target_accuracy(guesses, target_accuracy, max_n=max_n)
        accuracy_at_n = float((guesses <= n_needed).mean())
        result.table2_rows.append(
            Table2Row(
                n_classes=n_classes,
                n_for_target=n_needed,
                accuracy_at_n=accuracy_at_n,
                n_fraction_of_classes=n_needed / n_classes,
            )
        )
    return result
