"""Countermeasure evaluation — fixed-length padding (Figures 12, 13).

The paper pads every trace of the target set to the length of the longest
one (the strongest volume-hiding policy TLS 1.3's record padding can build)
and measures how much of the adversary's accuracy survives, on classes the
model saw during training (Figure 12) and on classes it never saw
(Figure 13).  The runner also reports the bandwidth overhead each padded
configuration costs and, optionally, the cheaper alternatives discussed in
Section VII (anonymity-set padding, random padding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.defences import (
    AnonymitySetPadding,
    FixedLengthPadding,
    RandomPaddingDefence,
    bandwidth_overhead,
)
from repro.defences.base import TraceDefence
from repro.experiments.setup import ExperimentContext
from repro.metrics.reports import format_accuracy_table, format_table
from repro.traces.dataset import TraceDataset


@dataclass
class PaddingScenario:
    """Accuracy with and without a defence for one class-count slice."""

    scenario: str
    n_classes: int
    unpadded_accuracy: Dict[int, float]
    padded_accuracy: Dict[int, float]
    overhead: float

    def accuracy_drop(self, n: int) -> float:
        return self.unpadded_accuracy[n] - self.padded_accuracy[n]


@dataclass
class Experiment5Result:
    """Figures 12 and 13 plus overhead accounting."""

    scenarios: Dict[str, PaddingScenario] = field(default_factory=dict)
    alternative_defences: Dict[str, PaddingScenario] = field(default_factory=dict)
    ns: Tuple[int, ...] = (1, 3, 5, 10, 20)

    def as_table(self) -> str:
        rows: Dict[str, Dict[int, float]] = {}
        for name, scenario in self.scenarios.items():
            rows[f"{name} — no padding"] = scenario.unpadded_accuracy
            rows[f"{name} — FL padding"] = scenario.padded_accuracy
        return format_accuracy_table(rows, ns=self.ns, title="Figures 12-13 — fixed-length padding")

    def overhead_table(self) -> str:
        rows = []
        for name, scenario in {**self.scenarios, **self.alternative_defences}.items():
            rows.append([name, f"{scenario.overhead:.1%}", f"{scenario.accuracy_drop(1):.3f}"])
        return format_table(
            ["scenario", "bandwidth overhead", "top-1 accuracy drop"],
            rows,
            title="Padding cost vs. protection",
        )

    def padding_effective_everywhere(self, n: int = 1, min_drop: float = 0.05) -> bool:
        """Whether FL padding reduced top-n accuracy in every scenario."""
        return all(s.accuracy_drop(n) >= min_drop for s in self.scenarios.values())


def _apply_defence(
    defence: TraceDefence, reference: TraceDataset, test: TraceDataset, log_scaled: bool
) -> Tuple[TraceDataset, TraceDataset, float]:
    """Pad reference and test with targets learned from the reference corpus."""
    if isinstance(defence, FixedLengthPadding) and defence.target_totals is None:
        raw_reference = np.expm1(reference.data) if log_scaled else reference.data
        defence = FixedLengthPadding(
            per_sequence=defence.per_sequence, target_totals=raw_reference.sum(axis=2).max(axis=0)
        )
    padded_reference = defence.apply(reference, log_scaled=log_scaled)
    padded_test = defence.apply(test, log_scaled=log_scaled)
    combined_before = reference.merge(test)
    combined_after = padded_reference.merge(padded_test)
    overhead = bandwidth_overhead(combined_before, combined_after, log_scaled=log_scaled)
    return padded_reference, padded_test, overhead


def run_experiment5(
    context: ExperimentContext,
    class_counts: Sequence[int] | None = None,
    ns: Sequence[int] = (1, 3, 5, 10, 20),
    include_alternatives: bool = True,
) -> Experiment5Result:
    """Evaluate FL padding on known and unknown classes (Figures 12, 13)."""
    result = Experiment5Result(ns=tuple(int(n) for n in ns))
    log_scaled = context.extractor.log_scale
    counts = list(class_counts) if class_counts is not None else list(context.scale.exp1_class_counts[:2])

    for n_classes in counts:
        for kind in ("known", "unknown"):
            if kind == "known":
                reference, test = context.slice_known(n_classes)
            else:
                reference, test = context.slice_unknown(min(n_classes, max(context.scale.exp2_class_counts)))
            unpadded = context.evaluate_slice(reference, test, ns=result.ns)
            padded_reference, padded_test, overhead = _apply_defence(
                FixedLengthPadding(per_sequence=True), reference, test, log_scaled
            )
            padded = context.evaluate_slice(padded_reference, padded_test, ns=result.ns)
            name = f"{kind} {n_classes} classes"
            result.scenarios[name] = PaddingScenario(
                scenario=name,
                n_classes=n_classes,
                unpadded_accuracy=unpadded,
                padded_accuracy=padded,
                overhead=overhead,
            )

    if include_alternatives:
        n_classes = counts[0]
        reference, test = context.slice_known(n_classes)
        unpadded = context.evaluate_slice(reference, test, ns=result.ns)
        for defence in (AnonymitySetPadding(set_size=max(2, n_classes // 5)), RandomPaddingDefence(0.3)):
            padded_reference, padded_test, overhead = _apply_defence(defence, reference, test, log_scaled)
            padded = context.evaluate_slice(padded_reference, padded_test, ns=result.ns)
            result.alternative_defences[defence.name] = PaddingScenario(
                scenario=defence.name,
                n_classes=n_classes,
                unpadded_accuracy=unpadded,
                padded_accuracy=padded,
                overhead=overhead,
            )
    return result
