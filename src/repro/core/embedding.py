"""The embedding neural network (Table I architecture).

The model maps a preprocessed trace — ``(sequence_length, n_sequences)``
time-major byte counts — to a low-dimensional embedding vector.  Its
architecture follows Table I of the paper: an LSTM input layer feeding a
stack of fully-connected ReLU layers with dropout, and a LeakyReLU output
layer producing the 32-dimensional embedding.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.config import EmbeddingHyperparameters
from repro.nn import Dense, Dropout, LeakyReLU, LSTM, ReLU, Sequential, load_weights, save_weights
from repro.traces.dataset import TraceDataset
from repro.traces.trace import Trace

PathLike = Union[str, os.PathLike]


class EmbeddingModel:
    """The trace-embedding network used by the adaptive fingerprinter."""

    def __init__(
        self,
        n_sequences: int,
        hyperparameters: Optional[EmbeddingHyperparameters] = None,
        *,
        seed: int = 0,
    ) -> None:
        if n_sequences < 1:
            raise ValueError("n_sequences must be at least 1")
        self.n_sequences = int(n_sequences)
        self.hyperparameters = hyperparameters if hyperparameters is not None else EmbeddingHyperparameters()
        self.seed = int(seed)
        self.network = self._build_network()

    # ------------------------------------------------------------------- build
    def _build_network(self) -> Sequential:
        hp = self.hyperparameters
        rng = np.random.default_rng(self.seed)
        layers: List = [LSTM(self.n_sequences, hp.lstm_units, rng=rng)]
        previous = hp.lstm_units
        for width in hp.hidden_layer_sizes:
            layers.append(Dense(previous, width, rng=rng))
            layers.append(self._activation(hp.hidden_activation))
            if hp.dropout > 0:
                layers.append(Dropout(hp.dropout, rng=rng))
            previous = width
        layers.append(Dense(previous, hp.embedding_dim, rng=rng))
        layers.append(self._activation(hp.output_activation))
        return Sequential(layers)

    @staticmethod
    def _activation(name: str):
        if name == "relu":
            return ReLU()
        if name == "leaky_relu":
            return LeakyReLU(0.01)
        raise ValueError(f"unknown activation {name!r}")

    # --------------------------------------------------------------- embedding
    @property
    def embedding_dim(self) -> int:
        return self.hyperparameters.embedding_dim

    def embed(self, inputs: np.ndarray, *, training: bool = False, batch_size: int = 256) -> np.ndarray:
        """Embed a batch of model inputs of shape ``(n, time, features)``."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 2:
            inputs = inputs[None, :, :]
        if inputs.ndim != 3:
            raise ValueError(f"expected (n, time, features) inputs, got shape {inputs.shape}")
        if inputs.shape[2] != self.n_sequences:
            raise ValueError(
                f"model expects {self.n_sequences} feature channels, got {inputs.shape[2]}"
            )
        # Input normalisation: log1p byte counts land roughly in [0, 16];
        # scaling keeps the LSTM gates away from saturation.
        inputs = inputs * self.hyperparameters.input_scale
        if training:
            return self.network.forward(inputs, training=True)
        outputs = []
        for start in range(0, inputs.shape[0], batch_size):
            batch = inputs[start : start + batch_size]
            outputs.append(self.network.forward(batch, training=False))
        return np.concatenate(outputs, axis=0)

    def embed_trace(self, trace: Trace) -> np.ndarray:
        """Embed a single :class:`Trace`; returns a 1-D embedding vector."""
        return self.embed(trace.as_model_input()[None, :, :])[0]

    def embed_dataset(self, dataset: TraceDataset, batch_size: int = 256) -> np.ndarray:
        """Embed every trace of a dataset; rows align with ``dataset.labels``."""
        if dataset.n_sequences != self.n_sequences:
            raise ValueError(
                f"dataset has {dataset.n_sequences} sequences per trace, model expects {self.n_sequences}"
            )
        return self.embed(dataset.model_inputs(), batch_size=batch_size)

    # ------------------------------------------------------------- persistence
    def save(self, path: PathLike) -> Path:
        """Save the network weights (architecture is re-created from config)."""
        return save_weights(self.network, path)

    def load(self, path: PathLike) -> "EmbeddingModel":
        load_weights(self.network, path)
        return self

    @property
    def n_params(self) -> int:
        return self.network.n_params
