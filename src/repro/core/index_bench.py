"""Exact-vs-IVF query-time scaling measurement (the Table 2 cost story).

Shared by ``repro index-bench`` and ``benchmarks/bench_index_scaling.py``:
build clustered synthetic embedding corpora of growing size, answer the
same k-NN queries through :class:`~repro.core.index.ExactIndex` and
:class:`~repro.core.index.CoarseQuantizedIndex`, and report per-query time
plus top-1 agreement.  The IVF curve growing sublinearly while the exact
curve grows linearly is the property the classifier inherits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.index import CoarseQuantizedIndex, ExactIndex


@dataclass
class ScalingRow:
    """One corpus size in the exact-vs-IVF comparison."""

    n_references: int
    exact_ms_per_query: float
    ivf_ms_per_query: float
    top1_agreement: float
    n_cells: int
    n_probe: int

    @property
    def speedup(self) -> float:
        if self.ivf_ms_per_query == 0:
            return float("inf")
        return self.exact_ms_per_query / self.ivf_ms_per_query


def clustered_corpus(
    n: int, dim: int, *, n_clusters: Optional[int] = None, seed: int = 0
) -> np.ndarray:
    """Synthetic embedding corpus with cluster structure (like real pages)."""
    rng = np.random.default_rng(seed)
    n_clusters = n_clusters if n_clusters is not None else max(8, n // 50)
    centres = rng.standard_normal((n_clusters, dim)) * 10.0
    assignment = rng.integers(0, n_clusters, size=n)
    return centres[assignment] + rng.standard_normal((n, dim))


def _time_search(index, vectors: np.ndarray, queries: np.ndarray, k: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        index.search(vectors, queries, k)
        best = min(best, time.perf_counter() - start)
    return best


def measure_index_scaling(
    sizes: Sequence[int],
    *,
    dim: int = 32,
    k: int = 50,
    n_probe: int = 8,
    n_queries: int = 128,
    repeats: int = 3,
    seed: int = 0,
) -> List[ScalingRow]:
    """Per-query search time of exact vs IVF search at each corpus size."""
    rows: List[ScalingRow] = []
    rng = np.random.default_rng(seed + 1)
    for n in sizes:
        vectors = clustered_corpus(n, dim, seed=seed)
        queries = vectors[rng.choice(n, size=min(n_queries, n), replace=False)]
        queries = queries + 0.1 * rng.standard_normal(queries.shape)

        exact = ExactIndex()
        ivf = CoarseQuantizedIndex(n_probe=n_probe, min_train_size=min(256, n))
        ivf.rebuild(vectors)

        exact_s = _time_search(exact, vectors, queries, k, repeats)
        ivf_s = _time_search(ivf, vectors, queries, k, repeats)
        _, exact_ids = exact.search(vectors, queries, 1)
        _, ivf_ids = ivf.search(vectors, queries, 1)
        agreement = float((exact_ids[:, 0] == ivf_ids[:, 0]).mean())
        n_cells = ivf._centroids.shape[0] if ivf.trained else 0
        rows.append(
            ScalingRow(
                n_references=int(n),
                exact_ms_per_query=1e3 * exact_s / queries.shape[0],
                ivf_ms_per_query=1e3 * ivf_s / queries.shape[0],
                top1_agreement=agreement,
                n_cells=n_cells,
                n_probe=min(n_probe, n_cells) if n_cells else n_probe,
            )
        )
    return rows


def scaling_table_rows(rows: Sequence[ScalingRow]) -> List[List[str]]:
    """Rows for :func:`repro.metrics.reports.format_table`."""
    return [
        [
            str(row.n_references),
            f"{row.exact_ms_per_query:.3f}",
            f"{row.ivf_ms_per_query:.3f}",
            f"{row.speedup:.1f}x",
            f"{row.top1_agreement:.3f}",
            f"{row.n_cells}/{row.n_probe}",
        ]
        for row in rows
    ]
