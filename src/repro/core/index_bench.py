"""Query-engine scaling measurement (the Table 2 cost story, extended).

Shared by ``repro index-bench`` and ``benchmarks/bench_index_scaling.py``:
build clustered synthetic embedding corpora of growing size, answer the
same k-NN queries through the selected engines —
:class:`~repro.core.index.ExactIndex`, the IVF-style
:class:`~repro.core.index.CoarseQuantizedIndex` and the product-quantized
:class:`~repro.core.index.IVFPQIndex` — and report per-query time,
recall@k / top-1 agreement against the exact ranking, and resident
bytes-per-vector (index side structures vs the raw embedding matrix).  The
IVF curve growing sublinearly while the exact curve grows linearly is the
property the classifier inherits; IVF-PQ adds the memory story on top.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.index import CoarseQuantizedIndex, ExactIndex, IVFPQIndex

INDEX_BENCH_ENGINES = ("exact", "ivf", "ivfpq")


@dataclass
class EngineMeasurement:
    """One engine's numbers at one corpus size."""

    kind: str
    ms_per_query: float
    recall_at_k: float
    top1_agreement: float
    index_bytes_per_vector: float
    store_bytes_per_vector: float
    n_cells: int = 0
    n_probe: int = 0


@dataclass
class ScalingRow:
    """One corpus size in the engine comparison."""

    n_references: int
    k: int
    engines: Dict[str, EngineMeasurement] = field(default_factory=dict)

    def speedup(self, kind: str) -> float:
        """Speedup of ``kind`` over the exact engine at this size."""
        exact = self.engines["exact"].ms_per_query
        other = self.engines[kind].ms_per_query
        return float("inf") if other == 0 else exact / other

    # Backwards-compatible conveniences for the original exact-vs-IVF table.
    @property
    def exact_ms_per_query(self) -> float:
        return self.engines["exact"].ms_per_query

    @property
    def ivf_ms_per_query(self) -> float:
        return self.engines["ivf"].ms_per_query

    @property
    def top1_agreement(self) -> float:
        return self.engines["ivf"].top1_agreement


def clustered_corpus(
    n: int, dim: int, *, n_clusters: Optional[int] = None, seed: int = 0
) -> np.ndarray:
    """Synthetic embedding corpus with cluster structure (like real pages)."""
    rng = np.random.default_rng(seed)
    n_clusters = n_clusters if n_clusters is not None else max(8, n // 50)
    centres = rng.standard_normal((n_clusters, dim)) * 10.0
    assignment = rng.integers(0, n_clusters, size=n)
    return centres[assignment] + rng.standard_normal((n, dim))


def _time_search(index, vectors: np.ndarray, queries: np.ndarray, k: int, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        index.search(vectors, queries, k)
        best = min(best, time.perf_counter() - start)
    return best


def _build_engine(
    kind: str,
    n: int,
    n_probe: Optional[int],
    rerank: Optional[int],
    n_subspaces: Optional[int] = None,
    bits: Optional[int] = None,
    opq: bool = False,
    n_cells: Optional[int] = None,
    max_cell_fraction: Optional[float] = None,
):
    if kind == "exact":
        return ExactIndex()
    if kind == "ivf":
        return CoarseQuantizedIndex(
            n_cells=n_cells,
            n_probe=n_probe if n_probe is not None else 8,
            min_train_size=min(256, n),
            max_cell_fraction=max_cell_fraction,
        )
    if kind == "ivfpq":
        kwargs = {
            "min_train_size": min(256, n),
            "opq": opq,
            "n_cells": n_cells,
            "max_cell_fraction": max_cell_fraction,
        }
        if rerank is not None:
            kwargs["rerank"] = rerank
        if n_subspaces is not None:
            kwargs["n_subspaces"] = n_subspaces
        if bits is not None:
            kwargs["bits"] = bits
        return IVFPQIndex(**kwargs)  # engine defaults: 9*sqrt(N) cells, 16 probes
    raise ValueError(f"unknown engine {kind!r}; expected one of {INDEX_BENCH_ENGINES}")


def measure_index_scaling(
    sizes: Sequence[int],
    *,
    dim: int = 32,
    k: int = 50,
    n_probe: Optional[int] = None,
    n_queries: int = 128,
    repeats: int = 3,
    seed: int = 0,
    engines: Sequence[str] = INDEX_BENCH_ENGINES,
    rerank: Optional[int] = None,
    n_subspaces: Optional[int] = None,
    bits: Optional[int] = None,
    opq: bool = False,
    n_cells: Optional[int] = None,
    max_cell_fraction: Optional[float] = None,
) -> List[ScalingRow]:
    """Per-query search time + accuracy/memory of each engine per corpus size.

    ``n_probe`` applies to the IVF engine; IVF-PQ keeps its own finer-cell
    defaults unless ``rerank``/``n_subspaces``/``bits``/``opq`` override
    the code layout (``bits <= 4`` selects the packed 4-bit engine).
    ``max_cell_fraction`` caps coarse-cell occupancy on both clustered
    engines (see :mod:`repro.core.knobs`); the native-kernel mode is
    process-global (``repro.core.kernels.set_native_kernels_mode``).
    The exact engine is always measured — it is the accuracy baseline.
    """
    rows: List[ScalingRow] = []
    rng = np.random.default_rng(seed + 1)
    engines = list(dict.fromkeys(["exact", *engines]))
    for n in sizes:
        vectors = clustered_corpus(n, dim, seed=seed)
        queries = vectors[rng.choice(n, size=min(n_queries, n), replace=False)]
        queries = queries + 0.1 * rng.standard_normal(queries.shape)
        k_eff = min(k, n)
        row = ScalingRow(n_references=int(n), k=k_eff)

        exact_ids: Optional[np.ndarray] = None
        for kind in engines:
            engine = _build_engine(
                kind, n, n_probe, rerank, n_subspaces, bits, opq, n_cells, max_cell_fraction
            )
            engine.rebuild(vectors)
            elapsed = _time_search(engine, vectors, queries, k_eff, repeats)
            _, ids = engine.search(vectors, queries, k_eff)
            if kind == "exact":
                exact_ids = ids
                recall = 1.0
                agreement = 1.0
            else:
                hits = np.array(
                    [
                        np.intersect1d(ids[q], exact_ids[q]).size
                        for q in range(ids.shape[0])
                    ]
                )
                recall = float(hits.mean() / k_eff)
                agreement = float((ids[:, 0] == exact_ids[:, 0]).mean())
            cells = getattr(engine, "_centroids", None)
            row.engines[kind] = EngineMeasurement(
                kind=kind,
                ms_per_query=1e3 * elapsed / queries.shape[0],
                recall_at_k=recall,
                top1_agreement=agreement,
                index_bytes_per_vector=engine.memory_bytes() / n,
                store_bytes_per_vector=vectors.nbytes / n,
                n_cells=0 if cells is None else cells.shape[0],
                n_probe=getattr(engine, "n_probe", 0),
            )
        rows.append(row)
    return rows


def scaling_table_rows(rows: Sequence[ScalingRow]) -> List[List[str]]:
    """Rows for :func:`repro.metrics.reports.format_table` — one line per
    (corpus size, engine)."""
    out: List[List[str]] = []
    for row in rows:
        for kind, engine in row.engines.items():
            out.append(
                [
                    str(row.n_references),
                    kind,
                    f"{engine.ms_per_query:.3f}",
                    f"{row.speedup(kind):.1f}x",
                    f"{engine.recall_at_k:.3f}",
                    f"{engine.top1_agreement:.3f}",
                    f"{engine.index_bytes_per_vector:.1f}",
                    f"{engine.store_bytes_per_vector:.0f}",
                    f"{engine.n_cells}/{engine.n_probe}" if engine.n_cells else "-",
                ]
            )
    return out


SCALING_TABLE_HEADERS = [
    "N references",
    "engine",
    "ms/query",
    "speedup",
    "recall@k",
    "top-1 agree",
    "index B/vec",
    "store B/vec",
    "cells/probe",
]
