"""The paper's primary contribution: adaptive webpage fingerprinting.

The pipeline has three processes (Section IV):

* **Provisioning** — train the class-agnostic embedding model once, on
  pairs of traces labelled only "same page" / "different page"
  (:class:`~repro.core.trainer.ContrastiveTrainer`).
* **Fingerprinting** — embed the reference corpus and the captured trace,
  classify by proximity (:class:`~repro.core.classifier.KNNClassifier` over
  a :class:`~repro.core.reference_store.ReferenceStore`).
* **Adaptation** — keep the reference corpus up to date with changed pages
  without retraining the model (:class:`~repro.core.adaptation.AdaptationPolicy`).

:class:`~repro.core.fingerprinter.AdaptiveFingerprinter` is the facade that
ties the three together.
"""

from repro.core.embedding import EmbeddingModel
from repro.core.index import (
    CoarseQuantizedIndex,
    ExactIndex,
    IVFPQIndex,
    NearestNeighbourIndex,
    PackedPQ,
    ProductQuantizer,
    index_from_spec,
    top_k_by_distance,
)
from repro.core.pairs import PairGenerator, random_pairs, hard_negative_pairs
from repro.core.trainer import ContrastiveTrainer, TrainingHistory
from repro.core.reference_store import ReferenceStore
from repro.core.classifier import KNNClassifier, Prediction
from repro.core.fingerprinter import AdaptiveFingerprinter
from repro.core.adaptation import AdaptationPolicy, AdaptationReport
from repro.core.openworld import OpenWorldDetector, OpenWorldResult
from repro.core.deployment import (
    DeploymentError,
    DeploymentNotFoundError,
    save_deployment,
    load_deployment,
)

__all__ = [
    "CoarseQuantizedIndex",
    "ExactIndex",
    "IVFPQIndex",
    "PackedPQ",
    "ProductQuantizer",
    "NearestNeighbourIndex",
    "index_from_spec",
    "top_k_by_distance",
    "OpenWorldDetector",
    "OpenWorldResult",
    "DeploymentError",
    "DeploymentNotFoundError",
    "save_deployment",
    "load_deployment",
    "EmbeddingModel",
    "PairGenerator",
    "random_pairs",
    "hard_negative_pairs",
    "ContrastiveTrainer",
    "TrainingHistory",
    "ReferenceStore",
    "KNNClassifier",
    "Prediction",
    "AdaptiveFingerprinter",
    "AdaptationPolicy",
    "AdaptationReport",
]
