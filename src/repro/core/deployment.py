"""Saving and restoring a complete fingerprinting deployment.

The paper's adversary provisions once and then operates the deployment over
a long period, so being able to persist the trained embedding model, the
reference corpus and the configuration together — and restore them later on
a different machine — is part of making the attack (and the research
artefact) operationally real.  A deployment directory contains::

    deployment/
      config.json        architecture + classifier configuration
      weights.npz        embedding-model parameters
      references.rsg     labelled reference embeddings (RSG1 segment)

Deployments saved before the segment format carried ``references.npz``
instead; those still load, and :func:`migrate_deployment` (exposed as
``repro migrate DIR``) converts them in place.

Writes are crash-safe: :func:`save_deployment` assembles the directory in a
hidden staging sibling and swaps it into place with renames, so a reader
never observes a half-written deployment and an interrupted save keeps the
previous deployment (if any) on disk — either still in place, or under a
retired sibling name that :func:`load_deployment` promotes back
automatically.  :func:`load_deployment` validates the directory up front
and raises :class:`DeploymentError` — instead of a bare
``KeyError``/``FileNotFoundError`` from deep inside the loaders — when
files are missing, the config is malformed or the index spec is unknown.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import asdict
from pathlib import Path
from typing import List, Optional, Union

from repro.config import ClassifierConfig, EmbeddingHyperparameters
from repro.core.fingerprinter import AdaptiveFingerprinter
from repro.core.index import index_from_spec
from repro.core.reference_store import ReferenceStore
from repro.traces.sequences import SequenceExtractor

PathLike = Union[str, os.PathLike]

_CONFIG_FILE = "config.json"
_WEIGHTS_FILE = "weights.npz"
_REFERENCES_FILE = "references.rsg"
_LEGACY_REFERENCES_FILE = "references.npz"
_REQUIRED_FILES = (_CONFIG_FILE, _WEIGHTS_FILE, _REFERENCES_FILE)


def _references_path(directory: Path) -> Optional[Path]:
    """The reference archive inside a deployment: the native ``.rsg``
    segment, or the legacy ``.npz`` of a pre-segment deployment."""
    for name in (_REFERENCES_FILE, _LEGACY_REFERENCES_FILE):
        candidate = directory / name
        if candidate.is_file():
            return candidate
    return None


class DeploymentError(RuntimeError):
    """A deployment directory is missing, incomplete or malformed."""


class DeploymentNotFoundError(DeploymentError, FileNotFoundError):
    """The deployment directory itself does not exist.

    Also a ``FileNotFoundError`` so callers that predate
    :class:`DeploymentError` keep working.
    """


def save_deployment(fingerprinter: AdaptiveFingerprinter, directory: PathLike) -> Path:
    """Persist a provisioned (and typically initialised) deployment.

    The three files are written into a staging directory next to the target
    and renamed into place, so a crash mid-save never leaves ``directory``
    partially written.
    """
    if not fingerprinter.provisioned:
        raise RuntimeError("cannot save a deployment whose model was never provisioned")
    directory = Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    # Clear staging leftovers of earlier interrupted saves (single-writer
    # protocol: deployments are saved by one operator process at a time).
    # Retired `.replaced.*` backups are cleaned only *after* this save
    # lands, so a crash can never destroy the last valid deployment.
    for leftover in directory.parent.glob(f".{directory.name}.staging.*"):
        shutil.rmtree(leftover, ignore_errors=True)
    staging = directory.parent / f".{directory.name}.staging.{os.getpid()}"
    staging.mkdir()

    config = {
        "hyperparameters": fingerprinter.model.hyperparameters.as_dict(),
        "classifier": asdict(fingerprinter.classifier_config),
        "index": fingerprinter.reference_store.index.spec(),
        "extractor": {
            "max_sequences": fingerprinter.extractor.max_sequences,
            "sequence_length": fingerprinter.extractor.sequence_length,
            "aggregate_consecutive": fingerprinter.extractor.aggregate_consecutive,
            "quantization_step": fingerprinter.extractor.quantization_step,
            "log_scale": fingerprinter.extractor.log_scale,
            "merge_servers": fingerprinter.extractor.merge_servers,
            "tail_aggregate": fingerprinter.extractor.tail_aggregate,
        },
        "seed": fingerprinter.model.seed,
    }
    try:
        (staging / _CONFIG_FILE).write_text(json.dumps(config, indent=2, sort_keys=True))
        fingerprinter.model.save(staging / _WEIGHTS_FILE)
        fingerprinter.reference_store.save(staging / _REFERENCES_FILE)
        if directory.exists():
            # Directories cannot be renamed over each other, so retire the
            # old deployment first; it survives on disk until the new one is
            # in place, keeping the window without a valid deployment empty.
            retired = directory.parent / f".{directory.name}.replaced.{os.getpid()}"
            if retired.exists():
                shutil.rmtree(retired)
            os.rename(directory, retired)
            os.rename(staging, directory)
        else:
            os.rename(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    # The new deployment is in place; every retired backup (this save's and
    # any left by earlier crashed saves) is now obsolete.
    for leftover in directory.parent.glob(f".{directory.name}.replaced.*"):
        shutil.rmtree(leftover, ignore_errors=True)
    return directory


def load_deployment(directory: PathLike) -> AdaptiveFingerprinter:
    """Restore a deployment saved by :func:`save_deployment`.

    The returned fingerprinter is marked as provisioned and, if the saved
    reference corpus is non-empty, ready to fingerprint immediately.

    Raises :class:`DeploymentError` when the directory is missing files or
    holds an unreadable/unknown configuration (and the
    ``FileNotFoundError``-compatible :class:`DeploymentNotFoundError` when
    the directory itself does not exist).
    """
    directory = Path(directory)
    if not directory.is_dir():
        # A crash between an overwriting save's two renames leaves the
        # previous (fully valid) deployment under its retired name; promote
        # it back rather than reporting the deployment lost.
        retired = (
            list(directory.parent.glob(f".{directory.name}.replaced.*"))
            if directory.parent.is_dir()
            else []
        )
        if retired:
            os.rename(max(retired, key=lambda path: path.stat().st_mtime), directory)
        else:
            raise DeploymentNotFoundError(f"deployment directory does not exist: {directory}")
    references = _references_path(directory)
    missing = [
        name
        for name in _REQUIRED_FILES
        if not (directory / name).is_file() and not (name == _REFERENCES_FILE and references)
    ]
    if missing:
        raise DeploymentError(
            f"incomplete deployment directory {directory}: missing {', '.join(missing)} "
            "(was the save interrupted, or is this not a deployment directory?)"
        )
    try:
        config = json.loads((directory / _CONFIG_FILE).read_text())
    except json.JSONDecodeError as error:
        raise DeploymentError(f"unreadable {_CONFIG_FILE} in {directory}: {error}") from error
    if not isinstance(config, dict):
        raise DeploymentError(
            f"malformed {_CONFIG_FILE} in {directory}: expected a JSON object, "
            f"got {type(config).__name__}"
        )

    index_spec = config.get("index")  # absent in pre-index deployments -> exact
    try:
        index_from_spec(index_spec)  # validate the spec before building anything
    except (ValueError, TypeError) as error:
        raise DeploymentError(
            f"deployment {directory} has an unknown index spec {index_spec!r}: {error}"
        ) from error

    try:
        hyperparameters = EmbeddingHyperparameters(
            **{
                **config["hyperparameters"],
                "hidden_layer_sizes": tuple(config["hyperparameters"]["hidden_layer_sizes"]),
            }
        )
        classifier_config = ClassifierConfig(**config["classifier"])
        extractor = SequenceExtractor(**config["extractor"])
        seed = int(config.get("seed", 0))
    except (KeyError, TypeError) as error:
        raise DeploymentError(
            f"malformed {_CONFIG_FILE} in {directory}: {error!r} "
            "(expected the schema written by save_deployment)"
        ) from error

    fingerprinter = AdaptiveFingerprinter(
        n_sequences=extractor.max_sequences,
        sequence_length=extractor.sequence_length,
        hyperparameters=hyperparameters,
        classifier_config=classifier_config,
        extractor=extractor,
        seed=seed,
        index_factory=lambda: index_from_spec(index_spec),
    )
    try:
        fingerprinter.model.load(directory / _WEIGHTS_FILE)
    except (KeyError, ValueError) as error:
        raise DeploymentError(
            f"weights in {directory / _WEIGHTS_FILE} do not match the configured architecture: {error!r}"
        ) from error
    fingerprinter.mark_provisioned()

    # The bulk add during load already (re)builds the index once.
    store = ReferenceStore.load(references, index=index_from_spec(index_spec))
    if len(store):
        fingerprinter.attach_references(store)
    return fingerprinter


def migrate_deployment(directory: PathLike) -> List[Path]:
    """Convert legacy ``references.npz`` archives to ``RSG1`` in place.

    ``directory`` may be a single deployment or a parent holding several;
    each legacy archive is loaded (trained index state included), rewritten
    atomically as ``references.rsg`` and the npz removed only once the
    segment is in place.  Returns the deployment directories converted —
    empty when everything was already in the segment format.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DeploymentNotFoundError(f"deployment directory does not exist: {directory}")
    if (directory / _CONFIG_FILE).is_file():
        candidates = [directory]
    else:
        candidates = sorted(
            child for child in directory.iterdir() if (child / _CONFIG_FILE).is_file()
        )
        if not candidates:
            raise DeploymentError(
                f"{directory} holds no deployment (no {_CONFIG_FILE} in it or its children)"
            )
    migrated: List[Path] = []
    for deployment in candidates:
        legacy = deployment / _LEGACY_REFERENCES_FILE
        if not legacy.is_file():
            continue
        try:
            config = json.loads((deployment / _CONFIG_FILE).read_text())
            index_spec = config.get("index") if isinstance(config, dict) else None
            store = ReferenceStore.load(legacy, index=index_from_spec(index_spec))
        except (json.JSONDecodeError, KeyError, ValueError, TypeError) as error:
            raise DeploymentError(f"cannot migrate {deployment}: {error!r}") from error
        store.save(deployment / _REFERENCES_FILE)
        legacy.unlink()
        migrated.append(deployment)
    return migrated
