"""Saving and restoring a complete fingerprinting deployment.

The paper's adversary provisions once and then operates the deployment over
a long period, so being able to persist the trained embedding model, the
reference corpus and the configuration together — and restore them later on
a different machine — is part of making the attack (and the research
artefact) operationally real.  A deployment directory contains::

    deployment/
      config.json        architecture + classifier configuration
      weights.npz        embedding-model parameters
      references.npz     labelled reference embeddings
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Union

from repro.config import ClassifierConfig, EmbeddingHyperparameters
from repro.core.fingerprinter import AdaptiveFingerprinter
from repro.core.index import index_from_spec
from repro.core.reference_store import ReferenceStore
from repro.traces.sequences import SequenceExtractor

PathLike = Union[str, os.PathLike]

_CONFIG_FILE = "config.json"
_WEIGHTS_FILE = "weights.npz"
_REFERENCES_FILE = "references.npz"


def save_deployment(fingerprinter: AdaptiveFingerprinter, directory: PathLike) -> Path:
    """Persist a provisioned (and typically initialised) deployment."""
    if not fingerprinter.provisioned:
        raise RuntimeError("cannot save a deployment whose model was never provisioned")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    config = {
        "hyperparameters": fingerprinter.model.hyperparameters.as_dict(),
        "classifier": asdict(fingerprinter.classifier_config),
        "index": fingerprinter.reference_store.index.spec(),
        "extractor": {
            "max_sequences": fingerprinter.extractor.max_sequences,
            "sequence_length": fingerprinter.extractor.sequence_length,
            "aggregate_consecutive": fingerprinter.extractor.aggregate_consecutive,
            "quantization_step": fingerprinter.extractor.quantization_step,
            "log_scale": fingerprinter.extractor.log_scale,
            "merge_servers": fingerprinter.extractor.merge_servers,
            "tail_aggregate": fingerprinter.extractor.tail_aggregate,
        },
        "seed": fingerprinter.model.seed,
    }
    (directory / _CONFIG_FILE).write_text(json.dumps(config, indent=2, sort_keys=True))
    fingerprinter.model.save(directory / _WEIGHTS_FILE)
    fingerprinter.reference_store.save(directory / _REFERENCES_FILE)
    return directory


def load_deployment(directory: PathLike) -> AdaptiveFingerprinter:
    """Restore a deployment saved by :func:`save_deployment`.

    The returned fingerprinter is marked as provisioned and, if the saved
    reference corpus is non-empty, ready to fingerprint immediately.
    """
    directory = Path(directory)
    config_path = directory / _CONFIG_FILE
    if not config_path.exists():
        raise FileNotFoundError(f"not a deployment directory (missing {_CONFIG_FILE}): {directory}")
    config = json.loads(config_path.read_text())

    hyperparameters = EmbeddingHyperparameters(
        **{**config["hyperparameters"], "hidden_layer_sizes": tuple(config["hyperparameters"]["hidden_layer_sizes"])}
    )
    classifier_config = ClassifierConfig(**config["classifier"])
    extractor = SequenceExtractor(**config["extractor"])
    index_spec = config.get("index")  # absent in pre-index deployments -> exact

    fingerprinter = AdaptiveFingerprinter(
        n_sequences=extractor.max_sequences,
        sequence_length=extractor.sequence_length,
        hyperparameters=hyperparameters,
        classifier_config=classifier_config,
        extractor=extractor,
        seed=int(config.get("seed", 0)),
        index_factory=lambda: index_from_spec(index_spec),
    )
    fingerprinter.model.load(directory / _WEIGHTS_FILE)
    fingerprinter.mark_provisioned()

    # The bulk add during load already (re)builds the index once.
    references = ReferenceStore.load(directory / _REFERENCES_FILE, index=index_from_spec(index_spec))
    if len(references):
        fingerprinter.attach_references(references)
    return fingerprinter
