"""Optional fused C kernels for the IVF-PQ ADC scan and streaming top-k.

The IVF-PQ hot loop — gather per-candidate LUT entries, accumulate, select
the ``n_select`` best per query — is interpreter-bound in NumPy: the scan
materialises a flat candidate buffer (ids, gathered codes, int32 gather
indices, per-candidate sums) whose size is the total number of probed
candidates, then runs ``argpartition`` over each query's segment.  This
module fuses the whole pass into C, compiled on first use with the system
compiler and loaded through :mod:`ctypes` (the same discipline as
:mod:`repro.nn.kernels`):

* ``adc_scan_block_packed`` — blocked nibble scan over the per-subspace
  transposed code layout: unpacks two 4-bit codes per byte and gathers
  from the per-query uint8-quantized LUT in one pass, accumulating into
  uint32 partial sums.
* ``adc_scan_block_u8`` — the fused LUT-gather+accumulate for the 8-bit
  path (uint8 codes -> uint32 partial sums; the float32 scale/bias
  reconstruction that follows is byte-for-byte the NumPy math).
* ``ivfpq_search_topk`` — the streaming driver: walks each query's probed
  cells block by block through the scanners above and pushes every
  candidate into a bounded max-heap ordered by ``(distance, id)``, so peak
  scan memory is ``O(block + n_select)`` — independent of how many
  candidates the probes cover — and the full candidate buffer is never
  materialised.

Results are **bitwise identical** to the NumPy fallback in
:meth:`repro.core.index.IVFPQIndex._adc_select`: both paths gather from
the same uint8-quantized LUT (integer sums are order-independent), apply
the float32 scale/bias reconstruction in the same operation order
(``-ffp-contract=off`` keeps the compiler from fusing it into FMAs), and
select the ``n_select`` smallest ``(distance, id)`` pairs under the same
total order.

No new dependency: when no compiler is available or the build fails,
:func:`ivfpq_kernels` returns ``None`` and the index runs its NumPy scan.
Compiled objects are cached outside the source tree (see
:mod:`repro.kernel_cache`), keyed by a hash of the C source and the host
CPU.  The ``native_kernels`` knob (``auto`` / ``on`` / ``off``) is
process-global through :func:`set_native_kernels_mode` (exported via the
``REPRO_NATIVE_KERNELS`` environment variable so serving worker processes
inherit it) and per-index through ``IVFPQIndex(native_kernels=...)``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.kernel_cache import kernel_cache_dir

_C_SOURCE = r"""
/* Fused ADC scan + streaming top-k for the IVF-PQ engine.

   Code layout: codes_t is the (code_width, N) transpose of the stored
   code rows, reordered cell-major (column i holds the codes of the
   reference listed in members[i]), so one cell's candidates are a
   contiguous column range and each subspace row streams sequentially.
   lut is the per-query uint8-quantized table, (m, k_sub) row-major per
   query.  All float arithmetic must stay plain float32 adds/mults in
   source order: the Python side compiles with -ffp-contract=off so the
   results match the NumPy scan bit for bit. */

#include <stdlib.h>

#define BLOCK 512

void adc_scan_block_packed(long n_rows, long m, long k_sub, long stride,
                           const unsigned char *codes,
                           const unsigned char *lut,
                           unsigned int *sums)
{
    /* codes points at the block's first column inside the (cw, stride)
       transposed layout; subspace j lives in byte row j/2 — even j in the
       low nibble, odd j in the high nibble. */
    long cw = (m + 1) / 2;
    for (long i = 0; i < n_rows; ++i)
        sums[i] = 0u;
    for (long jj = 0; jj < cw; ++jj) {
        const unsigned char *row = codes + jj * stride;
        const unsigned char *lo = lut + (2 * jj) * k_sub;
        if (2 * jj + 1 < m) {
            const unsigned char *hi = lo + k_sub;
            for (long i = 0; i < n_rows; ++i) {
                unsigned char byte = row[i];
                sums[i] += (unsigned int)lo[byte & 0x0F] + (unsigned int)hi[byte >> 4];
            }
        } else {
            for (long i = 0; i < n_rows; ++i)
                sums[i] += (unsigned int)lo[row[i] & 0x0F];
        }
    }
}

void adc_scan_block_u8(long n_rows, long m, long k_sub, long stride,
                       const unsigned char *codes,
                       const unsigned char *lut,
                       unsigned int *sums)
{
    for (long i = 0; i < n_rows; ++i)
        sums[i] = 0u;
    for (long j = 0; j < m; ++j) {
        const unsigned char *row = codes + j * stride;
        const unsigned char *lutj = lut + j * k_sub;
        for (long i = 0; i < n_rows; ++i)
            sums[i] += (unsigned int)lutj[row[i]];
    }
}

typedef struct { float d; long id; } pair_t;

static int pair_gt(float da, long ia, float db, long ib)
{
    /* Total order by (distance, id): the heap root is the worst kept
       candidate, matching NumPy's lexsort((ids, distances)) order. */
    return da > db || (da == db && ia > ib);
}

static void sift_down(pair_t *heap, long size, long pos)
{
    for (;;) {
        long left = 2 * pos + 1;
        long right = left + 1;
        long largest = pos;
        if (left < size && pair_gt(heap[left].d, heap[left].id,
                                   heap[largest].d, heap[largest].id))
            largest = left;
        if (right < size && pair_gt(heap[right].d, heap[right].id,
                                    heap[largest].d, heap[largest].id))
            largest = right;
        if (largest == pos)
            return;
        pair_t tmp = heap[pos];
        heap[pos] = heap[largest];
        heap[largest] = tmp;
        pos = largest;
    }
}

int ivfpq_search_topk(long n_queries, long n_probe, long m, long k_sub,
                      long packed, long n_select, long n_rows,
                      const unsigned char *lut, const float *scale,
                      const float *bias, const float *coarse,
                      const long *probe, const long *cell_starts,
                      const long *members, const float *consts,
                      const unsigned char *codes_t,
                      long *out_ids, float *out_d, long *out_counts)
{
    pair_t *heap = (pair_t *)malloc((size_t)n_select * sizeof(pair_t));
    unsigned int sums[BLOCK];
    if (heap == NULL)
        return 1;
    float mf = (float)m;
    for (long q = 0; q < n_queries; ++q) {
        long size = 0;
        const unsigned char *lutq = lut + q * m * k_sub;
        float sq = scale[q];
        float bq = bias[q];
        for (long p = 0; p < n_probe; ++p) {
            long cell = probe[q * n_probe + p];
            float base = coarse[q * n_probe + p];
            long end = cell_starts[cell + 1];
            for (long bs = cell_starts[cell]; bs < end; bs += BLOCK) {
                long bn = (end - bs < BLOCK) ? end - bs : BLOCK;
                if (packed)
                    adc_scan_block_packed(bn, m, k_sub, n_rows, codes_t + bs, lutq, sums);
                else
                    adc_scan_block_u8(bn, m, k_sub, n_rows, codes_t + bs, lutq, sums);
                for (long i = 0; i < bn; ++i) {
                    /* adc = (coarse + const) - 2 (scale sum + m bias),
                       float32 in exactly NumPy's operation order. */
                    float a = base + consts[bs + i];
                    a -= 2.0f * (sq * (float)sums[i] + mf * bq);
                    long id = members[bs + i];
                    if (size < n_select) {
                        long pos = size++;
                        heap[pos].d = a;
                        heap[pos].id = id;
                        while (pos > 0) {
                            long parent = (pos - 1) / 2;
                            if (pair_gt(heap[pos].d, heap[pos].id,
                                        heap[parent].d, heap[parent].id)) {
                                pair_t tmp = heap[pos];
                                heap[pos] = heap[parent];
                                heap[parent] = tmp;
                                pos = parent;
                            } else {
                                break;
                            }
                        }
                    } else if (pair_gt(heap[0].d, heap[0].id, a, id)) {
                        heap[0].d = a;
                        heap[0].id = id;
                        sift_down(heap, n_select, 0);
                    }
                }
            }
        }
        /* Heap-sort the survivors ascending by (distance, id). */
        out_counts[q] = size;
        long *ids_row = out_ids + q * n_select;
        float *d_row = out_d + q * n_select;
        long remaining = size;
        while (remaining > 0) {
            pair_t worst = heap[0];
            heap[0] = heap[remaining - 1];
            --remaining;
            sift_down(heap, remaining, 0);
            d_row[remaining] = worst.d;
            ids_row[remaining] = worst.id;
        }
    }
    free(heap);
    return 0;
}
"""

#: -ffp-contract=off: the scale/bias reconstruction must round after every
#: float32 operation exactly like NumPy — a fused multiply-add would keep
#: the intermediate product exact and (rarely) flip the last ulp, breaking
#: the bitwise-identity contract with the fallback scan.
_CFLAGS = ["-O3", "-march=native", "-ffp-contract=off", "-shared", "-fPIC"]

_MODES = ("auto", "on", "off")
_MODE_ENV = "REPRO_NATIVE_KERNELS"

_cached: Optional["IVFPQKernels"] = None
_build_attempted = False


def _host_fingerprint() -> str:
    """Identify the CPU the kernel is compiled for (``-march=native`` code
    would SIGILL on a host without the same ISA extensions, so the cache
    key must change when the cache directory moves between machines)."""
    try:
        with open("/proc/cpuinfo") as cpuinfo:
            for line in cpuinfo:
                if line.startswith("flags"):
                    return line
    except OSError:
        pass
    import platform

    return f"{platform.machine()}-{platform.processor()}"


def source_key() -> str:
    """Hash of the C source + host CPU: the ``.so`` cache key, also
    recorded in benchmark provenance headers so artifacts from different
    kernel versions are distinguishable."""
    return hashlib.sha256((_C_SOURCE + "\0" + _host_fingerprint()).encode()).hexdigest()[:16]


def _build_library() -> Optional[ctypes.CDLL]:
    cache_dir = kernel_cache_dir()
    lib_path = cache_dir / f"_ivfpq_kernel_{source_key()}.so"
    if not lib_path.exists():
        compiler = os.environ.get("CC", "cc")
        with tempfile.TemporaryDirectory() as tmp:
            c_file = Path(tmp) / "ivfpq_kernel.c"
            c_file.write_text(_C_SOURCE)
            # Compile straight into the cache directory (a cross-device
            # rename out of the temp dir would fail), then rename
            # atomically so concurrent builders cannot race.
            tmp_so = cache_dir / f".build-{os.getpid()}-{source_key()}.so"
            result = subprocess.run(
                [compiler, *_CFLAGS, "-o", str(tmp_so), str(c_file)],
                capture_output=True,
                timeout=120,
            )
            if result.returncode != 0:
                return None
            os.replace(tmp_so, lib_path)
    library = ctypes.CDLL(str(lib_path))
    c_long = ctypes.c_long
    u8p = ctypes.POINTER(ctypes.c_ubyte)
    u32p = ctypes.POINTER(ctypes.c_uint)
    f32p = ctypes.POINTER(ctypes.c_float)
    i64p = ctypes.POINTER(ctypes.c_long)
    for name in ("adc_scan_block_packed", "adc_scan_block_u8"):
        fn = getattr(library, name)
        fn.argtypes = [c_long, c_long, c_long, c_long, u8p, u8p, u32p]
        fn.restype = None
    library.ivfpq_search_topk.argtypes = (
        [c_long] * 7
        + [u8p, f32p, f32p, f32p, i64p, i64p, i64p, f32p, u8p]
        + [i64p, f32p, i64p]
    )
    library.ivfpq_search_topk.restype = ctypes.c_int
    return library


def _u8(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte))


def _f32(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_float))


def _i64(array: np.ndarray):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_long))


class IVFPQKernels:
    """ctypes wrappers around the fused ADC scan + top-k kernels."""

    def __init__(self, library: ctypes.CDLL) -> None:
        self._lib = library

    def search_topk(
        self,
        *,
        lut_u8: np.ndarray,
        scale: np.ndarray,
        bias: np.ndarray,
        coarse: np.ndarray,
        probe: np.ndarray,
        cell_starts: np.ndarray,
        members: np.ndarray,
        consts: np.ndarray,
        codes_t: np.ndarray,
        packed: bool,
        n_select: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Streaming ADC scan + per-query top-``n_select``.

        Every array must be C-contiguous in the documented dtype (uint8
        LUT/codes, float32 coarse/scale/bias/consts, int64 everything
        else); ``codes_t`` is the cell-major ``(code_width, N)`` transpose
        whose columns follow ``members``.  Returns ``(distances, ids,
        counts)`` — rows are ascending ``(distance, id)``, ``counts[q]``
        entries valid.
        """
        n_queries, n_probe = probe.shape
        n_queries_l, m, k_sub = lut_u8.shape
        assert n_queries_l == n_queries
        out_ids = np.empty((n_queries, n_select), dtype=np.int64)
        out_d = np.empty((n_queries, n_select), dtype=np.float32)
        out_counts = np.empty(n_queries, dtype=np.int64)
        status = self._lib.ivfpq_search_topk(
            n_queries,
            n_probe,
            m,
            k_sub,
            1 if packed else 0,
            n_select,
            members.shape[0],
            _u8(lut_u8),
            _f32(scale),
            _f32(bias),
            _f32(coarse),
            _i64(probe),
            _i64(cell_starts),
            _i64(members),
            _f32(consts),
            _u8(codes_t),
            _i64(out_ids),
            _f32(out_d),
            _i64(out_counts),
        )
        if status != 0:
            raise MemoryError("ivfpq_search_topk could not allocate its top-k heap")
        return out_d, out_ids, out_counts

    def scan_sums(
        self,
        codes_t: np.ndarray,
        lut_row: np.ndarray,
        *,
        packed: bool,
        start: int = 0,
        count: Optional[int] = None,
    ) -> np.ndarray:
        """Raw blocked scan over ``count`` columns of the transposed code
        layout for one query's ``(m, k_sub)`` LUT — the uint32 partial
        sums before scale/bias reconstruction.  Exposed for the
        throughput benchmark and the kernel unit tests."""
        stride = codes_t.shape[1]
        count = stride - start if count is None else count
        m, k_sub = lut_row.shape
        sums = np.empty(count, dtype=np.uint32)
        fn = self._lib.adc_scan_block_packed if packed else self._lib.adc_scan_block_u8
        base = ctypes.cast(codes_t.ctypes.data + start, ctypes.POINTER(ctypes.c_ubyte))
        fn(
            count,
            m,
            k_sub,
            stride,
            base,
            _u8(lut_row),
            sums.ctypes.data_as(ctypes.POINTER(ctypes.c_uint)),
        )
        return sums


def ivfpq_kernels() -> Optional[IVFPQKernels]:
    """The compiled kernels, or ``None`` when unavailable (NumPy fallback).

    The first call compiles (or loads the cached ``.so``); failures of any
    kind — no compiler, unwritable cache, bad toolchain — latch to ``None``
    for the rest of the process.  ``REPRO_DISABLE_KERNELS`` disables the
    build entirely, mirroring :func:`repro.nn.kernels.lstm_kernels`.
    """
    global _cached, _build_attempted
    if _build_attempted:
        return _cached
    _build_attempted = True
    if os.environ.get("REPRO_DISABLE_KERNELS"):
        return None
    try:
        library = _build_library()
    except Exception:
        library = None
    _cached = IVFPQKernels(library) if library is not None else None
    return _cached


def set_native_kernels_mode(mode: str) -> None:
    """Set the process-global native-kernel mode (the CLI's
    ``--native-kernels`` flag): ``auto`` defers to each index's own
    setting, ``on`` requires the kernels (searches raise if the build
    fails), ``off`` forces the NumPy path everywhere.  Exported through
    ``REPRO_NATIVE_KERNELS`` so spawned serving workers inherit it."""
    if mode not in _MODES:
        raise ValueError(f"unknown native-kernels mode {mode!r}; expected one of {_MODES}")
    os.environ[_MODE_ENV] = mode


def native_kernels_mode() -> str:
    """The process-global mode (``auto`` when unset or unrecognised)."""
    mode = os.environ.get(_MODE_ENV, "auto")
    return mode if mode in _MODES else "auto"


def resolve_mode(index_mode: str) -> str:
    """Combine the process-global mode with one index's knob.

    ``off`` anywhere wins (never dispatch), then ``on`` anywhere
    (require), else ``auto`` (use when the build succeeds).
    """
    if index_mode not in _MODES:
        raise ValueError(f"unknown native-kernels mode {index_mode!r}; expected one of {_MODES}")
    global_mode = native_kernels_mode()
    if "off" in (global_mode, index_mode):
        return "off"
    if "on" in (global_mode, index_mode):
        return "on"
    return "auto"


def kernel_status() -> Dict[str, object]:
    """Observable kernel state for ``info``/stats endpoints and benchmark
    provenance: the effective mode, whether a compiler is on PATH, whether
    the kernels actually loaded, the source hash and the cache directory.
    """
    mode = native_kernels_mode()
    compiler = os.environ.get("CC", "cc")
    active = False
    if mode != "off" and not os.environ.get("REPRO_DISABLE_KERNELS"):
        active = ivfpq_kernels() is not None
    try:
        cache = str(kernel_cache_dir())
    except OSError:
        cache = None
    return {
        "mode": mode,
        "compiler": compiler,
        "compiler_available": shutil.which(compiler) is not None,
        "active": active,
        "source_hash": source_key(),
        "cache_dir": cache,
    }
