"""Nearest-neighbour query engines for the reference store.

The paper's scaling story (Table 2) depends on classification staying cheap
as the monitored set grows.  This module provides the pluggable index layer
the :class:`~repro.core.reference_store.ReferenceStore` queries through:

* :class:`ExactIndex` — brute-force ``cdist`` + ``argpartition`` top-k; the
  default, bit-identical to a full sorted distance scan.
* :class:`CoarseQuantizedIndex` — an IVF-style coarse quantizer: reference
  vectors are bucketed into k-means cells and a query only scans the
  ``n_probe`` cells whose centroids are nearest, making query time grow
  sublinearly in the store size.  The cell structure is **incrementally
  updatable** — ``add``/``remove`` keep assignments current without
  re-running k-means — so the paper's retraining-free adaptation loop keeps
  its cost profile.
* :class:`IVFPQIndex` — the same coarse cells, but cell members are stored
  as **product-quantized residuals**: each reference is ``n_subspaces``
  uint8 codes into per-subspace k-means codebooks trained on the residual
  ``x - centroid``.  Queries scan codes through asymmetric distance
  computation (per-query lookup tables), which replaces the float GEMM over
  raw vectors with uint8 table gathers and shrinks the per-vector index
  memory ~16-32x.  An optional exact re-rank of the ``rerank`` best ADC
  candidates against the raw vectors restores exact ``(distance, id)``
  rankings over that candidate set, so with a full probe and ``rerank``
  leaving enough margin over ``k`` to cover the ADC error band (the
  default 64 at ``k <= 10``) results match :class:`ExactIndex`
  bit-for-bit.

Compression v2 layers three things on top of the IVF-PQ engine:

* :class:`PackedPQ` — 4-bit codebooks whose codes pack **two per byte**;
  the ADC scan gathers from a per-query uint8-quantized lookup table
  (one scale/bias pair per query) so both the resident codes and the scan
  working set halve again (~64x smaller than float64 at scale).
  ``IVFPQIndex(bits=4)`` (or lower) selects it automatically and also
  slims the side structures (uint16 cell assignments, float16 ADC
  constants, float32 centroids).
* **OPQ** (``opq=True`` on :class:`IVFPQIndex` / the quantizers) — a
  learned orthogonal rotation of the residual space (alternating
  PQ-training and Procrustes steps) applied before subspace splitting, so
  correlated dimensions stop straddling subspace boundaries and the same
  code budget buys lower quantization error.
* **Drift-aware requantization** — the index compares the reconstruction
  error of rows encoded *after* training against the error at train time
  (:meth:`IVFPQIndex.drift_ratio`); :meth:`~IVFPQIndex.retrain_needed`
  flags when the corpus has churned away from the training distribution
  and :meth:`~IVFPQIndex.retrain` re-trains cells + codebooks on a sample
  and re-encodes every row (the serving layer wraps this in a
  zero-downtime ``DeploymentManager.requantize()`` swap).

The IVF-PQ scan dispatches to the fused C kernels of
:mod:`repro.core.kernels` when a system compiler is available (the
``native_kernels`` knob: ``auto``/``on``/``off``): a blocked scan over a
cell-major transposed code layout plus a streaming bounded-heap top-k,
bitwise identical to the NumPy path.  Coarse cells can optionally be
size-capped (``max_cell_fraction``) so one hot cell cannot blow up
per-probe candidate counts on skewed corpora.

Indexes never copy the reference vectors: the store owns the (amortised)
embedding matrix and passes it to ``search``; an index only maintains its
own side structures (centroids, cell assignments, PQ codes).  Ids are row
numbers in the store's matrix, and ``remove`` renumbers them after the
store compacts.

All searches return neighbours ordered by ``(distance, id)`` ascending,
which is exactly the order of a stable argsort over the full distance row —
the property the classifier's tie-breaking relies on.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.spatial.distance import cdist

from repro.obs import tracing as obs_tracing

SUPPORTED_METRICS = ("euclidean", "cosine", "cityblock")


def euclidean_distances(
    queries: np.ndarray, vectors: np.ndarray, vectors_sq: Optional[np.ndarray] = None
) -> np.ndarray:
    """Pairwise euclidean distances via one GEMM (``|q|^2 + |x|^2 - 2 q.x``).

    ~5x faster than ``scipy.cdist`` for embedding-sized matrices because the
    inner products go through BLAS.  Squared distances are clamped at zero
    before the square root to absorb the cancellation the expansion incurs
    for (near-)identical points.
    """
    d2 = squared_euclidean_distances(queries, vectors, vectors_sq)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2, out=d2)


def squared_euclidean_distances(
    queries: np.ndarray, vectors: np.ndarray, vectors_sq: Optional[np.ndarray] = None
) -> np.ndarray:
    """Squared euclidean distances (may be ulp-negative; rank-equivalent).

    Searches rank on these directly and only square-root the selected
    top-k, saving two full passes over the (queries, N) matrix.
    """
    if vectors_sq is None:
        vectors_sq = np.einsum("ij,ij->i", vectors, vectors)
    queries_sq = np.einsum("ij,ij->i", queries, queries)
    d2 = queries @ vectors.T
    d2 *= -2.0
    d2 += queries_sq[:, None]
    d2 += vectors_sq[None, :]
    return d2


def _sqrt_clamped(d2: np.ndarray) -> np.ndarray:
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2, out=d2)


def _metric_distances(
    queries: np.ndarray,
    vectors: np.ndarray,
    metric: str,
    vectors_sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pairwise distances under ``metric``.

    Euclidean rows come back *squared* (rank-equivalent; callers square-root
    only the selected top-k); other metrics are exact ``cdist`` distances.
    """
    if metric == "euclidean":
        return squared_euclidean_distances(queries, vectors, vectors_sq)
    return cdist(queries, vectors, metric=metric)


def top_k_by_distance(distances: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k smallest entries per row, ordered by ``(distance, column)``.

    Uses ``argpartition`` for the common case and falls back to a full
    lexicographic sort only for rows with a tie straddling the k-th
    position, so the result is *exactly* the first ``k`` columns of a
    stable argsort — at partition cost.
    """
    distances = np.asarray(distances)
    n_rows, n_cols = distances.shape
    if k >= n_cols:
        order = np.lexsort((np.broadcast_to(np.arange(n_cols), distances.shape), distances), axis=1)
        sorted_d = np.take_along_axis(distances, order, axis=1)
        return sorted_d, order

    part = np.argpartition(distances, k - 1, axis=1)
    cand = part[:, :k]
    cand_d = np.take_along_axis(distances, cand, axis=1)
    order = np.lexsort((cand, cand_d), axis=1)
    idx = np.take_along_axis(cand, order, axis=1)
    dist = np.take_along_axis(cand_d, order, axis=1)

    # A tie at the boundary means argpartition may have picked the wrong
    # member of the tie set: detected when values equal to the k-th selected
    # distance also exist outside the candidate set.  Those (rare) rows are
    # redone with the exact full sort.
    kth = dist[:, -1:]
    tied = (distances == kth).sum(axis=1) > (cand_d == kth).sum(axis=1)
    if np.any(tied):
        for row in np.flatnonzero(tied):
            full = np.lexsort((np.arange(n_cols), distances[row]))[:k]
            idx[row] = full
            dist[row] = distances[row, full]
    return dist, idx


def _smallest_pairs_subset(seg_d: np.ndarray, seg_i: np.ndarray, n_select: int) -> np.ndarray:
    """Positions of the ``n_select`` smallest ``(distance, id)`` pairs (unordered).

    ``argpartition`` alone picks an *arbitrary* subset of the values tied
    at the selection boundary; resolving the tie set by smallest id makes
    the selected set deterministic under the (distance, id) total order —
    exactly the set the native streaming top-k's bounded max-heap keeps,
    which is what lets kernels-on and kernels-off agree bit for bit.
    """
    part = np.argpartition(seg_d, n_select - 1)[:n_select]
    kth = seg_d[part].max()
    below = np.flatnonzero(seg_d < kth)
    need = n_select - below.size
    tied = np.flatnonzero(seg_d == kth)
    if need < tied.size:
        keep = np.argpartition(seg_i[tied], need - 1)[:need]
        tied = tied[keep]
    return np.concatenate([below, tied])


def _cap_cell_assignments(
    vectors: np.ndarray,
    centroids: np.ndarray,
    assignments: np.ndarray,
    max_fraction: float,
    metric: str = "euclidean",
) -> np.ndarray:
    """Rebalance ``assignments`` so no cell exceeds ``ceil(max_fraction * N)`` rows.

    Over-full cells keep their ``cap`` members nearest the centroid (ties
    by row id); spilled rows move to their nearest cell with room,
    processed in ascending row order, so the result is deterministic.  An
    infeasible cap (``cap * n_cells < N``) relaxes to the balanced floor
    ``ceil(N / n_cells)``.
    """
    n = assignments.shape[0]
    n_cells = centroids.shape[0]
    cap = max(1, int(np.ceil(max_fraction * n)))
    if cap * n_cells < n:
        cap = int(np.ceil(n / n_cells))
    assignments = assignments.astype(np.int64, copy=True)
    counts = np.bincount(assignments, minlength=n_cells)
    over = np.flatnonzero(counts > cap)
    if over.size == 0:
        return assignments
    spilled = []
    for cell in over:
        members = np.flatnonzero(assignments == cell)
        d = _metric_distances(vectors[members], centroids[cell : cell + 1], metric)[:, 0]
        keep = np.lexsort((members, d))
        spilled.append(members[keep[cap:]])
        counts[cell] = cap
    spilled = np.sort(np.concatenate(spilled))
    for start in range(0, spilled.size, 4096):
        block = spilled[start : start + 4096]
        d_block = _metric_distances(vectors[block], centroids, metric)
        order_block = np.argsort(d_block, axis=1, kind="stable")
        for row_pos, row in enumerate(block):
            for cell in order_block[row_pos]:
                if counts[cell] < cap:
                    assignments[row] = int(cell)
                    counts[cell] += 1
                    break
    return assignments


def _cap_added_assignments(
    new_rows: np.ndarray,
    centroids: np.ndarray,
    counts: np.ndarray,
    assignments: np.ndarray,
    cap: int,
    metric: str = "euclidean",
) -> np.ndarray:
    """Redirect appended rows whose nearest cell is at capacity to their
    nearest cell with room (sequential in row order, so deterministic).

    ``counts`` holds the pre-existing per-cell sizes and is updated in
    place.  When every cell is full the nearest assignment stands — the
    cap is best-effort at add time and restored at the next rebuild.
    """
    assignments = assignments.astype(np.int64, copy=True)
    for pos in range(assignments.shape[0]):
        cell = int(assignments[pos])
        if counts[cell] < cap:
            counts[cell] += 1
            continue
        d = _metric_distances(new_rows[pos : pos + 1], centroids, metric)[0]
        for candidate in np.argsort(d, kind="stable"):
            if counts[candidate] < cap:
                assignments[pos] = int(candidate)
                counts[candidate] += 1
                break
        else:
            counts[cell] += 1
    return assignments


class NearestNeighbourIndex:
    """API every reference-store index implements.

    ``vectors`` is always the store's *current* embedding matrix (the first
    ``N`` rows of its buffer); the index must treat row numbers as ids.
    """

    metric: str = "euclidean"

    def rebuild(self, vectors: np.ndarray) -> None:
        """(Re)build side structures from scratch for ``vectors``."""
        raise NotImplementedError

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        """Account for ``n_new`` rows appended at the tail of ``vectors``."""
        raise NotImplementedError

    def remove(self, kept_mask: np.ndarray) -> None:
        """Account for row removal; ``kept_mask`` is over the *old* ids and
        surviving rows are renumbered in mask order (store compaction)."""
        raise NotImplementedError

    def search(self, vectors: np.ndarray, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, ids)`` of the k nearest rows, (distance, id)-ordered."""
        raise NotImplementedError

    def spec(self) -> Dict[str, object]:
        """JSON-serialisable description, for deployment persistence."""
        raise NotImplementedError

    def state(self) -> Dict[str, np.ndarray]:
        """Trained side structures as named arrays (empty if stateless).

        Together with :meth:`spec` this fully reconstructs the index without
        retraining: deployments persist the arrays next to the embeddings
        and shared-memory workers attach them instead of re-running k-means.
        """
        return {}

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state` arrays into a fresh index built from spec."""
        if state:
            raise ValueError(f"{type(self).__name__} holds no trained state")

    def memory_bytes(self) -> int:
        """Resident bytes of the index's own side structures."""
        return 0

    @property
    def needs_vectors(self) -> bool:
        """Whether ``search`` must be handed the raw embedding matrix.

        ``False`` lets the serving layer publish only :meth:`state` (codes +
        codebooks) into shared memory instead of the raw float matrix.
        """
        return True

    def kernels_active(self) -> bool:
        """Whether searches dispatch to the fused native C kernels.

        ``False`` for every pure-NumPy engine; :class:`IVFPQIndex`
        reports its live dispatch decision.  Telemetry (the per-shard
        ``native=yes|no`` scan histograms) reads this rather than the
        process-global kernel mode, which an index-level knob can
        override.
        """
        return False

    def drift_ratio(self) -> float:
        """How far rows added since training drifted from the training
        distribution (1.0 = no drift signal; quantizing indexes override)."""
        return 1.0

    def retrain_needed(self, *, threshold: float = 1.5, min_samples: int = 64) -> bool:
        """Whether accumulated drift warrants re-training the quantizer.

        Always ``False`` for indexes without trained structures; quantizing
        indexes flag once at least ``min_samples`` post-training rows have
        drifted the reconstruction error past ``threshold`` times the
        train-time baseline.
        """
        return False

    def retrain(self, vectors: np.ndarray, *, sample_size: Optional[int] = None) -> None:
        """Re-train quantizer structures on (a sample of) ``vectors`` and
        re-encode every row, resetting the drift statistics.

        Stateless indexes just :meth:`rebuild`.  ``sample_size`` caps the
        number of training points (the full matrix is still re-encoded).
        """
        self.rebuild(vectors)


class ExactIndex(NearestNeighbourIndex):
    """Brute-force search; linear in N but exact and metric-agnostic."""

    def __init__(self, metric: str = "euclidean") -> None:
        if metric not in SUPPORTED_METRICS:
            raise ValueError(f"unsupported metric {metric!r}; expected one of {SUPPORTED_METRICS}")
        self.metric = metric

    def rebuild(self, vectors: np.ndarray) -> None:
        """Nothing cached: the exact scan reads the store directly."""

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        """No side structures to update."""

    def remove(self, kept_mask: np.ndarray) -> None:
        """No side structures to compact."""

    def search(self, vectors: np.ndarray, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact k nearest rows by brute force, (distance, id)-ordered."""
        if vectors.shape[0] == 0:
            raise ValueError("cannot search an empty index")
        k = min(int(k), vectors.shape[0])
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self.metric == "euclidean":
            # Rank on squared distances, square-root only the k selected.
            dist, idx = top_k_by_distance(squared_euclidean_distances(queries, vectors), k)
            return _sqrt_clamped(dist), idx
        distances = cdist(queries, vectors, metric=self.metric)
        return top_k_by_distance(distances, k)

    def spec(self) -> Dict[str, object]:
        """JSON-serialisable description (kind + metric)."""
        return {"kind": "exact", "metric": self.metric}


def _kmeans_pp_seed(
    vectors: np.ndarray, n_cells: int, metric: str, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: D^2 sampling keeps initial centres spread out.

    Random initialisation on clustered data routinely drops several seeds
    into one dense cluster, leaving skewed cells that IVF probing then pays
    for on every query.  Seeding runs on a subsample (classic practice — the
    seeds only need to cover the density, not every point), so its cost
    stays ~``n_cells`` small distance passes.
    """
    n = vectors.shape[0]
    sample_size = min(n, max(n_cells * 32, 1024))
    sample = vectors if sample_size == n else vectors[rng.choice(n, size=sample_size, replace=False)]
    centroids = np.empty((n_cells, vectors.shape[1]), dtype=vectors.dtype)
    centroids[0] = sample[rng.integers(sample.shape[0])]
    # Squared distance to the nearest chosen seed (euclidean rows already
    # come back squared from the metric helper; square the others).
    closest = _metric_distances(sample, centroids[:1], metric)[:, 0]
    if metric != "euclidean":
        closest = closest**2
    np.maximum(closest, 0.0, out=closest)
    for position in range(1, n_cells):
        total = float(closest.sum())
        if not total > 0.0:  # all mass covered; fall back to uniform picks
            centroids[position] = sample[rng.integers(sample.shape[0])]
            continue
        pick = int(np.searchsorted(np.cumsum(closest), rng.uniform(0.0, total)))
        pick = min(pick, sample.shape[0] - 1)
        centroids[position] = sample[pick]
        fresh = _metric_distances(sample, centroids[position : position + 1], metric)[:, 0]
        if metric != "euclidean":
            fresh = fresh**2
        np.maximum(fresh, 0.0, out=fresh)
        np.minimum(closest, fresh, out=closest)
    return centroids


def _kmeans(
    vectors: np.ndarray,
    n_cells: int,
    *,
    metric: str = "euclidean",
    n_iter: int = 10,
    seed: int = 0,
    init: str = "kmeans++",
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means under ``metric``; returns ``(centroids, assignments)``.

    Deliberately small: the coarse quantizer only needs rough cells, not a
    converged clustering, and this keeps the index dependency-free.  Seeds
    come from k-means++ D^2 sampling (``init="random"`` restores uniform
    picks, kept for balance comparisons); empty cells are re-seeded on the
    point farthest from its centroid during Lloyd updates.  Cell updates use
    the metric's natural centre: the mean for euclidean and cosine (the mean
    points in the mean direction, which is all cosine assignment looks at),
    the coordinate-wise median for cityblock (the L1 minimiser).
    """
    n = vectors.shape[0]
    rng = np.random.default_rng(seed)
    if init == "kmeans++":
        centroids = _kmeans_pp_seed(vectors, n_cells, metric, rng).copy()
    elif init == "random":
        centroids = vectors[rng.choice(n, size=n_cells, replace=False)].copy()
    else:
        raise ValueError(f"unknown k-means init {init!r}; expected 'kmeans++' or 'random'")
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        distances = _metric_distances(vectors, centroids, metric)
        assignments = np.argmin(distances, axis=1)
        if metric == "cityblock":
            # Coordinate-wise median (the L1 minimiser); per-cell loop is
            # fine at the small cell counts this metric is used with.
            for cell in range(n_cells):
                members = assignments == cell
                if members.any():
                    centroids[cell] = np.median(vectors[members], axis=0)
        else:
            # Mean update without a per-cell loop: group rows by cell with
            # one stable sort and sum each contiguous run via reduceat, so
            # the update stays O(N log N) even at thousands of cells.
            order = np.argsort(assignments, kind="stable")
            sorted_cells = assignments[order]
            starts = np.searchsorted(sorted_cells, np.arange(n_cells))
            counts = np.diff(np.append(starts, n))
            occupied = counts > 0
            sums = np.add.reduceat(vectors[order], starts[occupied], axis=0)
            centroids[occupied] = sums / counts[occupied, None]
            if metric == "cosine":
                # Cancelled-out means have no direction; keep a member.
                degenerate = occupied & ~(np.linalg.norm(centroids.T, axis=0) > 0.0)
                for cell in np.flatnonzero(degenerate):
                    centroids[cell] = vectors[assignments == cell][0]
        empty = np.flatnonzero(
            np.bincount(assignments, minlength=n_cells) == 0
        )
        if empty.size:
            # Re-seed empty cells on the points farthest from their centroid.
            spread = np.take_along_axis(distances, assignments[:, None], axis=1)[:, 0]
            farthest = np.argsort(spread)[::-1]
            centroids[empty] = vectors[farthest[: empty.size]]
    assignments = np.argmin(_metric_distances(vectors, centroids, metric), axis=1)
    return centroids, assignments


class CoarseQuantizedIndex(NearestNeighbourIndex):
    """IVF-style index: k-means cells, query probes the ``n_probe`` nearest.

    Parameters
    ----------
    n_cells:
        Number of coarse cells; ``None`` picks ``ceil(sqrt(N))`` when the
        quantizer is (re)trained.
    n_probe:
        How many cells each query scans.  ``n_probe >= n_cells`` degrades
        gracefully to an exact search over all cells.
    min_train_size:
        Below this store size the index answers exactly (brute force) and
        defers k-means until enough references exist — small stores gain
        nothing from quantization.
    max_cell_fraction:
        Optional cap on any one cell's share of the corpus: after k-means
        assignment (and on every ``add``) no cell keeps more than
        ``ceil(max_cell_fraction * N)`` members — overflow rows spill to
        their nearest cell with room — so a hot cluster cannot blow up
        per-probe candidate counts on skewed corpora.

    ``add`` assigns new vectors to their nearest *existing* centroid and
    ``remove`` drops assignments, so adaptation (replace/remove/add of a
    class) never re-runs k-means; call :meth:`refit` to re-train cells
    explicitly if the corpus has drifted far from the original clustering.

    All of :data:`SUPPORTED_METRICS` are accepted: coarse assignment, probe
    selection and the candidate scan all run under the configured metric
    (euclidean keeps its squared-distance BLAS fast path; cosine and
    cityblock go through ``cdist``), and k-means updates cells with the
    metric's natural centre.
    """

    def __init__(
        self,
        n_cells: Optional[int] = None,
        n_probe: int = 8,
        *,
        metric: str = "euclidean",
        min_train_size: int = 256,
        train_iters: int = 10,
        seed: int = 0,
        max_cell_fraction: Optional[float] = None,
    ) -> None:
        if metric not in SUPPORTED_METRICS:
            raise ValueError(f"unsupported metric {metric!r}; expected one of {SUPPORTED_METRICS}")
        if n_cells is not None and n_cells <= 0:
            raise ValueError("n_cells must be positive")
        if n_probe <= 0:
            raise ValueError("n_probe must be positive")
        if max_cell_fraction is not None and not 0.0 < float(max_cell_fraction) <= 1.0:
            raise ValueError("max_cell_fraction must be in (0, 1]")
        self.metric = metric
        self.n_cells = n_cells
        self.n_probe = int(n_probe)
        self.min_train_size = int(min_train_size)
        self.train_iters = int(train_iters)
        self.seed = int(seed)
        self.max_cell_fraction = None if max_cell_fraction is None else float(max_cell_fraction)
        self._centroids: Optional[np.ndarray] = None
        self._assignments: np.ndarray = np.empty(0, dtype=np.int64)
        self._cells: Optional[list] = None  # lazy id lists per cell

    # ---------------------------------------------------------------- state
    @property
    def trained(self) -> bool:
        """Whether k-means cells exist (small stores defer training)."""
        return self._centroids is not None

    def _resolve_n_cells(self, n: int) -> int:
        if self.n_cells is not None:
            return min(self.n_cells, n)
        return max(1, int(np.ceil(np.sqrt(n))))

    def _cell_lists(self) -> list:
        if self._cells is None:
            assignments = self._assignments
            order = np.argsort(assignments, kind="stable")
            sorted_cells = assignments[order]
            boundaries = np.searchsorted(sorted_cells, np.arange(self._centroids.shape[0] + 1))
            self._cells = [
                order[boundaries[c] : boundaries[c + 1]] for c in range(self._centroids.shape[0])
            ]
        return self._cells

    # ------------------------------------------------------------- mutation
    def rebuild(self, vectors: np.ndarray) -> None:
        """(Re)run k-means over ``vectors`` (or defer below min_train_size)."""
        n = vectors.shape[0]
        if n < self.min_train_size:
            self._centroids = None
            self._assignments = np.empty(0, dtype=np.int64)
            self._cells = None
            return
        n_cells = self._resolve_n_cells(n)
        vectors = np.asarray(vectors, dtype=np.float64)
        self._centroids, self._assignments = _kmeans(
            vectors,
            n_cells,
            metric=self.metric,
            n_iter=self.train_iters,
            seed=self.seed,
        )
        if self.max_cell_fraction is not None:
            self._assignments = _cap_cell_assignments(
                vectors, self._centroids, self._assignments, self.max_cell_fraction, self.metric
            )
        self._cells = None

    def refit(self, vectors: np.ndarray) -> None:
        """Explicitly re-train the coarse quantizer (optional maintenance)."""
        self.rebuild(vectors)

    def retrain(self, vectors: np.ndarray, *, sample_size: Optional[int] = None) -> None:
        """Re-run k-means on (a sample of) ``vectors``; every row still
        gets an exact cell assignment (honouring the base contract's
        training cap, which plain :meth:`rebuild` does not have)."""
        n = vectors.shape[0]
        if sample_size is not None and sample_size <= 0:
            raise ValueError("sample_size must be positive")
        if sample_size is None or n <= sample_size or n < self.min_train_size:
            self.rebuild(vectors)
            return
        vectors = np.asarray(vectors, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        sample = vectors[rng.choice(n, size=int(sample_size), replace=False)]
        n_cells = min(self._resolve_n_cells(n), sample.shape[0])
        self._centroids, _ = _kmeans(
            sample, n_cells, metric=self.metric, n_iter=self.train_iters, seed=self.seed
        )
        self._assignments = np.argmin(
            _metric_distances(vectors, self._centroids, self.metric), axis=1
        )
        if self.max_cell_fraction is not None:
            self._assignments = _cap_cell_assignments(
                vectors, self._centroids, self._assignments, self.max_cell_fraction, self.metric
            )
        self._cells = None

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        """Assign appended rows to their nearest existing cell (no k-means;
        honouring ``max_cell_fraction`` when set)."""
        n = vectors.shape[0]
        if not self.trained:
            if n >= self.min_train_size:
                self.rebuild(vectors)
            return
        new_rows = vectors[n - n_new :]
        assignments = np.argmin(_metric_distances(new_rows, self._centroids, self.metric), axis=1)
        if self.max_cell_fraction is not None:
            cap = max(1, int(np.ceil(self.max_cell_fraction * n)))
            counts = np.bincount(self._assignments, minlength=self._centroids.shape[0])
            assignments = _cap_added_assignments(
                np.asarray(new_rows, dtype=np.float64),
                self._centroids,
                counts,
                assignments,
                cap,
                self.metric,
            )
        self._assignments = np.concatenate([self._assignments, assignments])
        self._cells = None

    def remove(self, kept_mask: np.ndarray) -> None:
        """Drop removed rows' assignments (store compaction order)."""
        if not self.trained:
            return
        self._assignments = self._assignments[kept_mask]
        self._cells = None

    # --------------------------------------------------------------- search
    def search(
        self, vectors: np.ndarray, queries: np.ndarray, k: int, *, chunk_size: int = 512
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Probe the ``n_probe`` nearest cells per query and scan their
        members; short probes (fewer than k members) fall back to exact."""
        if vectors.shape[0] == 0:
            raise ValueError("cannot search an empty index")
        k = min(int(k), vectors.shape[0])
        if not self.trained:
            return ExactIndex(self.metric).search(vectors, queries, k)

        vectors = np.asarray(vectors, dtype=np.float64)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_cells = self._centroids.shape[0]
        n_probe = min(self.n_probe, n_cells)
        cells = self._cell_lists()
        cell_sizes = np.array([len(cell) for cell in cells], dtype=np.int64)
        euclidean = self.metric == "euclidean"
        vectors_sq = np.einsum("ij,ij->i", vectors, vectors) if euclidean else None

        out_d = np.empty((queries.shape[0], k))
        out_i = np.empty((queries.shape[0], k), dtype=np.int64)
        for start in range(0, queries.shape[0], chunk_size):
            chunk = queries[start : start + chunk_size]
            n_chunk = chunk.shape[0]
            centroid_d = _metric_distances(chunk, self._centroids, self.metric)
            if n_probe >= n_cells:
                probe = np.broadcast_to(np.arange(n_cells), centroid_d.shape).copy()
            else:
                probe = np.argpartition(centroid_d, n_probe - 1, axis=1)[:, :n_probe]

            # Each query's candidate row is the concatenation of its probed
            # cells; distances are filled cell-major so every probed cell
            # costs one (queries-probing-it, cell-members) cdist GEMM
            # instead of a per-query gather.
            sizes = cell_sizes[probe]  # (n_chunk, n_probe)
            offsets = np.concatenate(
                [np.zeros((n_chunk, 1), dtype=np.int64), np.cumsum(sizes, axis=1)[:, :-1]], axis=1
            )
            width = max(int(sizes.sum(axis=1).max()), k)
            cand = np.full((n_chunk, width), -1, dtype=np.int64)
            distances = np.full((n_chunk, width), np.inf)

            flat_queries = np.repeat(np.arange(n_chunk), n_probe)
            flat_cells = probe.ravel()
            flat_offsets = offsets.ravel()
            grouping = np.argsort(flat_cells, kind="stable")
            boundaries = np.searchsorted(flat_cells[grouping], np.arange(n_cells + 1))
            for cell in np.unique(flat_cells):
                members = cells[cell]
                if members.size == 0:
                    continue
                group = grouping[boundaries[cell] : boundaries[cell + 1]]
                probing = flat_queries[group]
                cols = flat_offsets[group][:, None] + np.arange(members.size)[None, :]
                cand[probing[:, None], cols] = members
                if euclidean:
                    block = squared_euclidean_distances(
                        chunk[probing], vectors[members], vectors_sq[members]
                    )
                else:
                    block = cdist(chunk[probing], vectors[members], metric=self.metric)
                distances[probing[:, None], cols] = block
            cd, ci = top_k_by_distance(distances, k)
            chunk_d = _sqrt_clamped(cd) if euclidean else cd
            chunk_i = np.take_along_axis(cand, ci, axis=1)
            # top_k broke ties by *candidate column*, which follows the
            # arbitrary probe layout; restore the documented (distance, id)
            # order over the selected k.
            tie_order = np.lexsort((chunk_i, chunk_d), axis=1)
            chunk_d = np.take_along_axis(chunk_d, tie_order, axis=1)
            chunk_i = np.take_along_axis(chunk_i, tie_order, axis=1)
            # A query whose probed cells hold fewer than k members would
            # surface padding ids; answer those rows exactly instead.
            short = np.flatnonzero((chunk_i < 0).any(axis=1))
            if short.size:
                fd, fi = ExactIndex(self.metric).search(vectors, chunk[short], k)
                chunk_d[short] = fd
                chunk_i[short] = fi
            out_d[start : start + chunk.shape[0]] = chunk_d
            out_i[start : start + chunk.shape[0]] = chunk_i
        return out_d, out_i

    def spec(self) -> Dict[str, object]:
        """JSON-serialisable configuration (cells, probes, metric, seed)."""
        return {
            "kind": "ivf",
            "metric": self.metric,
            "n_cells": self.n_cells,
            "n_probe": self.n_probe,
            "min_train_size": self.min_train_size,
            "train_iters": self.train_iters,
            "seed": self.seed,
            "max_cell_fraction": self.max_cell_fraction,
        }

    def state(self) -> Dict[str, np.ndarray]:
        """Centroids + assignments (empty until trained); see the base
        contract for how deployments and shm workers use this."""
        if not self.trained:
            return {}
        return {"centroids": self._centroids, "assignments": self._assignments}

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        """Adopt trained cells without re-running k-means (state from a
        different index kind raises ``ValueError`` -> caller rebuilds)."""
        if not state:
            self._centroids = None
            self._assignments = np.empty(0, dtype=np.int64)
            self._cells = None
            return
        if set(state) != {"centroids", "assignments"}:
            # e.g. an IVF-PQ archive loaded into an IVF index: the extra
            # (or missing) arrays mean this state belongs to another kind;
            # refuse so the caller falls back to a clean rebuild.
            raise ValueError(
                f"state keys {sorted(state)} do not match a CoarseQuantizedIndex"
            )
        self._centroids = np.asarray(state["centroids"], dtype=np.float64)
        self._assignments = np.asarray(state["assignments"], dtype=np.int64)
        self._cells = None

    def memory_bytes(self) -> int:
        """Resident bytes of centroids + per-row cell assignments."""
        if not self.trained:
            return 0
        return int(self._centroids.nbytes + self._assignments.nbytes)


class ProductQuantizer:
    """Per-subspace k-means codebooks over residual vectors, uint8 codes.

    The embedding dimension is split into ``n_subspaces`` contiguous slices
    (sizes differ by at most one when it does not divide evenly) and each
    slice gets its own ``2**bits``-entry codebook trained with k-means++ on
    the residual sub-vectors.  A reference is then ``n_subspaces`` uint8
    codes — 8 bytes instead of 512 for a float64 64-dim embedding — and
    distances against a query decompose into per-subspace table lookups.

    ``opq=True`` additionally learns an **orthogonal rotation** of the
    input space (optimized product quantization): :meth:`fit` alternates
    codebook training with a Procrustes solve of ``min_R |XR - decode|``,
    so correlated dimensions stop straddling subspace boundaries.  The
    rotation is entirely internal — :meth:`encode` rotates on the way in,
    :meth:`decode` rotates back, and :meth:`query_tables` rotates the
    query — so callers (and the ADC decomposition) never see rotated
    coordinates.
    """

    #: Whether stored codes pack two per byte (:class:`PackedPQ` overrides).
    packed = False

    def __init__(
        self,
        n_subspaces: int = 8,
        bits: int = 8,
        *,
        opq: bool = False,
        opq_iters: int = 4,
        train_iters: int = 10,
        seed: int = 0,
        max_train_points: int = 32768,
    ) -> None:
        """``n_subspaces`` codes per vector, ``2**bits`` entries per codebook;
        see the class docstring for ``opq``.  ``max_train_points`` caps the
        training subsample (encoding always covers every row)."""
        if n_subspaces <= 0:
            raise ValueError("n_subspaces must be positive")
        if not 1 <= bits <= 8:
            raise ValueError("bits must be in [1, 8] (codes are stored as uint8)")
        if opq_iters <= 0:
            raise ValueError("opq_iters must be positive")
        self.n_subspaces = int(n_subspaces)
        self.bits = int(bits)
        self.opq = bool(opq)
        self.opq_iters = int(opq_iters)
        self.train_iters = int(train_iters)
        self.seed = int(seed)
        self.max_train_points = int(max_train_points)
        self._codebooks: Optional[np.ndarray] = None  # (m, k_sub, max_sub_dim)
        self._sub_dims: Optional[np.ndarray] = None
        self._splits: Optional[np.ndarray] = None  # subspace boundaries, len m+1
        self._rotation: Optional[np.ndarray] = None  # (dim, dim) orthogonal, opq only

    @property
    def trained(self) -> bool:
        """Whether :meth:`fit` (or a state adoption) has run."""
        return self._codebooks is not None

    @property
    def n_centroids(self) -> int:
        """Codebook entries per subspace (<= 2**bits for tiny train sets)."""
        if self._codebooks is None:
            raise RuntimeError("the product quantizer has not been trained")
        return self._codebooks.shape[1]

    @property
    def code_width(self) -> int:
        """Bytes per stored code row (``n_subspaces`` here; packed halves it)."""
        return self.n_subspaces

    @property
    def rotation(self) -> Optional[np.ndarray]:
        """The learned OPQ rotation (``None`` unless ``opq`` and trained)."""
        return self._rotation

    def _boundaries(self, dim: int) -> np.ndarray:
        if self.n_subspaces > dim:
            raise ValueError(
                f"n_subspaces={self.n_subspaces} exceeds the embedding dimension {dim}"
            )
        sizes = np.full(self.n_subspaces, dim // self.n_subspaces, dtype=np.int64)
        sizes[: dim % self.n_subspaces] += 1
        return np.concatenate([[0], np.cumsum(sizes)])

    def _rotate(self, vectors: np.ndarray) -> np.ndarray:
        return vectors if self._rotation is None else vectors @ self._rotation

    def _train_codebooks(self, vectors: np.ndarray) -> None:
        """One k-means codebook per subspace of (already-rotated) vectors."""
        n = vectors.shape[0]
        k_sub = min(2**self.bits, n)
        max_sub = int(self._sub_dims.max())
        # One dense (m, k_sub, max_sub_dim) block; ragged tails stay zero so
        # the whole thing round-trips through a single npz array.
        self._codebooks = np.zeros((self.n_subspaces, k_sub, max_sub), dtype=np.float64)
        for j in range(self.n_subspaces):
            sub = vectors[:, self._splits[j] : self._splits[j + 1]]
            centroids, _ = _kmeans(
                sub, k_sub, metric="euclidean", n_iter=self.train_iters, seed=self.seed + j
            )
            self._codebooks[j, :, : self._sub_dims[j]] = centroids

    def _encode_rotated(self, rotated: np.ndarray) -> np.ndarray:
        codes = np.empty((rotated.shape[0], self.n_subspaces), dtype=np.uint8)
        for j in range(self.n_subspaces):
            sub = rotated[:, self._splits[j] : self._splits[j + 1]]
            book = self._codebooks[j, :, : self._sub_dims[j]]
            codes[:, j] = np.argmin(squared_euclidean_distances(sub, book), axis=1)
        return codes

    def _decode_rotated(self, codes: np.ndarray) -> np.ndarray:
        out = np.empty((codes.shape[0], int(self._splits[-1])), dtype=np.float64)
        for j in range(self.n_subspaces):
            book = self._codebooks[j, :, : self._sub_dims[j]]
            out[:, self._splits[j] : self._splits[j + 1]] = book[codes[:, j]]
        return out

    def fit(self, vectors: np.ndarray, *, rng: Optional[np.random.Generator] = None) -> None:
        """Train one codebook per subspace on (a subsample of) ``vectors``.

        With ``opq`` the training loop alternates codebook fitting with the
        orthogonal-Procrustes rotation update (``R = UV^T`` from the SVD of
        ``X^T decode``), ``opq_iters`` rounds, then fits final codebooks in
        the rotated space.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        n, dim = vectors.shape
        if n == 0:
            raise ValueError("cannot train a product quantizer on no vectors")
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        if n > self.max_train_points:
            vectors = vectors[rng.choice(n, size=self.max_train_points, replace=False)]
            n = vectors.shape[0]
        self._splits = self._boundaries(dim)
        self._sub_dims = np.diff(self._splits)
        self._rotation = None
        if not self.opq:
            self._train_codebooks(vectors)
            return
        rotation = np.eye(dim)
        for _ in range(self.opq_iters):
            rotated = vectors @ rotation
            self._train_codebooks(rotated)
            decoded = self._decode_rotated(self._encode_rotated(rotated))
            # Procrustes: the orthogonal R minimising |XR - decoded|_F.
            u, _, vt = np.linalg.svd(vectors.T @ decoded)
            rotation = u @ vt
        self._train_codebooks(vectors @ rotation)
        self._rotation = rotation

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest-codebook-entry codes, shape ``(n, n_subspaces)`` uint8."""
        if self._codebooks is None:
            raise RuntimeError("the product quantizer has not been trained")
        return self._encode_rotated(self._rotate(np.asarray(vectors, dtype=np.float64)))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Approximate vectors back from codes, in the *original* space
        (codebook entry per slice, un-rotated when OPQ is on)."""
        if self._codebooks is None:
            raise RuntimeError("the product quantizer has not been trained")
        out = self._decode_rotated(np.asarray(codes))
        return out if self._rotation is None else out @ self._rotation.T

    def query_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query inner products with every codebook entry, ``(n, m, k_sub)``.

        This is the only per-query cost of ADC that touches the embedding
        dimension; everything cell-dependent is precomputed at train time.
        Queries are rotated first when OPQ is on, so
        ``sum_j table[q, j, code_j] == q . decode(code)`` holds either way.
        """
        if self._codebooks is None:
            raise RuntimeError("the product quantizer has not been trained")
        queries = self._rotate(np.asarray(queries, dtype=np.float64))
        tables = np.empty((queries.shape[0], self.n_subspaces, self.n_centroids))
        for j in range(self.n_subspaces):
            sub = queries[:, self._splits[j] : self._splits[j + 1]]
            tables[:, j, :] = sub @ self._codebooks[j, :, : self._sub_dims[j]].T
        return tables

    def quantized_query_tables(
        self, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lut_u8, scale, bias)``: the float LUT affinely quantized per query.

        ``lut_u8`` is ``(n, m, k_sub)`` uint8 with
        ``float_table ~= scale[q] * lut_u8[q] + bias[q]``, so an ADC sum
        over ``m`` gathers reconstructs as ``scale[q] * sum + m * bias[q]``.
        Both engines scan this table: the uint32 gather-sum is an
        order-independent integer reduction, which is what lets the native
        kernels and the NumPy scan agree bit for bit (a float32 gather-sum
        would pin the result to NumPy's pairwise-summation order).  The
        quantization error is bounded by ``n_subspaces * scale / 2`` per
        distance and only perturbs *candidate selection* — with ``rerank``
        on, final rankings are re-scored exactly.
        """
        tables = self.query_tables(queries)
        flat = tables.reshape(tables.shape[0], -1)
        bias = flat.min(axis=1)
        scale = (flat.max(axis=1) - bias) / 255.0
        scale[scale == 0.0] = 1.0  # constant table: any scale reconstructs
        lut = np.rint((tables - bias[:, None, None]) / scale[:, None, None])
        return (
            np.clip(lut, 0, 255).astype(np.uint8),
            scale.astype(np.float32),
            bias.astype(np.float32),
        )

    def memory_bytes(self) -> int:
        """Resident bytes of codebooks (and the OPQ rotation when learned)."""
        total = int(self._codebooks.nbytes) if self._codebooks is not None else 0
        if self._rotation is not None:
            total += int(self._rotation.nbytes)
        return total


class PackedPQ(ProductQuantizer):
    """4-bit product quantizer: two codes per byte, uint8-quantized LUTs.

    The compression-v2 quantizer.  Codebooks hold at most 16 entries
    (``bits <= 4``), so a stored code row is ``ceil(n_subspaces / 2)``
    bytes: subspace ``j`` lives in byte ``j // 2`` — even ``j`` in the low
    nibble, odd ``j`` in the high nibble.  The ADC scan gathers from a
    **uint8-quantized** per-query lookup table (:meth:`quantized_query_tables`
    maps the float table affinely onto [0, 255] with one scale/bias pair
    per query), so the scan's working set shrinks 4x on top of the 2x from
    packing.  The quantization error this introduces is bounded by
    ``n_subspaces * scale / 2`` per distance and only perturbs *candidate
    selection* — with ``rerank`` on, final rankings are re-scored exactly.

    Everything else (training, OPQ, the :meth:`encode`/:meth:`decode`
    contract in unpacked per-subspace codes) is inherited.
    """

    packed = True

    def __init__(
        self,
        n_subspaces: int = 8,
        bits: int = 4,
        *,
        opq: bool = False,
        opq_iters: int = 4,
        train_iters: int = 10,
        seed: int = 0,
        max_train_points: int = 32768,
    ) -> None:
        """Same knobs as :class:`ProductQuantizer` with ``bits`` capped at 4
        (two codes must share a byte)."""
        if not 1 <= bits <= 4:
            raise ValueError("PackedPQ stores two codes per byte; bits must be in [1, 4]")
        super().__init__(
            n_subspaces,
            bits,
            opq=opq,
            opq_iters=opq_iters,
            train_iters=train_iters,
            seed=seed,
            max_train_points=max_train_points,
        )

    @property
    def code_width(self) -> int:
        """Bytes per stored code row: two 4-bit codes share one byte."""
        return (self.n_subspaces + 1) // 2

    def pack_codes(self, codes: np.ndarray) -> np.ndarray:
        """``(n, n_subspaces)`` nibble codes -> ``(n, code_width)`` packed."""
        codes = np.asarray(codes, dtype=np.uint8)
        packed = np.zeros((codes.shape[0], self.code_width), dtype=np.uint8)
        packed |= codes[:, 0::2]
        odd = codes[:, 1::2]
        packed[:, : odd.shape[1]] |= odd << 4
        return packed

    def unpack_codes(self, packed: np.ndarray) -> np.ndarray:
        """``(n, code_width)`` packed rows -> ``(n, n_subspaces)`` codes."""
        packed = np.asarray(packed, dtype=np.uint8)
        codes = np.empty((packed.shape[0], self.n_subspaces), dtype=np.uint8)
        codes[:, 0::2] = packed & 0x0F
        codes[:, 1::2] = (packed >> 4)[:, : self.n_subspaces // 2]
        return codes


class IVFPQIndex(NearestNeighbourIndex):
    """IVF coarse cells whose members are product-quantized residuals.

    Search is asymmetric distance computation (ADC) over the probed cells'
    code lists.  With ``x ~ c + e`` (coarse centroid plus decoded residual)
    the squared distance decomposes as::

        d2(q, x) = |q - c|^2 + sum_j [ |e_j|^2 + 2 c_j.e_j ] - 2 sum_j q_j.e_j

    The middle term depends only on the *reference row* (its cell and codes
    are fixed), so it collapses to one precomputed float per reference
    (``member_const``); the last term is one small GEMM per query batch
    (:meth:`ProductQuantizer.query_tables`); scanning the probed candidates
    is then ``m`` uint8 table gathers per member — flat across every probed
    cell at once, no per-cell inner loop — instead of a float GEMM over raw
    vectors.  ``rerank > 0`` re-scores the
    ``max(k, rerank)`` best ADC candidates against the raw vectors, which
    restores exact ``(distance, id)`` ranking *over that candidate set*
    (tie-break semantics included): results match :class:`ExactIndex`
    bit-for-bit exactly when the true top-k sit inside the re-ranked pool
    — guaranteed by margin rather than by construction, so keep ``rerank``
    several times ``k`` (with ``n_probe >= n_cells`` and the default
    ``rerank=64`` at ``k <= 10``, the agreement is exact on clustered
    corpora; see the tests).  With ``rerank == 0`` the index never touches raw vectors
    after training, which is what lets the serving layer publish only codes
    and codebooks (~16-32x smaller) into shared memory.

    ``add`` assigns new vectors to their nearest existing centroid and
    encodes their residuals with the trained codebooks; ``remove`` compacts
    the code buffers.  Codes and assignments live in amortised-doubling
    buffers mirroring the reference store's growth scheme, so adaptation
    churn stays O(changed rows).

    **Compression v2.**  ``bits <= 4`` selects the :class:`PackedPQ`
    quantizer: codes pack two per byte, the ADC scan gathers from a
    per-query uint8-quantized LUT, and the side structures slim down too
    (uint16 cell assignments — ``n_cells`` is capped at 65535 — float16 ADC
    member constants and float32 coarse centroids; constants are clipped
    into float16 range, so embeddings with ADC magnitudes beyond ~6e4 —
    far outside any normalised or tanh-bounded embedding — degrade
    candidate selection gracefully, recoverable by a deeper ``rerank``,
    instead of corrupting it).  ``opq=True`` trains the
    quantizer behind an OPQ rotation (either bit width).  Rows encoded
    after training feed the drift statistics behind
    :meth:`drift_ratio` / :meth:`retrain_needed` / :meth:`retrain`.
    """

    _COARSE_TRAIN_CAP = 131072  # k-means sample cap; assignment stays exact

    def __init__(
        self,
        n_cells: Optional[int] = None,
        n_probe: int = 16,
        *,
        n_subspaces: int = 8,
        bits: int = 8,
        opq: bool = False,
        rerank: int = 64,
        metric: str = "euclidean",
        min_train_size: int = 256,
        train_iters: int = 10,
        seed: int = 0,
        native_kernels: str = "auto",
        max_cell_fraction: Optional[float] = None,
    ) -> None:
        """See the class docstring; ``bits <= 4`` switches to the packed
        quantizer and slim side-structure dtypes, ``opq`` adds the learned
        rotation, ``rerank`` trades ADC error for exact re-scoring,
        ``native_kernels`` picks the fused C scan (``auto``/``on``/``off``,
        bitwise identical either way) and ``max_cell_fraction`` caps any
        one coarse cell's share of the corpus."""
        if metric != "euclidean":
            raise ValueError("IVFPQIndex supports only the euclidean metric (ADC is an L2 construct)")
        if n_cells is not None and n_cells <= 0:
            raise ValueError("n_cells must be positive")
        if n_probe <= 0:
            raise ValueError("n_probe must be positive")
        if rerank < 0:
            raise ValueError("rerank must be >= 0 (0 disables exact re-ranking)")
        if native_kernels not in ("auto", "on", "off"):
            raise ValueError(
                f"unknown native_kernels mode {native_kernels!r}; expected 'auto', 'on' or 'off'"
            )
        if max_cell_fraction is not None and not 0.0 < float(max_cell_fraction) <= 1.0:
            raise ValueError("max_cell_fraction must be in (0, 1]")
        self.metric = metric
        self.n_cells = n_cells
        self.n_probe = int(n_probe)
        self.rerank = int(rerank)
        self.min_train_size = int(min_train_size)
        self.train_iters = int(train_iters)
        self.seed = int(seed)
        self.opq = bool(opq)
        self.native_kernels = native_kernels
        self.max_cell_fraction = None if max_cell_fraction is None else float(max_cell_fraction)
        quantizer = PackedPQ if bits <= 4 else ProductQuantizer
        self.pq = quantizer(
            n_subspaces=n_subspaces, bits=bits, opq=opq, train_iters=train_iters, seed=seed
        )
        # The packed engine slims every per-row side structure; the 8-bit
        # engine keeps the wider dtypes (and their bit-exact baselines).
        self._assign_dtype = np.dtype(np.uint16 if self.pq.packed else np.int32)
        self._const_dtype = np.dtype(np.float16 if self.pq.packed else np.float32)
        self._centroid_dtype = np.dtype(np.float32 if self.pq.packed else np.float64)
        self._coarse_train_cap = self._COARSE_TRAIN_CAP
        self._centroids: Optional[np.ndarray] = None
        self._assign_buffer: np.ndarray = np.empty(0, dtype=self._assign_dtype)
        self._code_buffer: np.ndarray = np.empty((0, self.pq.code_width), dtype=np.uint8)
        # Per-reference constant of the ADC decomposition: |e|^2 + 2 c.e.
        self._const_buffer: np.ndarray = np.empty(0, dtype=self._const_dtype)
        self._n = 0
        self._cells: Optional[list] = None
        # Native-scan layout (CSR cells + transposed codes), rebuilt lazily
        # alongside _cells whenever the buffers churn.
        self._scan_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None
        # Drift statistics: the held-out train-time mean squared
        # reconstruction error vs a per-row error for rows encoded after
        # training (NaN marks train-time rows).  Per-row so that removal
        # compacts it — departed rows stop exerting drift pressure.
        self._train_distortion: Optional[float] = None
        self._drift_buffer: np.ndarray = np.empty(0, dtype=np.float16)
        # Aggregates over the buffer's valid entries, maintained on
        # add/remove so drift_ratio() stays O(1) (the info op polls it).
        self._drift_sum = 0.0
        self._drift_count = 0

    # ---------------------------------------------------------------- state
    @property
    def trained(self) -> bool:
        """Whether cells + codebooks exist (small stores defer training)."""
        return self._centroids is not None

    @property
    def codes(self) -> np.ndarray:
        """The live ``(N, code_width)`` uint8 code rows in storage layout
        (packed two-per-byte for the 4-bit engine); a read-only view."""
        view = self._code_buffer[: self._n]
        view.flags.writeable = False
        return view

    @property
    def needs_vectors(self) -> bool:
        """``False`` once trained with ``rerank == 0``: the whole search
        runs on codes, so serving ships codes + codebooks only."""
        return not self.trained or self.rerank > 0

    def _resolve_n_cells(self, n: int) -> int:
        if self.n_cells is not None:
            resolved = min(self.n_cells, n)
        else:
            # Finer cells than the IVF default (sqrt(N)): the uint8 scan makes
            # probing cheap per candidate and the per-query LUT cost is
            # cell-independent, so smaller cells buy both smaller residuals
            # (better codes) and fewer candidates per probe.
            resolved = max(1, min(n, int(np.ceil(9.0 * np.sqrt(n)))))
        if self.pq.packed:
            # Cell assignments are stored uint16 on the packed path.
            resolved = min(resolved, 65535)
        return resolved

    def _cell_lists(self) -> list:
        if self._cells is None:
            assignments = self._assign_buffer[: self._n]
            order = np.argsort(assignments, kind="stable")
            sorted_cells = assignments[order]
            boundaries = np.searchsorted(sorted_cells, np.arange(self._centroids.shape[0] + 1))
            self._cells = [
                order[boundaries[c] : boundaries[c + 1]] for c in range(self._centroids.shape[0])
            ]
        return self._cells

    def _scan_layout(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The native scan's cache-friendly view of the code buffers.

        ``(cell_starts, members, consts, codes_t)``: cells become CSR
        ranges (``cell_starts`` is ``(n_cells + 1,)`` int64) over a
        cell-major member order, the float16/float32 member constants are
        gathered into float32 alongside, and the code rows are transposed
        to a contiguous ``(code_width, N)`` so the kernel streams one
        subspace byte-row at a time.  Built lazily and invalidated
        together with ``_cells`` wherever add/remove/rebuild/load_state
        touch the underlying buffers, so the transpose stays consistent
        through churn.
        """
        if self._scan_cache is None:
            cells = self._cell_lists()
            sizes = np.array([cell.size for cell in cells], dtype=np.int64)
            cell_starts = np.zeros(sizes.size + 1, dtype=np.int64)
            np.cumsum(sizes, out=cell_starts[1:])
            members = (
                np.concatenate(cells).astype(np.int64, copy=False)
                if cells
                else np.empty(0, dtype=np.int64)
            )
            consts = self._const_buffer[: self._n][members].astype(np.float32)
            codes_t = np.ascontiguousarray(self._code_buffer[: self._n][members].T)
            self._scan_cache = (cell_starts, members, consts, codes_t)
        return self._scan_cache

    def kernels_active(self) -> bool:
        """Whether ADC scans currently dispatch to the native C kernels
        (the process-global mode combined with this index's knob)."""
        try:
            return self._active_kernels() is not None
        except RuntimeError:
            return False

    def _active_kernels(self):
        """The fused C kernels to dispatch the ADC scan to, or ``None``.

        Combines the process-global mode with this index's
        ``native_kernels`` knob (:func:`repro.core.kernels.resolve_mode`);
        ``on`` raises when the kernels cannot be built, so a hard
        requirement never silently degrades to the NumPy path.
        """
        from repro.core import kernels as native

        mode = native.resolve_mode(self.native_kernels)
        if mode == "off":
            return None
        library = native.ivfpq_kernels()
        if library is None and mode == "on":
            raise RuntimeError(
                "native_kernels='on' but the fused C kernels are unavailable "
                "(no working compiler, or the build failed); use 'auto' to "
                "fall back to the NumPy scan"
            )
        return library

    def _reserve(self, extra: int) -> None:
        needed = self._n + extra
        capacity = self._assign_buffer.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(32, capacity)
        while new_capacity < needed:
            new_capacity *= 2
        assignments = np.empty(new_capacity, dtype=self._assign_dtype)
        assignments[: self._n] = self._assign_buffer[: self._n]
        self._assign_buffer = assignments
        codes = np.empty((new_capacity, self._code_buffer.shape[1]), dtype=np.uint8)
        codes[: self._n] = self._code_buffer[: self._n]
        self._code_buffer = codes
        consts = np.empty(new_capacity, dtype=self._const_dtype)
        consts[: self._n] = self._const_buffer[: self._n]
        self._const_buffer = consts
        drift = np.empty(new_capacity, dtype=np.float16)
        drift[: self._n] = self._drift_buffer[: self._n]
        self._drift_buffer = drift

    def _assign_to_centroids(self, vectors: np.ndarray, chunk_rows: int = 4096) -> np.ndarray:
        """Nearest-centroid assignment, chunked so the (rows, n_cells)
        distance block stays cache-sized at large N."""
        out = np.empty(vectors.shape[0], dtype=np.int64)
        for start in range(0, vectors.shape[0], chunk_rows):
            block = vectors[start : start + chunk_rows]
            out[start : start + block.shape[0]] = np.argmin(
                squared_euclidean_distances(block, self._centroids), axis=1
            )
        return out

    def _member_consts(self, decoded: np.ndarray, assignments: np.ndarray) -> np.ndarray:
        """``|e|^2 + 2 c.e`` per row from decoded residuals ``e``."""
        consts = np.einsum("ij,ij->i", decoded, decoded)
        consts += 2.0 * np.einsum("ij,ij->i", decoded, self._centroids[assignments])
        if self._const_dtype == np.float16:
            # Clip into float16 range: an overflowed +/-inf constant would
            # permanently exclude (or falsely promote) its row in every ADC
            # scan; a clipped value keeps the row rankable and the exact
            # re-rank still scores it correctly.
            np.clip(consts, -6.0e4, 6.0e4, out=consts)
        return consts.astype(self._const_dtype)

    def _reconstruction_error(
        self, rows: np.ndarray, assignments: np.ndarray, decoded: np.ndarray
    ) -> np.ndarray:
        """Per-row squared reconstruction error ``|x - c - e|^2`` (the drift
        statistic: rises as the corpus leaves the training distribution)."""
        diff = rows - self._centroids[assignments]
        diff -= decoded
        return np.einsum("ij,ij->i", diff, diff)

    # ------------------------------------------------------------- mutation
    def rebuild(self, vectors: np.ndarray) -> None:
        """Train coarse cells + codebooks on ``vectors`` and encode every
        row; also resets the train-time drift baseline."""
        n = vectors.shape[0]
        if n < self.min_train_size:
            self._centroids = None
            self._assign_buffer = np.empty(0, dtype=self._assign_dtype)
            self._code_buffer = np.empty((0, self.pq.code_width), dtype=np.uint8)
            self._const_buffer = np.empty(0, dtype=self._const_dtype)
            self._n = 0
            self._cells = None
            self._scan_cache = None
            self._train_distortion = None
            self._drift_buffer = np.empty(0, dtype=np.float16)
            self._drift_sum = 0.0
            self._drift_count = 0
            return
        vectors = np.asarray(vectors, dtype=np.float64)
        n_cells = self._resolve_n_cells(n)
        # The drift baseline must be an *out-of-sample* error: cells and
        # codebooks fit their own training rows tighter than anything
        # encoded later, so an in-sample baseline would read ordinary
        # in-distribution churn as drift.  Hold a slice out of both
        # training stages and measure the baseline there.
        holdout_size = min(1024, n // 8)
        holdout: Optional[np.ndarray] = None
        train_rows = vectors
        if holdout_size >= 32:
            holdout = np.random.default_rng(self.seed + 2).choice(
                n, size=holdout_size, replace=False
            )
            train_mask = np.ones(n, dtype=bool)
            train_mask[holdout] = False
            train_rows = vectors[train_mask]
            n_cells = min(n_cells, train_rows.shape[0])
        if train_rows.shape[0] > self._coarse_train_cap:
            # Train cells on a sample (they only need to cover the density);
            # every reference still gets an exact assignment below.
            rng = np.random.default_rng(self.seed)
            train_rows = train_rows[
                rng.choice(train_rows.shape[0], size=self._coarse_train_cap, replace=False)
            ]
        # A tight retrain(sample_size=...) cap can leave fewer training
        # rows than resolved cells; k-means needs n_cells <= rows.
        n_cells = min(n_cells, train_rows.shape[0])
        centroids, _ = _kmeans(
            train_rows, n_cells, metric="euclidean", n_iter=self.train_iters, seed=self.seed
        )
        self._centroids = centroids.astype(self._centroid_dtype)
        assignments = self._assign_to_centroids(vectors)
        if self.max_cell_fraction is not None:
            # Residuals (and so codes) are computed against the *capped*
            # assignment, keeping encode/decode consistent with the cells.
            assignments = _cap_cell_assignments(
                vectors, self._centroids, assignments, self.max_cell_fraction
            )
        residuals = vectors - self._centroids[assignments]
        if holdout is None:
            self.pq.fit(residuals, rng=np.random.default_rng(self.seed + 1))
        else:
            self.pq.fit(residuals[train_mask], rng=np.random.default_rng(self.seed + 1))
        codes = self.pq.encode(residuals)
        decoded = self.pq.decode(codes)
        self._assign_buffer = assignments.astype(self._assign_dtype)
        self._code_buffer = (
            self.pq.pack_codes(codes) if self.pq.packed else codes
        )
        self._const_buffer = self._member_consts(decoded, assignments)
        self._n = n
        self._cells = None
        self._scan_cache = None
        baseline_rows = slice(None) if holdout is None else holdout
        self._train_distortion = float(
            self._reconstruction_error(
                vectors[baseline_rows], assignments[baseline_rows], decoded[baseline_rows]
            ).mean()
        )
        self._drift_buffer = np.full(n, np.nan, dtype=np.float16)
        self._drift_sum = 0.0
        self._drift_count = 0

    def refit(self, vectors: np.ndarray) -> None:
        """Explicitly re-train cells and codebooks (optional maintenance)."""
        self.rebuild(vectors)

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        """Encode the ``n_new`` appended rows with the trained quantizer and
        fold their reconstruction error into the drift statistics."""
        n = vectors.shape[0]
        if not self.trained:
            if n >= self.min_train_size:
                self.rebuild(vectors)
            return
        new_rows = np.asarray(vectors[n - n_new :], dtype=np.float64)
        assignments = np.argmin(
            squared_euclidean_distances(new_rows, self._centroids), axis=1
        )
        if self.max_cell_fraction is not None:
            cap = max(1, int(np.ceil(self.max_cell_fraction * n)))
            counts = np.bincount(
                self._assign_buffer[: self._n].astype(np.int64),
                minlength=self._centroids.shape[0],
            )
            assignments = _cap_added_assignments(
                new_rows, self._centroids, counts, assignments, cap
            )
        codes = self.pq.encode(new_rows - self._centroids[assignments])
        decoded = self.pq.decode(codes)
        self._reserve(n_new)
        self._assign_buffer[self._n : self._n + n_new] = assignments
        self._code_buffer[self._n : self._n + n_new] = (
            self.pq.pack_codes(codes) if self.pq.packed else codes
        )
        self._const_buffer[self._n : self._n + n_new] = self._member_consts(
            decoded, assignments
        )
        # Clipped into float16 range so extreme drift reads as a huge
        # finite ratio rather than inf.  Aggregates accumulate the values
        # as stored, so a later remove subtracts them exactly.
        stored_errors = np.minimum(
            self._reconstruction_error(new_rows, assignments, decoded), 6.0e4
        ).astype(np.float16)
        self._drift_buffer[self._n : self._n + n_new] = stored_errors
        self._drift_sum += float(stored_errors.astype(np.float64).sum())
        self._drift_count += n_new
        self._n += n_new
        self._cells = None
        self._scan_cache = None

    # ------------------------------------------------------ drift / retrain
    def drift_ratio(self) -> float:
        """Mean reconstruction error of the post-training rows *still in
        the corpus* over the train-time baseline (1.0 when none remain)."""
        if (
            self._train_distortion is None
            or self._train_distortion <= 0.0
            or self._drift_count <= 0
        ):
            return 1.0
        return (self._drift_sum / self._drift_count) / self._train_distortion

    def retrain_needed(self, *, threshold: float = 1.5, min_samples: int = 64) -> bool:
        """``True`` once >= ``min_samples`` surviving post-training rows
        show a mean reconstruction error above ``threshold`` x the
        baseline (removed rows stop counting — drift can clear itself)."""
        return self._drift_count >= int(min_samples) and self.drift_ratio() > float(threshold)

    def retrain(self, vectors: np.ndarray, *, sample_size: Optional[int] = None) -> None:
        """Re-train cells + codebooks on a sample of ``vectors``, re-encode
        every row and reset the drift statistics.

        ``sample_size`` tightens both training subsample caps for this call
        (coarse k-means and codebook fitting); every row is still assigned
        and encoded exactly.  This is what
        ``DeploymentManager.requantize()`` runs per shard behind its
        copy-on-write swap.
        """
        if sample_size is None:
            self.rebuild(vectors)
            return
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        old_cap, old_points = self._coarse_train_cap, self.pq.max_train_points
        self._coarse_train_cap = min(old_cap, int(sample_size))
        self.pq.max_train_points = min(old_points, int(sample_size))
        try:
            self.rebuild(vectors)
        finally:
            self._coarse_train_cap = old_cap
            self.pq.max_train_points = old_points

    def remove(self, kept_mask: np.ndarray) -> None:
        """Compact code/assignment/const buffers after store compaction."""
        if not self.trained:
            return
        kept = int(np.asarray(kept_mask).sum())
        departed = self._drift_buffer[: self._n][~kept_mask].astype(np.float64)
        departed_valid = ~np.isnan(departed)
        self._drift_sum = max(0.0, self._drift_sum - float(departed[departed_valid].sum()))
        self._drift_count -= int(np.count_nonzero(departed_valid))
        self._assign_buffer[:kept] = self._assign_buffer[: self._n][kept_mask]
        self._code_buffer[:kept] = self._code_buffer[: self._n][kept_mask]
        self._const_buffer[:kept] = self._const_buffer[: self._n][kept_mask]
        self._drift_buffer[:kept] = self._drift_buffer[: self._n][kept_mask]
        self._n = kept
        self._cells = None
        self._scan_cache = None

    # --------------------------------------------------------------- search
    def _adc_select_native(
        self,
        kernels,
        coarse_d2: np.ndarray,
        probe: np.ndarray,
        lut: Tuple[np.ndarray, np.ndarray, np.ndarray],
        n_select: int,
    ) -> Tuple[list, list]:
        """Kernel dispatch: hand the scan layout and per-query LUTs to the
        fused C scan (:meth:`repro.core.kernels.IVFPQKernels.search_topk`)
        and unpack its fixed-width ``(distances, ids, counts)`` rows into
        the per-query lists the NumPy path returns.  Peak transient memory
        is the ``(n_chunk, n_probe)`` coarse block plus the
        ``(n_chunk, n_select)`` outputs — independent of how many
        candidates the probes cover."""
        lut_u8, scale, bias = lut
        cell_starts, members, consts, codes_t = self._scan_layout()
        n_chunk = probe.shape[0]
        probe = np.ascontiguousarray(probe, dtype=np.int64)
        coarse = np.ascontiguousarray(
            np.take_along_axis(coarse_d2, probe, axis=1).astype(np.float32)
        )
        out_d, out_ids, out_counts = kernels.search_topk(
            lut_u8=np.ascontiguousarray(lut_u8),
            scale=np.ascontiguousarray(scale, dtype=np.float32),
            bias=np.ascontiguousarray(bias, dtype=np.float32),
            coarse=coarse,
            probe=probe,
            cell_starts=cell_starts,
            members=members,
            consts=consts,
            codes_t=codes_t,
            packed=self.pq.packed,
            n_select=int(n_select),
        )
        ids_out = [out_ids[q, : out_counts[q]] for q in range(n_chunk)]
        adc_out = [out_d[q, : out_counts[q]] for q in range(n_chunk)]
        return ids_out, adc_out

    def _adc_select(
        self,
        coarse_d2: np.ndarray,
        probe: np.ndarray,
        lut: Tuple[np.ndarray, np.ndarray, np.ndarray],
        n_select: int,
    ) -> Tuple[list, list]:
        """ADC top-``n_select`` per query over the probed cells' code lists.

        ``lut`` is the ``(lut_u8, scale, bias)`` triple of
        :meth:`ProductQuantizer.quantized_query_tables` for *both*
        engines: the gather runs over the uint8 table, sums in uint32 (an
        order-independent integer reduction) and reconstructs the float
        distance from the per-query affine pair.  Returns per-query
        ``(ids, adc_distances)`` lists ordered by ``(adc, id)`` ascending;
        selection at the ``n_select`` boundary is deterministic under the
        same total order (:func:`_smallest_pairs_subset`), which is what
        makes the native and NumPy paths bitwise interchangeable.

        Dispatches to the fused C kernels when available (the
        ``native_kernels`` knob); the NumPy fallback below is one flat
        pass over every (query, probed cell) member: candidate ids, their
        ADC distances and the per-query segmentation all come from
        whole-array operations; only the final selection runs per query
        (on its own small candidate segment), so there is no per-cell
        inner loop and no padded candidate matrix.
        """
        kernels = self._active_kernels()
        if kernels is not None:
            return self._adc_select_native(kernels, coarse_d2, probe, lut, n_select)
        lut_u8, scale, bias = lut
        n_chunk = probe.shape[0]
        cells = self._cell_lists()
        cell_sizes = np.array([len(cell) for cell in cells], dtype=np.int64)
        m = self.pq.n_subspaces
        k_sub = self.pq.n_centroids

        flat_queries = np.repeat(np.arange(n_chunk), probe.shape[1])
        flat_cells = probe.ravel()
        flat_sizes = cell_sizes[flat_cells]
        total = int(flat_sizes.sum())
        if total == 0:
            return [np.empty(0, dtype=np.int64)] * n_chunk, [np.empty(0)] * n_chunk
        cand_ids = np.concatenate([cells[cell] for cell in flat_cells])
        rows = np.repeat(flat_queries, flat_sizes)

        # ADC: coarse |q-c|^2 + member const - 2 sum_j LUT[q, j, code_j].
        adc = np.repeat(
            coarse_d2[flat_queries, flat_cells].astype(np.float32), flat_sizes
        )
        adc += self._const_buffer[cand_ids]
        codes = self._code_buffer[cand_ids]
        if self.pq.packed:
            codes = self.pq.unpack_codes(codes)
        idx = codes.astype(np.int32)
        idx += np.arange(m, dtype=np.int32)[None, :] * k_sub
        idx += (rows * (m * k_sub)).astype(np.int32)[:, None]
        sums = lut_u8.ravel().take(idx).sum(axis=1, dtype=np.uint32)
        adc -= 2.0 * (
            scale[rows] * sums.astype(np.float32) + np.float32(m) * bias[rows]
        )

        # Candidates are query-major, so each query owns one contiguous
        # segment; select within it.
        per_query = flat_sizes.reshape(n_chunk, -1).sum(axis=1)
        bounds = np.concatenate([[0], np.cumsum(per_query)])
        ids_out: list = []
        adc_out: list = []
        for q in range(n_chunk):
            seg_d = adc[bounds[q] : bounds[q + 1]]
            seg_i = cand_ids[bounds[q] : bounds[q + 1]]
            if seg_d.size > n_select:
                subset = _smallest_pairs_subset(seg_d, seg_i, n_select)
                seg_d = seg_d[subset]
                seg_i = seg_i[subset]
            order = np.lexsort((seg_i, seg_d))
            ids_out.append(seg_i[order])
            adc_out.append(seg_d[order])
        return ids_out, adc_out

    def search(
        self,
        vectors: Optional[np.ndarray],
        queries: np.ndarray,
        k: int,
        *,
        chunk_size: int = 1024,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """ADC scan over the probed cells' codes, optionally re-ranked
        exactly against ``vectors`` (required when ``rerank > 0``)."""
        if not self.trained:
            if vectors is None:
                raise ValueError("an untrained IVFPQIndex cannot search without raw vectors")
            return ExactIndex(self.metric).search(vectors, queries, k)
        if self.rerank > 0 and vectors is None:
            raise ValueError("rerank > 0 requires the raw vectors; pass them or set rerank=0")
        n = self._n
        if n == 0:
            raise ValueError("cannot search an empty index")
        k = min(int(k), n)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_cells = self._centroids.shape[0]
        n_probe = min(self.n_probe, n_cells)
        n_select = max(k, self.rerank) if self.rerank > 0 else k

        out_d = np.empty((queries.shape[0], k))
        out_i = np.empty((queries.shape[0], k), dtype=np.int64)
        # Span hooks are one thread-local read when no trace collector is
        # active (the common case); see repro.obs.tracing.
        trace_spans = obs_tracing.enabled()
        for start in range(0, queries.shape[0], chunk_size):
            chunk = queries[start : start + chunk_size]
            scan_start = time.perf_counter() if trace_spans else 0.0
            coarse_d2 = squared_euclidean_distances(chunk, self._centroids)
            if n_probe >= n_cells:
                probe = np.broadcast_to(np.arange(n_cells), coarse_d2.shape).copy()
            else:
                probe = np.argpartition(coarse_d2, n_probe - 1, axis=1)[:, :n_probe]
            lut = self.pq.quantized_query_tables(chunk)
            cand_lists, adc_lists = self._adc_select(coarse_d2, probe, lut, n_select)

            # Queries whose probed cells hold fewer than k members re-scan
            # with every cell probed (no raw vectors needed), like the IVF
            # index's exact fallback but staying inside the codes.
            if n_probe < n_cells:
                short = [q for q in range(chunk.shape[0]) if cand_lists[q].size < k]
                if short:
                    full_probe = np.broadcast_to(
                        np.arange(n_cells), (len(short), n_cells)
                    ).copy()
                    lut_short = tuple(part[short] for part in lut)
                    f_cands, f_adcs = self._adc_select(
                        coarse_d2[short], full_probe, lut_short, n_select
                    )
                    for position, q in enumerate(short):
                        cand_lists[q] = f_cands[position]
                        adc_lists[q] = f_adcs[position]

            if trace_spans:
                obs_tracing.record(
                    "pq_scan",
                    time.perf_counter() - scan_start,
                    native=self.kernels_active(),
                    n_queries=chunk.shape[0],
                )
                rerank_start = time.perf_counter()

            if self.rerank > 0:
                # Exact re-rank: true squared distances for the ADC top
                # candidates, then (distance, id) order over them.
                widths = np.array([ids.size for ids in cand_lists], dtype=np.int64)
                width = int(widths.max())
                cand = np.zeros((chunk.shape[0], width), dtype=np.int64)
                valid = np.arange(width)[None, :] < widths[:, None]
                for q, ids in enumerate(cand_lists):
                    cand[q, : ids.size] = ids
                cand_vectors = np.asarray(vectors)[cand]
                inner = np.einsum("qd,qrd->qr", chunk, cand_vectors)
                # Candidate norms come from the gathered block — never an
                # O(N) pass over the full store per search call.
                cand_sq = np.einsum("qrd,qrd->qr", cand_vectors, cand_vectors)
                exact_d2 = (
                    np.einsum("ij,ij->i", chunk, chunk)[:, None] + cand_sq - 2.0 * inner
                )
                exact_d2[~valid] = np.inf
                rd, ri = top_k_by_distance(exact_d2, k)
                chunk_i = np.take_along_axis(cand, ri, axis=1)
                chunk_d = _sqrt_clamped(rd)
                # (distance, id) order over the selected k (top_k broke ties
                # by candidate column, not id).
                tie_order = np.lexsort((chunk_i, chunk_d), axis=1)
                chunk_d = np.take_along_axis(chunk_d, tie_order, axis=1)
                chunk_i = np.take_along_axis(chunk_i, tie_order, axis=1)
                if trace_spans:
                    obs_tracing.record(
                        "rerank",
                        time.perf_counter() - rerank_start,
                        n_queries=chunk.shape[0],
                        rerank=self.rerank,
                    )
            else:
                chunk_d = np.empty((chunk.shape[0], k))
                chunk_i = np.empty((chunk.shape[0], k), dtype=np.int64)
                for q in range(chunk.shape[0]):
                    chunk_i[q] = cand_lists[q][:k]
                    chunk_d[q] = adc_lists[q][:k]
                chunk_d = _sqrt_clamped(np.maximum(chunk_d, 0.0))
            out_d[start : start + chunk.shape[0]] = chunk_d
            out_i[start : start + chunk.shape[0]] = chunk_i
        return out_d, out_i

    # ---------------------------------------------------------- persistence
    def spec(self) -> Dict[str, object]:
        """JSON-serialisable configuration (see
        :meth:`NearestNeighbourIndex.spec`); ``bits <= 4`` implies the
        packed engine on reconstruction."""
        return {
            "kind": "ivfpq",
            "metric": self.metric,
            "n_cells": self.n_cells,
            "n_probe": self.n_probe,
            "n_subspaces": self.pq.n_subspaces,
            "bits": self.pq.bits,
            "opq": self.opq,
            "rerank": self.rerank,
            "min_train_size": self.min_train_size,
            "train_iters": self.train_iters,
            "seed": self.seed,
            "native_kernels": self.native_kernels,
            "max_cell_fraction": self.max_cell_fraction,
        }

    def state(self) -> Dict[str, np.ndarray]:
        """Trained structures as named arrays (see the base contract).

        Codes are in storage layout (packed two-per-byte for the 4-bit
        engine) and the side structures keep their resident dtypes, so
        shared-memory publication and npz persistence ship the compressed
        representation byte-for-byte.  ``rotation`` rides along when OPQ
        is on; ``drift_baseline`` + per-row ``drift_errors`` carry the
        drift statistics so requantization pressure survives a warm
        restart.
        """
        if not self.trained:
            return {}
        state = {
            "centroids": self._centroids,
            "assignments": self._assign_buffer[: self._n],
            "codes": self._code_buffer[: self._n],
            "member_consts": self._const_buffer[: self._n],
            "codebooks": self.pq._codebooks,
            "drift_baseline": np.array(
                [-1.0 if self._train_distortion is None else self._train_distortion]
            ),
            "drift_errors": self._drift_buffer[: self._n],
        }
        if self.pq.rotation is not None:
            state["rotation"] = self.pq.rotation
        return state

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        """Adopt trained structures without re-running k-means.

        Arrays are adopted as-is (views into a shared-memory segment are
        fine: search never writes; a later ``add`` re-allocates through the
        amortised-doubling reserve before writing).  State from a
        differently-configured index — wrong code width, missing/unexpected
        ``rotation``, unknown keys — raises ``ValueError`` so the caller
        falls back to a clean rebuild.
        """
        if not state:
            self._centroids = None
            self._assign_buffer = np.empty(0, dtype=self._assign_dtype)
            self._code_buffer = np.empty((0, self.pq.code_width), dtype=np.uint8)
            self._const_buffer = np.empty(0, dtype=self._const_dtype)
            self._n = 0
            self._cells = None
            self._scan_cache = None
            self._train_distortion = None
            self._drift_buffer = np.empty(0, dtype=np.float16)
            self._drift_sum = 0.0
            self._drift_count = 0
            return
        required = {"centroids", "assignments", "codes", "member_consts", "codebooks"}
        if self.opq:
            required = required | {"rotation"}
        optional = {"drift_baseline", "drift_errors"} | (
            {"rotation"} if self.opq else set()
        )
        if not required <= set(state) or not set(state) <= required | optional:
            raise ValueError(f"state keys {sorted(state)} do not match an IVFPQIndex")
        codes = np.asarray(state["codes"], dtype=np.uint8)
        codebooks = np.asarray(state["codebooks"], dtype=np.float64)
        if codes.ndim != 2 or codes.shape[1] != self.pq.code_width:
            raise ValueError(
                f"state codes are {codes.shape[-1] if codes.ndim == 2 else '?'} bytes wide, "
                f"this index stores {self.pq.code_width}-byte rows"
            )
        if codebooks.shape[0] != self.pq.n_subspaces or codebooks.shape[1] > 2**self.pq.bits:
            raise ValueError(
                "state codebooks do not match this index's n_subspaces/bits configuration"
            )
        self._centroids = np.asarray(state["centroids"], dtype=self._centroid_dtype)
        self._assign_buffer = np.asarray(state["assignments"], dtype=self._assign_dtype)
        self._code_buffer = codes
        self._const_buffer = np.asarray(state["member_consts"], dtype=self._const_dtype)
        self._n = self._code_buffer.shape[0]
        if self._assign_buffer.shape[0] != self._n or self._const_buffer.shape[0] != self._n:
            raise ValueError(
                "inconsistent IVFPQ state: codes, assignments and member_consts disagree on N"
            )
        self._cells = None
        self._scan_cache = None
        pq = self.pq
        pq._codebooks = codebooks
        pq._splits = pq._boundaries(self._centroids.shape[1])
        pq._sub_dims = np.diff(pq._splits)
        pq._rotation = (
            np.asarray(state["rotation"], dtype=np.float64) if "rotation" in state else None
        )
        if "drift_baseline" in state and "drift_errors" in state:
            baseline = float(
                np.asarray(state["drift_baseline"], dtype=np.float64).ravel()[0]
            )
            errors = np.asarray(state["drift_errors"], dtype=np.float16)
            if errors.shape[0] != self._n:
                raise ValueError("inconsistent IVFPQ state: drift_errors disagree on N")
            self._train_distortion = None if baseline < 0 else baseline
            self._drift_buffer = errors
        else:
            self._train_distortion = None
            self._drift_buffer = np.full(self._n, np.nan, dtype=np.float16)
        adopted = self._drift_buffer[: self._n].astype(np.float64)
        adopted_valid = ~np.isnan(adopted)
        self._drift_sum = float(adopted[adopted_valid].sum())
        self._drift_count = int(np.count_nonzero(adopted_valid))

    def memory_bytes(self) -> int:
        """Resident bytes of codes, assignments, ADC constants, centroids
        and codebooks (the store's raw matrix is counted separately)."""
        if not self.trained:
            return 0
        return int(
            self._code_buffer[: self._n].nbytes
            + self._assign_buffer[: self._n].nbytes
            + self._const_buffer[: self._n].nbytes
            + self._drift_buffer[: self._n].nbytes
            + self._centroids.nbytes
            + self.pq.memory_bytes()
        )


def index_from_spec(spec: Optional[Dict[str, object]]) -> NearestNeighbourIndex:
    """Re-create an index from its :meth:`NearestNeighbourIndex.spec` dict."""
    if spec is None:
        return ExactIndex()
    kind = spec.get("kind", "exact")
    if kind == "exact":
        return ExactIndex(metric=str(spec.get("metric", "euclidean")))
    max_cell_fraction = spec.get("max_cell_fraction")
    if kind == "ivf":
        n_cells = spec.get("n_cells")
        return CoarseQuantizedIndex(
            n_cells=int(n_cells) if n_cells is not None else None,
            n_probe=int(spec.get("n_probe", 8)),
            metric=str(spec.get("metric", "euclidean")),
            min_train_size=int(spec.get("min_train_size", 256)),
            train_iters=int(spec.get("train_iters", 10)),
            seed=int(spec.get("seed", 0)),
            max_cell_fraction=(
                float(max_cell_fraction) if max_cell_fraction is not None else None
            ),
        )
    if kind == "ivfpq":
        n_cells = spec.get("n_cells")
        return IVFPQIndex(
            n_cells=int(n_cells) if n_cells is not None else None,
            n_probe=int(spec.get("n_probe", 16)),
            n_subspaces=int(spec.get("n_subspaces", 8)),
            bits=int(spec.get("bits", 8)),
            opq=bool(spec.get("opq", False)),
            rerank=int(spec.get("rerank", 64)),
            metric=str(spec.get("metric", "euclidean")),
            min_train_size=int(spec.get("min_train_size", 256)),
            train_iters=int(spec.get("train_iters", 10)),
            seed=int(spec.get("seed", 0)),
            native_kernels=str(spec.get("native_kernels", "auto")),
            max_cell_fraction=(
                float(max_cell_fraction) if max_cell_fraction is not None else None
            ),
        )
    raise ValueError(f"unknown index kind {kind!r}")
