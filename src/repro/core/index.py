"""Nearest-neighbour query engines for the reference store.

The paper's scaling story (Table 2) depends on classification staying cheap
as the monitored set grows.  This module provides the pluggable index layer
the :class:`~repro.core.reference_store.ReferenceStore` queries through:

* :class:`ExactIndex` — brute-force ``cdist`` + ``argpartition`` top-k; the
  default, bit-identical to a full sorted distance scan.
* :class:`CoarseQuantizedIndex` — an IVF-style coarse quantizer: reference
  vectors are bucketed into k-means cells and a query only scans the
  ``n_probe`` cells whose centroids are nearest, making query time grow
  sublinearly in the store size.  The cell structure is **incrementally
  updatable** — ``add``/``remove`` keep assignments current without
  re-running k-means — so the paper's retraining-free adaptation loop keeps
  its cost profile.

Indexes never copy the reference vectors: the store owns the (amortised)
embedding matrix and passes it to ``search``; an index only maintains its
own side structures (centroids, cell assignments).  Ids are row numbers in
the store's matrix, and ``remove`` renumbers them after the store compacts.

All searches return neighbours ordered by ``(distance, id)`` ascending,
which is exactly the order of a stable argsort over the full distance row —
the property the classifier's tie-breaking relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.spatial.distance import cdist

SUPPORTED_METRICS = ("euclidean", "cosine", "cityblock")


def euclidean_distances(
    queries: np.ndarray, vectors: np.ndarray, vectors_sq: Optional[np.ndarray] = None
) -> np.ndarray:
    """Pairwise euclidean distances via one GEMM (``|q|^2 + |x|^2 - 2 q.x``).

    ~5x faster than ``scipy.cdist`` for embedding-sized matrices because the
    inner products go through BLAS.  Squared distances are clamped at zero
    before the square root to absorb the cancellation the expansion incurs
    for (near-)identical points.
    """
    d2 = squared_euclidean_distances(queries, vectors, vectors_sq)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2, out=d2)


def squared_euclidean_distances(
    queries: np.ndarray, vectors: np.ndarray, vectors_sq: Optional[np.ndarray] = None
) -> np.ndarray:
    """Squared euclidean distances (may be ulp-negative; rank-equivalent).

    Searches rank on these directly and only square-root the selected
    top-k, saving two full passes over the (queries, N) matrix.
    """
    if vectors_sq is None:
        vectors_sq = np.einsum("ij,ij->i", vectors, vectors)
    queries_sq = np.einsum("ij,ij->i", queries, queries)
    d2 = queries @ vectors.T
    d2 *= -2.0
    d2 += queries_sq[:, None]
    d2 += vectors_sq[None, :]
    return d2


def _sqrt_clamped(d2: np.ndarray) -> np.ndarray:
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2, out=d2)


def _metric_distances(
    queries: np.ndarray,
    vectors: np.ndarray,
    metric: str,
    vectors_sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pairwise distances under ``metric``.

    Euclidean rows come back *squared* (rank-equivalent; callers square-root
    only the selected top-k); other metrics are exact ``cdist`` distances.
    """
    if metric == "euclidean":
        return squared_euclidean_distances(queries, vectors, vectors_sq)
    return cdist(queries, vectors, metric=metric)


def top_k_by_distance(distances: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k smallest entries per row, ordered by ``(distance, column)``.

    Uses ``argpartition`` for the common case and falls back to a full
    lexicographic sort only for rows with a tie straddling the k-th
    position, so the result is *exactly* the first ``k`` columns of a
    stable argsort — at partition cost.
    """
    distances = np.asarray(distances)
    n_rows, n_cols = distances.shape
    if k >= n_cols:
        order = np.lexsort((np.broadcast_to(np.arange(n_cols), distances.shape), distances), axis=1)
        sorted_d = np.take_along_axis(distances, order, axis=1)
        return sorted_d, order

    part = np.argpartition(distances, k - 1, axis=1)
    cand = part[:, :k]
    cand_d = np.take_along_axis(distances, cand, axis=1)
    order = np.lexsort((cand, cand_d), axis=1)
    idx = np.take_along_axis(cand, order, axis=1)
    dist = np.take_along_axis(cand_d, order, axis=1)

    # A tie at the boundary means argpartition may have picked the wrong
    # member of the tie set: detected when values equal to the k-th selected
    # distance also exist outside the candidate set.  Those (rare) rows are
    # redone with the exact full sort.
    kth = dist[:, -1:]
    tied = (distances == kth).sum(axis=1) > (cand_d == kth).sum(axis=1)
    if np.any(tied):
        for row in np.flatnonzero(tied):
            full = np.lexsort((np.arange(n_cols), distances[row]))[:k]
            idx[row] = full
            dist[row] = distances[row, full]
    return dist, idx


class NearestNeighbourIndex:
    """API every reference-store index implements.

    ``vectors`` is always the store's *current* embedding matrix (the first
    ``N`` rows of its buffer); the index must treat row numbers as ids.
    """

    metric: str = "euclidean"

    def rebuild(self, vectors: np.ndarray) -> None:
        """(Re)build side structures from scratch for ``vectors``."""
        raise NotImplementedError

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        """Account for ``n_new`` rows appended at the tail of ``vectors``."""
        raise NotImplementedError

    def remove(self, kept_mask: np.ndarray) -> None:
        """Account for row removal; ``kept_mask`` is over the *old* ids and
        surviving rows are renumbered in mask order (store compaction)."""
        raise NotImplementedError

    def search(self, vectors: np.ndarray, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, ids)`` of the k nearest rows, (distance, id)-ordered."""
        raise NotImplementedError

    def spec(self) -> Dict[str, object]:
        """JSON-serialisable description, for deployment persistence."""
        raise NotImplementedError


class ExactIndex(NearestNeighbourIndex):
    """Brute-force search; linear in N but exact and metric-agnostic."""

    def __init__(self, metric: str = "euclidean") -> None:
        if metric not in SUPPORTED_METRICS:
            raise ValueError(f"unsupported metric {metric!r}; expected one of {SUPPORTED_METRICS}")
        self.metric = metric

    def rebuild(self, vectors: np.ndarray) -> None:  # nothing cached
        pass

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        pass

    def remove(self, kept_mask: np.ndarray) -> None:
        pass

    def search(self, vectors: np.ndarray, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if vectors.shape[0] == 0:
            raise ValueError("cannot search an empty index")
        k = min(int(k), vectors.shape[0])
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self.metric == "euclidean":
            # Rank on squared distances, square-root only the k selected.
            dist, idx = top_k_by_distance(squared_euclidean_distances(queries, vectors), k)
            return _sqrt_clamped(dist), idx
        distances = cdist(queries, vectors, metric=self.metric)
        return top_k_by_distance(distances, k)

    def spec(self) -> Dict[str, object]:
        return {"kind": "exact", "metric": self.metric}


def _kmeans(
    vectors: np.ndarray, n_cells: int, *, metric: str = "euclidean", n_iter: int = 10, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means under ``metric``; returns ``(centroids, assignments)``.

    Deliberately small: the coarse quantizer only needs rough cells, not a
    converged clustering, and this keeps the index dependency-free.  Cell
    updates use the metric's natural centre: the mean for euclidean and
    cosine (the mean points in the mean direction, which is all cosine
    assignment looks at), the coordinate-wise median for cityblock (the L1
    minimiser).
    """
    n = vectors.shape[0]
    rng = np.random.default_rng(seed)
    centroids = vectors[rng.choice(n, size=n_cells, replace=False)].copy()
    assignments = np.zeros(n, dtype=np.int64)
    centre = np.median if metric == "cityblock" else np.mean
    for _ in range(n_iter):
        distances = _metric_distances(vectors, centroids, metric)
        assignments = np.argmin(distances, axis=1)
        for cell in range(n_cells):
            members = assignments == cell
            if members.any():
                centroids[cell] = centre(vectors[members], axis=0)
                if metric == "cosine" and not np.linalg.norm(centroids[cell]) > 0.0:
                    # Cancelled-out mean has no direction; keep a member.
                    centroids[cell] = vectors[members][0]
            else:
                # Re-seed an empty cell on the point farthest from its centroid.
                spread = np.take_along_axis(distances, assignments[:, None], axis=1)[:, 0]
                centroids[cell] = vectors[int(np.argmax(spread))]
    assignments = np.argmin(_metric_distances(vectors, centroids, metric), axis=1)
    return centroids, assignments


class CoarseQuantizedIndex(NearestNeighbourIndex):
    """IVF-style index: k-means cells, query probes the ``n_probe`` nearest.

    Parameters
    ----------
    n_cells:
        Number of coarse cells; ``None`` picks ``ceil(sqrt(N))`` when the
        quantizer is (re)trained.
    n_probe:
        How many cells each query scans.  ``n_probe >= n_cells`` degrades
        gracefully to an exact search over all cells.
    min_train_size:
        Below this store size the index answers exactly (brute force) and
        defers k-means until enough references exist — small stores gain
        nothing from quantization.

    ``add`` assigns new vectors to their nearest *existing* centroid and
    ``remove`` drops assignments, so adaptation (replace/remove/add of a
    class) never re-runs k-means; call :meth:`refit` to re-train cells
    explicitly if the corpus has drifted far from the original clustering.

    All of :data:`SUPPORTED_METRICS` are accepted: coarse assignment, probe
    selection and the candidate scan all run under the configured metric
    (euclidean keeps its squared-distance BLAS fast path; cosine and
    cityblock go through ``cdist``), and k-means updates cells with the
    metric's natural centre.
    """

    def __init__(
        self,
        n_cells: Optional[int] = None,
        n_probe: int = 8,
        *,
        metric: str = "euclidean",
        min_train_size: int = 256,
        train_iters: int = 10,
        seed: int = 0,
    ) -> None:
        if metric not in SUPPORTED_METRICS:
            raise ValueError(f"unsupported metric {metric!r}; expected one of {SUPPORTED_METRICS}")
        if n_cells is not None and n_cells <= 0:
            raise ValueError("n_cells must be positive")
        if n_probe <= 0:
            raise ValueError("n_probe must be positive")
        self.metric = metric
        self.n_cells = n_cells
        self.n_probe = int(n_probe)
        self.min_train_size = int(min_train_size)
        self.train_iters = int(train_iters)
        self.seed = int(seed)
        self._centroids: Optional[np.ndarray] = None
        self._assignments: np.ndarray = np.empty(0, dtype=np.int64)
        self._cells: Optional[list] = None  # lazy id lists per cell

    # ---------------------------------------------------------------- state
    @property
    def trained(self) -> bool:
        return self._centroids is not None

    def _resolve_n_cells(self, n: int) -> int:
        if self.n_cells is not None:
            return min(self.n_cells, n)
        return max(1, int(np.ceil(np.sqrt(n))))

    def _cell_lists(self) -> list:
        if self._cells is None:
            assignments = self._assignments
            order = np.argsort(assignments, kind="stable")
            sorted_cells = assignments[order]
            boundaries = np.searchsorted(sorted_cells, np.arange(self._centroids.shape[0] + 1))
            self._cells = [
                order[boundaries[c] : boundaries[c + 1]] for c in range(self._centroids.shape[0])
            ]
        return self._cells

    # ------------------------------------------------------------- mutation
    def rebuild(self, vectors: np.ndarray) -> None:
        n = vectors.shape[0]
        if n < self.min_train_size:
            self._centroids = None
            self._assignments = np.empty(0, dtype=np.int64)
            self._cells = None
            return
        n_cells = self._resolve_n_cells(n)
        self._centroids, self._assignments = _kmeans(
            np.asarray(vectors, dtype=np.float64),
            n_cells,
            metric=self.metric,
            n_iter=self.train_iters,
            seed=self.seed,
        )
        self._cells = None

    def refit(self, vectors: np.ndarray) -> None:
        """Explicitly re-train the coarse quantizer (optional maintenance)."""
        self.rebuild(vectors)

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        n = vectors.shape[0]
        if not self.trained:
            if n >= self.min_train_size:
                self.rebuild(vectors)
            return
        new_rows = vectors[n - n_new :]
        assignments = np.argmin(_metric_distances(new_rows, self._centroids, self.metric), axis=1)
        self._assignments = np.concatenate([self._assignments, assignments])
        self._cells = None

    def remove(self, kept_mask: np.ndarray) -> None:
        if not self.trained:
            return
        self._assignments = self._assignments[kept_mask]
        self._cells = None

    # --------------------------------------------------------------- search
    def search(
        self, vectors: np.ndarray, queries: np.ndarray, k: int, *, chunk_size: int = 512
    ) -> Tuple[np.ndarray, np.ndarray]:
        if vectors.shape[0] == 0:
            raise ValueError("cannot search an empty index")
        k = min(int(k), vectors.shape[0])
        if not self.trained:
            return ExactIndex(self.metric).search(vectors, queries, k)

        vectors = np.asarray(vectors, dtype=np.float64)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_cells = self._centroids.shape[0]
        n_probe = min(self.n_probe, n_cells)
        cells = self._cell_lists()
        cell_sizes = np.array([len(cell) for cell in cells], dtype=np.int64)
        euclidean = self.metric == "euclidean"
        vectors_sq = np.einsum("ij,ij->i", vectors, vectors) if euclidean else None

        out_d = np.empty((queries.shape[0], k))
        out_i = np.empty((queries.shape[0], k), dtype=np.int64)
        for start in range(0, queries.shape[0], chunk_size):
            chunk = queries[start : start + chunk_size]
            n_chunk = chunk.shape[0]
            centroid_d = _metric_distances(chunk, self._centroids, self.metric)
            if n_probe >= n_cells:
                probe = np.broadcast_to(np.arange(n_cells), centroid_d.shape).copy()
            else:
                probe = np.argpartition(centroid_d, n_probe - 1, axis=1)[:, :n_probe]

            # Each query's candidate row is the concatenation of its probed
            # cells; distances are filled cell-major so every probed cell
            # costs one (queries-probing-it, cell-members) cdist GEMM
            # instead of a per-query gather.
            sizes = cell_sizes[probe]  # (n_chunk, n_probe)
            offsets = np.concatenate(
                [np.zeros((n_chunk, 1), dtype=np.int64), np.cumsum(sizes, axis=1)[:, :-1]], axis=1
            )
            width = max(int(sizes.sum(axis=1).max()), k)
            cand = np.full((n_chunk, width), -1, dtype=np.int64)
            distances = np.full((n_chunk, width), np.inf)

            flat_queries = np.repeat(np.arange(n_chunk), n_probe)
            flat_cells = probe.ravel()
            flat_offsets = offsets.ravel()
            grouping = np.argsort(flat_cells, kind="stable")
            boundaries = np.searchsorted(flat_cells[grouping], np.arange(n_cells + 1))
            for cell in np.unique(flat_cells):
                members = cells[cell]
                if members.size == 0:
                    continue
                group = grouping[boundaries[cell] : boundaries[cell + 1]]
                probing = flat_queries[group]
                cols = flat_offsets[group][:, None] + np.arange(members.size)[None, :]
                cand[probing[:, None], cols] = members
                if euclidean:
                    block = squared_euclidean_distances(
                        chunk[probing], vectors[members], vectors_sq[members]
                    )
                else:
                    block = cdist(chunk[probing], vectors[members], metric=self.metric)
                distances[probing[:, None], cols] = block
            cd, ci = top_k_by_distance(distances, k)
            chunk_d = _sqrt_clamped(cd) if euclidean else cd
            chunk_i = np.take_along_axis(cand, ci, axis=1)
            # top_k broke ties by *candidate column*, which follows the
            # arbitrary probe layout; restore the documented (distance, id)
            # order over the selected k.
            tie_order = np.lexsort((chunk_i, chunk_d), axis=1)
            chunk_d = np.take_along_axis(chunk_d, tie_order, axis=1)
            chunk_i = np.take_along_axis(chunk_i, tie_order, axis=1)
            # A query whose probed cells hold fewer than k members would
            # surface padding ids; answer those rows exactly instead.
            short = np.flatnonzero((chunk_i < 0).any(axis=1))
            if short.size:
                fd, fi = ExactIndex(self.metric).search(vectors, chunk[short], k)
                chunk_d[short] = fd
                chunk_i[short] = fi
            out_d[start : start + chunk.shape[0]] = chunk_d
            out_i[start : start + chunk.shape[0]] = chunk_i
        return out_d, out_i

    def spec(self) -> Dict[str, object]:
        return {
            "kind": "ivf",
            "metric": self.metric,
            "n_cells": self.n_cells,
            "n_probe": self.n_probe,
            "min_train_size": self.min_train_size,
            "train_iters": self.train_iters,
            "seed": self.seed,
        }


def index_from_spec(spec: Optional[Dict[str, object]]) -> NearestNeighbourIndex:
    """Re-create an index from its :meth:`NearestNeighbourIndex.spec` dict."""
    if spec is None:
        return ExactIndex()
    kind = spec.get("kind", "exact")
    if kind == "exact":
        return ExactIndex(metric=str(spec.get("metric", "euclidean")))
    if kind == "ivf":
        n_cells = spec.get("n_cells")
        return CoarseQuantizedIndex(
            n_cells=int(n_cells) if n_cells is not None else None,
            n_probe=int(spec.get("n_probe", 8)),
            metric=str(spec.get("metric", "euclidean")),
            min_train_size=int(spec.get("min_train_size", 256)),
            train_iters=int(spec.get("train_iters", 10)),
            seed=int(spec.get("seed", 0)),
        )
    raise ValueError(f"unknown index kind {kind!r}")
