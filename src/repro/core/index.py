"""Nearest-neighbour query engines for the reference store.

The paper's scaling story (Table 2) depends on classification staying cheap
as the monitored set grows.  This module provides the pluggable index layer
the :class:`~repro.core.reference_store.ReferenceStore` queries through:

* :class:`ExactIndex` — brute-force ``cdist`` + ``argpartition`` top-k; the
  default, bit-identical to a full sorted distance scan.
* :class:`CoarseQuantizedIndex` — an IVF-style coarse quantizer: reference
  vectors are bucketed into k-means cells and a query only scans the
  ``n_probe`` cells whose centroids are nearest, making query time grow
  sublinearly in the store size.  The cell structure is **incrementally
  updatable** — ``add``/``remove`` keep assignments current without
  re-running k-means — so the paper's retraining-free adaptation loop keeps
  its cost profile.
* :class:`IVFPQIndex` — the same coarse cells, but cell members are stored
  as **product-quantized residuals**: each reference is ``n_subspaces``
  uint8 codes into per-subspace k-means codebooks trained on the residual
  ``x - centroid``.  Queries scan codes through asymmetric distance
  computation (per-query lookup tables), which replaces the float GEMM over
  raw vectors with uint8 table gathers and shrinks the per-vector index
  memory ~16-32x.  An optional exact re-rank of the ``rerank`` best ADC
  candidates against the raw vectors restores exact ``(distance, id)``
  rankings over that candidate set, so with a full probe and ``rerank``
  leaving enough margin over ``k`` to cover the ADC error band (the
  default 64 at ``k <= 10``) results match :class:`ExactIndex`
  bit-for-bit.

Indexes never copy the reference vectors: the store owns the (amortised)
embedding matrix and passes it to ``search``; an index only maintains its
own side structures (centroids, cell assignments, PQ codes).  Ids are row
numbers in the store's matrix, and ``remove`` renumbers them after the
store compacts.

All searches return neighbours ordered by ``(distance, id)`` ascending,
which is exactly the order of a stable argsort over the full distance row —
the property the classifier's tie-breaking relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy.spatial.distance import cdist

SUPPORTED_METRICS = ("euclidean", "cosine", "cityblock")


def euclidean_distances(
    queries: np.ndarray, vectors: np.ndarray, vectors_sq: Optional[np.ndarray] = None
) -> np.ndarray:
    """Pairwise euclidean distances via one GEMM (``|q|^2 + |x|^2 - 2 q.x``).

    ~5x faster than ``scipy.cdist`` for embedding-sized matrices because the
    inner products go through BLAS.  Squared distances are clamped at zero
    before the square root to absorb the cancellation the expansion incurs
    for (near-)identical points.
    """
    d2 = squared_euclidean_distances(queries, vectors, vectors_sq)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2, out=d2)


def squared_euclidean_distances(
    queries: np.ndarray, vectors: np.ndarray, vectors_sq: Optional[np.ndarray] = None
) -> np.ndarray:
    """Squared euclidean distances (may be ulp-negative; rank-equivalent).

    Searches rank on these directly and only square-root the selected
    top-k, saving two full passes over the (queries, N) matrix.
    """
    if vectors_sq is None:
        vectors_sq = np.einsum("ij,ij->i", vectors, vectors)
    queries_sq = np.einsum("ij,ij->i", queries, queries)
    d2 = queries @ vectors.T
    d2 *= -2.0
    d2 += queries_sq[:, None]
    d2 += vectors_sq[None, :]
    return d2


def _sqrt_clamped(d2: np.ndarray) -> np.ndarray:
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2, out=d2)


def _metric_distances(
    queries: np.ndarray,
    vectors: np.ndarray,
    metric: str,
    vectors_sq: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pairwise distances under ``metric``.

    Euclidean rows come back *squared* (rank-equivalent; callers square-root
    only the selected top-k); other metrics are exact ``cdist`` distances.
    """
    if metric == "euclidean":
        return squared_euclidean_distances(queries, vectors, vectors_sq)
    return cdist(queries, vectors, metric=metric)


def top_k_by_distance(distances: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k smallest entries per row, ordered by ``(distance, column)``.

    Uses ``argpartition`` for the common case and falls back to a full
    lexicographic sort only for rows with a tie straddling the k-th
    position, so the result is *exactly* the first ``k`` columns of a
    stable argsort — at partition cost.
    """
    distances = np.asarray(distances)
    n_rows, n_cols = distances.shape
    if k >= n_cols:
        order = np.lexsort((np.broadcast_to(np.arange(n_cols), distances.shape), distances), axis=1)
        sorted_d = np.take_along_axis(distances, order, axis=1)
        return sorted_d, order

    part = np.argpartition(distances, k - 1, axis=1)
    cand = part[:, :k]
    cand_d = np.take_along_axis(distances, cand, axis=1)
    order = np.lexsort((cand, cand_d), axis=1)
    idx = np.take_along_axis(cand, order, axis=1)
    dist = np.take_along_axis(cand_d, order, axis=1)

    # A tie at the boundary means argpartition may have picked the wrong
    # member of the tie set: detected when values equal to the k-th selected
    # distance also exist outside the candidate set.  Those (rare) rows are
    # redone with the exact full sort.
    kth = dist[:, -1:]
    tied = (distances == kth).sum(axis=1) > (cand_d == kth).sum(axis=1)
    if np.any(tied):
        for row in np.flatnonzero(tied):
            full = np.lexsort((np.arange(n_cols), distances[row]))[:k]
            idx[row] = full
            dist[row] = distances[row, full]
    return dist, idx


class NearestNeighbourIndex:
    """API every reference-store index implements.

    ``vectors`` is always the store's *current* embedding matrix (the first
    ``N`` rows of its buffer); the index must treat row numbers as ids.
    """

    metric: str = "euclidean"

    def rebuild(self, vectors: np.ndarray) -> None:
        """(Re)build side structures from scratch for ``vectors``."""
        raise NotImplementedError

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        """Account for ``n_new`` rows appended at the tail of ``vectors``."""
        raise NotImplementedError

    def remove(self, kept_mask: np.ndarray) -> None:
        """Account for row removal; ``kept_mask`` is over the *old* ids and
        surviving rows are renumbered in mask order (store compaction)."""
        raise NotImplementedError

    def search(self, vectors: np.ndarray, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(distances, ids)`` of the k nearest rows, (distance, id)-ordered."""
        raise NotImplementedError

    def spec(self) -> Dict[str, object]:
        """JSON-serialisable description, for deployment persistence."""
        raise NotImplementedError

    def state(self) -> Dict[str, np.ndarray]:
        """Trained side structures as named arrays (empty if stateless).

        Together with :meth:`spec` this fully reconstructs the index without
        retraining: deployments persist the arrays next to the embeddings
        and shared-memory workers attach them instead of re-running k-means.
        """
        return {}

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state` arrays into a fresh index built from spec."""
        if state:
            raise ValueError(f"{type(self).__name__} holds no trained state")

    def memory_bytes(self) -> int:
        """Resident bytes of the index's own side structures."""
        return 0

    @property
    def needs_vectors(self) -> bool:
        """Whether ``search`` must be handed the raw embedding matrix.

        ``False`` lets the serving layer publish only :meth:`state` (codes +
        codebooks) into shared memory instead of the raw float matrix.
        """
        return True


class ExactIndex(NearestNeighbourIndex):
    """Brute-force search; linear in N but exact and metric-agnostic."""

    def __init__(self, metric: str = "euclidean") -> None:
        if metric not in SUPPORTED_METRICS:
            raise ValueError(f"unsupported metric {metric!r}; expected one of {SUPPORTED_METRICS}")
        self.metric = metric

    def rebuild(self, vectors: np.ndarray) -> None:  # nothing cached
        pass

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        pass

    def remove(self, kept_mask: np.ndarray) -> None:
        pass

    def search(self, vectors: np.ndarray, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        if vectors.shape[0] == 0:
            raise ValueError("cannot search an empty index")
        k = min(int(k), vectors.shape[0])
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if self.metric == "euclidean":
            # Rank on squared distances, square-root only the k selected.
            dist, idx = top_k_by_distance(squared_euclidean_distances(queries, vectors), k)
            return _sqrt_clamped(dist), idx
        distances = cdist(queries, vectors, metric=self.metric)
        return top_k_by_distance(distances, k)

    def spec(self) -> Dict[str, object]:
        return {"kind": "exact", "metric": self.metric}


def _kmeans_pp_seed(
    vectors: np.ndarray, n_cells: int, metric: str, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: D^2 sampling keeps initial centres spread out.

    Random initialisation on clustered data routinely drops several seeds
    into one dense cluster, leaving skewed cells that IVF probing then pays
    for on every query.  Seeding runs on a subsample (classic practice — the
    seeds only need to cover the density, not every point), so its cost
    stays ~``n_cells`` small distance passes.
    """
    n = vectors.shape[0]
    sample_size = min(n, max(n_cells * 32, 1024))
    sample = vectors if sample_size == n else vectors[rng.choice(n, size=sample_size, replace=False)]
    centroids = np.empty((n_cells, vectors.shape[1]), dtype=vectors.dtype)
    centroids[0] = sample[rng.integers(sample.shape[0])]
    # Squared distance to the nearest chosen seed (euclidean rows already
    # come back squared from the metric helper; square the others).
    closest = _metric_distances(sample, centroids[:1], metric)[:, 0]
    if metric != "euclidean":
        closest = closest**2
    np.maximum(closest, 0.0, out=closest)
    for position in range(1, n_cells):
        total = float(closest.sum())
        if not total > 0.0:  # all mass covered; fall back to uniform picks
            centroids[position] = sample[rng.integers(sample.shape[0])]
            continue
        pick = int(np.searchsorted(np.cumsum(closest), rng.uniform(0.0, total)))
        pick = min(pick, sample.shape[0] - 1)
        centroids[position] = sample[pick]
        fresh = _metric_distances(sample, centroids[position : position + 1], metric)[:, 0]
        if metric != "euclidean":
            fresh = fresh**2
        np.maximum(fresh, 0.0, out=fresh)
        np.minimum(closest, fresh, out=closest)
    return centroids


def _kmeans(
    vectors: np.ndarray,
    n_cells: int,
    *,
    metric: str = "euclidean",
    n_iter: int = 10,
    seed: int = 0,
    init: str = "kmeans++",
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain Lloyd's k-means under ``metric``; returns ``(centroids, assignments)``.

    Deliberately small: the coarse quantizer only needs rough cells, not a
    converged clustering, and this keeps the index dependency-free.  Seeds
    come from k-means++ D^2 sampling (``init="random"`` restores uniform
    picks, kept for balance comparisons); empty cells are re-seeded on the
    point farthest from its centroid during Lloyd updates.  Cell updates use
    the metric's natural centre: the mean for euclidean and cosine (the mean
    points in the mean direction, which is all cosine assignment looks at),
    the coordinate-wise median for cityblock (the L1 minimiser).
    """
    n = vectors.shape[0]
    rng = np.random.default_rng(seed)
    if init == "kmeans++":
        centroids = _kmeans_pp_seed(vectors, n_cells, metric, rng).copy()
    elif init == "random":
        centroids = vectors[rng.choice(n, size=n_cells, replace=False)].copy()
    else:
        raise ValueError(f"unknown k-means init {init!r}; expected 'kmeans++' or 'random'")
    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(n_iter):
        distances = _metric_distances(vectors, centroids, metric)
        assignments = np.argmin(distances, axis=1)
        if metric == "cityblock":
            # Coordinate-wise median (the L1 minimiser); per-cell loop is
            # fine at the small cell counts this metric is used with.
            for cell in range(n_cells):
                members = assignments == cell
                if members.any():
                    centroids[cell] = np.median(vectors[members], axis=0)
        else:
            # Mean update without a per-cell loop: group rows by cell with
            # one stable sort and sum each contiguous run via reduceat, so
            # the update stays O(N log N) even at thousands of cells.
            order = np.argsort(assignments, kind="stable")
            sorted_cells = assignments[order]
            starts = np.searchsorted(sorted_cells, np.arange(n_cells))
            counts = np.diff(np.append(starts, n))
            occupied = counts > 0
            sums = np.add.reduceat(vectors[order], starts[occupied], axis=0)
            centroids[occupied] = sums / counts[occupied, None]
            if metric == "cosine":
                # Cancelled-out means have no direction; keep a member.
                degenerate = occupied & ~(np.linalg.norm(centroids.T, axis=0) > 0.0)
                for cell in np.flatnonzero(degenerate):
                    centroids[cell] = vectors[assignments == cell][0]
        empty = np.flatnonzero(
            np.bincount(assignments, minlength=n_cells) == 0
        )
        if empty.size:
            # Re-seed empty cells on the points farthest from their centroid.
            spread = np.take_along_axis(distances, assignments[:, None], axis=1)[:, 0]
            farthest = np.argsort(spread)[::-1]
            centroids[empty] = vectors[farthest[: empty.size]]
    assignments = np.argmin(_metric_distances(vectors, centroids, metric), axis=1)
    return centroids, assignments


class CoarseQuantizedIndex(NearestNeighbourIndex):
    """IVF-style index: k-means cells, query probes the ``n_probe`` nearest.

    Parameters
    ----------
    n_cells:
        Number of coarse cells; ``None`` picks ``ceil(sqrt(N))`` when the
        quantizer is (re)trained.
    n_probe:
        How many cells each query scans.  ``n_probe >= n_cells`` degrades
        gracefully to an exact search over all cells.
    min_train_size:
        Below this store size the index answers exactly (brute force) and
        defers k-means until enough references exist — small stores gain
        nothing from quantization.

    ``add`` assigns new vectors to their nearest *existing* centroid and
    ``remove`` drops assignments, so adaptation (replace/remove/add of a
    class) never re-runs k-means; call :meth:`refit` to re-train cells
    explicitly if the corpus has drifted far from the original clustering.

    All of :data:`SUPPORTED_METRICS` are accepted: coarse assignment, probe
    selection and the candidate scan all run under the configured metric
    (euclidean keeps its squared-distance BLAS fast path; cosine and
    cityblock go through ``cdist``), and k-means updates cells with the
    metric's natural centre.
    """

    def __init__(
        self,
        n_cells: Optional[int] = None,
        n_probe: int = 8,
        *,
        metric: str = "euclidean",
        min_train_size: int = 256,
        train_iters: int = 10,
        seed: int = 0,
    ) -> None:
        if metric not in SUPPORTED_METRICS:
            raise ValueError(f"unsupported metric {metric!r}; expected one of {SUPPORTED_METRICS}")
        if n_cells is not None and n_cells <= 0:
            raise ValueError("n_cells must be positive")
        if n_probe <= 0:
            raise ValueError("n_probe must be positive")
        self.metric = metric
        self.n_cells = n_cells
        self.n_probe = int(n_probe)
        self.min_train_size = int(min_train_size)
        self.train_iters = int(train_iters)
        self.seed = int(seed)
        self._centroids: Optional[np.ndarray] = None
        self._assignments: np.ndarray = np.empty(0, dtype=np.int64)
        self._cells: Optional[list] = None  # lazy id lists per cell

    # ---------------------------------------------------------------- state
    @property
    def trained(self) -> bool:
        return self._centroids is not None

    def _resolve_n_cells(self, n: int) -> int:
        if self.n_cells is not None:
            return min(self.n_cells, n)
        return max(1, int(np.ceil(np.sqrt(n))))

    def _cell_lists(self) -> list:
        if self._cells is None:
            assignments = self._assignments
            order = np.argsort(assignments, kind="stable")
            sorted_cells = assignments[order]
            boundaries = np.searchsorted(sorted_cells, np.arange(self._centroids.shape[0] + 1))
            self._cells = [
                order[boundaries[c] : boundaries[c + 1]] for c in range(self._centroids.shape[0])
            ]
        return self._cells

    # ------------------------------------------------------------- mutation
    def rebuild(self, vectors: np.ndarray) -> None:
        n = vectors.shape[0]
        if n < self.min_train_size:
            self._centroids = None
            self._assignments = np.empty(0, dtype=np.int64)
            self._cells = None
            return
        n_cells = self._resolve_n_cells(n)
        self._centroids, self._assignments = _kmeans(
            np.asarray(vectors, dtype=np.float64),
            n_cells,
            metric=self.metric,
            n_iter=self.train_iters,
            seed=self.seed,
        )
        self._cells = None

    def refit(self, vectors: np.ndarray) -> None:
        """Explicitly re-train the coarse quantizer (optional maintenance)."""
        self.rebuild(vectors)

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        n = vectors.shape[0]
        if not self.trained:
            if n >= self.min_train_size:
                self.rebuild(vectors)
            return
        new_rows = vectors[n - n_new :]
        assignments = np.argmin(_metric_distances(new_rows, self._centroids, self.metric), axis=1)
        self._assignments = np.concatenate([self._assignments, assignments])
        self._cells = None

    def remove(self, kept_mask: np.ndarray) -> None:
        if not self.trained:
            return
        self._assignments = self._assignments[kept_mask]
        self._cells = None

    # --------------------------------------------------------------- search
    def search(
        self, vectors: np.ndarray, queries: np.ndarray, k: int, *, chunk_size: int = 512
    ) -> Tuple[np.ndarray, np.ndarray]:
        if vectors.shape[0] == 0:
            raise ValueError("cannot search an empty index")
        k = min(int(k), vectors.shape[0])
        if not self.trained:
            return ExactIndex(self.metric).search(vectors, queries, k)

        vectors = np.asarray(vectors, dtype=np.float64)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_cells = self._centroids.shape[0]
        n_probe = min(self.n_probe, n_cells)
        cells = self._cell_lists()
        cell_sizes = np.array([len(cell) for cell in cells], dtype=np.int64)
        euclidean = self.metric == "euclidean"
        vectors_sq = np.einsum("ij,ij->i", vectors, vectors) if euclidean else None

        out_d = np.empty((queries.shape[0], k))
        out_i = np.empty((queries.shape[0], k), dtype=np.int64)
        for start in range(0, queries.shape[0], chunk_size):
            chunk = queries[start : start + chunk_size]
            n_chunk = chunk.shape[0]
            centroid_d = _metric_distances(chunk, self._centroids, self.metric)
            if n_probe >= n_cells:
                probe = np.broadcast_to(np.arange(n_cells), centroid_d.shape).copy()
            else:
                probe = np.argpartition(centroid_d, n_probe - 1, axis=1)[:, :n_probe]

            # Each query's candidate row is the concatenation of its probed
            # cells; distances are filled cell-major so every probed cell
            # costs one (queries-probing-it, cell-members) cdist GEMM
            # instead of a per-query gather.
            sizes = cell_sizes[probe]  # (n_chunk, n_probe)
            offsets = np.concatenate(
                [np.zeros((n_chunk, 1), dtype=np.int64), np.cumsum(sizes, axis=1)[:, :-1]], axis=1
            )
            width = max(int(sizes.sum(axis=1).max()), k)
            cand = np.full((n_chunk, width), -1, dtype=np.int64)
            distances = np.full((n_chunk, width), np.inf)

            flat_queries = np.repeat(np.arange(n_chunk), n_probe)
            flat_cells = probe.ravel()
            flat_offsets = offsets.ravel()
            grouping = np.argsort(flat_cells, kind="stable")
            boundaries = np.searchsorted(flat_cells[grouping], np.arange(n_cells + 1))
            for cell in np.unique(flat_cells):
                members = cells[cell]
                if members.size == 0:
                    continue
                group = grouping[boundaries[cell] : boundaries[cell + 1]]
                probing = flat_queries[group]
                cols = flat_offsets[group][:, None] + np.arange(members.size)[None, :]
                cand[probing[:, None], cols] = members
                if euclidean:
                    block = squared_euclidean_distances(
                        chunk[probing], vectors[members], vectors_sq[members]
                    )
                else:
                    block = cdist(chunk[probing], vectors[members], metric=self.metric)
                distances[probing[:, None], cols] = block
            cd, ci = top_k_by_distance(distances, k)
            chunk_d = _sqrt_clamped(cd) if euclidean else cd
            chunk_i = np.take_along_axis(cand, ci, axis=1)
            # top_k broke ties by *candidate column*, which follows the
            # arbitrary probe layout; restore the documented (distance, id)
            # order over the selected k.
            tie_order = np.lexsort((chunk_i, chunk_d), axis=1)
            chunk_d = np.take_along_axis(chunk_d, tie_order, axis=1)
            chunk_i = np.take_along_axis(chunk_i, tie_order, axis=1)
            # A query whose probed cells hold fewer than k members would
            # surface padding ids; answer those rows exactly instead.
            short = np.flatnonzero((chunk_i < 0).any(axis=1))
            if short.size:
                fd, fi = ExactIndex(self.metric).search(vectors, chunk[short], k)
                chunk_d[short] = fd
                chunk_i[short] = fi
            out_d[start : start + chunk.shape[0]] = chunk_d
            out_i[start : start + chunk.shape[0]] = chunk_i
        return out_d, out_i

    def spec(self) -> Dict[str, object]:
        return {
            "kind": "ivf",
            "metric": self.metric,
            "n_cells": self.n_cells,
            "n_probe": self.n_probe,
            "min_train_size": self.min_train_size,
            "train_iters": self.train_iters,
            "seed": self.seed,
        }

    def state(self) -> Dict[str, np.ndarray]:
        if not self.trained:
            return {}
        return {"centroids": self._centroids, "assignments": self._assignments}

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        if not state:
            self._centroids = None
            self._assignments = np.empty(0, dtype=np.int64)
            self._cells = None
            return
        if set(state) != {"centroids", "assignments"}:
            # e.g. an IVF-PQ archive loaded into an IVF index: the extra
            # (or missing) arrays mean this state belongs to another kind;
            # refuse so the caller falls back to a clean rebuild.
            raise ValueError(
                f"state keys {sorted(state)} do not match a CoarseQuantizedIndex"
            )
        self._centroids = np.asarray(state["centroids"], dtype=np.float64)
        self._assignments = np.asarray(state["assignments"], dtype=np.int64)
        self._cells = None

    def memory_bytes(self) -> int:
        if not self.trained:
            return 0
        return int(self._centroids.nbytes + self._assignments.nbytes)


class ProductQuantizer:
    """Per-subspace k-means codebooks over residual vectors, uint8 codes.

    The embedding dimension is split into ``n_subspaces`` contiguous slices
    (sizes differ by at most one when it does not divide evenly) and each
    slice gets its own ``2**bits``-entry codebook trained with k-means++ on
    the residual sub-vectors.  A reference is then ``n_subspaces`` uint8
    codes — 8 bytes instead of 512 for a float64 64-dim embedding — and
    distances against a query decompose into per-subspace table lookups.
    """

    def __init__(
        self,
        n_subspaces: int = 8,
        bits: int = 8,
        *,
        train_iters: int = 10,
        seed: int = 0,
        max_train_points: int = 32768,
    ) -> None:
        if n_subspaces <= 0:
            raise ValueError("n_subspaces must be positive")
        if not 1 <= bits <= 8:
            raise ValueError("bits must be in [1, 8] (codes are stored as uint8)")
        self.n_subspaces = int(n_subspaces)
        self.bits = int(bits)
        self.train_iters = int(train_iters)
        self.seed = int(seed)
        self.max_train_points = int(max_train_points)
        self._codebooks: Optional[np.ndarray] = None  # (m, k_sub, max_sub_dim)
        self._sub_dims: Optional[np.ndarray] = None
        self._splits: Optional[np.ndarray] = None  # subspace boundaries, len m+1

    @property
    def trained(self) -> bool:
        return self._codebooks is not None

    @property
    def n_centroids(self) -> int:
        """Codebook entries per subspace (<= 2**bits for tiny train sets)."""
        if self._codebooks is None:
            raise RuntimeError("the product quantizer has not been trained")
        return self._codebooks.shape[1]

    def _boundaries(self, dim: int) -> np.ndarray:
        if self.n_subspaces > dim:
            raise ValueError(
                f"n_subspaces={self.n_subspaces} exceeds the embedding dimension {dim}"
            )
        sizes = np.full(self.n_subspaces, dim // self.n_subspaces, dtype=np.int64)
        sizes[: dim % self.n_subspaces] += 1
        return np.concatenate([[0], np.cumsum(sizes)])

    def fit(self, vectors: np.ndarray, *, rng: Optional[np.random.Generator] = None) -> None:
        """Train one codebook per subspace on (a subsample of) ``vectors``."""
        vectors = np.asarray(vectors, dtype=np.float64)
        n, dim = vectors.shape
        if n == 0:
            raise ValueError("cannot train a product quantizer on no vectors")
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        if n > self.max_train_points:
            vectors = vectors[rng.choice(n, size=self.max_train_points, replace=False)]
            n = vectors.shape[0]
        self._splits = self._boundaries(dim)
        self._sub_dims = np.diff(self._splits)
        k_sub = min(2**self.bits, n)
        max_sub = int(self._sub_dims.max())
        # One dense (m, k_sub, max_sub_dim) block; ragged tails stay zero so
        # the whole thing round-trips through a single npz array.
        self._codebooks = np.zeros((self.n_subspaces, k_sub, max_sub), dtype=np.float64)
        for j in range(self.n_subspaces):
            sub = vectors[:, self._splits[j] : self._splits[j + 1]]
            centroids, _ = _kmeans(
                sub, k_sub, metric="euclidean", n_iter=self.train_iters, seed=self.seed + j
            )
            self._codebooks[j, :, : self._sub_dims[j]] = centroids

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest-codebook-entry codes, shape ``(n, n_subspaces)`` uint8."""
        if self._codebooks is None:
            raise RuntimeError("the product quantizer has not been trained")
        vectors = np.asarray(vectors, dtype=np.float64)
        codes = np.empty((vectors.shape[0], self.n_subspaces), dtype=np.uint8)
        for j in range(self.n_subspaces):
            sub = vectors[:, self._splits[j] : self._splits[j + 1]]
            book = self._codebooks[j, :, : self._sub_dims[j]]
            codes[:, j] = np.argmin(squared_euclidean_distances(sub, book), axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Approximate vectors back from codes (codebook entry per slice)."""
        if self._codebooks is None:
            raise RuntimeError("the product quantizer has not been trained")
        codes = np.asarray(codes)
        out = np.empty((codes.shape[0], int(self._splits[-1])), dtype=np.float64)
        for j in range(self.n_subspaces):
            book = self._codebooks[j, :, : self._sub_dims[j]]
            out[:, self._splits[j] : self._splits[j + 1]] = book[codes[:, j]]
        return out

    def query_tables(self, queries: np.ndarray) -> np.ndarray:
        """Per-query inner products with every codebook entry, ``(n, m, k_sub)``.

        This is the only per-query cost of ADC that touches the embedding
        dimension; everything cell-dependent is precomputed at train time.
        """
        if self._codebooks is None:
            raise RuntimeError("the product quantizer has not been trained")
        queries = np.asarray(queries, dtype=np.float64)
        tables = np.empty((queries.shape[0], self.n_subspaces, self.n_centroids))
        for j in range(self.n_subspaces):
            sub = queries[:, self._splits[j] : self._splits[j + 1]]
            tables[:, j, :] = sub @ self._codebooks[j, :, : self._sub_dims[j]].T
        return tables

    def memory_bytes(self) -> int:
        return int(self._codebooks.nbytes) if self._codebooks is not None else 0


class IVFPQIndex(NearestNeighbourIndex):
    """IVF coarse cells whose members are product-quantized residuals.

    Search is asymmetric distance computation (ADC) over the probed cells'
    code lists.  With ``x ~ c + e`` (coarse centroid plus decoded residual)
    the squared distance decomposes as::

        d2(q, x) = |q - c|^2 + sum_j [ |e_j|^2 + 2 c_j.e_j ] - 2 sum_j q_j.e_j

    The middle term depends only on the *reference row* (its cell and codes
    are fixed), so it collapses to one precomputed float per reference
    (``member_const``); the last term is one small GEMM per query batch
    (:meth:`ProductQuantizer.query_tables`); scanning the probed candidates
    is then ``m`` uint8 table gathers per member — flat across every probed
    cell at once, no per-cell inner loop — instead of a float GEMM over raw
    vectors.  ``rerank > 0`` re-scores the
    ``max(k, rerank)`` best ADC candidates against the raw vectors, which
    restores exact ``(distance, id)`` ranking *over that candidate set*
    (tie-break semantics included): results match :class:`ExactIndex`
    bit-for-bit exactly when the true top-k sit inside the re-ranked pool
    — guaranteed by margin rather than by construction, so keep ``rerank``
    several times ``k`` (with ``n_probe >= n_cells`` and the default
    ``rerank=64`` at ``k <= 10``, the agreement is exact on clustered
    corpora; see the tests).  With ``rerank == 0`` the index never touches raw vectors
    after training, which is what lets the serving layer publish only codes
    and codebooks (~16-32x smaller) into shared memory.

    ``add`` assigns new vectors to their nearest existing centroid and
    encodes their residuals with the trained codebooks; ``remove`` compacts
    the code buffers.  Codes and assignments live in amortised-doubling
    buffers mirroring the reference store's growth scheme, so adaptation
    churn stays O(changed rows).
    """

    _COARSE_TRAIN_CAP = 131072  # k-means sample cap; assignment stays exact

    def __init__(
        self,
        n_cells: Optional[int] = None,
        n_probe: int = 16,
        *,
        n_subspaces: int = 8,
        bits: int = 8,
        rerank: int = 64,
        metric: str = "euclidean",
        min_train_size: int = 256,
        train_iters: int = 10,
        seed: int = 0,
    ) -> None:
        if metric != "euclidean":
            raise ValueError("IVFPQIndex supports only the euclidean metric (ADC is an L2 construct)")
        if n_cells is not None and n_cells <= 0:
            raise ValueError("n_cells must be positive")
        if n_probe <= 0:
            raise ValueError("n_probe must be positive")
        if rerank < 0:
            raise ValueError("rerank must be >= 0 (0 disables exact re-ranking)")
        self.metric = metric
        self.n_cells = n_cells
        self.n_probe = int(n_probe)
        self.rerank = int(rerank)
        self.min_train_size = int(min_train_size)
        self.train_iters = int(train_iters)
        self.seed = int(seed)
        self.pq = ProductQuantizer(
            n_subspaces=n_subspaces, bits=bits, train_iters=train_iters, seed=seed
        )
        self._centroids: Optional[np.ndarray] = None
        self._assign_buffer: np.ndarray = np.empty(0, dtype=np.int32)
        self._code_buffer: np.ndarray = np.empty((0, self.pq.n_subspaces), dtype=np.uint8)
        # Per-reference constant of the ADC decomposition: |e|^2 + 2 c.e.
        self._const_buffer: np.ndarray = np.empty(0, dtype=np.float32)
        self._n = 0
        self._cells: Optional[list] = None

    # ---------------------------------------------------------------- state
    @property
    def trained(self) -> bool:
        return self._centroids is not None

    @property
    def codes(self) -> np.ndarray:
        """The live ``(N, n_subspaces)`` uint8 code rows (a read-only view)."""
        view = self._code_buffer[: self._n]
        view.flags.writeable = False
        return view

    @property
    def needs_vectors(self) -> bool:
        # Trained and not re-ranking: the whole search runs on codes, so
        # serving can ship codes + codebooks only (~16-32x smaller).
        return not self.trained or self.rerank > 0

    def _resolve_n_cells(self, n: int) -> int:
        if self.n_cells is not None:
            return min(self.n_cells, n)
        # Finer cells than the IVF default (sqrt(N)): the uint8 scan makes
        # probing cheap per candidate and the per-query LUT cost is
        # cell-independent, so smaller cells buy both smaller residuals
        # (better codes) and fewer candidates per probe.
        return max(1, min(n, int(np.ceil(9.0 * np.sqrt(n)))))

    def _cell_lists(self) -> list:
        if self._cells is None:
            assignments = self._assign_buffer[: self._n]
            order = np.argsort(assignments, kind="stable")
            sorted_cells = assignments[order]
            boundaries = np.searchsorted(sorted_cells, np.arange(self._centroids.shape[0] + 1))
            self._cells = [
                order[boundaries[c] : boundaries[c + 1]] for c in range(self._centroids.shape[0])
            ]
        return self._cells

    def _reserve(self, extra: int) -> None:
        needed = self._n + extra
        capacity = self._assign_buffer.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(32, capacity)
        while new_capacity < needed:
            new_capacity *= 2
        assignments = np.empty(new_capacity, dtype=np.int32)
        assignments[: self._n] = self._assign_buffer[: self._n]
        self._assign_buffer = assignments
        codes = np.empty((new_capacity, self._code_buffer.shape[1]), dtype=np.uint8)
        codes[: self._n] = self._code_buffer[: self._n]
        self._code_buffer = codes
        consts = np.empty(new_capacity, dtype=np.float32)
        consts[: self._n] = self._const_buffer[: self._n]
        self._const_buffer = consts

    def _assign_to_centroids(self, vectors: np.ndarray, chunk_rows: int = 4096) -> np.ndarray:
        """Nearest-centroid assignment, chunked so the (rows, n_cells)
        distance block stays cache-sized at large N."""
        out = np.empty(vectors.shape[0], dtype=np.int64)
        for start in range(0, vectors.shape[0], chunk_rows):
            block = vectors[start : start + chunk_rows]
            out[start : start + block.shape[0]] = np.argmin(
                squared_euclidean_distances(block, self._centroids), axis=1
            )
        return out

    def _member_consts(self, codes: np.ndarray, assignments: np.ndarray) -> np.ndarray:
        """``|e|^2 + 2 c.e`` per row from decoded residuals (float32)."""
        decoded = self.pq.decode(codes)
        consts = np.einsum("ij,ij->i", decoded, decoded)
        consts += 2.0 * np.einsum("ij,ij->i", decoded, self._centroids[assignments])
        return consts.astype(np.float32)

    # ------------------------------------------------------------- mutation
    def rebuild(self, vectors: np.ndarray) -> None:
        n = vectors.shape[0]
        if n < self.min_train_size:
            self._centroids = None
            self._assign_buffer = np.empty(0, dtype=np.int32)
            self._code_buffer = np.empty((0, self.pq.n_subspaces), dtype=np.uint8)
            self._const_buffer = np.empty(0, dtype=np.float32)
            self._n = 0
            self._cells = None
            return
        vectors = np.asarray(vectors, dtype=np.float64)
        n_cells = self._resolve_n_cells(n)
        if n > self._COARSE_TRAIN_CAP:
            # Train cells on a sample (they only need to cover the density);
            # every reference still gets an exact assignment below.
            rng = np.random.default_rng(self.seed)
            sample = vectors[rng.choice(n, size=self._COARSE_TRAIN_CAP, replace=False)]
            self._centroids, _ = _kmeans(
                sample, n_cells, metric="euclidean", n_iter=self.train_iters, seed=self.seed
            )
            assignments = self._assign_to_centroids(vectors)
        else:
            self._centroids, assignments = _kmeans(
                vectors, n_cells, metric="euclidean", n_iter=self.train_iters, seed=self.seed
            )
        residuals = vectors - self._centroids[assignments]
        self.pq.fit(residuals, rng=np.random.default_rng(self.seed + 1))
        codes = self.pq.encode(residuals)
        self._assign_buffer = assignments.astype(np.int32)
        self._code_buffer = codes
        self._const_buffer = self._member_consts(codes, assignments)
        self._n = n
        self._cells = None

    def refit(self, vectors: np.ndarray) -> None:
        """Explicitly re-train cells and codebooks (optional maintenance)."""
        self.rebuild(vectors)

    def add(self, vectors: np.ndarray, n_new: int) -> None:
        n = vectors.shape[0]
        if not self.trained:
            if n >= self.min_train_size:
                self.rebuild(vectors)
            return
        new_rows = np.asarray(vectors[n - n_new :], dtype=np.float64)
        assignments = np.argmin(
            squared_euclidean_distances(new_rows, self._centroids), axis=1
        )
        codes = self.pq.encode(new_rows - self._centroids[assignments])
        self._reserve(n_new)
        self._assign_buffer[self._n : self._n + n_new] = assignments
        self._code_buffer[self._n : self._n + n_new] = codes
        self._const_buffer[self._n : self._n + n_new] = self._member_consts(codes, assignments)
        self._n += n_new
        self._cells = None

    def remove(self, kept_mask: np.ndarray) -> None:
        if not self.trained:
            return
        kept = int(np.asarray(kept_mask).sum())
        self._assign_buffer[:kept] = self._assign_buffer[: self._n][kept_mask]
        self._code_buffer[:kept] = self._code_buffer[: self._n][kept_mask]
        self._const_buffer[:kept] = self._const_buffer[: self._n][kept_mask]
        self._n = kept
        self._cells = None

    # --------------------------------------------------------------- search
    def _adc_select(
        self,
        coarse_d2: np.ndarray,
        probe: np.ndarray,
        lut: np.ndarray,
        n_select: int,
    ) -> Tuple[list, list]:
        """ADC top-``n_select`` per query over the probed cells' code lists.

        One flat pass over every (query, probed cell) member: candidate ids,
        their ADC distances and the per-query segmentation all come from
        whole-array operations; only the final ``argpartition`` runs per
        query (on its own small candidate segment), so there is no per-cell
        inner loop and no padded candidate matrix.  Returns per-query
        ``(ids, adc_distances)`` lists ordered by ``(adc, id)``.
        """
        n_chunk = probe.shape[0]
        cells = self._cell_lists()
        cell_sizes = np.array([len(cell) for cell in cells], dtype=np.int64)
        m = self.pq.n_subspaces
        k_sub = self.pq.n_centroids

        flat_queries = np.repeat(np.arange(n_chunk), probe.shape[1])
        flat_cells = probe.ravel()
        flat_sizes = cell_sizes[flat_cells]
        total = int(flat_sizes.sum())
        if total == 0:
            return [np.empty(0, dtype=np.int64)] * n_chunk, [np.empty(0)] * n_chunk
        cand_ids = np.concatenate([cells[cell] for cell in flat_cells])
        rows = np.repeat(flat_queries, flat_sizes)

        # ADC: coarse |q-c|^2 + member const - 2 sum_j LUT[q, j, code_j].
        adc = np.repeat(
            coarse_d2[flat_queries, flat_cells].astype(np.float32), flat_sizes
        )
        adc += self._const_buffer[cand_ids]
        idx = self._code_buffer[cand_ids].astype(np.int32)
        idx += np.arange(m, dtype=np.int32)[None, :] * k_sub
        idx += (rows * (m * k_sub)).astype(np.int32)[:, None]
        adc -= 2.0 * lut.ravel().take(idx).sum(axis=1, dtype=np.float32)

        # Candidates are query-major, so each query owns one contiguous
        # segment; select within it.
        per_query = flat_sizes.reshape(n_chunk, -1).sum(axis=1)
        bounds = np.concatenate([[0], np.cumsum(per_query)])
        ids_out: list = []
        adc_out: list = []
        for q in range(n_chunk):
            seg_d = adc[bounds[q] : bounds[q + 1]]
            seg_i = cand_ids[bounds[q] : bounds[q + 1]]
            if seg_d.size > n_select:
                part = np.argpartition(seg_d, n_select - 1)[:n_select]
                seg_d = seg_d[part]
                seg_i = seg_i[part]
            order = np.lexsort((seg_i, seg_d))
            ids_out.append(seg_i[order])
            adc_out.append(seg_d[order])
        return ids_out, adc_out

    def search(
        self,
        vectors: Optional[np.ndarray],
        queries: np.ndarray,
        k: int,
        *,
        chunk_size: int = 1024,
    ) -> Tuple[np.ndarray, np.ndarray]:
        if not self.trained:
            if vectors is None:
                raise ValueError("an untrained IVFPQIndex cannot search without raw vectors")
            return ExactIndex(self.metric).search(vectors, queries, k)
        if self.rerank > 0 and vectors is None:
            raise ValueError("rerank > 0 requires the raw vectors; pass them or set rerank=0")
        n = self._n
        if n == 0:
            raise ValueError("cannot search an empty index")
        k = min(int(k), n)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        n_cells = self._centroids.shape[0]
        n_probe = min(self.n_probe, n_cells)
        n_select = max(k, self.rerank) if self.rerank > 0 else k

        out_d = np.empty((queries.shape[0], k))
        out_i = np.empty((queries.shape[0], k), dtype=np.int64)
        for start in range(0, queries.shape[0], chunk_size):
            chunk = queries[start : start + chunk_size]
            coarse_d2 = squared_euclidean_distances(chunk, self._centroids)
            if n_probe >= n_cells:
                probe = np.broadcast_to(np.arange(n_cells), coarse_d2.shape).copy()
            else:
                probe = np.argpartition(coarse_d2, n_probe - 1, axis=1)[:, :n_probe]
            lut = self.pq.query_tables(chunk).astype(np.float32)
            cand_lists, adc_lists = self._adc_select(coarse_d2, probe, lut, n_select)

            # Queries whose probed cells hold fewer than k members re-scan
            # with every cell probed (no raw vectors needed), like the IVF
            # index's exact fallback but staying inside the codes.
            if n_probe < n_cells:
                short = [q for q in range(chunk.shape[0]) if cand_lists[q].size < k]
                if short:
                    full_probe = np.broadcast_to(
                        np.arange(n_cells), (len(short), n_cells)
                    ).copy()
                    f_cands, f_adcs = self._adc_select(
                        coarse_d2[short], full_probe, lut[short], n_select
                    )
                    for position, q in enumerate(short):
                        cand_lists[q] = f_cands[position]
                        adc_lists[q] = f_adcs[position]

            if self.rerank > 0:
                # Exact re-rank: true squared distances for the ADC top
                # candidates, then (distance, id) order over them.
                widths = np.array([ids.size for ids in cand_lists], dtype=np.int64)
                width = int(widths.max())
                cand = np.zeros((chunk.shape[0], width), dtype=np.int64)
                valid = np.arange(width)[None, :] < widths[:, None]
                for q, ids in enumerate(cand_lists):
                    cand[q, : ids.size] = ids
                cand_vectors = np.asarray(vectors)[cand]
                inner = np.einsum("qd,qrd->qr", chunk, cand_vectors)
                # Candidate norms come from the gathered block — never an
                # O(N) pass over the full store per search call.
                cand_sq = np.einsum("qrd,qrd->qr", cand_vectors, cand_vectors)
                exact_d2 = (
                    np.einsum("ij,ij->i", chunk, chunk)[:, None] + cand_sq - 2.0 * inner
                )
                exact_d2[~valid] = np.inf
                rd, ri = top_k_by_distance(exact_d2, k)
                chunk_i = np.take_along_axis(cand, ri, axis=1)
                chunk_d = _sqrt_clamped(rd)
                # (distance, id) order over the selected k (top_k broke ties
                # by candidate column, not id).
                tie_order = np.lexsort((chunk_i, chunk_d), axis=1)
                chunk_d = np.take_along_axis(chunk_d, tie_order, axis=1)
                chunk_i = np.take_along_axis(chunk_i, tie_order, axis=1)
            else:
                chunk_d = np.empty((chunk.shape[0], k))
                chunk_i = np.empty((chunk.shape[0], k), dtype=np.int64)
                for q in range(chunk.shape[0]):
                    chunk_i[q] = cand_lists[q][:k]
                    chunk_d[q] = adc_lists[q][:k]
                chunk_d = _sqrt_clamped(np.maximum(chunk_d, 0.0))
            out_d[start : start + chunk.shape[0]] = chunk_d
            out_i[start : start + chunk.shape[0]] = chunk_i
        return out_d, out_i

    # ---------------------------------------------------------- persistence
    def spec(self) -> Dict[str, object]:
        return {
            "kind": "ivfpq",
            "metric": self.metric,
            "n_cells": self.n_cells,
            "n_probe": self.n_probe,
            "n_subspaces": self.pq.n_subspaces,
            "bits": self.pq.bits,
            "rerank": self.rerank,
            "min_train_size": self.min_train_size,
            "train_iters": self.train_iters,
            "seed": self.seed,
        }

    def state(self) -> Dict[str, np.ndarray]:
        if not self.trained:
            return {}
        return {
            "centroids": self._centroids,
            "assignments": self._assign_buffer[: self._n],
            "codes": self._code_buffer[: self._n],
            "member_consts": self._const_buffer[: self._n],
            "codebooks": self.pq._codebooks,
        }

    def load_state(self, state: Dict[str, np.ndarray]) -> None:
        """Adopt trained structures without re-running k-means.

        Arrays are adopted as-is (views into a shared-memory segment are
        fine: search never writes; a later ``add`` re-allocates through the
        amortised-doubling reserve before writing).
        """
        if not state:
            self._centroids = None
            self._assign_buffer = np.empty(0, dtype=np.int32)
            self._code_buffer = np.empty((0, self.pq.n_subspaces), dtype=np.uint8)
            self._const_buffer = np.empty(0, dtype=np.float32)
            self._n = 0
            self._cells = None
            return
        expected = {"centroids", "assignments", "codes", "member_consts", "codebooks"}
        if set(state) != expected:
            raise ValueError(f"state keys {sorted(state)} do not match an IVFPQIndex")
        codes = np.asarray(state["codes"], dtype=np.uint8)
        codebooks = np.asarray(state["codebooks"], dtype=np.float64)
        if codes.ndim != 2 or codes.shape[1] != self.pq.n_subspaces:
            raise ValueError(
                f"state codes have {codes.shape[-1] if codes.ndim == 2 else '?'} subspaces, "
                f"this index is configured for {self.pq.n_subspaces}"
            )
        if codebooks.shape[0] != self.pq.n_subspaces or codebooks.shape[1] > 2**self.pq.bits:
            raise ValueError(
                "state codebooks do not match this index's n_subspaces/bits configuration"
            )
        self._centroids = np.asarray(state["centroids"], dtype=np.float64)
        self._assign_buffer = np.asarray(state["assignments"], dtype=np.int32)
        self._code_buffer = codes
        self._const_buffer = np.asarray(state["member_consts"], dtype=np.float32)
        self._n = self._code_buffer.shape[0]
        if self._assign_buffer.shape[0] != self._n or self._const_buffer.shape[0] != self._n:
            raise ValueError(
                "inconsistent IVFPQ state: codes, assignments and member_consts disagree on N"
            )
        self._cells = None
        pq = self.pq
        pq._codebooks = codebooks
        pq._splits = pq._boundaries(self._centroids.shape[1])
        pq._sub_dims = np.diff(pq._splits)

    def memory_bytes(self) -> int:
        if not self.trained:
            return 0
        return int(
            self._code_buffer[: self._n].nbytes
            + self._assign_buffer[: self._n].nbytes
            + self._const_buffer[: self._n].nbytes
            + self._centroids.nbytes
            + self.pq.memory_bytes()
        )


def index_from_spec(spec: Optional[Dict[str, object]]) -> NearestNeighbourIndex:
    """Re-create an index from its :meth:`NearestNeighbourIndex.spec` dict."""
    if spec is None:
        return ExactIndex()
    kind = spec.get("kind", "exact")
    if kind == "exact":
        return ExactIndex(metric=str(spec.get("metric", "euclidean")))
    if kind == "ivf":
        n_cells = spec.get("n_cells")
        return CoarseQuantizedIndex(
            n_cells=int(n_cells) if n_cells is not None else None,
            n_probe=int(spec.get("n_probe", 8)),
            metric=str(spec.get("metric", "euclidean")),
            min_train_size=int(spec.get("min_train_size", 256)),
            train_iters=int(spec.get("train_iters", 10)),
            seed=int(spec.get("seed", 0)),
        )
    if kind == "ivfpq":
        n_cells = spec.get("n_cells")
        return IVFPQIndex(
            n_cells=int(n_cells) if n_cells is not None else None,
            n_probe=int(spec.get("n_probe", 16)),
            n_subspaces=int(spec.get("n_subspaces", 8)),
            bits=int(spec.get("bits", 8)),
            rerank=int(spec.get("rerank", 64)),
            metric=str(spec.get("metric", "euclidean")),
            min_train_size=int(spec.get("min_train_size", 256)),
            train_iters=int(spec.get("train_iters", 10)),
            seed=int(spec.get("seed", 0)),
        )
    raise ValueError(f"unknown index kind {kind!r}")
