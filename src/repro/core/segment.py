"""The ``RSG1`` segment: one binary format for every storage consumer.

A segment is a self-describing container of named numpy arrays — IVF-PQ
codes, codebooks, centroids, member constants, drift buffers, label codes
and (optionally) raw embedding vectors — laid out so the *same bytes* can
be consumed three ways:

* **mmap'd read-only from disk** for cold shards: the ADC scan reads codes
  straight off the page cache, so a shard costs no resident memory beyond
  what the kernel chooses to cache (:func:`open_segment`);
* **copied into POSIX shared memory** for hot shards: the serving layer's
  :class:`~repro.serving.sharded_store.SegmentPublisher` writes a segment
  into a shm block and workers attach it zero-copy
  (:func:`write_segment` / :func:`read_segment`);
* **rsync'd as the deployment archive**: a segment file is a single flat
  blob with a leading magic and a trailing-stable layout, safe to copy
  between hosts (:func:`write_segment_file` — atomic via a temp file and
  ``os.replace``).

The byte-level layout (fixed 64-byte header, fixed 160-byte array-table
entries, page-aligned data region, 64-byte-aligned arrays, CRC-32 over
everything but the checksum field itself) is specified — and enforced by
``tests/test_docs.py`` — in ``docs/segment-format.md``.  There is no
pickle anywhere: object dtypes are rejected at write time, so a segment
can be parsed safely regardless of provenance.
"""

from __future__ import annotations

import contextlib
import mmap
import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Dict, Mapping, Union

import numpy as np

PathLike = Union[str, os.PathLike]

MAGIC = b"RSG1"
FORMAT_VERSION = 1

#: ``magic, version, flags, n_arrays, data_offset, total_size, checksum``
#: padded with zeros to exactly 64 bytes.
HEADER = struct.Struct("<4sBBHQQI36x")
#: ``name, dtype, offset, nbytes, ndim, shape[8]`` — one fixed-size entry
#: per array, packed back to back right after the header.
ENTRY = struct.Struct("<64s8sQQI4x8Q")

HEADER_SIZE = HEADER.size
ENTRY_SIZE = ENTRY.size
#: Byte offset of the checksum field inside the header (the CRC is
#: computed with these four bytes zeroed).
CHECKSUM_OFFSET = 24
#: The data region starts on a page boundary so arrays can be mmap'd with
#: page-granular protection and read straight off the page cache.
PAGE_ALIGNMENT = 4096
#: Every array starts on a 64-byte boundary (cache line / SIMD friendly).
ARRAY_ALIGNMENT = 64
MAX_NAME_BYTES = 64
MAX_DTYPE_BYTES = 8
MAX_NDIM = 8


class SegmentFormatError(ValueError):
    """A buffer or file is not a valid ``RSG1`` segment (bad magic,
    truncation, checksum mismatch, or an undecodable array table)."""


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def _validated_arrays(arrays: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Normalise and vet the arrays a segment is asked to hold."""
    out: Dict[str, np.ndarray] = {}
    for name, array in arrays.items():
        if not isinstance(name, str) or not name:
            raise SegmentFormatError(f"array names must be non-empty strings, got {name!r}")
        encoded = name.encode("utf-8")
        if len(encoded) > MAX_NAME_BYTES or b"\x00" in encoded:
            raise SegmentFormatError(
                f"array name {name!r} must encode to <= {MAX_NAME_BYTES} UTF-8 bytes "
                "and contain no NUL"
            )
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise SegmentFormatError(
                f"array {name!r} has an object dtype; segments are pickle-free"
            )
        token = array.dtype.str.encode("ascii")
        if len(token) > MAX_DTYPE_BYTES:
            raise SegmentFormatError(f"array {name!r} dtype token {array.dtype.str!r} too long")
        if array.ndim > MAX_NDIM:
            raise SegmentFormatError(
                f"array {name!r} has {array.ndim} dimensions; the format caps at {MAX_NDIM}"
            )
        out[name] = array
    return out


def _layout(arrays: Dict[str, np.ndarray]):
    """``(entries, data_offset, total_size)`` for a validated array dict."""
    data_offset = _align(HEADER_SIZE + len(arrays) * ENTRY_SIZE, PAGE_ALIGNMENT)
    entries = []
    cursor = data_offset
    for name, array in arrays.items():
        offset = _align(cursor, ARRAY_ALIGNMENT)
        entries.append((name, array, offset))
        cursor = offset + array.nbytes
    return entries, data_offset, cursor


def segment_size(arrays: Mapping[str, np.ndarray]) -> int:
    """Exact byte size of the segment :func:`write_segment` would produce
    (what a shared-memory block must be allocated at)."""
    _, _, total = _layout(_validated_arrays(arrays))
    return total


def _checksum(view: memoryview, total: int) -> int:
    """CRC-32 over the whole segment with the checksum field zeroed."""
    header = bytes(view[:HEADER_SIZE])
    zeroed = header[:CHECKSUM_OFFSET] + b"\x00\x00\x00\x00" + header[CHECKSUM_OFFSET + 4 :]
    return zlib.crc32(view[HEADER_SIZE:total], zlib.crc32(zeroed)) & 0xFFFFFFFF


def write_segment(buffer, arrays: Mapping[str, np.ndarray]) -> int:
    """Serialise ``arrays`` into ``buffer`` (a writable buffer of at least
    :func:`segment_size` bytes — a ``SharedMemory.buf``, an ``mmap`` or a
    ``bytearray``); returns the total bytes written.

    Every padding byte is zeroed, so two writes of the same arrays produce
    bit-identical segments regardless of the backing medium.
    """
    arrays = _validated_arrays(arrays)
    entries, data_offset, total = _layout(arrays)
    view = memoryview(buffer).cast("B")
    if view.readonly:
        raise SegmentFormatError("cannot write a segment into a read-only buffer")
    if len(view) < total:
        raise SegmentFormatError(
            f"buffer holds {len(view)} bytes but the segment needs {total}"
        )
    view[HEADER_SIZE:data_offset] = b"\x00" * (data_offset - HEADER_SIZE)
    position = HEADER_SIZE
    for name, array, offset in entries:
        shape = tuple(int(side) for side in array.shape) + (0,) * (MAX_NDIM - array.ndim)
        ENTRY.pack_into(
            view,
            position,
            name.encode("utf-8"),
            array.dtype.str.encode("ascii"),
            offset,
            array.nbytes,
            array.ndim,
            *shape,
        )
        position += ENTRY_SIZE
    cursor = data_offset
    for name, array, offset in entries:
        view[cursor:offset] = b"\x00" * (offset - cursor)
        if array.nbytes:
            target = np.ndarray(array.shape, dtype=array.dtype, buffer=view, offset=offset)
            target[...] = array
        cursor = offset + array.nbytes
    HEADER.pack_into(view, 0, MAGIC, FORMAT_VERSION, 0, len(arrays), data_offset, total, 0)
    HEADER.pack_into(
        view, 0, MAGIC, FORMAT_VERSION, 0, len(arrays), data_offset, total, _checksum(view, total)
    )
    return total


def pack_segment(arrays: Mapping[str, np.ndarray]) -> bytes:
    """The segment as a standalone ``bytes`` blob (in-memory consumer)."""
    buffer = bytearray(segment_size(arrays))
    write_segment(buffer, arrays)
    return bytes(buffer)


def read_segment(buffer, *, verify: bool = True, copy: bool = False) -> Dict[str, np.ndarray]:
    """Parse a segment out of any readable buffer into named arrays.

    By default the arrays are zero-copy read-only views into ``buffer``
    (each view keeps the buffer alive); pass ``copy=True`` for standalone
    arrays.  ``verify=False`` skips the CRC — only appropriate when the
    producer and consumer share a memory barrier, e.g. the same process.
    """
    view = memoryview(buffer).cast("B")
    if len(view) < HEADER_SIZE:
        raise SegmentFormatError(f"truncated segment: {len(view)} bytes, header needs {HEADER_SIZE}")
    magic, version, _flags, n_arrays, data_offset, total, checksum = HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise SegmentFormatError(f"bad magic {bytes(magic)!r}; expected {MAGIC!r}")
    if version != FORMAT_VERSION:
        raise SegmentFormatError(f"unsupported segment version {version}")
    if total > len(view):
        raise SegmentFormatError(f"truncated segment: header claims {total} bytes, buffer holds {len(view)}")
    table_end = HEADER_SIZE + n_arrays * ENTRY_SIZE
    if table_end > data_offset or data_offset > total:
        raise SegmentFormatError("segment header layout offsets are inconsistent")
    if verify and _checksum(view, total) != checksum:
        raise SegmentFormatError("segment checksum mismatch: the bytes are corrupt")
    arrays: Dict[str, np.ndarray] = {}
    position = HEADER_SIZE
    for _ in range(n_arrays):
        fields = ENTRY.unpack_from(view, position)
        position += ENTRY_SIZE
        name_raw, dtype_raw, offset, nbytes, ndim = fields[:5]
        shape = fields[5:]
        try:
            name = name_raw.rstrip(b"\x00").decode("utf-8")
            dtype = np.dtype(dtype_raw.rstrip(b"\x00").decode("ascii"))
        except (UnicodeDecodeError, TypeError, ValueError) as error:
            raise SegmentFormatError(f"undecodable array-table entry: {error}") from error
        if not name or name in arrays or ndim > MAX_NDIM:
            raise SegmentFormatError(f"invalid array-table entry for {name!r}")
        shape = tuple(int(side) for side in shape[:ndim])
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if ndim else dtype.itemsize
        if expected != nbytes or offset < data_offset or offset + nbytes > total:
            raise SegmentFormatError(f"array {name!r} does not fit the declared segment layout")
        array = np.ndarray(shape, dtype=dtype, buffer=view, offset=offset)
        if copy:
            array = array.copy()
        elif not view.readonly:
            array.flags.writeable = False
        arrays[name] = array
    return arrays


class MappedSegment:
    """A segment mmap'd read-only from disk (the cold-shard read path).

    ``arrays`` are zero-copy views over the page cache.  Closing while
    views are still referenced is best-effort: the mapping is released when
    the last view is garbage collected.
    """

    def __init__(self, path: Path, mapped: mmap.mmap, arrays: Dict[str, np.ndarray]) -> None:
        self.path = path
        self.arrays = arrays
        self._mapped = mapped

    @property
    def nbytes(self) -> int:
        """Size of the mapped file in bytes."""
        return len(self._mapped)

    def close(self) -> None:
        """Release the mapping (deferred to GC if views are still alive)."""
        with contextlib.suppress(BufferError, ValueError):
            self._mapped.close()

    def __enter__(self) -> "MappedSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_segment(path: PathLike, *, verify: bool = True) -> MappedSegment:
    """mmap a segment file read-only and parse its arrays zero-copy."""
    path = Path(path)
    with open(path, "rb") as handle:
        try:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as error:  # zero-length file
            raise SegmentFormatError(f"truncated segment file {path}: {error}") from error
    try:
        arrays = read_segment(mapped, verify=verify)
    except BaseException:
        # The in-flight exception's traceback can still reference buffer
        # views of the mapping; GC releases it once the error is handled.
        with contextlib.suppress(BufferError):
            mapped.close()
        raise
    return MappedSegment(path, mapped, arrays)


def load_segment_file(path: PathLike, *, verify: bool = True) -> Dict[str, np.ndarray]:
    """Read a segment file into standalone (owned) arrays and release it."""
    segment = open_segment(path, verify=verify)
    try:
        return {name: array.copy() for name, array in segment.arrays.items()}
    finally:
        segment.close()


def write_segment_file(path: PathLike, arrays: Mapping[str, np.ndarray]) -> Path:
    """Atomically write a segment file: the bytes land in a temp file in
    the same directory and are renamed over ``path`` with ``os.replace``,
    so a crash mid-write never corrupts an existing archive."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = _validated_arrays(arrays)
    total = segment_size(arrays)
    descriptor, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(descriptor, "r+b") as handle:
            handle.truncate(total)
            with mmap.mmap(handle.fileno(), total) as mapped:
                write_segment(mapped, arrays)
                mapped.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def is_segment_file(path: PathLike) -> bool:
    """Whether ``path`` exists and starts with the ``RSG1`` magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
