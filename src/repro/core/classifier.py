"""Proximity-based classification of embeddings (Section IV-B.2).

The classifier attributes an unlabelled embedding to webpages by looking at
the labelled reference points in its neighbourhood: the k nearest
references vote, and the ranked vote counts give the top-n prediction list
the evaluation uses.  The paper uses k = 250 with Euclidean distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.spatial.distance import cdist

from repro.config import ClassifierConfig
from repro.core.reference_store import ReferenceStore


@dataclass
class Prediction:
    """The ranked label list produced for one classified trace."""

    ranked_labels: List[str]
    scores: List[float]

    def top(self, n: int = 1) -> List[str]:
        if n <= 0:
            raise ValueError("n must be positive")
        return self.ranked_labels[:n]

    def contains(self, label: str, n: int) -> bool:
        """Whether ``label`` appears within the top ``n`` predictions."""
        return label in self.ranked_labels[:n]

    @property
    def best(self) -> str:
        return self.ranked_labels[0]


class KNNClassifier:
    """k-nearest-neighbour classification against a reference store."""

    def __init__(self, reference_store: ReferenceStore, config: Optional[ClassifierConfig] = None) -> None:
        self.store = reference_store
        self.config = config if config is not None else ClassifierConfig()
        if self.config.k <= 0:
            raise ValueError("k must be positive")
        if self.config.distance_metric not in ("euclidean", "cosine", "cityblock"):
            raise ValueError(f"unsupported distance metric {self.config.distance_metric!r}")
        if self.config.weighting not in ("uniform", "distance"):
            raise ValueError(f"unsupported weighting {self.config.weighting!r}")

    # ----------------------------------------------------------------- predict
    def predict(self, embeddings: np.ndarray) -> List[Prediction]:
        """Rank candidate labels for each query embedding."""
        if len(self.store) == 0:
            raise RuntimeError("the reference store is empty; initialize it before classifying")
        queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        if queries.shape[1] != self.store.embedding_dim:
            raise ValueError(
                f"query embeddings have dimension {queries.shape[1]}, "
                f"store holds dimension {self.store.embedding_dim}"
            )
        k = min(self.config.k, len(self.store))
        distances = cdist(queries, self.store.embeddings, metric=self.config.distance_metric)
        labels = self.store.labels
        predictions: List[Prediction] = []
        for row in range(queries.shape[0]):
            neighbour_order = np.argsort(distances[row], kind="stable")[:k]
            votes: Dict[str, float] = {}
            for neighbour in neighbour_order:
                label = str(labels[neighbour])
                if self.config.weighting == "distance":
                    weight = 1.0 / (distances[row, neighbour] + 1e-9)
                else:
                    weight = 1.0
                votes[label] = votes.get(label, 0.0) + weight
            # Rank by votes (descending), tie-break by the distance of the
            # closest reference of that label so rankings are deterministic.
            closest: Dict[str, float] = {}
            for neighbour in neighbour_order:
                label = str(labels[neighbour])
                closest.setdefault(label, float(distances[row, neighbour]))
            ranked = sorted(votes, key=lambda label: (-votes[label], closest[label], label))
            predictions.append(Prediction(ranked_labels=ranked, scores=[votes[l] for l in ranked]))
        return predictions

    def predict_one(self, embedding: np.ndarray) -> Prediction:
        return self.predict(np.atleast_2d(embedding))[0]

    # ---------------------------------------------------------------- evaluate
    def topn_accuracy(
        self,
        embeddings: np.ndarray,
        true_labels: Sequence[str],
        ns: Sequence[int] = (1, 3, 5, 10, 20),
    ) -> Dict[int, float]:
        """Top-n accuracy of the classifier over a labelled query set."""
        true_labels = [str(label) for label in true_labels]
        predictions = self.predict(embeddings)
        if len(predictions) != len(true_labels):
            raise ValueError("number of embeddings and labels differ")
        results: Dict[int, float] = {}
        for n in ns:
            hits = sum(
                1 for prediction, label in zip(predictions, true_labels) if prediction.contains(label, n)
            )
            results[int(n)] = hits / len(true_labels)
        return results

    def guesses_needed(self, embeddings: np.ndarray, true_labels: Sequence[str]) -> np.ndarray:
        """Rank position of the true label for each query (1 = first guess).

        Labels that never appear in the ranking are assigned one more than
        the number of ranked candidates, matching the "adversary exhausted
        their guesses" interpretation used for the per-class CDFs
        (Figures 9-11).
        """
        true_labels = [str(label) for label in true_labels]
        predictions = self.predict(embeddings)
        positions = np.empty(len(predictions), dtype=np.float64)
        for index, (prediction, label) in enumerate(zip(predictions, true_labels)):
            if label in prediction.ranked_labels:
                positions[index] = prediction.ranked_labels.index(label) + 1
            else:
                positions[index] = len(prediction.ranked_labels) + 1
        return positions
