"""Proximity-based classification of embeddings (Section IV-B.2).

The classifier attributes an unlabelled embedding to webpages by looking at
the labelled reference points in its neighbourhood: the k nearest
references vote, and the ranked vote counts give the top-n prediction list
the evaluation uses.  The paper uses k = 250 with Euclidean distance.

Queries are answered through the reference store's nearest-neighbour index
(:mod:`repro.core.index`) and the voting/ranking is fully batched: votes
are accumulated with ``np.bincount`` over the store's int-encoded labels
and rankings are produced by a lexicographic sort over
``(-votes, closest-distance, label)`` — the same deterministic tie-break as
the original per-query Python voting loop, with bit-identical rankings on
the equivalence fuzz corpus (uniform-weighting vote counts are exact
integer sums; distance-weighted scores agree up to the last-ulp rounding of
the BLAS distance kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import ClassifierConfig
from repro.core.reference_store import ReferenceStore

# Bound the per-chunk ``(queries, n_classes)`` vote matrix to ~8M floats.
_VOTE_BUDGET = 8_000_000


@dataclass
class Prediction:
    """The ranked label list produced for one classified trace."""

    ranked_labels: List[str]
    scores: List[float]

    def top(self, n: int = 1) -> List[str]:
        if n <= 0:
            raise ValueError("n must be positive")
        return self.ranked_labels[:n]

    def contains(self, label: str, n: int) -> bool:
        """Whether ``label`` appears within the top ``n`` predictions."""
        return label in self.ranked_labels[:n]

    @property
    def best(self) -> str:
        return self.ranked_labels[0]


class KNNClassifier:
    """k-nearest-neighbour classification against a reference store."""

    def __init__(self, reference_store: ReferenceStore, config: Optional[ClassifierConfig] = None) -> None:
        self.store = reference_store
        self.config = config if config is not None else ClassifierConfig()
        if self.config.k <= 0:
            raise ValueError("k must be positive")
        if self.config.distance_metric not in ("euclidean", "cosine", "cityblock"):
            raise ValueError(f"unsupported distance metric {self.config.distance_metric!r}")
        if self.config.weighting not in ("uniform", "distance"):
            raise ValueError(f"unsupported weighting {self.config.weighting!r}")

    # ---------------------------------------------------------------- queries
    def _validated_queries(self, embeddings: np.ndarray) -> np.ndarray:
        if len(self.store) == 0:
            raise RuntimeError("the reference store is empty; initialize it before classifying")
        queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        if queries.shape[1] != self.store.embedding_dim:
            raise ValueError(
                f"query embeddings have dimension {queries.shape[1]}, "
                f"store holds dimension {self.store.embedding_dim}"
            )
        if not np.isfinite(queries).all():
            bad = int(np.flatnonzero(~np.isfinite(queries).all(axis=1))[0])
            raise ValueError(
                f"query embedding {bad} contains NaN/inf values; refusing to classify "
                "(non-finite embeddings would silently mis-rank every candidate)"
            )
        return queries

    def _name_ranks(self) -> np.ndarray:
        """Rank of each class code under lexicographic label order."""
        names = self.store.class_names
        ranks = np.empty(len(names), dtype=np.int64)
        ranks[sorted(range(len(names)), key=names.__getitem__)] = np.arange(len(names))
        return ranks

    def _ranked(self, queries: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Per-query ``(ranked class codes, ranked scores)``.

        Neighbour search runs through the store's index; votes accumulate
        with ``np.bincount`` in ascending-distance order, which reproduces
        the sequential summation order of the original Python loop.  The
        "closest reference of that label" tie-break value is a per-(query,
        class) minimum over the k neighbour distances.
        """
        store = self.store
        k = min(self.config.k, len(store))
        n_classes = store.n_classes
        name_ranks = self._name_ranks()
        label_codes = store.label_codes
        distance_weighted = self.config.weighting == "distance"

        ranked_codes: List[np.ndarray] = []
        ranked_scores: List[np.ndarray] = []
        chunk_size = int(np.clip(_VOTE_BUDGET // max(n_classes, 1), 16, 4096))
        for start in range(0, queries.shape[0], chunk_size):
            chunk = queries[start : start + chunk_size]
            distances, neighbour_ids = store.search(chunk, k, metric=self.config.distance_metric)
            codes = label_codes[neighbour_ids]
            if distance_weighted:
                # The 1e-9 floor bounds the weight of a coincident reference
                # at 1e9 instead of letting it diverge; see ClassifierConfig.
                weights = 1.0 / (distances + 1e-9)
            else:
                weights = np.ones_like(distances)
            n_chunk = chunk.shape[0]
            rows = np.arange(n_chunk)[:, None]
            flat = codes + (rows * n_classes)
            votes = np.bincount(
                flat.ravel(), weights=weights.ravel(), minlength=n_chunk * n_classes
            ).reshape(n_chunk, n_classes)
            # Neighbours arrive distance-sorted, so the per-(row, class)
            # minimum equals the seed's "distance of the closest reference
            # of that label" (its first occurrence).
            closest = np.full((n_chunk, n_classes), np.inf)
            np.minimum.at(closest, (rows, codes), distances)
            if n_classes <= 4 * k:
                # Few classes: rank all rows with one batched lexsort.
                order = np.lexsort(
                    (np.broadcast_to(name_ranks, votes.shape), closest, -votes), axis=1
                )
                counts = np.count_nonzero(votes, axis=1)
                for row in range(n_chunk):
                    picked = order[row, : counts[row]]
                    ranked_codes.append(picked)
                    ranked_scores.append(votes[row, picked])
            else:
                # Many classes: rank only each row's <= k candidate codes.
                for row in range(n_chunk):
                    candidates = np.unique(codes[row])
                    row_votes = votes[row, candidates]
                    order = np.lexsort(
                        (name_ranks[candidates], closest[row, candidates], -row_votes)
                    )
                    ranked_codes.append(candidates[order])
                    ranked_scores.append(row_votes[order])
        return ranked_codes, ranked_scores

    # ----------------------------------------------------------------- predict
    def predict(self, embeddings: np.ndarray) -> List[Prediction]:
        """Rank candidate labels for each query embedding."""
        queries = self._validated_queries(embeddings)
        names = self.store.class_names
        ranked_codes, ranked_scores = self._ranked(queries)
        return [
            Prediction(
                ranked_labels=[names[code] for code in codes.tolist()],
                scores=scores.tolist(),
            )
            for codes, scores in zip(ranked_codes, ranked_scores)
        ]

    def predict_one(self, embedding: np.ndarray) -> Prediction:
        return self.predict(np.atleast_2d(embedding))[0]

    def predict_labels(self, embeddings: np.ndarray, n: int = 1) -> List[List[str]]:
        """Top-``n`` label lists per query — the fast path that skips building
        :class:`Prediction` objects (used by the evaluation loops)."""
        if n <= 0:
            raise ValueError("n must be positive")
        queries = self._validated_queries(embeddings)
        names = self.store.class_names
        ranked_codes, _ = self._ranked(queries)
        return [[names[code] for code in codes[:n]] for codes in ranked_codes]

    def _true_positions(
        self, embeddings: np.ndarray, true_labels: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """0-based rank of each true label (-1 if unranked) and ranking sizes."""
        queries = self._validated_queries(embeddings)
        true_labels = [str(label) for label in true_labels]
        if queries.shape[0] != len(true_labels):
            raise ValueError("number of embeddings and labels differ")
        code_of = {name: code for code, name in enumerate(self.store.class_names)}
        ranked_codes, _ = self._ranked(queries)
        positions = np.empty(len(ranked_codes), dtype=np.int64)
        lengths = np.empty(len(ranked_codes), dtype=np.int64)
        for row, codes in enumerate(ranked_codes):
            lengths[row] = codes.size
            true_code = code_of.get(true_labels[row], -1)
            hit = np.flatnonzero(codes == true_code)
            positions[row] = int(hit[0]) if hit.size else -1
        return positions, lengths

    # ---------------------------------------------------------------- evaluate
    def topn_accuracy(
        self,
        embeddings: np.ndarray,
        true_labels: Sequence[str],
        ns: Sequence[int] = (1, 3, 5, 10, 20),
    ) -> Dict[int, float]:
        """Top-n accuracy of the classifier over a labelled query set."""
        positions, _ = self._true_positions(embeddings, true_labels)
        found = positions >= 0
        results: Dict[int, float] = {}
        for n in ns:
            results[int(n)] = float((found & (positions < int(n))).mean())
        return results

    def guesses_needed(self, embeddings: np.ndarray, true_labels: Sequence[str]) -> np.ndarray:
        """Rank position of the true label for each query (1 = first guess).

        Labels that never appear in the ranking are assigned one more than
        the number of ranked candidates, matching the "adversary exhausted
        their guesses" interpretation used for the per-class CDFs
        (Figures 9-11).
        """
        positions, lengths = self._true_positions(embeddings, true_labels)
        return np.where(positions >= 0, positions + 1, lengths + 1).astype(np.float64)
