"""The adaptive fingerprinting facade (Figure 2 of the paper).

:class:`AdaptiveFingerprinter` ties the pipeline together:

1. ``provision(training_dataset)`` — train the embedding model on pairs
   (done once; the expensive step).
2. ``initialize(reference_dataset)`` — embed the labelled reference corpus.
3. ``fingerprint(capture / trace)`` — classify a victim's page load.
4. ``adapt(...)`` — swap or add reference samples to follow page changes or
   new pages, with no retraining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.config import ClassifierConfig, EmbeddingHyperparameters, TrainingConfig
from repro.core.classifier import KNNClassifier, Prediction
from repro.core.embedding import EmbeddingModel
from repro.core.index import NearestNeighbourIndex, index_from_spec
from repro.core.reference_store import ReferenceStore
from repro.core.trainer import ContrastiveTrainer, TrainingHistory
from repro.net.capture import PacketCapture
from repro.traces.dataset import TraceDataset
from repro.traces.sequences import SequenceExtractor
from repro.traces.trace import Trace


@dataclass
class EvaluationResult:
    """Top-n accuracy of a fingerprinting deployment on a labelled test set."""

    topn_accuracy: Dict[int, float]
    n_classes: int
    n_samples: int

    def accuracy(self, n: int) -> float:
        try:
            return self.topn_accuracy[int(n)]
        except KeyError:
            raise KeyError(f"top-{n} accuracy was not evaluated") from None


class AdaptiveFingerprinter:
    """End-to-end adaptive webpage fingerprinting attack."""

    def __init__(
        self,
        n_sequences: int = 3,
        sequence_length: int = 40,
        hyperparameters: Optional[EmbeddingHyperparameters] = None,
        training_config: Optional[TrainingConfig] = None,
        classifier_config: Optional[ClassifierConfig] = None,
        extractor: Optional[SequenceExtractor] = None,
        seed: int = 0,
        index_factory: Optional[Callable[[], NearestNeighbourIndex]] = None,
    ) -> None:
        self.extractor = extractor if extractor is not None else SequenceExtractor(
            max_sequences=n_sequences,
            sequence_length=sequence_length,
            merge_servers=(n_sequences == 2),
        )
        self.model = EmbeddingModel(
            n_sequences=self.extractor.max_sequences,
            hyperparameters=hyperparameters,
            seed=seed,
        )
        self.training_config = training_config if training_config is not None else TrainingConfig()
        self.classifier_config = classifier_config if classifier_config is not None else ClassifierConfig()
        # The index factory decides the query engine of every reference store
        # this deployment creates (exact by default; IVF for large corpora).
        self.index_factory: Callable[[], NearestNeighbourIndex] = (
            index_factory if index_factory is not None else lambda: index_from_spec(None)
        )
        self.reference_store = ReferenceStore(self.model.embedding_dim, index=self.index_factory())
        self._classifier: Optional[KNNClassifier] = None
        self._provisioned = False

    # ------------------------------------------------------------ provisioning
    @property
    def provisioned(self) -> bool:
        return self._provisioned

    @property
    def initialized(self) -> bool:
        return len(self.reference_store) > 0

    def provision(self, training_dataset: TraceDataset) -> TrainingHistory:
        """Train the embedding model (the one-off expensive step)."""
        trainer = ContrastiveTrainer(self.model, self.training_config)
        history = trainer.fit(training_dataset)
        self._provisioned = True
        return history

    def mark_provisioned(self) -> None:
        """Declare the model trained (e.g. after loading saved weights)."""
        self._provisioned = True

    # ------------------------------------------------------------ initialization
    def initialize(self, reference_dataset: TraceDataset, *, reset: bool = True) -> None:
        """Populate the reference store from a labelled dataset."""
        self._require_provisioned()
        if reset:
            self.reference_store = ReferenceStore(self.model.embedding_dim, index=self.index_factory())
        embeddings = self.model.embed_dataset(reference_dataset)
        labels = [reference_dataset.label_name(l) for l in reference_dataset.labels]
        self.reference_store.add(embeddings, labels)
        self._classifier = KNNClassifier(self.reference_store, self.classifier_config)

    def attach_references(self, references: ReferenceStore) -> None:
        """Adopt an existing reference store (e.g. one restored from disk)."""
        self._require_provisioned()
        if references.embedding_dim != self.model.embedding_dim:
            raise ValueError(
                f"reference store dimension {references.embedding_dim} does not match "
                f"the model's embedding dimension {self.model.embedding_dim}"
            )
        self.reference_store = references
        self._classifier = KNNClassifier(references, self.classifier_config)

    # ------------------------------------------------------------ fingerprinting
    def fingerprint(self, observation: Union[Trace, PacketCapture, np.ndarray]) -> Prediction:
        """Classify one observed page load."""
        return self.fingerprint_many([observation])[0]

    def fingerprint_many(
        self, observations: Sequence[Union[Trace, PacketCapture, np.ndarray]]
    ) -> List[Prediction]:
        """Classify a batch of observed page loads."""
        self._require_initialized()
        inputs = np.stack([self._to_model_input(obs) for obs in observations])
        embeddings = self.model.embed(inputs)
        return self._classifier.predict(embeddings)

    def evaluate(
        self, test_dataset: TraceDataset, ns: Sequence[int] = (1, 3, 5, 10, 20)
    ) -> EvaluationResult:
        """Top-n accuracy of the current deployment on a labelled test set."""
        self._require_initialized()
        embeddings = self.model.embed_dataset(test_dataset)
        labels = [test_dataset.label_name(l) for l in test_dataset.labels]
        accuracy = self._classifier.topn_accuracy(embeddings, labels, ns)
        return EvaluationResult(
            topn_accuracy=accuracy,
            n_classes=test_dataset.n_classes,
            n_samples=len(test_dataset),
        )

    def guesses_needed(self, test_dataset: TraceDataset) -> np.ndarray:
        """Rank of the true label for every test trace (for Figures 9-11)."""
        self._require_initialized()
        embeddings = self.model.embed_dataset(test_dataset)
        labels = [test_dataset.label_name(l) for l in test_dataset.labels]
        return self._classifier.guesses_needed(embeddings, labels)

    # --------------------------------------------------------------- adaptation
    def adapt(self, traces: Sequence[Trace], *, replace: bool = True) -> None:
        """Update the reference store with fresh traces (no retraining).

        ``replace=True`` swaps out all existing references of the affected
        classes (page content changed); ``replace=False`` appends (new
        samples for an existing or brand-new page).
        """
        self._require_initialized()
        if not traces:
            raise ValueError("adapt requires at least one trace")
        by_label: Dict[str, List[np.ndarray]] = {}
        for trace in traces:
            by_label.setdefault(trace.label, []).append(trace.as_model_input())
        for label, inputs in by_label.items():
            embeddings = self.model.embed(np.stack(inputs))
            if replace and self.reference_store.has_class(label):
                self.reference_store.replace_class(label, embeddings)
            else:
                self.reference_store.add(embeddings, [label] * embeddings.shape[0])
        self._classifier = KNNClassifier(self.reference_store, self.classifier_config)

    def remove_page(self, label: str) -> None:
        """Stop monitoring a page (drop its references)."""
        self._require_initialized()
        self.reference_store.remove_class(label)
        self._classifier = KNNClassifier(self.reference_store, self.classifier_config)

    # ----------------------------------------------------------------- helpers
    def _to_model_input(self, observation: Union[Trace, PacketCapture, np.ndarray]) -> np.ndarray:
        if isinstance(observation, Trace):
            return observation.as_model_input()
        if isinstance(observation, PacketCapture):
            return self.extractor.extract_array(observation).T
        array = np.asarray(observation, dtype=np.float64)
        if array.ndim != 2 or array.shape[1] != self.model.n_sequences:
            raise ValueError(
                "raw observations must be (time, features) arrays matching the model's feature count"
            )
        return array

    def _require_provisioned(self) -> None:
        if not self._provisioned:
            raise RuntimeError("the embedding model has not been provisioned (trained) yet")

    def _require_initialized(self) -> None:
        self._require_provisioned()
        if self._classifier is None or len(self.reference_store) == 0:
            raise RuntimeError("the reference store is empty; call initialize() first")
