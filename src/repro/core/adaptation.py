"""The adaptation process (Section IV-C).

The adversary periodically probes the monitored pages: each page is loaded
once, fingerprinted, and if the deployment no longer recognises it with the
expected confidence the page's reference samples are refreshed with freshly
crawled traces.  The policy never retrains the embedding model — that is
the operational-cost advantage quantified in Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.fingerprinter import AdaptiveFingerprinter
from repro.traces.sequences import SequenceExtractor
from repro.web.crawler import Crawler
from repro.web.website import Website


@dataclass
class AdaptationReport:
    """Outcome of one adaptation round."""

    probed_pages: List[str] = field(default_factory=list)
    refreshed_pages: List[str] = field(default_factory=list)
    added_pages: List[str] = field(default_factory=list)
    probe_hits: Dict[str, bool] = field(default_factory=dict)

    @property
    def refresh_fraction(self) -> float:
        if not self.probed_pages:
            return 0.0
        return len(self.refreshed_pages) / len(self.probed_pages)


@dataclass
class AdaptationPolicy:
    """Probe-and-refresh policy for keeping the reference corpus current.

    Parameters
    ----------
    probe_top_n:
        The probe counts as a success if the page's true label appears in
        the top ``probe_top_n`` predictions for the probe trace.
    refresh_samples:
        How many fresh traces to collect for a page whose probe failed.
    """

    probe_top_n: int = 3
    refresh_samples: int = 10

    def __post_init__(self) -> None:
        if self.probe_top_n <= 0:
            raise ValueError("probe_top_n must be positive")
        if self.refresh_samples <= 0:
            raise ValueError("refresh_samples must be positive")

    def run(
        self,
        fingerprinter: AdaptiveFingerprinter,
        website: Website,
        crawler: Crawler,
        *,
        pages: Optional[Sequence[str]] = None,
        extractor: Optional[SequenceExtractor] = None,
        visit_offset: int = 0,
    ) -> AdaptationReport:
        """Probe the monitored pages and refresh those that drifted.

        Pages present on the website but absent from the reference store are
        treated as newly published pages and added outright.
        """
        extractor = extractor if extractor is not None else fingerprinter.extractor
        store = fingerprinter.reference_store
        page_ids = list(pages) if pages is not None else website.page_ids
        report = AdaptationReport()

        for index, page_id in enumerate(page_ids):
            # Membership check against the store's cached label encoding;
            # pages added earlier in this same round count as monitored.
            if not store.has_class(page_id):
                traces = self._collect(website, crawler, extractor, page_id, visit_offset + index)
                fingerprinter.adapt(traces, replace=False)
                report.added_pages.append(page_id)
                continue

            probe = crawler.crawl_single(website, page_id, visit=visit_offset + index)
            probe_trace = extractor.extract(probe.capture, label=page_id, website=website.name)
            prediction = fingerprinter.fingerprint(probe_trace)
            hit = prediction.contains(page_id, self.probe_top_n)
            report.probed_pages.append(page_id)
            report.probe_hits[page_id] = hit
            if not hit:
                traces = self._collect(website, crawler, extractor, page_id, visit_offset + index + 1)
                fingerprinter.adapt(traces, replace=True)
                report.refreshed_pages.append(page_id)
        return report

    def _collect(
        self,
        website: Website,
        crawler: Crawler,
        extractor: SequenceExtractor,
        page_id: str,
        visit_offset: int,
    ):
        traces = []
        for visit in range(self.refresh_samples):
            labeled = crawler.crawl_single(website, page_id, visit=visit_offset * 100 + visit)
            traces.append(extractor.extract(labeled.capture, label=page_id, website=website.name))
        return traces
