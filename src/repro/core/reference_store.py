"""The corpus of labelled reference embeddings.

The reference store is the component that makes the attack *adaptive*: to
track a changed page or add a new one, the adversary only swaps or appends
reference embeddings — the embedding model itself is never retrained
(Section IV-C).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

PathLike = Union[str, os.PathLike]


class ReferenceStore:
    """Labelled embedding vectors used as k-NN reference points."""

    def __init__(self, embedding_dim: int) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        self.embedding_dim = int(embedding_dim)
        self._embeddings: np.ndarray = np.empty((0, embedding_dim), dtype=np.float64)
        self._labels: List[str] = []

    # ------------------------------------------------------------------- state
    def __len__(self) -> int:
        return len(self._labels)

    @property
    def embeddings(self) -> np.ndarray:
        return self._embeddings

    @property
    def labels(self) -> np.ndarray:
        return np.array(self._labels, dtype=object)

    @property
    def classes(self) -> List[str]:
        """Distinct class labels in insertion order."""
        return list(dict.fromkeys(self._labels))

    @property
    def n_classes(self) -> int:
        return len(set(self._labels))

    def class_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for label in self._labels:
            counts[label] = counts.get(label, 0) + 1
        return counts

    # --------------------------------------------------------------- mutation
    def add(self, embeddings: np.ndarray, labels: Iterable[str]) -> None:
        """Append reference embeddings with their class labels."""
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        labels = [str(label) for label in labels]
        if embeddings.shape[0] != len(labels):
            raise ValueError(
                f"got {embeddings.shape[0]} embeddings but {len(labels)} labels"
            )
        if embeddings.shape[1] != self.embedding_dim:
            raise ValueError(
                f"embeddings have dimension {embeddings.shape[1]}, store expects {self.embedding_dim}"
            )
        if any(not label for label in labels):
            raise ValueError("labels must be non-empty strings")
        self._embeddings = np.concatenate([self._embeddings, embeddings], axis=0)
        self._labels.extend(labels)

    def remove_class(self, label: str) -> int:
        """Drop every reference of ``label``; returns how many were removed."""
        mask = np.array([l != label for l in self._labels], dtype=bool)
        removed = int((~mask).sum())
        if removed == 0:
            raise KeyError(f"no references with label {label!r}")
        self._embeddings = self._embeddings[mask]
        self._labels = [l for l in self._labels if l != label]
        return removed

    def replace_class(self, label: str, embeddings: np.ndarray) -> None:
        """Swap the references of one class (the paper's adaptation step)."""
        if label in set(self._labels):
            self.remove_class(label)
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        self.add(embeddings, [label] * embeddings.shape[0])

    def class_embeddings(self, label: str) -> np.ndarray:
        mask = np.array([l == label for l in self._labels], dtype=bool)
        if not mask.any():
            raise KeyError(f"no references with label {label!r}")
        return self._embeddings[mask]

    # ------------------------------------------------------------- persistence
    def save(self, path: PathLike) -> Path:
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            embeddings=self._embeddings,
            labels=np.array(self._labels, dtype=object),
            embedding_dim=np.array(self.embedding_dim),
        )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ReferenceStore":
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"reference store archive not found: {path}")
        with np.load(path, allow_pickle=True) as archive:
            store = cls(int(archive["embedding_dim"]))
            labels = [str(label) for label in archive["labels"]]
            if len(labels):
                store.add(archive["embeddings"], labels)
        return store
