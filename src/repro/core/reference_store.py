"""The corpus of labelled reference embeddings.

The reference store is the component that makes the attack *adaptive*: to
track a changed page or add a new one, the adversary only swaps or appends
reference embeddings — the embedding model itself is never retrained
(Section IV-C).

Storage is an amortised-doubling buffer (appends are O(1) amortised rather
than an O(N) reallocation per ``add``) and labels are kept int-encoded:
``label_codes`` maps each row to a code, ``class_names`` maps codes back to
strings, and ``classes``/``n_classes``/``class_counts`` all derive from
that cached encoding.  The store owns a nearest-neighbour index (see
:mod:`repro.core.index`) and keeps it consistent across every mutation, so
classification cost can stay sublinear while adaptation remains
retraining-free.
"""

from __future__ import annotations

import copy
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.spatial.distance import cdist

from repro.core import segment as segment_format
from repro.core.index import ExactIndex, NearestNeighbourIndex, top_k_by_distance

PathLike = Union[str, os.PathLike]

#: Suffix of the native RSG1 archives :meth:`ReferenceStore.save` writes;
#: legacy ``.npz`` archives remain loadable.
SEGMENT_SUFFIX = ".rsg"


def _json_pack(payload: object) -> np.ndarray:
    """A JSON document as a uint8 array (segments hold arrays only)."""
    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8)


def _json_unpack(array: np.ndarray) -> object:
    return json.loads(np.asarray(array, dtype=np.uint8).tobytes().decode("utf-8"))

_INITIAL_CAPACITY = 32


class LabelEncoding:
    """Dense, first-occurrence int encoding of class labels with counts.

    Shared by :class:`ReferenceStore` and the serving layer's sharded store
    so the two can never drift: ``names[code]`` is the label, codes stay
    dense and first-occurrence ordered across removals, and per-code
    reference counts ride along.
    """

    __slots__ = ("names", "index", "counts")

    def __init__(self) -> None:
        self.names: List[str] = []
        self.index: Dict[str, int] = {}
        self.counts: np.ndarray = np.empty(0, dtype=np.int64)

    def encode(self, labels: Sequence[str]) -> np.ndarray:
        """Codes for ``labels`` (allocating new ones) and count them in."""
        codes = np.empty(len(labels), dtype=np.int64)
        for position, label in enumerate(labels):
            code = self.index.get(label)
            if code is None:
                code = len(self.names)
                self.index[label] = code
                self.names.append(label)
            codes[position] = code
        if len(self.names) > self.counts.shape[0]:
            grown = np.zeros(len(self.names), dtype=np.int64)
            grown[: self.counts.shape[0]] = self.counts
            self.counts = grown
        np.add.at(self.counts, codes, 1)
        return codes

    def code_of(self, label: str) -> Optional[int]:
        return self.index.get(label)

    def drop(self, code: int) -> None:
        """Remove a code entirely; later codes shift down by one."""
        del self.names[code]
        self.counts = np.delete(self.counts, code)
        self.index = {name: position for position, name in enumerate(self.names)}

    def clone(self) -> "LabelEncoding":
        fresh = LabelEncoding()
        fresh.names = list(self.names)
        fresh.index = dict(self.index)
        fresh.counts = self.counts.copy()
        return fresh


def validate_reference_batch(
    embeddings: np.ndarray, labels: Iterable[str], embedding_dim: int
) -> Tuple[np.ndarray, List[str]]:
    """The shared add-batch validation of the flat and sharded stores."""
    embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
    labels = [str(label) for label in labels]
    if embeddings.shape[0] != len(labels):
        raise ValueError(f"got {embeddings.shape[0]} embeddings but {len(labels)} labels")
    if embeddings.shape[1] != embedding_dim:
        raise ValueError(
            f"embeddings have dimension {embeddings.shape[1]}, store expects {embedding_dim}"
        )
    if any(not label for label in labels):
        raise ValueError("labels must be non-empty strings")
    return embeddings, labels


STORAGE_DTYPES = ("float64", "float32")


class ReferenceStore:
    """Labelled embedding vectors used as k-NN reference points.

    ``storage_dtype`` picks the resident dtype of the embedding buffer:
    ``"float64"`` (the default, bit-compatible with the seed pipeline) or
    ``"float32"``, which halves resident memory and shared-memory segment
    size; distance computations still run in float64 (NumPy promotes), so
    float32 results agree with the float64 path to ~1e-7 relative error.
    """

    def __init__(
        self,
        embedding_dim: int,
        index: Optional[NearestNeighbourIndex] = None,
        *,
        storage_dtype: str = "float64",
    ) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        storage_dtype = np.dtype(storage_dtype).name
        if storage_dtype not in STORAGE_DTYPES:
            raise ValueError(
                f"unsupported storage_dtype {storage_dtype!r}; expected one of {STORAGE_DTYPES}"
            )
        self.embedding_dim = int(embedding_dim)
        self.storage_dtype = storage_dtype
        self._buffer: np.ndarray = np.empty((0, embedding_dim), dtype=storage_dtype)
        self._size: int = 0
        self._codes: np.ndarray = np.empty(0, dtype=np.int64)
        self._encoding = LabelEncoding()
        self._index: NearestNeighbourIndex = index if index is not None else ExactIndex()

    # ------------------------------------------------------------------- state
    def __len__(self) -> int:
        return self._size

    @property
    def embeddings(self) -> np.ndarray:
        """The (N, dim) matrix of reference embeddings (a read-only view)."""
        view = self._buffer[: self._size]
        view.flags.writeable = False
        return view

    @property
    def labels(self) -> np.ndarray:
        """Per-row labels as an object array (decoded from the cached codes)."""
        names = np.array(self._encoding.names, dtype=object)
        return names[self._codes[: self._size]] if self._size else np.empty(0, dtype=object)

    @property
    def label_codes(self) -> np.ndarray:
        """Per-row integer class codes; ``class_names[code]`` is the label."""
        view = self._codes[: self._size]
        view.flags.writeable = False
        return view

    @property
    def class_names(self) -> List[str]:
        """Code -> label mapping (codes are first-occurrence ordered)."""
        return list(self._encoding.names)

    @property
    def classes(self) -> List[str]:
        """Distinct class labels in insertion order."""
        return list(self._encoding.names)

    @property
    def n_classes(self) -> int:
        return len(self._encoding.names)

    def class_counts(self) -> Dict[str, int]:
        return {
            name: int(self._encoding.counts[code])
            for code, name in enumerate(self._encoding.names)
        }

    def has_class(self, label: str) -> bool:
        return label in self._encoding.index

    def __contains__(self, label: str) -> bool:
        return self.has_class(label)

    @property
    def index(self) -> NearestNeighbourIndex:
        return self._index

    # --------------------------------------------------------------- mutation
    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._buffer.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(_INITIAL_CAPACITY, capacity)
        while new_capacity < needed:
            new_capacity *= 2
        buffer = np.empty((new_capacity, self.embedding_dim), dtype=self.storage_dtype)
        buffer[: self._size] = self._buffer[: self._size]
        self._buffer = buffer
        codes = np.empty(new_capacity, dtype=np.int64)
        codes[: self._size] = self._codes[: self._size]
        self._codes = codes

    def add(self, embeddings: np.ndarray, labels: Iterable[str]) -> None:
        """Append reference embeddings with their class labels."""
        embeddings, labels = validate_reference_batch(embeddings, labels, self.embedding_dim)
        n_new = embeddings.shape[0]
        self._reserve(n_new)
        self._buffer[self._size : self._size + n_new] = embeddings
        codes = self._encoding.encode(labels)
        self._codes[self._size : self._size + n_new] = codes
        self._size += n_new
        self._index.add(self._buffer[: self._size], n_new)

    def remove_class(self, label: str) -> int:
        """Drop every reference of ``label``; returns how many were removed."""
        code = self._encoding.code_of(label)
        if code is None:
            raise KeyError(f"no references with label {label!r}")
        codes = self._codes[: self._size]
        kept_mask = codes != code
        removed = self._size - int(kept_mask.sum())
        # Compact rows in order, then drop the code from the encoding so the
        # remaining codes stay dense and first-occurrence ordered.
        kept = int(kept_mask.sum())
        self._buffer[:kept] = self._buffer[: self._size][kept_mask]
        new_codes = codes[kept_mask]
        new_codes[new_codes > code] -= 1
        self._codes[:kept] = new_codes
        self._size = kept
        self._encoding.drop(code)
        self._index.remove(kept_mask)
        return removed

    def replace_class(self, label: str, embeddings: np.ndarray) -> None:
        """Swap the references of one class (the paper's adaptation step)."""
        if self.has_class(label):
            self.remove_class(label)
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        self.add(embeddings, [label] * embeddings.shape[0])

    def class_embeddings(self, label: str) -> np.ndarray:
        code = self._encoding.code_of(label)
        if code is None:
            raise KeyError(f"no references with label {label!r}")
        return self._buffer[: self._size][self._codes[: self._size] == code]

    def memory_bytes(self) -> int:
        """Resident bytes: live embedding rows plus index side structures."""
        return int(self._buffer[: self._size].nbytes) + int(self._index.memory_bytes())

    def clone(self) -> "ReferenceStore":
        """Deep copy, *including the trained index state*.

        An O(N) buffer copy with no index retraining — the serving layer's
        copy-on-write shard swap clones the touched shard this way, keeping
        adaptation retraining-free even for IVF-indexed shards.
        """
        fresh = ReferenceStore(
            self.embedding_dim, index=copy.deepcopy(self._index), storage_dtype=self.storage_dtype
        )
        fresh._buffer = self._buffer[: self._size].copy()
        fresh._codes = self._codes[: self._size].copy()
        fresh._size = self._size
        fresh._encoding = self._encoding.clone()
        return fresh

    # ------------------------------------------------------------------ search
    def search(
        self, queries: np.ndarray, k: int, *, metric: str = "euclidean"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """k nearest references per query, ordered by ``(distance, row id)``.

        Dispatches to the owned index when its metric matches; any other
        metric is answered by an exact brute-force scan so callers with a
        non-default metric keep working.
        """
        if self._size == 0:
            raise RuntimeError("the reference store is empty")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.embedding_dim:
            raise ValueError(
                f"query embeddings have dimension {queries.shape[1]}, "
                f"store holds dimension {self.embedding_dim}"
            )
        k = min(int(k), self._size)
        if metric == self._index.metric:
            return self._index.search(self.embeddings, queries, k)
        distances = cdist(queries, self.embeddings, metric=metric)
        return top_k_by_distance(distances, k)

    def rebuild_index(self, index: Optional[NearestNeighbourIndex] = None) -> None:
        """Swap in (or refresh) the nearest-neighbour index."""
        if index is not None:
            self._index = index
        self._index.rebuild(self.embeddings)

    # ---------------------------------------------------------- requantization
    def retrain_needed(self, *, threshold: float = 1.5, min_samples: int = 64) -> bool:
        """Whether corpus churn has drifted the index's quantizer enough to
        warrant re-training (always ``False`` for non-quantizing indexes);
        see :meth:`repro.core.index.IVFPQIndex.retrain_needed`."""
        return self._index.retrain_needed(threshold=threshold, min_samples=min_samples)

    def requantize(self, *, sample_size: Optional[int] = None) -> None:
        """Re-train the index's quantizer on (a sample of) the current
        corpus and re-encode every row, resetting its drift statistics.

        The mutable-store answer to quantizer staleness: the paper's
        adaptation loop never retrains the *embedding model*, but the
        index's k-means structures age as references churn — this refreshes
        them in place.  The serving layer wraps the same operation in a
        zero-downtime copy-on-write swap
        (``DeploymentManager.requantize()``).
        """
        self._index.retrain(self.embeddings, sample_size=sample_size)

    # ------------------------------------------------------------- persistence
    _INDEX_STATE_PREFIX = "index_state__"

    def save(self, path: PathLike) -> Path:
        """Persist embeddings, labels, the storage dtype *and* the trained
        index state (e.g. IVF-PQ codebooks + codes), so :meth:`load` can
        restore the index without re-running k-means.

        Archives are ``RSG1`` segments (see :mod:`repro.core.segment`) —
        the suffix is normalised to ``.rsg`` — and the write is atomic:
        the bytes land in a temp file next to ``path`` and are renamed
        into place, so a crash mid-save never corrupts a previous archive.
        """
        path = Path(path)
        if path.suffix != SEGMENT_SUFFIX:
            path = path.with_suffix(SEGMENT_SUFFIX)
        arrays: Dict[str, np.ndarray] = {
            "embeddings": self.embeddings,
            "label_codes": self.label_codes,
            "class_names": _json_pack(self.class_names),
            "meta": _json_pack(
                {"embedding_dim": self.embedding_dim, "storage_dtype": self.storage_dtype}
            ),
        }
        for name, array in self._index.state().items():
            arrays[f"{self._INDEX_STATE_PREFIX}{name}"] = array
        return segment_format.write_segment_file(path, arrays)

    def _fill(self, embeddings: np.ndarray, labels: List[str]) -> None:
        """Bulk-populate an empty store without notifying the index (the
        loader then either adopts persisted index state or rebuilds once)."""
        n_new = embeddings.shape[0]
        self._reserve(n_new)
        self._buffer[:n_new] = embeddings
        self._codes[:n_new] = self._encoding.encode(labels)
        self._size = n_new

    @classmethod
    def _restore(
        cls,
        store: "ReferenceStore",
        embeddings: np.ndarray,
        labels: List[str],
        state: Dict[str, np.ndarray],
    ) -> "ReferenceStore":
        """Populate a freshly constructed store from archive contents.

        Index state is adopted whenever present — *regardless* of the row
        count, so a trained-but-empty store (fitted codebooks, zero rows)
        keeps its quantizer across a save/load round trip.  Only when no
        state could be adopted and rows exist does the index rebuild.
        """
        if len(labels):
            embeddings, labels = validate_reference_batch(
                embeddings, labels, store.embedding_dim
            )
            store._fill(embeddings, labels)
        adopted = False
        if state:
            try:
                store._index.load_state(state)
                adopted = True
            except (KeyError, ValueError):
                adopted = False  # mismatched index; retrain below
        if not adopted and len(store):
            store._index.rebuild(store.embeddings)
        return store

    @classmethod
    def load(
        cls,
        path: PathLike,
        index: Optional[NearestNeighbourIndex] = None,
        *,
        storage_dtype: Optional[str] = None,
    ) -> "ReferenceStore":
        """Restore an archive written by :meth:`save`.

        Dispatches on the file's magic bytes: native ``RSG1`` segments and
        legacy ``.npz`` archives both load.  When ``path`` itself is
        missing, its ``.rsg``/``.npz`` sibling is tried, so pre-segment
        call sites that pass an ``.npz`` path keep working.
        """
        path = Path(path)
        if not path.exists():
            for suffix in (SEGMENT_SUFFIX, ".npz"):
                sibling = path.with_suffix(suffix)
                if sibling.exists():
                    path = sibling
                    break
            else:
                raise FileNotFoundError(f"reference store archive not found: {path}")
        if segment_format.is_segment_file(path):
            return cls._load_segment(path, index, storage_dtype)
        return cls._load_npz(path, index, storage_dtype)

    @classmethod
    def _load_segment(
        cls,
        path: Path,
        index: Optional[NearestNeighbourIndex],
        storage_dtype: Optional[str],
    ) -> "ReferenceStore":
        arrays = segment_format.load_segment_file(path)
        try:
            meta = _json_unpack(arrays["meta"])
            class_names = _json_unpack(arrays["class_names"])
            codes = np.asarray(arrays["label_codes"], dtype=np.int64)
            embeddings = arrays["embeddings"]
        except (KeyError, ValueError, json.JSONDecodeError) as error:
            raise segment_format.SegmentFormatError(
                f"{path} is not a reference-store segment: {error}"
            ) from error
        if storage_dtype is None:
            storage_dtype = str(meta.get("storage_dtype", "float64"))
        store = cls(int(meta["embedding_dim"]), index=index, storage_dtype=storage_dtype)
        labels = [str(class_names[code]) for code in codes.tolist()]
        state = {
            name[len(cls._INDEX_STATE_PREFIX) :]: array
            for name, array in arrays.items()
            if name.startswith(cls._INDEX_STATE_PREFIX)
        }
        return cls._restore(store, embeddings, labels, state)

    @classmethod
    def _load_npz(
        cls,
        path: Path,
        index: Optional[NearestNeighbourIndex],
        storage_dtype: Optional[str],
    ) -> "ReferenceStore":
        with np.load(path, allow_pickle=True) as archive:
            if storage_dtype is None:
                storage_dtype = (
                    str(archive["storage_dtype"]) if "storage_dtype" in archive.files else "float64"
                )
            store = cls(int(archive["embedding_dim"]), index=index, storage_dtype=storage_dtype)
            labels = [str(label) for label in archive["labels"]]
            state = {
                name[len(cls._INDEX_STATE_PREFIX) :]: archive[name]
                for name in archive.files
                if name.startswith(cls._INDEX_STATE_PREFIX)
            }
            embeddings = archive["embeddings"] if len(labels) else np.empty((0, store.embedding_dim))
            return cls._restore(store, embeddings, labels, state)
