"""The corpus of labelled reference embeddings.

The reference store is the component that makes the attack *adaptive*: to
track a changed page or add a new one, the adversary only swaps or appends
reference embeddings — the embedding model itself is never retrained
(Section IV-C).

Storage is an amortised-doubling buffer (appends are O(1) amortised rather
than an O(N) reallocation per ``add``) and labels are kept int-encoded:
``label_codes`` maps each row to a code, ``class_names`` maps codes back to
strings, and ``classes``/``n_classes``/``class_counts`` all derive from
that cached encoding.  The store owns a nearest-neighbour index (see
:mod:`repro.core.index`) and keeps it consistent across every mutation, so
classification cost can stay sublinear while adaptation remains
retraining-free.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np
from scipy.spatial.distance import cdist

from repro.core.index import ExactIndex, NearestNeighbourIndex, top_k_by_distance

PathLike = Union[str, os.PathLike]

_INITIAL_CAPACITY = 32


class ReferenceStore:
    """Labelled embedding vectors used as k-NN reference points."""

    def __init__(self, embedding_dim: int, index: Optional[NearestNeighbourIndex] = None) -> None:
        if embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        self.embedding_dim = int(embedding_dim)
        self._buffer: np.ndarray = np.empty((0, embedding_dim), dtype=np.float64)
        self._size: int = 0
        self._codes: np.ndarray = np.empty(0, dtype=np.int64)
        self._class_names: List[str] = []
        self._class_index: Dict[str, int] = {}
        self._counts: np.ndarray = np.empty(0, dtype=np.int64)
        self._index: NearestNeighbourIndex = index if index is not None else ExactIndex()

    # ------------------------------------------------------------------- state
    def __len__(self) -> int:
        return self._size

    @property
    def embeddings(self) -> np.ndarray:
        """The (N, dim) matrix of reference embeddings (a read-only view)."""
        view = self._buffer[: self._size]
        view.flags.writeable = False
        return view

    @property
    def labels(self) -> np.ndarray:
        """Per-row labels as an object array (decoded from the cached codes)."""
        names = np.array(self._class_names, dtype=object)
        return names[self._codes[: self._size]] if self._size else np.empty(0, dtype=object)

    @property
    def label_codes(self) -> np.ndarray:
        """Per-row integer class codes; ``class_names[code]`` is the label."""
        view = self._codes[: self._size]
        view.flags.writeable = False
        return view

    @property
    def class_names(self) -> List[str]:
        """Code -> label mapping (codes are first-occurrence ordered)."""
        return list(self._class_names)

    @property
    def classes(self) -> List[str]:
        """Distinct class labels in insertion order."""
        return list(self._class_names)

    @property
    def n_classes(self) -> int:
        return len(self._class_names)

    def class_counts(self) -> Dict[str, int]:
        return {name: int(self._counts[code]) for code, name in enumerate(self._class_names)}

    def has_class(self, label: str) -> bool:
        return label in self._class_index

    def __contains__(self, label: str) -> bool:
        return self.has_class(label)

    @property
    def index(self) -> NearestNeighbourIndex:
        return self._index

    # --------------------------------------------------------------- mutation
    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._buffer.shape[0]
        if needed <= capacity:
            return
        new_capacity = max(_INITIAL_CAPACITY, capacity)
        while new_capacity < needed:
            new_capacity *= 2
        buffer = np.empty((new_capacity, self.embedding_dim), dtype=np.float64)
        buffer[: self._size] = self._buffer[: self._size]
        self._buffer = buffer
        codes = np.empty(new_capacity, dtype=np.int64)
        codes[: self._size] = self._codes[: self._size]
        self._codes = codes

    def _encode(self, labels: List[str]) -> np.ndarray:
        codes = np.empty(len(labels), dtype=np.int64)
        for position, label in enumerate(labels):
            code = self._class_index.get(label)
            if code is None:
                code = len(self._class_names)
                self._class_index[label] = code
                self._class_names.append(label)
            codes[position] = code
        if len(self._class_names) > self._counts.shape[0]:
            grown = np.zeros(len(self._class_names), dtype=np.int64)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        return codes

    def add(self, embeddings: np.ndarray, labels: Iterable[str]) -> None:
        """Append reference embeddings with their class labels."""
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        labels = [str(label) for label in labels]
        if embeddings.shape[0] != len(labels):
            raise ValueError(
                f"got {embeddings.shape[0]} embeddings but {len(labels)} labels"
            )
        if embeddings.shape[1] != self.embedding_dim:
            raise ValueError(
                f"embeddings have dimension {embeddings.shape[1]}, store expects {self.embedding_dim}"
            )
        if any(not label for label in labels):
            raise ValueError("labels must be non-empty strings")
        n_new = embeddings.shape[0]
        self._reserve(n_new)
        self._buffer[self._size : self._size + n_new] = embeddings
        codes = self._encode(labels)
        self._codes[self._size : self._size + n_new] = codes
        self._size += n_new
        np.add.at(self._counts, codes, 1)
        self._index.add(self._buffer[: self._size], n_new)

    def remove_class(self, label: str) -> int:
        """Drop every reference of ``label``; returns how many were removed."""
        code = self._class_index.get(label)
        if code is None:
            raise KeyError(f"no references with label {label!r}")
        codes = self._codes[: self._size]
        kept_mask = codes != code
        removed = self._size - int(kept_mask.sum())
        # Compact rows in order, then drop the code from the encoding so the
        # remaining codes stay dense and first-occurrence ordered.
        kept = int(kept_mask.sum())
        self._buffer[:kept] = self._buffer[: self._size][kept_mask]
        new_codes = codes[kept_mask]
        new_codes[new_codes > code] -= 1
        self._codes[:kept] = new_codes
        self._size = kept
        del self._class_names[code]
        self._counts = np.delete(self._counts, code)
        self._class_index = {name: position for position, name in enumerate(self._class_names)}
        self._index.remove(kept_mask)
        return removed

    def replace_class(self, label: str, embeddings: np.ndarray) -> None:
        """Swap the references of one class (the paper's adaptation step)."""
        if self.has_class(label):
            self.remove_class(label)
        embeddings = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        self.add(embeddings, [label] * embeddings.shape[0])

    def class_embeddings(self, label: str) -> np.ndarray:
        code = self._class_index.get(label)
        if code is None:
            raise KeyError(f"no references with label {label!r}")
        return self._buffer[: self._size][self._codes[: self._size] == code]

    # ------------------------------------------------------------------ search
    def search(
        self, queries: np.ndarray, k: int, *, metric: str = "euclidean"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """k nearest references per query, ordered by ``(distance, row id)``.

        Dispatches to the owned index when its metric matches; any other
        metric is answered by an exact brute-force scan so callers with a
        non-default metric keep working.
        """
        if self._size == 0:
            raise RuntimeError("the reference store is empty")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.embedding_dim:
            raise ValueError(
                f"query embeddings have dimension {queries.shape[1]}, "
                f"store holds dimension {self.embedding_dim}"
            )
        k = min(int(k), self._size)
        if metric == self._index.metric:
            return self._index.search(self.embeddings, queries, k)
        distances = cdist(queries, self.embeddings, metric=metric)
        return top_k_by_distance(distances, k)

    def rebuild_index(self, index: Optional[NearestNeighbourIndex] = None) -> None:
        """Swap in (or refresh) the nearest-neighbour index."""
        if index is not None:
            self._index = index
        self._index.rebuild(self.embeddings)

    # ------------------------------------------------------------- persistence
    def save(self, path: PathLike) -> Path:
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            embeddings=self.embeddings,
            labels=self.labels,
            embedding_dim=np.array(self.embedding_dim),
        )
        return path

    @classmethod
    def load(cls, path: PathLike, index: Optional[NearestNeighbourIndex] = None) -> "ReferenceStore":
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"reference store archive not found: {path}")
        with np.load(path, allow_pickle=True) as archive:
            store = cls(int(archive["embedding_dim"]), index=index)
            labels = [str(label) for label in archive["labels"]]
            if len(labels):
                store.add(archive["embeddings"], labels)
        return store
