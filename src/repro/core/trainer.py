"""Contrastive (siamese) training of the embedding model.

The trainer implements the provisioning step of Section IV-A: pairs of
traces are pushed through the shared embedding network, the contrastive
loss of equation (1) compares their embeddings, and plain SGD (Table I)
updates the weights.  Both pair members are processed in one concatenated
batch so that the layer caches used by back-propagation are consistent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.config import EmbeddingHyperparameters, TrainingConfig
from repro.core.embedding import EmbeddingModel
from repro.core.pairs import PairGenerator
from repro.nn import Adam, ContrastiveLoss, SGD
from repro.traces.dataset import TraceDataset


@dataclass
class TrainingHistory:
    """Per-epoch record of the provisioning run."""

    epoch_losses: List[float] = field(default_factory=list)
    pair_counts: List[int] = field(default_factory=list)
    wall_time_seconds: float = 0.0

    @property
    def final_loss(self) -> float:
        if not self.epoch_losses:
            raise ValueError("no epochs recorded")
        return self.epoch_losses[-1]

    @property
    def improved(self) -> bool:
        """Whether the loss decreased between the first and last epoch."""
        return len(self.epoch_losses) >= 2 and self.epoch_losses[-1] < self.epoch_losses[0]


class ContrastiveTrainer:
    """Trains an :class:`EmbeddingModel` on labelled traces."""

    def __init__(
        self,
        model: EmbeddingModel,
        training_config: Optional[TrainingConfig] = None,
    ) -> None:
        self.model = model
        self.config = training_config if training_config is not None else TrainingConfig()
        hp = self.model.hyperparameters
        self.loss_fn = ContrastiveLoss(margin=hp.contrastive_margin)
        self.optimizer = self._build_optimizer(hp)
        self.pair_generator = PairGenerator(
            strategy=self.config.pair_strategy,
            positive_fraction=self.config.positive_fraction,
        )

    def _build_optimizer(self, hp: EmbeddingHyperparameters):
        if hp.optimizer == "sgd":
            return SGD(
                self.model.network,
                learning_rate=hp.learning_rate,
                momentum=self.config.momentum,
                gradient_clip=self.config.gradient_clip,
            )
        if hp.optimizer == "adam":
            return Adam(
                self.model.network,
                learning_rate=hp.learning_rate,
                gradient_clip=self.config.gradient_clip,
            )
        raise ValueError(f"unknown optimizer {hp.optimizer!r}")

    # ------------------------------------------------------------------- train
    def fit(self, dataset: TraceDataset) -> TrainingHistory:
        """Run the full provisioning training loop on ``dataset``."""
        if dataset.n_classes < 2:
            raise ValueError("training requires at least two classes")
        inputs = dataset.model_inputs()
        labels = dataset.labels
        rng = np.random.default_rng(self.config.seed)
        history = TrainingHistory()
        started = time.perf_counter()

        for epoch in range(self.config.epochs):
            embeddings = None
            if self.pair_generator.strategy != "random":
                embeddings = self.model.embed(inputs)
            left, right, similarity = self.pair_generator.generate(
                labels, self.config.pairs_per_epoch, rng, embeddings=embeddings
            )
            epoch_loss = self._run_epoch(inputs, left, right, similarity, rng)
            history.epoch_losses.append(epoch_loss)
            history.pair_counts.append(len(left))
            if self.config.verbose:
                print(f"epoch {epoch + 1}/{self.config.epochs}: contrastive loss {epoch_loss:.4f}")

        history.wall_time_seconds = time.perf_counter() - started
        return history

    def _run_epoch(
        self,
        inputs: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        similarity: np.ndarray,
        rng: np.random.Generator,
    ) -> float:
        batch_size = self.model.hyperparameters.batch_size
        order = rng.permutation(len(left)) if self.config.shuffle else np.arange(len(left))
        losses: List[float] = []
        weights: List[int] = []
        for start in range(0, len(order), batch_size):
            batch = order[start : start + batch_size]
            loss = self.train_step(inputs[left[batch]], inputs[right[batch]], similarity[batch])
            losses.append(loss)
            weights.append(len(batch))
        return float(np.average(losses, weights=weights))

    def train_step(self, batch_a: np.ndarray, batch_b: np.ndarray, similarity: np.ndarray) -> float:
        """One optimizer update on a batch of pairs; returns the batch loss."""
        if batch_a.shape != batch_b.shape:
            raise ValueError("pair batches must have identical shapes")
        n = batch_a.shape[0]
        stacked = np.concatenate([batch_a, batch_b], axis=0)
        self.optimizer.zero_grad()
        embeddings = self.model.embed(stacked, training=True)
        emb_a, emb_b = embeddings[:n], embeddings[n:]
        loss = self.loss_fn.forward(emb_a, emb_b, similarity)
        grad_a, grad_b = self.loss_fn.backward(emb_a, emb_b, similarity)
        self.model.network.backward(np.concatenate([grad_a, grad_b], axis=0))
        self.optimizer.step()
        return loss

    # -------------------------------------------------------------- validation
    def pair_accuracy(self, dataset: TraceDataset, n_pairs: int = 512, threshold: Optional[float] = None, seed: int = 1) -> float:
        """Fraction of held-out pairs the embedding separates correctly.

        A pair counts as correct when a positive pair's distance is below
        ``threshold`` and a negative pair's is above it (default: half the
        contrastive margin).
        """
        threshold = threshold if threshold is not None else self.loss_fn.margin / 2.0
        rng = np.random.default_rng(seed)
        left, right, similarity = self.pair_generator.generate(dataset.labels, n_pairs, rng)
        inputs = dataset.model_inputs()
        emb_left = self.model.embed(inputs[left])
        emb_right = self.model.embed(inputs[right])
        distances = np.sqrt(np.sum((emb_left - emb_right) ** 2, axis=1))
        predicted_similar = distances < threshold
        return float(np.mean(predicted_similar == (similarity > 0.5)))
