"""Pair generation for contrastive training (Section IV-A.2).

Positive pairs are two traces of the same webpage, negative pairs are
traces of different webpages.  Random sampling is the paper's baseline
strategy; hard-negative and semi-hard-negative mining (FaceNet-style) are
provided as the "more advanced techniques" the paper references.

Sampling is fully vectorised (no per-pair Python loop) and mining is
row-blocked: distances are computed per block of *unique anchors* against
the corpus instead of materialising the full N x N matrix and re-scanning
it once per sampled pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.spatial.distance import cdist

_MINING_BLOCK = 512


def _class_members(labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(unique classes, per-class counts, padded member-index matrix)``."""
    classes, counts = np.unique(labels, return_counts=True)
    order = np.argsort(labels, kind="stable")
    members = np.zeros((classes.size, int(counts.max())), dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    for row in range(classes.size):
        members[row, : counts[row]] = order[offsets[row] : offsets[row + 1]]
    return classes, counts, members


def random_pairs(
    labels: np.ndarray,
    n_pairs: int,
    positive_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample random (i, j, y) pairs from integer labels.

    Returns index arrays ``left``, ``right`` and the similarity labels
    ``y`` (1 for positive pairs, 0 for negative pairs).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if n_pairs <= 0:
        raise ValueError("n_pairs must be positive")
    if not 0.0 < positive_fraction < 1.0:
        raise ValueError("positive_fraction must be in (0, 1)")
    if labels.size < 2:
        raise ValueError("need at least two samples to form pairs")
    rng = rng if rng is not None else np.random.default_rng(0)

    classes, counts, members = _class_members(labels)
    multi = np.flatnonzero(counts >= 2)
    if multi.size == 0:
        raise ValueError("no class has two or more samples; cannot form positive pairs")
    if classes.size < 2:
        raise ValueError("need at least two classes to form negative pairs")

    n_positive = int(round(n_pairs * positive_fraction))
    n_negative = n_pairs - n_positive

    # Positives: a multi-sample class, then two distinct members of it (the
    # second draw skips the first via the shift trick).
    pos_cls = multi[rng.integers(0, multi.size, size=n_positive)]
    first = rng.integers(0, counts[pos_cls])
    second = rng.integers(0, counts[pos_cls] - 1)
    second += second >= first
    left_pos = members[pos_cls, first]
    right_pos = members[pos_cls, second]

    # Negatives: two distinct classes, one random member of each.
    cls_a = rng.integers(0, classes.size, size=n_negative)
    cls_b = rng.integers(0, classes.size - 1, size=n_negative)
    cls_b += cls_b >= cls_a
    left_neg = members[cls_a, rng.integers(0, counts[cls_a])]
    right_neg = members[cls_b, rng.integers(0, counts[cls_b])]

    left = np.concatenate([left_pos, left_neg])
    right = np.concatenate([right_pos, right_neg])
    similarity = np.concatenate(
        [np.ones(n_positive, dtype=np.float64), np.zeros(n_negative, dtype=np.float64)]
    )
    order = rng.permutation(n_pairs)
    return left[order], right[order], similarity[order]


def _mine_hard_negatives(
    labels: np.ndarray,
    embeddings: np.ndarray,
    anchors: np.ndarray,
    semi_hard_margin: float,
) -> np.ndarray:
    """Nearest (semi-)hard negative for each unique anchor, row-blocked."""
    mined = np.empty(anchors.size, dtype=np.int64)
    for start in range(0, anchors.size, _MINING_BLOCK):
        block = anchors[start : start + _MINING_BLOCK]
        distances = cdist(embeddings[block], embeddings, metric="euclidean")
        same_class = labels[block][:, None] == labels[None, :]
        candidates = np.where(same_class, np.inf, distances)
        if semi_hard_margin > 0:
            same_distances = np.where(same_class, distances, np.inf)
            same_distances[np.arange(block.size), block] = np.inf  # not the anchor itself
            nearest_positive = same_distances.min(axis=1)
            nearest_positive = np.where(np.isfinite(nearest_positive), nearest_positive, 0.0)
            too_close = candidates < (nearest_positive + semi_hard_margin)[:, None]
            # Only exclude too-close negatives when something farther exists,
            # otherwise fall back to the plain hard negative.
            has_far = (np.isfinite(candidates) & ~too_close).any(axis=1)
            candidates = np.where(has_far[:, None] & too_close, np.inf, candidates)
        mined[start : start + block.size] = np.argmin(candidates, axis=1)
    return mined


def hard_negative_pairs(
    labels: np.ndarray,
    embeddings: np.ndarray,
    n_pairs: int,
    positive_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    semi_hard_margin: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mine negatives that are currently *close* in embedding space.

    For each sampled anchor, the negative partner is the nearest sample of
    a different class (hard negative) or — when ``semi_hard_margin > 0`` —
    the nearest different-class sample that is still farther than the
    anchor's nearest same-class sample plus the margin (semi-hard).
    Positive pairs are sampled randomly, as in :func:`random_pairs`.
    """
    labels = np.asarray(labels, dtype=np.int64)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.shape[0] != labels.shape[0]:
        raise ValueError("embeddings and labels must be aligned")
    rng = rng if rng is not None else np.random.default_rng(0)

    left_r, right_r, sim_r = random_pairs(labels, n_pairs, positive_fraction, rng)
    negatives = np.flatnonzero(sim_r == 0.0)
    if negatives.size == 0:
        return left_r, right_r, sim_r

    # The mined partner is a deterministic function of the anchor, so mine
    # each unique anchor once and fan the result back out to the pairs.
    anchors, inverse = np.unique(left_r[negatives], return_inverse=True)
    mined = _mine_hard_negatives(labels, embeddings, anchors, semi_hard_margin)
    right_r[negatives] = mined[inverse]
    return left_r, right_r, sim_r


@dataclass
class PairGenerator:
    """Configurable pair-generation strategy."""

    strategy: str = "random"
    positive_fraction: float = 0.5
    semi_hard_margin: float = 0.0

    def __post_init__(self) -> None:
        if self.strategy not in ("random", "hard_negative", "semi_hard"):
            raise ValueError(
                f"unknown pair strategy {self.strategy!r}; "
                "expected 'random', 'hard_negative' or 'semi_hard'"
            )

    def generate(
        self,
        labels: np.ndarray,
        n_pairs: int,
        rng: np.random.Generator,
        embeddings: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate pairs; mining strategies need current ``embeddings``."""
        if self.strategy == "random" or embeddings is None:
            return random_pairs(labels, n_pairs, self.positive_fraction, rng)
        margin = self.semi_hard_margin if self.strategy == "semi_hard" else 0.0
        if self.strategy == "semi_hard" and margin <= 0:
            margin = 1.0
        return hard_negative_pairs(
            labels, embeddings, n_pairs, self.positive_fraction, rng, semi_hard_margin=margin
        )
