"""Pair generation for contrastive training (Section IV-A.2).

Positive pairs are two traces of the same webpage, negative pairs are
traces of different webpages.  Random sampling is the paper's baseline
strategy; hard-negative and semi-hard-negative mining (FaceNet-style) are
provided as the "more advanced techniques" the paper references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.spatial.distance import cdist


def random_pairs(
    labels: np.ndarray,
    n_pairs: int,
    positive_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample random (i, j, y) pairs from integer labels.

    Returns index arrays ``left``, ``right`` and the similarity labels
    ``y`` (1 for positive pairs, 0 for negative pairs).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if n_pairs <= 0:
        raise ValueError("n_pairs must be positive")
    if not 0.0 < positive_fraction < 1.0:
        raise ValueError("positive_fraction must be in (0, 1)")
    if labels.size < 2:
        raise ValueError("need at least two samples to form pairs")
    rng = rng if rng is not None else np.random.default_rng(0)

    by_class = {int(c): np.flatnonzero(labels == c) for c in np.unique(labels)}
    multi_sample_classes = [c for c, idx in by_class.items() if len(idx) >= 2]
    if not multi_sample_classes:
        raise ValueError("no class has two or more samples; cannot form positive pairs")
    classes = sorted(by_class)
    if len(classes) < 2:
        raise ValueError("need at least two classes to form negative pairs")

    left = np.empty(n_pairs, dtype=np.int64)
    right = np.empty(n_pairs, dtype=np.int64)
    similarity = np.empty(n_pairs, dtype=np.float64)
    n_positive = int(round(n_pairs * positive_fraction))

    for k in range(n_pairs):
        if k < n_positive:
            cls = multi_sample_classes[int(rng.integers(0, len(multi_sample_classes)))]
            i, j = rng.choice(by_class[cls], size=2, replace=False)
            similarity[k] = 1.0
        else:
            cls_a, cls_b = rng.choice(classes, size=2, replace=False)
            i = rng.choice(by_class[int(cls_a)])
            j = rng.choice(by_class[int(cls_b)])
            similarity[k] = 0.0
        left[k], right[k] = int(i), int(j)

    order = rng.permutation(n_pairs)
    return left[order], right[order], similarity[order]


def hard_negative_pairs(
    labels: np.ndarray,
    embeddings: np.ndarray,
    n_pairs: int,
    positive_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    semi_hard_margin: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mine negatives that are currently *close* in embedding space.

    For each sampled anchor, the negative partner is the nearest sample of
    a different class (hard negative) or — when ``semi_hard_margin > 0`` —
    the nearest different-class sample that is still farther than the
    anchor's nearest same-class sample plus the margin (semi-hard).
    Positive pairs are sampled randomly, as in :func:`random_pairs`.
    """
    labels = np.asarray(labels, dtype=np.int64)
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.shape[0] != labels.shape[0]:
        raise ValueError("embeddings and labels must be aligned")
    rng = rng if rng is not None else np.random.default_rng(0)

    left_r, right_r, sim_r = random_pairs(labels, n_pairs, positive_fraction, rng)
    negatives = np.flatnonzero(sim_r == 0.0)
    if negatives.size == 0:
        return left_r, right_r, sim_r

    distances = cdist(embeddings, embeddings, metric="euclidean")
    same_class = labels[:, None] == labels[None, :]
    for k in negatives:
        anchor = int(left_r[k])
        candidate_distances = distances[anchor].copy()
        candidate_distances[same_class[anchor]] = np.inf
        if semi_hard_margin > 0:
            same = distances[anchor].copy()
            same[~same_class[anchor]] = np.inf
            same[anchor] = np.inf
            nearest_positive = float(np.min(same)) if np.isfinite(same).any() else 0.0
            too_close = candidate_distances < nearest_positive + semi_hard_margin
            if not np.all(too_close | np.isinf(candidate_distances)):
                candidate_distances[too_close] = np.inf
        right_r[k] = int(np.argmin(candidate_distances))
    return left_r, right_r, sim_r


@dataclass
class PairGenerator:
    """Configurable pair-generation strategy."""

    strategy: str = "random"
    positive_fraction: float = 0.5
    semi_hard_margin: float = 0.0

    def __post_init__(self) -> None:
        if self.strategy not in ("random", "hard_negative", "semi_hard"):
            raise ValueError(
                f"unknown pair strategy {self.strategy!r}; "
                "expected 'random', 'hard_negative' or 'semi_hard'"
            )

    def generate(
        self,
        labels: np.ndarray,
        n_pairs: int,
        rng: np.random.Generator,
        embeddings: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate pairs; mining strategies need current ``embeddings``."""
        if self.strategy == "random" or embeddings is None:
            return random_pairs(labels, n_pairs, self.positive_fraction, rng)
        margin = self.semi_hard_margin if self.strategy == "semi_hard" else 0.0
        if self.strategy == "semi_hard" and margin <= 0:
            margin = 1.0
        return hard_negative_pairs(
            labels, embeddings, n_pairs, self.positive_fraction, rng, semi_hard_margin=margin
        )
