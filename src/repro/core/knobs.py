"""The single source of truth for index-engine knob documentation.

``repro experiment`` / ``repro index-bench`` / ``repro serve`` /
``repro serve-bench`` build their ``--help`` text from
:data:`INDEX_KNOB_HELP`, and ``tests/test_docs.py`` asserts that
``docs/index-tuning.md`` documents every knob listed here — so the CLI,
the README and the tuning guide cannot drift apart again (PR 3 shipped
``rerank``/``bits`` flags that the help text and README forgot).

This module is deliberately import-light (no NumPy/SciPy) so building the
argument parser keeps ``repro info`` instant.
"""

from __future__ import annotations

from typing import Dict

#: Engines selectable everywhere an ``--index`` flag exists.
INDEX_ENGINES = ("exact", "ivf", "ivfpq")

#: Knob name -> the one-line description shared by CLI ``--help`` and docs.
INDEX_KNOB_HELP: Dict[str, str] = {
    "n_cells": (
        "coarse k-means cells (default: ceil(sqrt(N)) for ivf, ceil(9*sqrt(N)) "
        "for ivfpq, capped at 65535 when bits <= 4)"
    ),
    "n_probe": (
        "cells scanned per query (default: 8 for ivf, 16 for ivfpq); "
        "more probes buy recall at scan cost"
    ),
    "n_subspaces": (
        "PQ subspaces per vector (default 8): a code row is n_subspaces bytes "
        "at 8 bits, half that packed at 4 bits"
    ),
    "bits": (
        "bits per PQ code (1-8, default 8); bits <= 4 selects the packed "
        "engine — two codes per byte, uint8-quantized LUT scan, slim side "
        "structures"
    ),
    "rerank": (
        "exact re-rank depth over the best ADC candidates (default 64; "
        "0 = pure ADC, raw vectors never touched after training — keep "
        "several times k when exact rankings matter)"
    ),
    "opq": (
        "learn an orthogonal OPQ rotation before subspace splitting "
        "(lower quantization error when embedding dimensions are correlated)"
    ),
    "native_kernels": (
        "fused C ADC-scan + streaming top-k kernels for ivfpq: auto = use "
        "when a system compiler is available (bitwise-identical NumPy "
        "fallback otherwise), on = require them (error without a "
        "compiler), off = always NumPy"
    ),
    "max_cell_fraction": (
        "cap any coarse cell at this fraction of the corpus (0 < f <= 1) "
        "during (re)training and add — overflow rows spill to their "
        "nearest cell with room, so one hot cluster cannot blow up "
        "per-probe candidate counts on skewed corpora"
    ),
}
