"""Open-world detection: flagging page loads from unmonitored pages.

Section VI-C of the paper notes that a capture of a page *outside* the
monitored set either shows up as an obvious outlier in embedding space (no
reference points nearby) or collides with a monitored class and causes a
misclassification.  :class:`OpenWorldDetector` operationalises the first
case: it calibrates a distance threshold on the reference corpus and flags
queries whose k-th-nearest reference lies beyond it as "unknown page",
turning the closed-world classifier into an open-world one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.reference_store import ReferenceStore


@dataclass
class OpenWorldResult:
    """Detection quality on a labelled open-world evaluation."""

    true_positive_rate: float
    false_positive_rate: float
    threshold: float

    @property
    def youden_j(self) -> float:
        """Youden's J statistic (TPR - FPR), a simple quality summary."""
        return self.true_positive_rate - self.false_positive_rate


class OpenWorldDetector:
    """Distance-threshold detector for unmonitored ("unknown") page loads."""

    def __init__(
        self,
        reference_store: ReferenceStore,
        *,
        neighbour: int = 5,
        percentile: float = 95.0,
        metric: str = "euclidean",
    ) -> None:
        if len(reference_store) == 0:
            raise ValueError("the reference store is empty")
        if neighbour <= 0:
            raise ValueError("neighbour must be positive")
        if not 0.0 < percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        self.store = reference_store
        self.neighbour = int(min(neighbour, len(reference_store) - 1)) or 1
        self.percentile = float(percentile)
        self.metric = metric
        self.threshold = self._calibrate()

    # -------------------------------------------------------------- calibrate
    def _calibrate(self) -> float:
        """Threshold = percentile of intra-corpus k-th-neighbour distances.

        For every reference embedding the distance to its k-th nearest
        *other* reference is computed; monitored pages should stay below the
        chosen percentile of that distribution, unmonitored pages above it.
        """
        # Top-(k+1) through the store's query engine; the extra neighbour
        # absorbs each reference matching itself at distance zero.
        embeddings = self.store.embeddings
        n = len(self.store)
        distances, ids = self.store.search(embeddings, min(self.neighbour + 1, n), metric=self.metric)
        distances = np.where(ids == np.arange(n)[:, None], np.inf, distances)
        distances.sort(axis=1)
        kth = distances[:, self.neighbour - 1]
        return float(np.percentile(kth, self.percentile))

    # ----------------------------------------------------------------- detect
    def scores(self, embeddings: np.ndarray) -> np.ndarray:
        """k-th-nearest-reference distance for each query embedding."""
        queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        k = min(self.neighbour, len(self.store))
        distances, _ = self.store.search(queries, k, metric=self.metric)
        return distances[:, k - 1].copy()

    def is_unknown(self, embeddings: np.ndarray) -> np.ndarray:
        """Boolean array: True where the query looks like an unmonitored page."""
        return self.scores(embeddings) > self.threshold

    # --------------------------------------------------------------- evaluate
    def evaluate(
        self, monitored_embeddings: np.ndarray, unmonitored_embeddings: np.ndarray
    ) -> OpenWorldResult:
        """TPR/FPR of the detector on labelled monitored/unmonitored queries.

        The positive class is "unknown page": the true-positive rate is the
        fraction of unmonitored queries flagged, the false-positive rate the
        fraction of monitored queries incorrectly flagged.
        """
        monitored = np.atleast_2d(monitored_embeddings)
        unmonitored = np.atleast_2d(unmonitored_embeddings)
        if monitored.shape[0] == 0 or unmonitored.shape[0] == 0:
            raise ValueError("both query sets must be non-empty")
        return OpenWorldResult(
            true_positive_rate=float(self.is_unknown(unmonitored).mean()),
            false_positive_rate=float(self.is_unknown(monitored).mean()),
            threshold=self.threshold,
        )
