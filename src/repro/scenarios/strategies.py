"""Property-based scenario generation and replay invariants.

Scenario schedules are a natural property-based domain: any *valid* spec —
whatever defence, drift schedule, churn mix or fault list it draws — must
replay against a live front-end with zero failed queries and intact tenant
isolation.  This module provides the generators for that search in two
forms: `hypothesis`_ strategies (:func:`scenario_specs`) when the library
is installed, and a seeded stdlib-``random`` fallback
(:func:`random_spec`) so the property suite still runs — with less
adversarial shrinking — on minimal environments.

The invariants themselves (:func:`check_report_invariants`) are plain
assertions over a :class:`~repro.scenarios.engine.ScenarioReport`, shared
by the hypothesis properties, the stdlib fallback loop and the CI
scenarios job, so every harness enforces the same contract.

.. _hypothesis: https://hypothesis.readthedocs.io/
"""

from __future__ import annotations

import random as stdlib_random
from typing import Optional

from repro.scenarios.engine import FAULT_KINDS, ScenarioReport, ScenarioSpec

try:  # pragma: no cover - import guard
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - minimal environments
    st = None
    HAVE_HYPOTHESIS = False


_DEFENCE_SPECS = (
    None,
    {"kind": "none"},
    {"kind": "adaptive", "fill_probability": 0.4},
    {"kind": "fixed-length"},
    {"kind": "random", "max_fraction": 0.3},
)

_DRIFT_SPECS = (
    None,
    {"kind": "minor", "relative_change": 0.1, "fraction": 0.5},
    {"kind": "gradual", "steps": 4, "per_step_change": 0.1, "fraction": 0.5},
)

_CHURN_SPECS = (
    None,
    {"replace": 1},
    {"replace": 2, "add": 1},
    {"replace": 1, "add": 1, "remove": 1},
)

_OPEN_WORLD_SPECS = (None, {"fraction": 0.25})

_FAULT_SPECS = ((), ("replica-flap",))


def scenario_specs(
    *,
    max_queries: int = 48,
    allow_faults: bool = True,
):
    """A hypothesis strategy drawing small valid :class:`ScenarioSpec`\\ s.

    Sizes are deliberately tiny (a handful of pages, tens of queries) so a
    drawn spec replays against a live server in well under a second and
    hypothesis can afford dozens of examples.  Requires hypothesis; check
    :data:`HAVE_HYPOTHESIS` first or call :func:`random_spec` instead.
    """
    if not HAVE_HYPOTHESIS:
        raise RuntimeError("hypothesis is not installed; use random_spec() instead")
    faults = st.sampled_from(_FAULT_SPECS) if allow_faults else st.just(())
    return st.builds(
        ScenarioSpec,
        name=st.just("property-draw"),
        n_pages=st.integers(min_value=5, max_value=8),
        visits_per_page=st.integers(min_value=4, max_value=6),
        holdout_pages=st.integers(min_value=1, max_value=2),
        n_queries=st.integers(min_value=8, max_value=max_queries),
        top_k=st.integers(min_value=1, max_value=3),
        request_batch_size=st.sampled_from((4, 8, 16)),
        n_clients=st.integers(min_value=1, max_value=3),
        defence=st.sampled_from(_DEFENCE_SPECS),
        drift=st.sampled_from(_DRIFT_SPECS),
        churn=st.sampled_from(_CHURN_SPECS),
        open_world=st.sampled_from(_OPEN_WORLD_SPECS),
        faults=faults,
        seed=st.integers(min_value=0, max_value=2**16),
    )


def random_spec(
    rng: stdlib_random.Random, *, max_queries: int = 48, allow_faults: bool = True
) -> ScenarioSpec:
    """One valid random spec from a stdlib ``random.Random`` stream.

    The fallback generator for environments without hypothesis: the same
    domain as :func:`scenario_specs`, minus shrinking.  Deterministic in
    the generator's state, so failures reproduce from the seed alone.
    """
    faults = rng.choice(_FAULT_SPECS) if allow_faults else ()
    return ScenarioSpec(
        name="property-draw",
        n_pages=rng.randint(5, 8),
        visits_per_page=rng.randint(4, 6),
        holdout_pages=rng.randint(1, 2),
        n_queries=rng.randint(8, max_queries),
        top_k=rng.randint(1, 3),
        request_batch_size=rng.choice((4, 8, 16)),
        n_clients=rng.randint(1, 3),
        defence=rng.choice(_DEFENCE_SPECS),
        drift=rng.choice(_DRIFT_SPECS),
        churn=rng.choice(_CHURN_SPECS),
        open_world=rng.choice(_OPEN_WORLD_SPECS),
        faults=faults,
        seed=rng.randint(0, 2**16),
    )


def check_report_invariants(
    report: ScenarioReport, *, min_baseline_recall: Optional[float] = None
) -> None:
    """Assert the invariants every scenario replay must satisfy.

    * zero failed queries — churn, drift, faults and defences may cost
      recall, never availability;
    * tenant isolation — no prediction carries a foreign tenant's label,
      and no bystander deployment changed generation;
    * internal consistency — recalls in ``[0, 1]``, recall@k >= recall@1,
      p99 >= p50, per-tenant query counts sum to the total.

    ``min_baseline_recall`` additionally bounds recall@1 from below — only
    meaningful for undefended, drift-free scenarios.
    """
    assert report.failed == 0, f"{report.scenario}: {report.failed} failed queries"
    assert report.isolation_ok, f"{report.scenario}: tenant isolation violated"
    for tenant in report.tenants:
        assert tenant.foreign_labels == 0, (
            f"{report.scenario}/{tenant.tenant}: {tenant.foreign_labels} foreign labels"
        )
        assert 0.0 <= tenant.recall_at_1 <= 1.0
        assert 0.0 <= tenant.recall_at_k <= 1.0
        assert tenant.recall_at_k >= tenant.recall_at_1 - 1e-9
        assert tenant.p99_ms >= tenant.p50_ms - 1e-9
    assert 0.0 <= report.recall_at_1 <= 1.0
    assert report.recall_at_k >= report.recall_at_1 - 1e-9
    assert report.n_queries == sum(tenant.n_queries for tenant in report.tenants)
    if min_baseline_recall is not None:
        assert report.recall_at_1 >= min_baseline_recall, (
            f"{report.scenario}: recall@1 {report.recall_at_1:.3f} "
            f"< floor {min_baseline_recall:.3f}"
        )
    assert report.ok
