"""The scenario engine: adversarial + operational replays against a live server.

A :class:`ScenarioSpec` declares everything one replay does — which traffic
mix the victim generates, which padding defence the victim deploys, how the
monitored pages drift, which churn operations and faults land mid-replay,
and how many tenants share the front-end.  The :class:`ScenarioRunner`
executes that spec against a **running** ``repro serve`` front-end over the
real wire protocol: it provisions one isolated tenant per corpus via the
``tenant``/``add`` control ops, replays the first half of every tenant's
query stream from concurrent client connections, injects the scenario's
mid-replay events (churn, drift-driven ``replace_class``, replica kills)
into the *victim* tenant only, replays the second half, and folds
everything into a :class:`ScenarioReport`: recall@1/@k against the known
page labels, client-side p50/p99 latency, defence bandwidth overhead,
update cost priced with the paper's own Table III profile, and a
per-tenant isolation verdict.

Isolation is measured, not assumed: every tenant's corpus uses a different
seed and a tenant-prefixed label namespace, so a single prediction leaking
across deployments — or a bystander tenant's generation moving while the
victim churns — flips ``isolation_ok``.

:class:`ServedScenarioHost` self-hosts a disposable front-end (the same
stack ``repro serve`` wires up, sized down) so scenarios can run without
external orchestration; point the runner at any reachable host/port to
exercise a real deployment instead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, asdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.costs import adaptive_profile
from repro.defences import defence_from_spec
from repro.defences.base import TraceDefence
from repro.scenarios.corpus import GENERATOR_KINDS, ScenarioCorpus
from repro.serving.loadgen import NetworkLoadGenerator, NetworkReplayResult, open_world_mix
from repro.serving.protocol import FrontendClient, ProtocolError, validate_tenant
from repro.web import ContentDrift, drift_from_spec

FAULT_KINDS = ("replica-flap",)


class ScenarioSpecError(ValueError):
    """A scenario spec that cannot be run, naming the offending field."""

    def __init__(self, field_name: str, message: str) -> None:
        super().__init__(message)
        self.field = field_name


@dataclass
class ScenarioSpec:
    """A declarative description of one adversarial/operational replay.

    ``defence`` and ``drift`` are the declarative dicts understood by
    :func:`repro.defences.defence_from_spec` and
    :func:`repro.web.drift_from_spec` (``drift`` additionally takes a
    ``"fraction"`` of pages to update).  ``churn`` counts mid-replay
    corpus operations (``{"replace": 2, "add": 1, "remove": 1}``);
    ``open_world`` mixes unmonitored-page queries into the stream
    (``{"fraction": 0.3}``); ``faults`` names infrastructure failures from
    :data:`FAULT_KINDS`.  Everything is deterministic in ``seed``.
    """

    name: str
    description: str = ""
    generator: str = "wiki"
    n_pages: int = 10
    visits_per_page: int = 8
    holdout_pages: int = 2
    embedding_dim: int = 16
    n_queries: int = 120
    top_k: int = 3
    request_batch_size: int = 16
    n_clients: int = 2
    defence: Optional[Dict] = None
    drift: Optional[Dict] = None
    churn: Optional[Dict] = None
    open_world: Optional[Dict] = None
    faults: Tuple[str, ...] = ()
    replica_position: int = 1
    seed: int = 0

    def validate(self) -> None:
        """Reject a corrupt spec with a structured error before any I/O.

        Defence specs surface :class:`repro.defences.DefenceConfigError`
        (whose ``.field`` names the bad knob) unchanged; everything else
        raises :class:`ScenarioSpecError`.  A spec that passes here will
        not blow up mid-replay on configuration, only on live behaviour —
        which is the point of a fault-injection harness.
        """
        if not self.name:
            raise ScenarioSpecError("name", "a scenario needs a name")
        if self.generator not in GENERATOR_KINDS:
            raise ScenarioSpecError(
                "generator", f"unknown generator {self.generator!r}; expected one of {GENERATOR_KINDS}"
            )
        for field_name in ("n_pages", "visits_per_page", "n_queries", "top_k", "embedding_dim",
                           "request_batch_size", "n_clients"):
            if int(getattr(self, field_name)) <= 0:
                raise ScenarioSpecError(field_name, f"{field_name} must be positive")
        if self.holdout_pages < 0 or self.holdout_pages >= self.n_pages:
            raise ScenarioSpecError("holdout_pages", "holdout_pages must be in [0, n_pages)")
        self.defence_transform()  # raises DefenceConfigError on a corrupt defence
        self.drift_model()
        if self.drift is not None and self.drift.get("kind") not in (None, "none"):
            fraction = float(self.drift.get("fraction", 0.5))
            if not 0.0 < fraction <= 1.0:
                raise ScenarioSpecError("drift", "drift fraction must be in (0, 1]")
        if self.churn is not None:
            if not isinstance(self.churn, dict):
                raise ScenarioSpecError("churn", "churn must be a dict of op counts")
            unknown = set(self.churn) - {"replace", "add", "remove"}
            if unknown:
                raise ScenarioSpecError("churn", f"unknown churn ops: {sorted(unknown)}")
            for op, count in self.churn.items():
                if int(count) < 0:
                    raise ScenarioSpecError("churn", f"churn count for {op!r} must be >= 0")
        if self.open_world is not None:
            fraction = float(self.open_world.get("fraction", 0.2))
            if not 0.0 <= fraction < 1.0:
                raise ScenarioSpecError("open_world", "open-world fraction must be in [0, 1)")
        for fault in self.faults:
            if fault not in FAULT_KINDS:
                raise ScenarioSpecError(
                    "faults", f"unknown fault {fault!r}; expected one of {FAULT_KINDS}"
                )

    def defence_transform(self) -> Optional[TraceDefence]:
        """The spec's defence as a live transform (None = undefended)."""
        return defence_from_spec(self.defence)

    def drift_model(self) -> Optional[ContentDrift]:
        """The spec's drift schedule as a live model (None = static pages)."""
        try:
            return drift_from_spec(self.drift)
        except ValueError as error:
            raise ScenarioSpecError("drift", str(error)) from error

    def as_dict(self) -> Dict:
        """The spec as a JSON-serialisable dict (reports, BENCH snapshots)."""
        data = asdict(self)
        data["faults"] = list(self.faults)
        return data


@dataclass
class TenantReport:
    """One tenant's view of a scenario replay."""

    tenant: str
    victim: bool
    n_queries: int
    failed: int
    recall_at_1: float
    recall_at_k: float
    p50_ms: float
    p99_ms: float
    generation_start: int
    generation_end: int
    foreign_labels: int
    isolation_ok: bool

    def as_dict(self) -> Dict:
        """The report row as a JSON-serialisable dict."""
        return asdict(self)


@dataclass
class ScenarioReport:
    """Everything one scenario replay measured, ready for BENCH output."""

    scenario: str
    description: str
    tenants: List[TenantReport]
    n_queries: int
    failed: int
    recall_at_1: float
    recall_at_k: float
    top_k: int
    p50_ms: float
    p99_ms: float
    defence_overhead: float
    update_cost: Optional[Dict]
    drift_info: Optional[Dict]
    faults_injected: List[str]
    isolation_ok: bool
    duration_s: float
    spec: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The acceptance gate: nothing failed and nothing leaked."""
        return self.failed == 0 and self.isolation_ok

    def as_dict(self) -> Dict:
        """The report as a JSON-serialisable dict."""
        data = asdict(self)
        data["tenants"] = [tenant.as_dict() for tenant in self.tenants]
        data["ok"] = self.ok
        return data


@dataclass
class _TenantRun:
    """Internal per-tenant replay state threaded through the two phases."""

    tenant: str
    corpus: ScenarioCorpus
    allowed_labels: Set[str]
    embeddings: np.ndarray
    true_labels: List[Optional[str]]  # None = open-world outlier
    overhead: float
    removed_labels: Set[str] = field(default_factory=set)
    results: List[NetworkReplayResult] = field(default_factory=list)
    phase2_override: Optional[Tuple[np.ndarray, List[Optional[str]]]] = None


class ScenarioRunner:
    """Execute scenario specs against a live front-end over the wire.

    The runner owns nothing on the server: every run provisions its
    tenants (``{prefix}-0`` … ``{prefix}-{n-1}``) through control ops,
    drives them, and drops them again — so it can point at a long-lived
    deployment without leaving state behind.  ``tenants`` >= 2 makes the
    isolation checks meaningful; tenant 0 is always the *victim* that
    receives the scenario's churn, drift and faults while the bystanders
    replay undisturbed.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenants: int = 2,
        tenant_prefix: str = "scn",
        timeout_s: float = 120.0,
    ) -> None:
        if tenants <= 0:
            raise ValueError("tenants must be positive")
        validate_tenant(tenant_prefix)
        self.host = host
        self.port = int(port)
        self.n_tenants = int(tenants)
        self.tenant_prefix = tenant_prefix
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------ provisioning
    def _tenant_names(self) -> List[str]:
        return [f"{self.tenant_prefix}-{index}" for index in range(self.n_tenants)]

    def _provision(self, client: FrontendClient, spec: ScenarioSpec) -> List[_TenantRun]:
        runs: List[_TenantRun] = []
        for index, tenant in enumerate(self._tenant_names()):
            corpus = ScenarioCorpus.build(
                generator=spec.generator,
                n_pages=spec.n_pages,
                visits_per_page=spec.visits_per_page,
                dim=spec.embedding_dim,
                seed=spec.seed + 97 * index,
                holdout_pages=spec.holdout_pages,
            )
            try:
                client.create_tenant(tenant)
            except ProtocolError:
                # A leftover tenant from an aborted run: recycle it so the
                # replay starts from a clean corpus.
                client.drop_tenant(tenant)
                client.create_tenant(tenant)
            for label, embeddings in corpus.reference_embeddings().items():
                client.add_class(f"{tenant}/{label}", embeddings, tenant=tenant)
            allowed = {f"{tenant}/{label}" for label in corpus.reference.class_names}
            runs.append(
                _TenantRun(
                    tenant=tenant,
                    corpus=corpus,
                    allowed_labels=allowed,
                    embeddings=np.empty((0, spec.embedding_dim)),
                    true_labels=[],
                    overhead=0.0,
                )
            )
        return runs

    def _build_streams(self, runs: List[_TenantRun], spec: ScenarioSpec) -> None:
        defence = spec.defence_transform()
        for index, run in enumerate(runs):
            rng = np.random.default_rng(spec.seed + 13 * index + 1)
            embeddings, labels, overhead = run.corpus.query_stream(
                spec.n_queries, defence=defence, rng=rng
            )
            true_labels: List[Optional[str]] = [f"{run.tenant}/{label}" for label in labels]
            if spec.open_world is not None:
                fraction = float(spec.open_world.get("fraction", 0.2))
                n_outliers = int(round(spec.n_queries * fraction))
                if n_outliers:
                    reference = np.concatenate(
                        list(run.corpus.reference_embeddings().values()), axis=0
                    )
                    outliers, _ = open_world_mix(
                        reference,
                        n_outliers,
                        unmonitored_fraction=1.0,
                        outlier_shift=float(spec.open_world.get("outlier_shift", 25.0)),
                        rng=rng,
                    )
                    embeddings = np.concatenate([embeddings, outliers], axis=0)
                    true_labels = true_labels + [None] * n_outliers
                    order = rng.permutation(len(true_labels))
                    embeddings = embeddings[order]
                    true_labels = [true_labels[i] for i in order]
            run.embeddings = embeddings
            run.true_labels = true_labels
            run.overhead = overhead

    # ----------------------------------------------------------------- replay
    def _replay_phase(
        self, runs: List[_TenantRun], spec: ScenarioSpec, phase: int
    ) -> None:
        """Replay one half of every tenant's stream, tenants in parallel."""
        errors: List[BaseException] = []

        def replay_one(run: _TenantRun) -> None:
            half = run.embeddings.shape[0] // 2
            if phase == 0:
                block = run.embeddings[:half]
            elif run.phase2_override is not None:
                block, _ = run.phase2_override
            else:
                block = run.embeddings[half:]
            if block.shape[0] == 0:
                return
            generator = NetworkLoadGenerator(
                block,
                request_batch_size=spec.request_batch_size,
                top_n=spec.top_k,
                tenant=run.tenant,
            )
            try:
                run.results.append(
                    generator.replay(
                        self.host, self.port, n_clients=spec.n_clients, timeout_s=self.timeout_s
                    )
                )
            except BaseException as error:  # surfaced to the caller below
                errors.append(error)

        threads = [threading.Thread(target=replay_one, args=(run,), daemon=True) for run in runs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    # ------------------------------------------------------------- mid-replay
    def _inject_events(
        self, client: FrontendClient, victim: _TenantRun, spec: ScenarioSpec
    ) -> Tuple[Optional[Dict], Optional[Dict], List[str]]:
        """Apply churn/drift/faults to the victim tenant between the halves."""
        updated_classes = 0
        drift_info: Optional[Dict] = None
        faults: List[str] = []
        corpus = victim.corpus
        monitored = corpus.monitored_labels

        if spec.churn:
            n_replace = int(spec.churn.get("replace", 0))
            for label in monitored[:n_replace]:
                refreshed = corpus.embedder.embed(corpus.recrawl([label], seed_offset=3))
                client.replace_class(f"{victim.tenant}/{label}", refreshed, tenant=victim.tenant)
                updated_classes += 1
            n_add = int(spec.churn.get("add", 0))
            for label in corpus.holdout_labels[:n_add]:
                embeddings = corpus.reference_embeddings(labels=[label])[label]
                client.add_class(f"{victim.tenant}/{label}", embeddings, tenant=victim.tenant)
                updated_classes += 1
            n_remove = int(spec.churn.get("remove", 0))
            removable = [label for label in reversed(monitored) if label not in monitored[:n_replace]]
            for label in removable[:n_remove]:
                client.remove_class(f"{victim.tenant}/{label}", tenant=victim.tenant)
                victim.removed_labels.add(f"{victim.tenant}/{label}")
                updated_classes += 1

        model = spec.drift_model()
        if model is not None:
            drift_rng = np.random.default_rng(spec.seed + 7)
            fraction = float((spec.drift or {}).get("fraction", 0.5))
            updated_pages = model.apply_to_website(corpus.website, drift_rng, fraction)
            drifted = [page for page in updated_pages if page in monitored]
            requantized = False
            if drifted:
                # The adversary's adaptation loop: recrawl the updated pages
                # and swap in fresh references, retraining-free.
                fresh = corpus.recrawl(drifted, seed_offset=5)
                fresh_embeddings = corpus.embedder.embed(fresh)
                for label in fresh.class_names:
                    rows = fresh.labels == fresh.class_names.index(label)
                    client.replace_class(
                        f"{victim.tenant}/{label}", fresh_embeddings[rows], tenant=victim.tenant
                    )
                    updated_classes += 1
                info = client.info(tenant=victim.tenant)
                if info.get("retrain_needed"):
                    client.requantize(tenant=victim.tenant)
                    requantized = True
                # The victim's phase-two traffic comes from the *drifted*
                # pages (plus untouched ones), so recall after adaptation is
                # measured against genuinely shifted traffic.
                victim_rng = np.random.default_rng(spec.seed + 11)
                drifted_queries = corpus.recrawl(drifted, seed_offset=6)
                half = victim.embeddings.shape[0] - victim.embeddings.shape[0] // 2
                embeddings, labels, _ = corpus.query_stream(
                    max(half, 1),
                    defence=spec.defence_transform(),
                    labels=drifted + [p for p in monitored if p not in drifted],
                    source=drifted_queries.merge(corpus.queries),
                    rng=victim_rng,
                )
                victim.phase2_override = (
                    embeddings,
                    [f"{victim.tenant}/{label}" for label in labels],
                )
            drift_info = {
                "updated_pages": list(updated_pages),
                "monitored_updated": drifted,
                "requantized": requantized,
            }

        for fault in spec.faults:
            if fault == "replica-flap":
                client.kill_replica(spec.replica_position, tenant=victim.tenant)
                faults.append(fault)

        cost: Optional[Dict] = None
        if updated_classes:
            model_cost = adaptive_profile().cost_model
            breakdown = model_cost.update_cost(updated_classes, len(monitored))
            cost = {
                "updated_classes": updated_classes,
                "collection": breakdown.collection,
                "computation": breakdown.computation,
                "total": breakdown.total,
            }
        return cost, drift_info, faults

    def _heal_faults(self, client: FrontendClient, victim: _TenantRun, spec: ScenarioSpec) -> None:
        for fault in spec.faults:
            if fault == "replica-flap":
                client.restore_replica(spec.replica_position, tenant=victim.tenant)

    # ------------------------------------------------------------------ scoring
    def _score_tenant(
        self, run: _TenantRun, spec: ScenarioSpec, victim: bool, events_applied: bool
    ) -> TenantReport:
        predictions: List[Optional[Tuple[List[str], List[float]]]] = []
        truths: List[Optional[str]] = []
        half = run.embeddings.shape[0] // 2
        phase_truths = [run.true_labels[:half]]
        if run.phase2_override is not None:
            phase_truths.append(run.phase2_override[1])
        else:
            phase_truths.append(run.true_labels[half:])
        for result, block_truths in zip(run.results, phase_truths):
            predictions.extend(result.predictions)
            truths.extend(block_truths)

        hits_1 = hits_k = scored = 0
        foreign = 0
        for prediction, truth in zip(predictions, truths):
            if prediction is None:
                continue
            labels = list(prediction[0])
            foreign += sum(1 for label in labels if label not in run.allowed_labels)
            if truth is None or truth in run.removed_labels:
                continue  # open-world outlier / retired class: no oracle label
            scored += 1
            if labels[:1] == [truth]:
                hits_1 += 1
            if truth in labels[: spec.top_k]:
                hits_k += 1

        failed = sum(result.failed for result in run.results)
        latencies = [result.report for result in run.results]
        generations = [g for result in run.results for g in result.generations if g >= 0]
        generation_start = min(generations) if generations else -1
        generation_end = max(generations) if generations else -1
        isolation_ok = foreign == 0
        if events_applied and not victim and generation_start != generation_end:
            # A bystander's deployment moved while someone else churned:
            # that is a cross-tenant leak even if no label escaped.
            isolation_ok = False
        return TenantReport(
            tenant=run.tenant,
            victim=victim,
            n_queries=len(predictions),
            failed=failed,
            recall_at_1=hits_1 / scored if scored else 0.0,
            recall_at_k=hits_k / scored if scored else 0.0,
            p50_ms=float(np.median([report.p50_ms for report in latencies])) if latencies else 0.0,
            p99_ms=float(max(report.p99_ms for report in latencies)) if latencies else 0.0,
            generation_start=generation_start,
            generation_end=generation_end,
            foreign_labels=foreign,
            isolation_ok=isolation_ok,
        )

    # --------------------------------------------------------------------- run
    def run(self, spec: ScenarioSpec) -> ScenarioReport:
        """Provision, replay, inject, score — one scenario end to end."""
        spec.validate()
        started = time.monotonic()
        client = FrontendClient(self.host, self.port, timeout_s=self.timeout_s)
        try:
            runs = self._provision(client, spec)
            self._build_streams(runs, spec)
            victim = runs[0]
            self._replay_phase(runs, spec, phase=0)
            cost, drift_info, faults = self._inject_events(client, victim, spec)
            events_applied = bool(cost or drift_info or faults)
            try:
                self._replay_phase(runs, spec, phase=1)
            finally:
                self._heal_faults(client, victim, spec)
            reports = [
                self._score_tenant(run, spec, victim=(run is victim), events_applied=events_applied)
                for run in runs
            ]
            for run in runs:
                client.drop_tenant(run.tenant)
        finally:
            client.close()
        scored = [report for report in reports if report.n_queries]
        total_queries = sum(report.n_queries for report in reports)
        weights = np.array([report.n_queries for report in scored], dtype=np.float64)
        recall_1 = float(np.average([r.recall_at_1 for r in scored], weights=weights)) if scored else 0.0
        recall_k = float(np.average([r.recall_at_k for r in scored], weights=weights)) if scored else 0.0
        return ScenarioReport(
            scenario=spec.name,
            description=spec.description,
            tenants=reports,
            n_queries=total_queries,
            failed=sum(report.failed for report in reports),
            recall_at_1=recall_1,
            recall_at_k=recall_k,
            top_k=spec.top_k,
            p50_ms=float(np.median([r.p50_ms for r in scored])) if scored else 0.0,
            p99_ms=float(max(r.p99_ms for r in scored)) if scored else 0.0,
            defence_overhead=float(np.mean([run.overhead for run in runs])),
            update_cost=cost,
            drift_info=drift_info,
            faults_injected=faults,
            isolation_ok=all(report.isolation_ok for report in reports),
            duration_s=time.monotonic() - started,
            spec=spec.as_dict(),
        )


class ServedScenarioHost:
    """A disposable self-hosted front-end for scenario replays.

    Wires up the same stack as ``repro serve`` — sharded store behind a
    replica router, batch scheduler, TCP front-end — plus a
    :class:`~repro.serving.tenancy.TenantRegistry` whose factory provisions
    empty deployments on the ``tenant create`` control op, which is how the
    runner populates its per-scenario tenants over the wire.  Sized for
    test runs: small default corpus, in-process replicas.
    """

    def __init__(
        self,
        *,
        dim: int = 16,
        n_shards: int = 2,
        n_replicas: int = 2,
        k: int = 5,
        max_batch_size: int = 16,
        max_latency_ms: float = 2.0,
        cache_size: int = 1024,
        host: str = "127.0.0.1",
        port: int = 0,
        max_tenants: int = 16,
    ) -> None:
        self.dim = int(dim)
        self.n_shards = int(n_shards)
        self.n_replicas = int(n_replicas)
        self.k = int(k)
        self.max_batch_size = int(max_batch_size)
        self.max_latency_s = float(max_latency_ms) / 1e3
        self.cache_size = int(cache_size)
        self.max_tenants = int(max_tenants)
        self._bind_host = host
        self._bind_port = int(port)
        self._stack: List[object] = []
        self.host: str = host
        self.port: int = 0
        self.registry = None

    def _make_manager(self, tenant: str = "") -> "DeploymentManager":
        from repro.config import ClassifierConfig
        from repro.serving import DeploymentManager, ReplicaSet, ShardedReferenceStore

        store = ShardedReferenceStore(
            self.dim, n_shards=self.n_shards, executor=ReplicaSet.in_process(self.n_replicas)
        )
        return DeploymentManager(store, ClassifierConfig(k=self.k))

    def __enter__(self) -> "ServedScenarioHost":
        from repro.serving import BatchScheduler, FrontendServer, TenantRegistry

        manager = self._make_manager()
        registry = TenantRegistry(
            manager, factory=self._make_manager, max_tenants=self.max_tenants
        )
        scheduler = BatchScheduler(
            registry,
            max_batch_size=self.max_batch_size,
            max_latency_s=self.max_latency_s,
            cache_size=self.cache_size,
            n_executors=self.n_replicas,
        )
        scheduler.__enter__()
        server = FrontendServer(
            scheduler, tenants=registry, host=self._bind_host, port=self._bind_port
        )
        server.__enter__()
        self._stack = [manager, registry, scheduler, server]
        self.registry = registry
        self.host = server.host
        self.port = server.port
        return self

    def __exit__(self, *exc_info) -> None:
        manager, registry, scheduler, server = self._stack
        server.__exit__(*exc_info)
        scheduler.__exit__(*exc_info)
        registry.close()
        self._stack = []
        self.registry = None
