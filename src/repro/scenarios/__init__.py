"""Scenario engine: adversarial and operational replays against live serving.

The paper evaluates the adaptive fingerprinter under padding defences,
content drift, open-world traffic and operational churn — each in its own
experiment.  This package replays those conditions *against a running
front-end* instead: a :class:`~repro.scenarios.engine.ScenarioSpec`
declares the condition, the :class:`~repro.scenarios.engine.ScenarioRunner`
drives it over the real wire protocol with one isolated tenant per corpus,
and the resulting :class:`~repro.scenarios.engine.ScenarioReport` carries
recall, tail latency, defence overhead, update cost and an isolation
verdict.  ``repro scenario run`` is the CLI entry point;
:mod:`repro.scenarios.strategies` adds property-based spec generation.
"""

from repro.scenarios.corpus import GENERATOR_KINDS, ScenarioCorpus, TraceEmbedder
from repro.scenarios.engine import (
    FAULT_KINDS,
    ScenarioReport,
    ScenarioRunner,
    ScenarioSpec,
    ScenarioSpecError,
    ServedScenarioHost,
    TenantReport,
)
from repro.scenarios.builtin import builtin_scenarios, get_scenario
from repro.scenarios.strategies import (
    HAVE_HYPOTHESIS,
    check_report_invariants,
    random_spec,
)

__all__ = [
    "GENERATOR_KINDS",
    "ScenarioCorpus",
    "TraceEmbedder",
    "FAULT_KINDS",
    "ScenarioReport",
    "ScenarioRunner",
    "ScenarioSpec",
    "ScenarioSpecError",
    "ServedScenarioHost",
    "TenantReport",
    "builtin_scenarios",
    "get_scenario",
    "HAVE_HYPOTHESIS",
    "check_report_invariants",
    "random_spec",
]
