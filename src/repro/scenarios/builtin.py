"""The built-in scenario catalogue.

Each scenario is one :class:`~repro.scenarios.engine.ScenarioSpec` probing
a distinct claim from the paper against a live deployment: the padding
scenarios measure how much recall each defence family buys at what
bandwidth overhead (Section VI-D), ``drift-gradual`` exercises the
retraining-free adaptation loop under accumulated page updates
(Section III-C.2), ``openworld-surge`` floods the stream with unmonitored
pages, ``churn-storm`` batters one tenant's corpus with
add/remove/replace while bystanders replay, and ``replica-flap`` kills a
read replica mid-replay and expects zero failed queries.  ``baseline`` is
the undefended control every other row is read against.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.engine import ScenarioSpec

_BUILTIN: List[ScenarioSpec] = [
    ScenarioSpec(
        name="baseline",
        description="Undefended traffic, static pages; the control row.",
        seed=11,
    ),
    ScenarioSpec(
        name="padding-adaptive",
        description="Victim deploys adaptive padding (decoy bursts in idle gaps).",
        defence={"kind": "adaptive", "fill_probability": 0.5, "burst_scale": 0.6},
        seed=13,
    ),
    ScenarioSpec(
        name="padding-fixed",
        description="Victim pads every sequence to corpus-max totals.",
        defence={"kind": "fixed-length"},
        seed=17,
    ),
    ScenarioSpec(
        name="padding-random",
        description="Victim appends random padding bursts per trace.",
        defence={"kind": "random", "max_fraction": 0.4},
        seed=19,
    ),
    ScenarioSpec(
        name="drift-gradual",
        description=(
            "Monitored pages accumulate small edits mid-replay; the adversary "
            "recrawls and replaces references without retraining."
        ),
        drift={"kind": "gradual", "steps": 6, "per_step_change": 0.12, "fraction": 0.5},
        seed=23,
    ),
    ScenarioSpec(
        name="openworld-surge",
        description="A third of the stream is unmonitored-page traffic.",
        open_world={"fraction": 0.3, "outlier_shift": 25.0},
        seed=29,
    ),
    ScenarioSpec(
        name="churn-storm",
        description="Mid-replay add/remove/replace storm against the victim tenant.",
        churn={"replace": 2, "add": 1, "remove": 1},
        seed=31,
    ),
    ScenarioSpec(
        name="replica-flap",
        description="A read replica dies mid-replay and is restored afterwards.",
        faults=("replica-flap",),
        replica_position=1,
        seed=37,
    ),
]


def builtin_scenarios() -> Dict[str, ScenarioSpec]:
    """The built-in scenarios keyed by name (insertion order preserved)."""
    return {spec.name: spec for spec in _BUILTIN}


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one built-in scenario; raises ``KeyError`` with the catalogue."""
    scenarios = builtin_scenarios()
    if name not in scenarios:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenarios)}"
        )
    return scenarios[name]
