"""The scenario bench: run a scenario suite, snapshot BENCH_8.json.

One row per scenario — recall@1/@k, client p50/p99, defence bandwidth
overhead, update cost and the isolation verdict — measured against a live
front-end (self-hosted by default, any reachable ``repro serve`` via
``target``).  The snapshot layout follows the other BENCH files: a
``platform`` header for cross-run comparability, the workload knobs, then
the measured rows.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.scenarios.builtin import builtin_scenarios, get_scenario
from repro.scenarios.engine import ScenarioReport, ScenarioRunner, ServedScenarioHost

PathLike = Union[str, Path]

DEFAULT_SUITE = ("baseline", "padding-adaptive", "padding-fixed", "drift-gradual")


def run_scenario_bench(
    scenario_names: Sequence[str] = DEFAULT_SUITE,
    *,
    tenants: int = 2,
    n_queries: Optional[int] = None,
    seed: Optional[int] = None,
    target: Optional[Tuple[str, int]] = None,
    dim: int = 16,
    out: Optional[PathLike] = None,
) -> Dict:
    """Run the named scenarios and return (optionally write) the snapshot.

    ``target`` points the runner at an existing front-end (its deployment
    dimension must match ``dim``); without it a
    :class:`~repro.scenarios.engine.ServedScenarioHost` is stood up for the
    duration of the suite.  ``n_queries``/``seed`` override every spec —
    CI pins both so snapshots are comparable across runs.
    """
    specs = [get_scenario(name) for name in scenario_names]
    for spec in specs:
        if n_queries is not None:
            spec.n_queries = int(n_queries)
        if seed is not None:
            spec.seed = int(seed)
        spec.embedding_dim = int(dim)

    reports: List[ScenarioReport] = []
    if target is None:
        with ServedScenarioHost(dim=dim) as host:
            runner = ScenarioRunner(host.host, host.port, tenants=tenants)
            for spec in specs:
                reports.append(runner.run(spec))
    else:
        runner = ScenarioRunner(target[0], target[1], tenants=tenants)
        for spec in specs:
            reports.append(runner.run(spec))

    snapshot = {
        "snapshot": "BENCH_8",
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "workload": {
            "tenants": tenants,
            "n_queries": n_queries,
            "seed": seed,
            "dim": dim,
            "self_hosted": target is None,
        },
        "scenarios": [report.as_dict() for report in reports],
        "acceptance": {
            "zero_failed_queries": all(report.failed == 0 for report in reports),
            "tenant_isolation": all(report.isolation_ok for report in reports),
        },
    }
    if out is not None:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=2) + "\n")
    return snapshot


def format_scenario_summary(snapshot: Dict) -> List[str]:
    """Human-readable table of a scenario bench snapshot."""
    lines = [
        "scenario           tenants  queries  recall@1  recall@k   p50 ms   p99 ms  overhead  failed  isolated",
    ]
    for row in snapshot["scenarios"]:
        lines.append(
            f"{row['scenario']:<18} {len(row['tenants']):>7} {row['n_queries']:>8} "
            f"{row['recall_at_1']:>9.3f} {row['recall_at_k']:>9.3f} "
            f"{row['p50_ms']:>8.2f} {row['p99_ms']:>8.2f} "
            f"{row['defence_overhead']:>9.3f} {row['failed']:>7} "
            f"{'yes' if row['isolation_ok'] else 'NO':>9}"
        )
    acceptance = snapshot["acceptance"]
    lines.append(
        "acceptance: zero failed queries="
        + ("pass" if acceptance["zero_failed_queries"] else "FAIL")
        + ", tenant isolation="
        + ("pass" if acceptance["tenant_isolation"] else "FAIL")
    )
    return lines


def available_scenarios() -> List[Tuple[str, str]]:
    """``(name, description)`` pairs for ``repro scenario list``."""
    return [(name, spec.description) for name, spec in builtin_scenarios().items()]
