"""Corpus synthesis for scenario replays: pages → traces → embeddings.

The serving stack classifies *embeddings*; the paper's defences and drift
models operate on *traces* and *pages*.  This module is the bridge that
lets a scenario genuinely perturb what the server sees: a synthetic
website is crawled into labelled trace datasets
(:func:`repro.traces.build.collect_dataset`), and a deterministic
random-projection :class:`TraceEmbedder` maps traces to fixed-dimension
embeddings.  Reference embeddings come from clean crawls; query embeddings
come from *defended* (padded) or *drifted* (re-crawled after page updates)
traces of the same pages — so a padding defence or a content update moves
the query embeddings exactly the way it would move a real deployment's,
and the measured recall drop is earned, not simulated.

Every step is deterministic in the corpus seed: website generation, the
crawls, the projection matrix and the query sampling all derive from it,
which is what makes scenario replays reproducible across runs and
platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.defences.base import TraceDefence
from repro.defences.fixed_length import FixedLengthPadding
from repro.traces.build import collect_dataset
from repro.traces.dataset import TraceDataset
from repro.web.generators import GithubLikeGenerator, WikipediaLikeGenerator
from repro.web.website import Website

GENERATOR_KINDS = ("wiki", "github")


class TraceEmbedder:
    """Deterministic statistics-plus-projection embedding of traces.

    Per-position byte counts jitter between visits of the same page (burst
    alignment moves), but per-sequence aggregates — total bytes, number of
    active positions, burst sizes — are stable per page and shift under
    both padding defences and content drift.  The embedder therefore
    summarises each TLS record sequence into four log-scaled statistics
    and applies a seeded Gaussian projection to ``dim`` dimensions.  The
    matrix depends only on ``(input shape, dim, seed)``, so references and
    queries embed consistently across processes, and revisits of a page
    land near its reference cluster while padded or drifted traffic is
    displaced in proportion to how much the traffic actually changed.
    """

    STATS_PER_SEQUENCE = 4

    def __init__(self, n_sequences: int, sequence_length: int, *, dim: int = 16, seed: int = 0) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.n_sequences = int(n_sequences)
        self.sequence_length = int(sequence_length)
        self.dim = int(dim)
        self.seed = int(seed)
        rng = np.random.default_rng(seed)
        n_features = self.n_sequences * self.STATS_PER_SEQUENCE
        self._projection = rng.standard_normal((n_features, self.dim)) / np.sqrt(self.dim)

    def _features(self, data: np.ndarray) -> np.ndarray:
        raw = np.expm1(data)
        totals = np.log1p(raw.sum(axis=2))
        active = np.log1p((raw > 0).sum(axis=2))
        peak = np.log1p(raw.max(axis=2))
        spread = np.log1p(raw.std(axis=2))
        return np.concatenate([totals, active, peak, spread], axis=1)

    def embed(self, dataset: TraceDataset) -> np.ndarray:
        """``(n_traces, dim)`` float64 embeddings of a trace dataset."""
        data = np.asarray(dataset.data, dtype=np.float64)
        if data.shape[1:] != (self.n_sequences, self.sequence_length):
            raise ValueError(
                f"dataset shape {data.shape[1:]} does not match the embedder's "
                f"({self.n_sequences}, {self.sequence_length})"
            )
        return self._features(data) @ self._projection


@dataclass
class ScenarioCorpus:
    """Everything one tenant's scenario replay draws from.

    ``reference`` holds the clean crawls the deployment serves;
    ``queries`` holds *held-out* crawls of the same pages (different
    visits), which is what makes undefended recall meaningful.
    ``holdout_labels`` are pages crawled but *not* provisioned, so churn
    ``add`` operations have genuinely new classes to introduce.
    """

    website: Website
    reference: TraceDataset
    queries: TraceDataset
    embedder: TraceEmbedder
    seed: int
    visits_per_page: int
    holdout_labels: List[str] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        *,
        generator: str = "wiki",
        n_pages: int = 10,
        visits_per_page: int = 6,
        dim: int = 16,
        seed: int = 0,
        holdout_pages: int = 2,
    ) -> "ScenarioCorpus":
        """Generate a website, crawl it, and split reference/query visits."""
        if generator not in GENERATOR_KINDS:
            raise ValueError(f"unknown generator {generator!r}; expected one of {GENERATOR_KINDS}")
        if n_pages <= holdout_pages:
            raise ValueError("n_pages must exceed holdout_pages")
        if visits_per_page < 2:
            raise ValueError("visits_per_page must be at least 2 (reference + query splits)")
        if generator == "wiki":
            website = WikipediaLikeGenerator(n_pages=n_pages, seed=seed).generate()
        else:
            website = GithubLikeGenerator(n_pages=n_pages, seed=seed).generate()
        dataset = collect_dataset(website, visits_per_page=visits_per_page, seed=seed)
        reference, queries = dataset.split_per_class(0.5, seed=seed)
        embedder = TraceEmbedder(
            dataset.n_sequences, dataset.sequence_length, dim=dim, seed=seed
        )
        page_ids = sorted(website.page_ids)
        holdout = page_ids[len(page_ids) - holdout_pages :] if holdout_pages else []
        return cls(
            website=website,
            reference=reference,
            queries=queries,
            embedder=embedder,
            seed=int(seed),
            visits_per_page=int(visits_per_page),
            holdout_labels=holdout,
        )

    # ------------------------------------------------------------------ labels
    @property
    def monitored_labels(self) -> List[str]:
        """Pages the deployment serves (everything but the holdout)."""
        return [name for name in self.reference.class_names if name not in self.holdout_labels]

    def _class_rows(self, dataset: TraceDataset, label: str) -> np.ndarray:
        class_id = dataset.class_names.index(label)
        return np.flatnonzero(dataset.labels == class_id)

    def reference_embeddings(self, labels: Optional[Sequence[str]] = None) -> Dict[str, np.ndarray]:
        """Per-class reference embeddings for provisioning a deployment."""
        embedded = self.embedder.embed(self.reference)
        wanted = list(labels) if labels is not None else self.monitored_labels
        return {label: embedded[self._class_rows(self.reference, label)] for label in wanted}

    # ----------------------------------------------------------------- queries
    def _fixed_length_targets(self, defence: TraceDefence) -> TraceDefence:
        """FL padding with targets learned from the *reference* corpus.

        A live defence pads traffic to targets observed on a previously
        collected corpus, not on the traffic being padded — so FL specs
        without explicit targets learn per-sequence maxima from the
        reference crawls.
        """
        if isinstance(defence, FixedLengthPadding) and defence.target_totals is None:
            raw = np.expm1(np.asarray(self.reference.data, dtype=np.float64))
            if defence.per_sequence:
                return FixedLengthPadding(per_sequence=True, target_totals=raw.sum(axis=2).max(axis=0))
            return FixedLengthPadding(per_sequence=False, target_totals=raw.sum(axis=(1, 2)).max())
        return defence

    def query_stream(
        self,
        n_queries: int,
        *,
        defence: Optional[TraceDefence] = None,
        labels: Optional[Sequence[str]] = None,
        source: Optional[TraceDataset] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, List[str], float]:
        """``(embeddings, true_labels, defence_overhead)`` for a replay.

        Queries are sampled (with replacement) from the held-out visits of
        the monitored pages, the defence — if any — is applied to the
        *sampled traces* before embedding, and the bandwidth overhead the
        defence cost is measured on exactly the traffic that was sent.
        """
        if n_queries <= 0:
            raise ValueError("n_queries must be positive")
        if rng is None:
            rng = np.random.default_rng(self.seed + 1)
        dataset = source if source is not None else self.queries
        wanted = list(labels) if labels is not None else self.monitored_labels
        wanted = [label for label in wanted if label in dataset.class_names]
        if not wanted:
            raise ValueError("no monitored labels present in the query dataset")
        rows = np.concatenate([self._class_rows(dataset, label) for label in wanted])
        chosen = rows[rng.integers(0, rows.size, size=n_queries)]
        sampled = dataset.subset(chosen.tolist())
        overhead = 0.0
        defended = sampled
        if defence is not None:
            defence = self._fixed_length_targets(defence)
            defended = defence.apply(sampled, log_scaled=True, seed=int(rng.integers(2**31)))
            original_bytes = float(np.expm1(sampled.data).sum())
            defended_bytes = float(np.expm1(defended.data).sum())
            overhead = (defended_bytes - original_bytes) / max(original_bytes, 1e-9)
        true_labels = [sampled.label_name(int(label)) for label in sampled.labels]
        return self.embedder.embed(defended), true_labels, overhead

    # ------------------------------------------------------------------- drift
    def recrawl(
        self, page_ids: Sequence[str], *, visits_per_page: Optional[int] = None, seed_offset: int = 1
    ) -> TraceDataset:
        """Fresh crawls of ``page_ids`` against the *current* website state.

        After a drift model mutates pages in place, this is how both the
        adversary's adaptation (new reference embeddings for
        ``replace_class``) and the drifted victim traffic (phase-two query
        streams) are produced — from the same updated pages, but different
        crawl seeds, so they are correlated without being identical.
        """
        if not page_ids:
            raise ValueError("recrawl needs at least one page id")
        return collect_dataset(
            self.website,
            page_ids=list(page_ids),
            visits_per_page=visits_per_page or max(2, self.visits_per_page // 2),
            seed=self.seed + 7919 * seed_offset,
        )
