"""Command-line interface for the reproduction.

The subcommands cover the common workflows::

    python -m repro info                     # package / scale overview
    python -m repro experiment exp1 --scale smoke
    python -m repro experiment all  --scale ci --index ivf
    python -m repro table3 --no-measure
    python -m repro index-bench              # exact-vs-IVF scaling table
    python -m repro serve-bench              # serving layer -> BENCH_2.json
    python -m repro serve-bench --transport tcp --replicas 4   # -> BENCH_4.json
    python -m repro serve --port 7010        # TCP serving front-end
    python -m repro serve --port 7010 --metrics-port 9110   # + Prometheus scrape
    python -m repro serve-bench --storage-tier tiered   # shm vs mmap -> BENCH_7.json
    python -m repro stats 127.0.0.1:7010     # stats + metrics of a running server
    python -m repro scenario list            # built-in adversarial scenarios
    python -m repro scenario run --scenario padding-adaptive --tenants 2
    python -m repro scenario run --scenario all --out BENCH_8.json
    python -m repro requantize DIR --check   # drift report on a saved deployment
    python -m repro migrate DIR              # legacy npz archives -> RSG1 segments

Index-engine knob help (``--n-cells``/``--n-probe``/``--n-subspaces``/
``--bits``/``--opq``/``--rerank``/``--native-kernels``/
``--max-cell-fraction``) comes from the single source of truth in
:mod:`repro.core.knobs`, which ``docs/index-tuning.md`` mirrors.

The ``experiment`` subcommand builds the shared
:class:`~repro.experiments.setup.ExperimentContext` once and runs the
requested experiment(s), printing the same tables the benchmark harness
regenerates and (optionally) writing them to an output directory; the
``--index/--n-cells/--n-probe`` flags pick the k-NN query engine so
paper-scale runs can use the sublinear IVF index.  ``serve-bench`` replays
an open-world trace mix through the sharded, micro-batched serving layer
(:mod:`repro.serving`) and records throughput and p50/p99 latency.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro import __version__
from repro.config import SCALES, get_scale
from repro.core.knobs import INDEX_ENGINES, INDEX_KNOB_HELP
from repro.costs.catalogue import table_iii_rows
from repro.metrics.reports import format_table

EXPERIMENT_NAMES = ("exp1", "exp2", "exp3", "exp4", "exp5", "table3")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Adaptive Webpage Fingerprinting from TLS Traces' (DSN 2023)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("info", help="show package, scale and experiment inventory")

    experiment = subparsers.add_parser("experiment", help="run one or all experiments")
    experiment.add_argument(
        "name", choices=EXPERIMENT_NAMES + ("all",), help="experiment to run (or 'all')"
    )
    experiment.add_argument("--scale", default="smoke", choices=sorted(SCALES), help="experiment scale")
    experiment.add_argument(
        "--output-dir", type=Path, default=None, help="write the regenerated tables to this directory"
    )
    experiment.add_argument(
        "--index", default="exact", choices=INDEX_ENGINES,
        help="k-NN query engine for every reference store (ivf = sublinear "
             "CoarseQuantizedIndex, ivfpq = product-quantized IVFPQIndex)",
    )
    experiment.add_argument("--n-cells", type=int, default=None, help=INDEX_KNOB_HELP["n_cells"])
    experiment.add_argument("--n-probe", type=int, default=None, help=INDEX_KNOB_HELP["n_probe"])
    experiment.add_argument(
        "--n-subspaces", type=int, default=8, help=INDEX_KNOB_HELP["n_subspaces"]
    )
    experiment.add_argument("--bits", type=int, default=8, help=INDEX_KNOB_HELP["bits"])
    experiment.add_argument("--opq", action="store_true", help=INDEX_KNOB_HELP["opq"])
    experiment.add_argument("--rerank", type=int, default=64, help=INDEX_KNOB_HELP["rerank"])
    experiment.add_argument(
        "--native-kernels", choices=("auto", "on", "off"), default="auto",
        help=INDEX_KNOB_HELP["native_kernels"],
    )
    experiment.add_argument(
        "--max-cell-fraction", type=float, default=None,
        help=INDEX_KNOB_HELP["max_cell_fraction"],
    )

    table3 = subparsers.add_parser("table3", help="print the Table III cost catalogue")
    table3.add_argument("--no-measure", action="store_true", help="catalogue only, skip measured timings")
    table3.add_argument("--scale", default="smoke", choices=sorted(SCALES), help="scale for measured timings")

    index_bench = subparsers.add_parser(
        "index-bench",
        help="compare exact / IVF / IVF-PQ k-NN query time, recall and memory as the store grows",
    )
    index_bench.add_argument(
        "--sizes", default="2000,6000,18000", help="comma-separated reference-store sizes"
    )
    index_bench.add_argument(
        "--index", default="exact,ivf,ivfpq",
        help="comma-separated engines to measure (exact|ivf|ivfpq; exact is always included)",
    )
    index_bench.add_argument("--dim", type=int, default=32, help="embedding dimension")
    index_bench.add_argument("--k", type=int, default=50, help="neighbours per query")
    index_bench.add_argument("--n-cells", type=int, default=None, help=INDEX_KNOB_HELP["n_cells"])
    index_bench.add_argument("--n-probe", type=int, default=None, help=INDEX_KNOB_HELP["n_probe"])
    index_bench.add_argument(
        "--n-subspaces", type=int, default=None, help=INDEX_KNOB_HELP["n_subspaces"]
    )
    index_bench.add_argument("--bits", type=int, default=None, help=INDEX_KNOB_HELP["bits"])
    index_bench.add_argument("--opq", action="store_true", help=INDEX_KNOB_HELP["opq"])
    index_bench.add_argument("--rerank", type=int, default=None, help=INDEX_KNOB_HELP["rerank"])
    index_bench.add_argument(
        "--native-kernels", choices=("auto", "on", "off"), default="auto",
        help=INDEX_KNOB_HELP["native_kernels"],
    )
    index_bench.add_argument(
        "--max-cell-fraction", type=float, default=None,
        help=INDEX_KNOB_HELP["max_cell_fraction"],
    )
    index_bench.add_argument("--queries", type=int, default=128, help="queries per measurement")
    index_bench.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")

    serve = subparsers.add_parser(
        "serve",
        help="start the TCP serving front-end over a synthetic deployment",
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=7010, help="TCP port (0 = ephemeral)")
    serve.add_argument("--references", type=int, default=6000, help="reference corpus size")
    serve.add_argument("--classes", type=int, default=120, help="monitored classes")
    serve.add_argument("--dim", type=int, default=32, help="embedding dimension")
    serve.add_argument("--k", type=int, default=50, help="neighbours per query")
    serve.add_argument("--shards", type=int, default=2, help="reference-store shards (>= 2)")
    serve.add_argument(
        "--replicas", type=int, default=1, help="read replicas behind the router (>= 1)"
    )
    serve.add_argument(
        "--router", default="least_loaded", choices=("round_robin", "least_loaded"),
        help="replica routing policy",
    )
    serve.add_argument(
        "--executor", default="serial", choices=("serial", "process"),
        help="replica backend: calling-thread scan or worker processes (shared memory)",
    )
    serve.add_argument(
        "--index", default="exact", choices=INDEX_ENGINES, help="per-shard k-NN engine"
    )
    serve.add_argument("--rerank", type=int, default=0, help=INDEX_KNOB_HELP["rerank"])
    serve.add_argument("--bits", type=int, default=8, help=INDEX_KNOB_HELP["bits"])
    serve.add_argument("--opq", action="store_true", help=INDEX_KNOB_HELP["opq"])
    serve.add_argument(
        "--native-kernels", choices=("auto", "on", "off"), default="auto",
        help=INDEX_KNOB_HELP["native_kernels"],
    )
    serve.add_argument(
        "--max-cell-fraction", type=float, default=None,
        help=INDEX_KNOB_HELP["max_cell_fraction"],
    )
    serve.add_argument(
        "--storage-dtype", default="float64", choices=("float64", "float32"),
        help="resident dtype of shard embedding buffers",
    )
    serve.add_argument(
        "--storage-tier", default="shm", choices=("shm", "mmap"),
        help="shard segment publication: shm = resident shared memory (hot), "
             "mmap = spill files read off the page cache (cold); answers are "
             "bit-identical (docs/segment-format.md)",
    )
    serve.add_argument("--batch-size", type=int, default=64, help="micro-batch size cap")
    serve.add_argument(
        "--max-latency-ms", type=float, default=2.0, help="micro-batch age-out latency budget"
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096, help="LRU result-cache entries (0 disables)"
    )
    serve.add_argument("--seed", type=int, default=0, help="synthetic corpus seed")
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="also serve Prometheus text exposition over HTTP on this port "
             "(GET /metrics; 0 = ephemeral). The `metrics` control op works "
             "either way.",
    )
    serve.add_argument(
        "--trace-sample", type=int, default=0,
        help="collect per-stage trace spans for 1-in-N queries (0 disables "
             "sampling; the slow-query log stays on regardless)",
    )
    serve.add_argument(
        "--slow-query-ms", type=float, default=250.0,
        help="log any query slower than this many milliseconds (0 disables)",
    )
    serve.add_argument(
        "--max-tenants", type=int, default=16,
        help="cap on wire-provisioned tenant deployments (the `tenant create` "
             "control op); 1 = single-tenant front-end, no provisioning",
    )

    scenario = subparsers.add_parser(
        "scenario",
        help="replay adversarial / multi-tenant scenarios against a live "
             "front-end -> BENCH_8.json",
    )
    scenario.add_argument(
        "action", choices=("run", "list"),
        help="run scenarios, or list the built-in catalogue",
    )
    scenario.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario to run (repeatable; 'all' = whole catalogue; default: "
             "the CI suite of 4)",
    )
    scenario.add_argument(
        "--tenants", type=int, default=2,
        help="isolated tenants provisioned per scenario (tenant 0 is the "
             "victim receiving churn/drift/faults)",
    )
    scenario.add_argument(
        "--target", default=None, metavar="HOST:PORT",
        help="run against an existing `repro serve` front-end (its --dim must "
             "match --dim here) instead of self-hosting one",
    )
    scenario.add_argument(
        "--queries", type=int, default=None,
        help="override every scenario's query count (CI pins this)",
    )
    scenario.add_argument("--seed", type=int, default=None, help="override every scenario's seed")
    scenario.add_argument(
        "--dim", type=int, default=16,
        help="trace-embedding dimension (must match the target server's corpus)",
    )
    scenario.add_argument(
        "--out", type=Path, default=None,
        help="write the snapshot JSON here (e.g. BENCH_8.json); default: print only",
    )

    stats = subparsers.add_parser(
        "stats",
        help="query a running `repro serve` front-end for stats and metrics",
    )
    stats.add_argument(
        "target", help="HOST:PORT of a running front-end (e.g. 127.0.0.1:7010)"
    )
    stats.add_argument(
        "--raw", action="store_true",
        help="print the raw Prometheus exposition instead of the summary table",
    )

    serve_bench = subparsers.add_parser(
        "serve-bench",
        help="replay an open-world mix through the sharded serving layer "
             "-> BENCH_2.json (in-process) or BENCH_4.json (--transport tcp)",
    )
    serve_bench.add_argument("--references", type=int, default=6000, help="reference corpus size")
    serve_bench.add_argument("--classes", type=int, default=120, help="monitored classes")
    serve_bench.add_argument("--dim", type=int, default=32, help="embedding dimension")
    serve_bench.add_argument("--k", type=int, default=50, help="neighbours per query")
    serve_bench.add_argument("--queries", type=int, default=2000, help="queries to replay")
    serve_bench.add_argument("--shards", type=int, default=2, help="reference-store shards (>= 2)")
    serve_bench.add_argument("--batch-size", type=int, default=64, help="micro-batch size cap")
    serve_bench.add_argument(
        "--max-latency-ms", type=float, default=2.0, help="micro-batch age-out latency budget"
    )
    serve_bench.add_argument(
        "--cache-size", type=int, default=None,
        help="LRU result-cache entries; 0 disables. Defaults: 4096 inproc, 0 for "
             "tcp (cache hits would bypass the replicas the tcp bench measures)",
    )
    serve_bench.add_argument(
        "--executor", default=None, choices=("serial", "process", "both"),
        help="shard scatter: in-process, worker processes (shared memory), or both. "
             "Defaults: serial for inproc; process for tcp (serial replicas "
             "serialise on the GIL and cannot show read scaling)",
    )
    serve_bench.add_argument(
        "--transport", default="inproc", choices=("inproc", "tcp"),
        help="inproc = scheduler replay -> BENCH_2.json; tcp = replay over the "
             "socket front-end with replica scaling -> BENCH_4.json",
    )
    serve_bench.add_argument(
        "--replicas", type=int, default=4,
        help="max read replicas for --transport tcp (measures 1,2,...,N doubling)",
    )
    serve_bench.add_argument(
        "--router", default="least_loaded", choices=("round_robin", "least_loaded"),
        help="replica routing policy for --transport tcp",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=8, help="concurrent TCP client connections (tcp transport)"
    )
    serve_bench.add_argument(
        "--request-batch-size", type=int, default=32,
        help="queries per client request frame (tcp transport)",
    )
    serve_bench.add_argument(
        "--class-mix", default=None, choices=("uniform", "zipf"),
        help="monitored class popularity (default: uniform inproc, zipf tcp)",
    )
    serve_bench.add_argument(
        "--zipf-s", type=float, default=1.2, help="Zipf exponent for --class-mix zipf"
    )
    serve_bench.add_argument(
        "--index", default="exact", choices=INDEX_ENGINES,
        help="per-shard k-NN engine (ivfpq publishes uint8 codes + codebooks to shared memory)",
    )
    serve_bench.add_argument("--rerank", type=int, default=0, help=INDEX_KNOB_HELP["rerank"])
    serve_bench.add_argument("--bits", type=int, default=8, help=INDEX_KNOB_HELP["bits"])
    serve_bench.add_argument("--opq", action="store_true", help=INDEX_KNOB_HELP["opq"])
    serve_bench.add_argument(
        "--native-kernels", choices=("auto", "on", "off"), default="auto",
        help=INDEX_KNOB_HELP["native_kernels"],
    )
    serve_bench.add_argument(
        "--max-cell-fraction", type=float, default=None,
        help=INDEX_KNOB_HELP["max_cell_fraction"],
    )
    serve_bench.add_argument(
        "--storage-dtype", default="float64", choices=("float64", "float32"),
        help="resident dtype of shard embedding buffers (float32 halves segment bytes)",
    )
    serve_bench.add_argument(
        "--storage-tier", default="shm", choices=("shm", "mmap", "tiered"),
        help="shard segment publication for the replay (shm or mmap), or "
             "'tiered' to run the hot-vs-cold comparison -> BENCH_7.json",
    )
    serve_bench.add_argument(
        "--assignment", default="hash", choices=("hash", "balanced"), help="class -> shard placement"
    )
    serve_bench.add_argument(
        "--unmonitored-fraction", type=float, default=0.2, help="open-world share of the query mix"
    )
    serve_bench.add_argument(
        "--revisit-fraction", type=float, default=0.1, help="share of monitored queries that are exact revisits"
    )
    serve_bench.add_argument("--seed", type=int, default=0, help="workload seed")
    serve_bench.add_argument(
        "--out", type=Path, default=None,
        help="where to write the JSON snapshot (default: BENCH_2.json, or BENCH_4.json for tcp)",
    )
    serve_bench.add_argument(
        "--smoke", action="store_true",
        help="small fast preset (overrides sizes; used by the CI serving smoke job)",
    )

    requantize = subparsers.add_parser(
        "requantize",
        help="re-train a saved deployment's quantizer when corpus churn has "
             "drifted it from its training distribution",
    )
    requantize.add_argument(
        "deployment", type=Path, help="deployment directory (save_deployment layout)"
    )
    requantize.add_argument(
        "--sample-size", type=int, default=None,
        help="cap the per-store k-means training subsample (every row is still re-encoded)",
    )
    requantize.add_argument(
        "--threshold", type=float, default=1.5,
        help="drift ratio above which retraining is considered needed",
    )
    requantize.add_argument(
        "--check", action="store_true", help="report drift and exit without retraining"
    )
    requantize.add_argument(
        "--force", action="store_true", help="requantize even when drift is below threshold"
    )

    migrate = subparsers.add_parser(
        "migrate",
        help="convert legacy references.npz deployment archives to the RSG1 "
             "segment format in place (docs/segment-format.md)",
    )
    migrate.add_argument(
        "directory", type=Path,
        help="a deployment directory, or a parent directory holding several",
    )
    return parser


def _info() -> str:
    lines = [f"repro {__version__} — adaptive webpage fingerprinting reproduction", ""]
    scale_rows = [
        [name, scale.train_classes, "/".join(str(c) for c in scale.exp1_class_counts),
         "/".join(str(c) for c in scale.exp2_class_counts), scale.samples_per_class]
        for name, scale in sorted(SCALES.items())
    ]
    lines.append(
        format_table(
            ["scale", "train classes", "exp1 sweep", "exp2 sweep", "samples/class"],
            scale_rows,
            title="Available experiment scales",
        )
    )
    lines.append("")
    lines.append(
        format_table(
            ["id", "reproduces", "module"],
            [
                ["exp1", "Figure 6 (static classification)", "repro.experiments.exp1_static"],
                ["exp2", "Figure 7 + Table II (unseen classes)", "repro.experiments.exp2_adaptability"],
                ["exp3", "Figure 8 (cross-website transfer)", "repro.experiments.exp3_transfer"],
                ["exp4", "Figures 9-11 (per-class CDFs)", "repro.experiments.exp4_distinguishability"],
                ["exp5", "Figures 12-13 (FL padding)", "repro.experiments.exp5_padding"],
                ["table3", "Table III (operational costs)", "repro.experiments.table3"],
            ],
            title="Experiments",
        )
    )
    return "\n".join(lines)


def _run_experiments(
    name: str,
    scale_name: str,
    output_dir: Optional[Path],
    *,
    index_kind: str = "exact",
    n_cells: Optional[int] = None,
    n_probe: Optional[int] = None,
    n_subspaces: int = 8,
    bits: int = 8,
    opq: bool = False,
    rerank: int = 64,
    native_kernels: str = "auto",
    max_cell_fraction: Optional[float] = None,
) -> List[str]:
    # Imported lazily so `repro info` stays instant.
    from repro.experiments import (
        ExperimentContext,
        run_experiment1,
        run_experiment2,
        run_experiment3,
        run_experiment4,
        run_experiment5,
        run_table3,
    )

    context = ExperimentContext.build(
        get_scale(scale_name),
        index_kind=index_kind,
        n_cells=n_cells,
        n_probe=n_probe,
        n_subspaces=n_subspaces,
        bits=bits,
        opq=opq,
        rerank=rerank,
        native_kernels=native_kernels,
        max_cell_fraction=max_cell_fraction,
    )
    runners: Dict[str, Callable[[], List[str]]] = {
        "exp1": lambda: [run_experiment1(context).as_table()],
        "exp2": lambda: (lambda r: [r.as_table(), r.table2_as_table()])(run_experiment2(context)),
        "exp3": lambda: [run_experiment3(context).as_table()],
        "exp4": lambda: [run_experiment4(context).as_table()],
        "exp5": lambda: (lambda r: [r.as_table(), r.overhead_table()])(run_experiment5(context)),
        "table3": lambda: (lambda r: [r.as_table(), r.measured_as_table()])(run_table3(context)),
    }
    selected = EXPERIMENT_NAMES if name == "all" else (name,)
    outputs: List[str] = [
        f"scale: {scale_name}, index: {index_kind}", context.wiki_split.summary()
    ]
    for key in selected:
        tables = runners[key]()
        outputs.extend(tables)
        if output_dir is not None:
            output_dir.mkdir(parents=True, exist_ok=True)
            (output_dir / f"{key}.txt").write_text("\n\n".join(tables) + "\n")
    return outputs


def _table3(no_measure: bool, scale_name: str) -> List[str]:
    if no_measure:
        rows = table_iii_rows()
        headers = list(rows[0].keys())
        return [format_table(headers, [[row[h] for h in headers] for row in rows], title="Table III (catalogue)")]
    from repro.experiments import ExperimentContext, run_table3

    context = ExperimentContext.build(get_scale(scale_name))
    result = run_table3(context)
    return [result.as_table(), result.measured_as_table()]


def _index_bench(arguments) -> List[str]:
    from repro.core.index_bench import (
        INDEX_BENCH_ENGINES,
        SCALING_TABLE_HEADERS,
        measure_index_scaling,
        scaling_table_rows,
    )

    try:
        sizes = [int(size) for size in arguments.sizes.split(",") if size.strip()]
    except ValueError:
        raise SystemExit(f"--sizes must be comma-separated integers, got {arguments.sizes!r}")
    if not sizes or any(size <= 1 for size in sizes):
        raise SystemExit(f"--sizes needs at least one size > 1, got {arguments.sizes!r}")
    if arguments.n_probe is not None and arguments.n_probe <= 0:
        raise SystemExit("--n-probe must be positive")
    engines = [kind.strip() for kind in arguments.index.split(",") if kind.strip()]
    unknown = [kind for kind in engines if kind not in INDEX_BENCH_ENGINES]
    if unknown:
        raise SystemExit(
            f"--index got unknown engine(s) {unknown}; expected from {INDEX_BENCH_ENGINES}"
        )
    rows = measure_index_scaling(
        sizes,
        dim=arguments.dim,
        k=arguments.k,
        n_probe=arguments.n_probe,
        n_queries=arguments.queries,
        repeats=arguments.repeats,
        engines=engines,
        rerank=arguments.rerank,
        n_subspaces=arguments.n_subspaces,
        bits=arguments.bits,
        opq=arguments.opq,
        n_cells=arguments.n_cells,
        max_cell_fraction=arguments.max_cell_fraction,
    )
    return [
        format_table(
            SCALING_TABLE_HEADERS,
            scaling_table_rows(rows),
            title="k-NN query engine scaling (exact vs coarse-quantized vs IVF-PQ)",
        )
    ]


def _serve(arguments) -> int:
    from repro.config import ClassifierConfig
    from repro.core.index_bench import clustered_corpus
    from repro.core.reference_store import ReferenceStore
    from repro.obs import MetricsHTTPServer, MetricsRegistry, Tracer
    from repro.serving import (
        BatchScheduler,
        DeploymentManager,
        FrontendServer,
        ReplicaSet,
        ShardedReferenceStore,
        TenantRegistry,
    )
    from repro.serving.bench import _shard_index_factory

    if arguments.shards < 2:
        raise SystemExit("--shards must be >= 2")
    if arguments.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    corpus = clustered_corpus(
        arguments.references, arguments.dim, n_clusters=arguments.classes, seed=arguments.seed
    )
    labels = [f"page-{i % arguments.classes:04d}" for i in range(arguments.references)]
    flat = ReferenceStore(arguments.dim)
    flat.add(corpus, labels)
    replica_set = (
        ReplicaSet.in_process(arguments.replicas, router=arguments.router)
        if arguments.executor == "serial"
        else ReplicaSet.processes(
            arguments.replicas, n_workers=arguments.shards, router=arguments.router
        )
    )
    manager = DeploymentManager(
        ShardedReferenceStore.from_reference_store(
            flat,
            n_shards=arguments.shards,
            executor=replica_set,
            index_factory=_shard_index_factory(
                arguments.index,
                arguments.rerank,
                bits=arguments.bits,
                opq=arguments.opq,
                native_kernels=arguments.native_kernels,
                max_cell_fraction=arguments.max_cell_fraction,
            ),
            storage_dtype=arguments.storage_dtype,
            storage_tier=arguments.storage_tier,
        ),
        ClassifierConfig(k=arguments.k),
    )
    # Multi-tenant front-end: extra deployments are provisioned over the wire
    # (`tenant create`) by a factory replicating this server's store shape.
    tenants = None
    if arguments.max_tenants > 1:

        def provision_tenant(name: str) -> DeploymentManager:
            return DeploymentManager(
                ShardedReferenceStore(
                    arguments.dim,
                    n_shards=arguments.shards,
                    executor=ReplicaSet.in_process(arguments.replicas, router=arguments.router),
                    index_factory=_shard_index_factory(
                        arguments.index,
                        arguments.rerank,
                        bits=arguments.bits,
                        opq=arguments.opq,
                        native_kernels=arguments.native_kernels,
                        max_cell_fraction=arguments.max_cell_fraction,
                    ),
                    storage_dtype=arguments.storage_dtype,
                    storage_tier=arguments.storage_tier,
                ),
                ClassifierConfig(k=arguments.k),
            )

        tenants = TenantRegistry(
            manager, factory=provision_tenant, max_tenants=arguments.max_tenants
        )
    registry = MetricsRegistry()
    tracer = Tracer(
        registry,
        sample_every=arguments.trace_sample,
        slow_threshold_s=(
            arguments.slow_query_ms / 1e3 if arguments.slow_query_ms > 0 else None
        ),
    )
    manager.attach_metrics(registry)
    scheduler = BatchScheduler(
        tenants if tenants is not None else manager,
        max_batch_size=arguments.batch_size,
        max_latency_s=arguments.max_latency_ms / 1e3,
        cache_size=arguments.cache_size,
        n_executors=arguments.replicas,
        registry=registry,
        tracer=tracer,
    )
    server = FrontendServer(
        scheduler,
        manager=manager,
        tenants=tenants,
        host=arguments.host,
        port=arguments.port,
    )
    metrics_server = (
        MetricsHTTPServer(registry, host=arguments.host, port=arguments.metrics_port)
        if arguments.metrics_port is not None
        else None
    )
    with scheduler, server:
        metrics_note = (
            f", metrics at {metrics_server.url()}" if metrics_server is not None else ""
        )
        print(
            f"serving {len(flat)} references / {arguments.classes} classes on "
            f"{server.host}:{server.port} ({arguments.shards} shards, "
            f"{arguments.replicas} {arguments.executor} replica(s), "
            f"index={arguments.index}{metrics_note}); Ctrl-C to stop"
        )
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("stopping")
        finally:
            if metrics_server is not None:
                metrics_server.close()
    if tenants is not None:
        tenants.close()
    manager.close()
    return 0


def _serve_bench(arguments) -> List[str]:
    from repro.serving.bench import (
        format_frontend_summary,
        format_storage_summary,
        format_summary,
        run_frontend_bench,
        run_serving_bench,
        run_storage_tier_bench,
    )

    if arguments.shards < 2:
        raise SystemExit("--shards must be >= 2 (the merge path is the point of the bench)")
    if arguments.smoke:
        preset = dict(n_references=1200, n_classes=40, dim=16, k=25, n_queries=400)
    else:
        preset = dict(
            n_references=arguments.references,
            n_classes=arguments.classes,
            dim=arguments.dim,
            k=arguments.k,
            n_queries=arguments.queries,
        )
    if arguments.storage_tier == "tiered":
        if arguments.transport == "tcp":
            raise SystemExit("--storage-tier tiered runs in-process; drop --transport tcp")
        out = arguments.out if arguments.out is not None else Path("BENCH_7.json")
        snapshot = run_storage_tier_bench(
            **preset,
            n_shards=arguments.shards,
            index_kind=arguments.index,
            rerank=arguments.rerank,
            bits=arguments.bits,
            seed=arguments.seed,
            out=out,
        )
        return format_storage_summary(snapshot) + [f"wrote {out}"]
    if arguments.transport == "tcp":
        if arguments.storage_tier != "shm":
            raise SystemExit("--transport tcp publishes through ReplicaSet shm; use the default --storage-tier shm")
        executor = arguments.executor if arguments.executor is not None else "process"
        if executor == "both":
            raise SystemExit("--transport tcp takes --executor serial or process")
        if arguments.replicas < 1:
            raise SystemExit("--replicas must be >= 1")
        out = arguments.out if arguments.out is not None else Path("BENCH_4.json")
        replica_counts = [1]
        while replica_counts[-1] * 2 <= arguments.replicas:
            replica_counts.append(replica_counts[-1] * 2)
        if replica_counts[-1] != arguments.replicas:
            replica_counts.append(arguments.replicas)
        snapshot = run_frontend_bench(
            **preset,
            n_shards=arguments.shards,
            replica_counts=tuple(replica_counts),
            executor=executor,
            router=arguments.router,
            max_batch_size=arguments.batch_size,
            max_latency_s=arguments.max_latency_ms / 1e3,
            cache_size=arguments.cache_size if arguments.cache_size is not None else 0,
            n_clients=arguments.clients,
            request_batch_size=arguments.request_batch_size,
            unmonitored_fraction=arguments.unmonitored_fraction,
            revisit_fraction=arguments.revisit_fraction,
            class_mix=arguments.class_mix if arguments.class_mix is not None else "zipf",
            zipf_s=arguments.zipf_s,
            assignment=arguments.assignment,
            index_kind=arguments.index,
            rerank=arguments.rerank,
            bits=arguments.bits,
            opq=arguments.opq,
            native_kernels=arguments.native_kernels,
            max_cell_fraction=arguments.max_cell_fraction,
            storage_dtype=arguments.storage_dtype,
            seed=arguments.seed,
            out=out,
        )
        return format_frontend_summary(snapshot) + [f"wrote {out}"]
    out = arguments.out if arguments.out is not None else Path("BENCH_2.json")
    executor = arguments.executor if arguments.executor is not None else "serial"
    snapshot = run_serving_bench(
        **preset,
        n_shards=arguments.shards,
        max_batch_size=arguments.batch_size,
        max_latency_s=arguments.max_latency_ms / 1e3,
        cache_size=arguments.cache_size if arguments.cache_size is not None else 4096,
        unmonitored_fraction=arguments.unmonitored_fraction,
        revisit_fraction=arguments.revisit_fraction,
        executor=executor,
        assignment=arguments.assignment,
        index_kind=arguments.index,
        rerank=arguments.rerank,
        bits=arguments.bits,
        opq=arguments.opq,
        native_kernels=arguments.native_kernels,
        max_cell_fraction=arguments.max_cell_fraction,
        storage_dtype=arguments.storage_dtype,
        storage_tier=arguments.storage_tier,
        class_mix=arguments.class_mix if arguments.class_mix is not None else "uniform",
        zipf_s=arguments.zipf_s,
        seed=arguments.seed,
        out=out,
    )
    return format_summary(snapshot) + [f"wrote {out}"]


def _scenario(arguments) -> int:
    from repro.scenarios.bench import (
        DEFAULT_SUITE,
        available_scenarios,
        format_scenario_summary,
        run_scenario_bench,
    )
    from repro.scenarios.builtin import builtin_scenarios

    if arguments.action == "list":
        for name, description in available_scenarios():
            print(f"{name:<18} {description}")
        return 0
    names = arguments.scenario if arguments.scenario else list(DEFAULT_SUITE)
    if "all" in names:
        names = list(builtin_scenarios())
    unknown = [name for name in names if name not in builtin_scenarios()]
    if unknown:
        raise SystemExit(
            f"unknown scenario(s) {', '.join(unknown)}; see `repro scenario list`"
        )
    target = None
    if arguments.target is not None:
        host, _, port_text = arguments.target.rpartition(":")
        if not host or not port_text.isdigit():
            raise SystemExit(f"--target must be HOST:PORT, got {arguments.target!r}")
        target = (host, int(port_text))
    if arguments.tenants < 1:
        raise SystemExit("--tenants must be >= 1")
    snapshot = run_scenario_bench(
        names,
        tenants=arguments.tenants,
        n_queries=arguments.queries,
        seed=arguments.seed,
        target=target,
        dim=arguments.dim,
        out=arguments.out,
    )
    for line in format_scenario_summary(snapshot):
        print(line)
    if arguments.out is not None:
        print(f"wrote {arguments.out}")
    acceptance = snapshot["acceptance"]
    return 0 if acceptance["zero_failed_queries"] and acceptance["tenant_isolation"] else 1


def _stats(arguments) -> int:
    import json

    from repro.obs import format_metrics_table
    from repro.serving.protocol import FrontendClient

    host, _, port_text = arguments.target.rpartition(":")
    if not host or not port_text.isdigit():
        raise SystemExit(f"--target must be HOST:PORT, got {arguments.target!r}")
    with FrontendClient(host, int(port_text)) as client:
        stats = client.stats()
        exposition = client.metrics()["exposition"]
    if arguments.raw:
        print(exposition, end="")
        return 0
    print(json.dumps(stats, indent=2, sort_keys=True))
    print()
    print(format_metrics_table(exposition))
    return 0


def _requantize(arguments) -> int:
    from repro.core.deployment import load_deployment, save_deployment

    fingerprinter = load_deployment(arguments.deployment)
    store = fingerprinter.reference_store
    ratio = store.index.drift_ratio()
    needed = store.retrain_needed(threshold=arguments.threshold)
    print(
        f"deployment {arguments.deployment}: {len(store)} references, "
        f"index {store.index.spec().get('kind')}, drift ratio {ratio:.2f} "
        f"({'re-training recommended' if needed else 'within threshold'})"
    )
    if arguments.check:
        return 0
    if not needed and not arguments.force:
        print("quantizer is still representative; use --force to requantize anyway")
        return 0
    if arguments.sample_size is not None and arguments.sample_size <= 0:
        raise SystemExit("--sample-size must be positive")
    store.requantize(sample_size=arguments.sample_size)
    save_deployment(fingerprinter, arguments.deployment)
    print(
        f"requantized on {len(store)} rows "
        f"(drift ratio now {store.index.drift_ratio():.2f}); deployment saved"
    )
    return 0


def _migrate(arguments) -> int:
    from repro.core.deployment import migrate_deployment

    migrated = migrate_deployment(arguments.directory)
    if not migrated:
        print(f"{arguments.directory}: nothing to migrate (already on the segment format)")
        return 0
    for deployment in migrated:
        print(f"migrated {deployment / 'references.npz'} -> {deployment / 'references.rsg'}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command is None:
        parser.print_help()
        return 1
    if getattr(arguments, "native_kernels", None) is not None:
        # Set the process-global mode before any index is built so worker
        # processes inherit it through the environment.
        from repro.core.kernels import set_native_kernels_mode

        set_native_kernels_mode(arguments.native_kernels)
    if arguments.command == "info":
        print(_info())
        return 0
    if arguments.command == "experiment":
        blocks = _run_experiments(
            arguments.name,
            arguments.scale,
            arguments.output_dir,
            index_kind=arguments.index,
            n_cells=arguments.n_cells,
            n_probe=arguments.n_probe,
            n_subspaces=arguments.n_subspaces,
            bits=arguments.bits,
            opq=arguments.opq,
            rerank=arguments.rerank,
            native_kernels=arguments.native_kernels,
            max_cell_fraction=arguments.max_cell_fraction,
        )
        for block in blocks:
            print(block)
            print()
        return 0
    if arguments.command == "table3":
        for block in _table3(arguments.no_measure, arguments.scale):
            print(block)
            print()
        return 0
    if arguments.command == "index-bench":
        for block in _index_bench(arguments):
            print(block)
            print()
        return 0
    if arguments.command == "serve":
        return _serve(arguments)
    if arguments.command == "scenario":
        return _scenario(arguments)
    if arguments.command == "stats":
        return _stats(arguments)
    if arguments.command == "requantize":
        return _requantize(arguments)
    if arguments.command == "migrate":
        return _migrate(arguments)
    if arguments.command == "serve-bench":
        for line in _serve_bench(arguments):
            print(line)
        return 0
    parser.error(f"unknown command {arguments.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
