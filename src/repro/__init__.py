"""repro — reproduction of "Adaptive Webpage Fingerprinting from TLS Traces".

The package is organised as a set of substrates (``nn``, ``net``, ``tls``,
``web``, ``traces``) underneath the paper's primary contribution in
``core`` (the adaptive fingerprinting pipeline), plus ``defences``,
``baselines``, ``costs``, ``metrics`` and ``experiments``.

The most convenient entry point for users is
:class:`repro.core.fingerprinter.AdaptiveFingerprinter`; see
``examples/quickstart.py`` for a end-to-end walk-through.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
