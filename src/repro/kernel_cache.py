"""Where compiled kernel objects live: a cache directory *outside* the tree.

Both kernel modules (:mod:`repro.nn.kernels` and :mod:`repro.core.kernels`)
compile a C source string on first use and cache the resulting shared
object keyed by a hash of the source and the host CPU.  Early versions
cached the ``.so`` next to the module file, which meant build artifacts
landed inside the (git-tracked) source tree — one even got committed.
This helper gives both modules one out-of-tree location:

1. ``$REPRO_KERNEL_CACHE`` when set (tests point it at a temp dir),
2. ``$XDG_CACHE_HOME/repro/kernels`` or ``~/.cache/repro/kernels``,
3. a per-user directory under the system temp dir as a last resort
   (e.g. read-only home directories in hardened containers).

The directory is created on first call; if nothing is writable the caller
sees the ``OSError`` and falls back to its NumPy path.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["kernel_cache_dir"]


def kernel_cache_dir() -> Path:
    """The writable directory compiled kernel ``.so`` files are cached in."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        path = Path(override)
        path.mkdir(parents=True, exist_ok=True)
        return path
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    path = base / "repro" / "kernels"
    try:
        path.mkdir(parents=True, exist_ok=True)
        return path
    except OSError:
        pass
    path = Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}"
    path.mkdir(parents=True, exist_ok=True)
    return path
