"""Per-query trace spans with 1-in-N sampling and a slow-query log.

A *trace* is the list of per-stage timings one query accumulated on its
way through the serving pipeline — queue wait, batch assembly, cache
lookup, scatter (with per-shard scan records tagged native vs fallback),
merge, rerank — riding the query's ``QueryTicket`` so the front-end can
return it and tests can assert on it.

The cost model is the whole point:

* **Sampling.**  :meth:`Tracer.maybe_trace` hands out a
  :class:`QueryTrace` for one in every ``sample_every`` queries (0 =
  tracing off).  An unsampled query pays a single counter increment and
  carries ``trace=None``; all span bookkeeping is skipped because the
  pipeline stages consult :func:`enabled` before doing any timing work.
* **Slow-query log.**  Independently of sampling, every fulfilment is
  checked against ``slow_threshold_s`` — one float comparison.  A query
  over the threshold is recorded (with whatever spans it collected, or
  just its latency) to a bounded deque and the ``repro.obs`` logger, so
  the tail is never invisible just because it wasn't sampled.

Stages deep in the pipeline (index scans, shard workers) don't see the
ticket; they report through a **thread-local collector stack**
(:func:`push` / :func:`pop` / :func:`record`).  The scheduler pushes a
collector around batch execution, the sharded store pushes its own
around the scatter to capture per-shard records, and each layer folds
what it collected into the layer above.  When no collector is pushed —
the common, unsampled case — :func:`enabled` is ``False`` and the hooks
cost one attribute read.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .metrics import LATENCY_BUCKETS_S, MetricsRegistry

logger = logging.getLogger("repro.obs")

_local = threading.local()


@dataclass
class SpanRecord:
    """One timed stage of one query (or batch): name, duration, detail."""

    stage: str
    seconds: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form: ``{"stage", "seconds", **detail}``."""
        return {"stage": self.stage, "seconds": self.seconds, **self.detail}


def _stack() -> List[List[SpanRecord]]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def enabled() -> bool:
    """Whether a span collector is active on this thread.

    Pipeline hooks guard their timing work with this — it is one
    attribute read plus a truth test, which is what keeps the unsampled
    hot path at effectively zero tracing cost.
    """
    return bool(getattr(_local, "stack", None))


def push(records: Optional[List[SpanRecord]] = None) -> List[SpanRecord]:
    """Activate a span collector on this thread and return it.

    Collectors nest: the innermost push receives subsequent
    :func:`record` calls, and the pusher is responsible for folding the
    collected records outward (or into a trace) after :func:`pop`.
    """
    if records is None:
        records = []
    _stack().append(records)
    return records


def pop() -> List[SpanRecord]:
    """Deactivate and return the innermost collector pushed on this thread."""
    return _stack().pop()


def record(stage: str, seconds: float, **detail: Any) -> None:
    """Append a span to the innermost active collector (no-op if none)."""
    stack = getattr(_local, "stack", None)
    if stack:
        stack[-1].append(SpanRecord(stage, float(seconds), dict(detail)))


def record_span(span: SpanRecord) -> None:
    """Append an already-built :class:`SpanRecord` to the active collector."""
    stack = getattr(_local, "stack", None)
    if stack:
        stack[-1].append(span)


class QueryTrace:
    """The spans one sampled query collected end to end.

    Rides ``QueryTicket.trace`` (``None`` on unsampled queries) and is
    completed by :meth:`Tracer.finish`, which stamps the total latency
    and feeds the per-stage histogram.
    """

    __slots__ = ("spans", "latency_s", "cached", "failed")

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self.latency_s: Optional[float] = None
        self.cached = False
        self.failed = False

    def add(self, stage: str, seconds: float, **detail: Any) -> None:
        """Append one span."""
        self.spans.append(SpanRecord(stage, float(seconds), dict(detail)))

    def extend(self, spans: List[SpanRecord]) -> None:
        """Append a batch of collected spans."""
        self.spans.extend(spans)

    def stage_seconds(self) -> Dict[str, float]:
        """Total seconds per stage name (a span map summary)."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.stage] = out.get(span.stage, 0.0) + span.seconds
        return out

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form with latency, flags, and every span."""
        return {
            "latency_s": self.latency_s,
            "cached": self.cached,
            "failed": self.failed,
            "spans": [span.as_dict() for span in self.spans],
        }


class Tracer:
    """Sampling policy + slow-query log + span-histogram sink.

    ``sample_every=N`` traces one query in N (0 disables tracing);
    ``slow_threshold_s`` (``None`` disables) logs any query slower than
    the threshold regardless of sampling.  Thread-safe: the sampling
    decision rides :class:`itertools.count` (atomic in CPython) and the
    slow/recent deques are bounded and lock-protected.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        sample_every: int = 0,
        slow_threshold_s: Optional[float] = None,
        keep_recent: int = 64,
        keep_slow: int = 64,
    ) -> None:
        self.sample_every = int(sample_every)
        self.slow_threshold_s = slow_threshold_s
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._recent: deque = deque(maxlen=keep_recent)
        self._slow: deque = deque(maxlen=keep_slow)
        self.registry = registry
        if registry is not None:
            self._sampled_total = registry.counter(
                "repro_trace_sampled_total", "Queries selected for span tracing."
            )
            self._slow_total = registry.counter(
                "repro_trace_slow_queries_total",
                "Queries slower than the slow-query threshold.",
            )
            self._span_seconds = registry.histogram(
                "repro_trace_span_seconds",
                "Per-stage time from sampled query traces.",
                buckets=LATENCY_BUCKETS_S,
                labels=("stage",),
            )
        else:
            self._sampled_total = None
            self._slow_total = None
            self._span_seconds = None

    def maybe_trace(self) -> Optional[QueryTrace]:
        """A fresh :class:`QueryTrace` for 1-in-``sample_every`` calls,
        else ``None``.  With sampling off (``sample_every <= 0``) this is
        a single attribute read."""
        if self.sample_every <= 0:
            return None
        if next(self._counter) % self.sample_every:
            return None
        if self._sampled_total is not None:
            self._sampled_total.inc()
        return QueryTrace()

    def finish(
        self,
        trace: Optional[QueryTrace],
        latency_s: float,
        *,
        cached: bool = False,
        failed: bool = False,
    ) -> None:
        """Complete a query: stamp its trace (if sampled), feed the span
        histogram, and apply the slow-query check to **every** call."""
        if trace is not None:
            trace.latency_s = latency_s
            trace.cached = cached
            trace.failed = failed
            if self._span_seconds is not None:
                for span in trace.spans:
                    self._span_seconds.observe(span.seconds, stage=span.stage)
            with self._lock:
                self._recent.append(trace)
        threshold = self.slow_threshold_s
        if threshold is not None and latency_s > threshold:
            self._record_slow(trace, latency_s, cached=cached, failed=failed)

    def _record_slow(self, trace, latency_s, *, cached, failed):
        if self._slow_total is not None:
            self._slow_total.inc()
        entry = (
            trace.as_dict()
            if trace is not None
            else {"latency_s": latency_s, "cached": cached, "failed": failed, "spans": []}
        )
        with self._lock:
            self._slow.append(entry)
        logger.warning(
            "slow query: %.1f ms (threshold %.1f ms)%s%s",
            latency_s * 1e3,
            self.slow_threshold_s * 1e3,
            " [cached]" if cached else "",
            " [failed]" if failed else "",
        )

    def recent(self) -> List[Dict[str, Any]]:
        """The most recent sampled traces, as dicts (newest last)."""
        with self._lock:
            return [trace.as_dict() for trace in self._recent]

    def slow(self) -> List[Dict[str, Any]]:
        """The most recent slow-query entries, as dicts (newest last)."""
        with self._lock:
            return list(self._slow)


class timed:
    """Context manager that records its block as a span on exit.

    ``with timed("merge"): ...`` appends a ``merge`` span to the active
    collector; when no collector is active the overhead is one
    :func:`enabled` check and the clock is never read.
    """

    __slots__ = ("stage", "detail", "_start", "seconds")

    def __init__(self, stage: str, **detail: Any) -> None:
        self.stage = stage
        self.detail = detail
        self._start: Optional[float] = None
        self.seconds = 0.0

    def __enter__(self) -> "timed":
        """Start the clock only if a collector is listening."""
        if enabled():
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Record the elapsed span (when the clock was started)."""
        if self._start is not None:
            self.seconds = time.perf_counter() - self._start
            record(self.stage, self.seconds, **self.detail)
