"""Serving observability: metrics registry, query tracing, Prometheus export.

The measurement substrate the serving pipeline reports through:

- :mod:`repro.obs.metrics` — lock-cheap :class:`Counter` / :class:`Gauge`
  / :class:`Histogram` behind a get-or-create :class:`MetricsRegistry`;
  histograms use fixed log-spaced buckets so percentile estimates merge
  across threads, replicas and worker processes.
- :mod:`repro.obs.tracing` — per-query :class:`QueryTrace` spans riding
  ``QueryTicket`` with 1-in-N sampling and a threshold-triggered
  slow-query log (:class:`Tracer`), plus the thread-local collector
  stack deep pipeline stages report through.
- :mod:`repro.obs.export` — Prometheus text-format exposition
  (:func:`render_prometheus`), the strict :func:`parse_prometheus`
  used by tests/CI/CLI, and the ``--metrics-port``
  :class:`MetricsHTTPServer`.

See ``docs/observability.md`` for the metric catalogue, the trace span
map, and a scrape example.
"""

from .export import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    format_metrics_table,
    histogram_quantile,
    parse_prometheus,
    render_prometheus,
)
from .metrics import (
    LATENCY_BUCKETS_S,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NullRegistry,
    exponential_buckets,
)
from .tracing import QueryTrace, SpanRecord, Tracer, timed

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "MetricError",
    "MetricsHTTPServer",
    "MetricsRegistry",
    "NullRegistry",
    "QueryTrace",
    "SIZE_BUCKETS",
    "SpanRecord",
    "Tracer",
    "exponential_buckets",
    "format_metrics_table",
    "histogram_quantile",
    "parse_prometheus",
    "render_prometheus",
    "timed",
]
