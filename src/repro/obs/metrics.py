"""Lock-cheap metrics primitives for the serving telemetry layer.

Three metric kinds — :class:`Counter`, :class:`Gauge`, :class:`Histogram` —
behind one :class:`MetricsRegistry`, modelled on the Prometheus data model
(``docs/observability.md`` catalogues every metric the serving stack
registers).  The design constraints come from the serving hot path:

* **Lock-cheap.**  Every update is one dict lookup plus an integer/float
  add under a per-metric lock that is never held across anything slower;
  there is no global registry lock on the update path.  A counter ``inc``
  costs well under a microsecond, which is what lets the scheduler count
  every single query without a measurable throughput tax.
* **Mergeable percentiles.**  Histograms use *fixed* log-spaced bucket
  edges shared by construction (:data:`LATENCY_BUCKETS_S` for seconds,
  :data:`SIZE_BUCKETS` for counts), so bucket-count vectors from
  different threads, replicas and worker processes can simply be added
  (:meth:`Histogram.merge_from`) and the merged quantile estimate is
  exactly what a single histogram fed all observations would report.
* **Callback gauges.**  A gauge may be backed by a function sampled at
  scrape time (:meth:`Gauge.set_function`) — queue depth, in-flight
  counts and drift ratios are reads of live state, not events.

:class:`NullRegistry` hands out no-op metrics with the same interface, so
the instrumentation's own cost can be measured (the obs CI gate) and hot
loops can opt out without ``if``-litter at every call site.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """A metric was registered or used inconsistently."""


def exponential_buckets(lower: float, upper: float, *, per_decade: int = 8) -> Tuple[float, ...]:
    """Log-spaced bucket upper edges covering ``[lower, upper]``.

    ``per_decade`` edges per power of ten (8 keeps any value within ~15%
    of a bucket edge — the "one bucket width" the percentile-agreement
    acceptance test is stated in).  Edges are deterministic for given
    arguments, which is what makes histograms built from the same
    constants mergeable across processes.
    """
    if lower <= 0 or upper <= lower:
        raise MetricError("exponential_buckets needs 0 < lower < upper")
    if per_decade <= 0:
        raise MetricError("per_decade must be positive")
    n_edges = int(math.ceil(per_decade * math.log10(upper / lower))) + 1
    edges = [lower * 10 ** (i / per_decade) for i in range(n_edges)]
    if edges[-1] < upper:
        edges.append(upper)
    return tuple(round(edge, 12) for edge in edges)


#: Latency bucket edges in seconds: 10 µs … 100 s, 8 per decade.  Every
#: latency histogram in the serving stack uses these, so their percentile
#: estimates are mergeable across threads, replicas and workers.
LATENCY_BUCKETS_S: Tuple[float, ...] = exponential_buckets(1e-5, 100.0, per_decade=8)

#: Size/count bucket edges (batch sizes, queue depths): powers of two up
#: to 65536.
SIZE_BUCKETS: Tuple[float, ...] = tuple(float(2**i) for i in range(17))


def _format_labels(label_names: Sequence[str], label_values: Sequence[str]) -> Dict[str, str]:
    return dict(zip(label_names, label_values))


class _Metric:
    """Shared machinery: naming, label handling, per-metric locking."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r} on metric {name!r}")
        self.name = name
        self.help = str(help)
        self.label_names: Tuple[str, ...] = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if not labels and not self.label_names:  # the hot unlabeled path
            return ()
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise MetricError(
                f"metric {self.name!r} takes labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)


class Counter(_Metric):
    """A monotonically increasing count (events: queries, errors, swaps)."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the counter for ``labels``."""
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """The current count for ``labels`` (0.0 before the first inc)."""
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """The sum over every label combination (the unlabeled total)."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        """``(labels, value)`` pairs for exposition, insertion-ordered."""
        with self._lock:
            items = list(self._values.items())
        return [(_format_labels(self.label_names, key), value) for key, value in items]


class Gauge(_Metric):
    """A value that goes up and down (depths, ratios, generations).

    A gauge is either *set-based* (:meth:`set`/:meth:`inc`/:meth:`dec`)
    or *callback-based* (:meth:`set_function`, sampled at scrape time);
    the callback wins when both were used for a label set.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[Tuple[str, ...], float] = {}
        self._functions: Dict[Tuple[str, ...], Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the gauge for ``labels`` to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` to the gauge for ``labels``."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the gauge for ``labels``."""
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: str) -> None:
        """Raise the gauge to ``value`` if it is below it (high-water marks)."""
        key = self._key(labels)
        with self._lock:
            self._values[key] = max(self._values.get(key, 0.0), float(value))

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        """Back the gauge for ``labels`` with ``fn``, called at scrape time."""
        key = self._key(labels)
        with self._lock:
            self._functions[key] = fn

    def value(self, **labels: str) -> float:
        """The current value for ``labels`` (calls the callback if set)."""
        key = self._key(labels)
        with self._lock:
            fn = self._functions.get(key)
            if fn is None:
                return self._values.get(key, 0.0)
        return float(fn())

    def samples(self) -> List[Tuple[Dict[str, str], float]]:
        """``(labels, value)`` pairs for exposition; callbacks are sampled
        outside the metric lock (a callback may itself take locks)."""
        with self._lock:
            keys = list(dict.fromkeys([*self._values, *self._functions]))
            functions = dict(self._functions)
            values = dict(self._values)
        out: List[Tuple[Dict[str, str], float]] = []
        for key in keys:
            fn = functions.get(key)
            value = float(fn()) if fn is not None else values.get(key, 0.0)
            out.append((_format_labels(self.label_names, key), value))
        return out


class Histogram(_Metric):
    """Fixed-bucket distribution (latencies, batch sizes) with quantiles.

    Buckets are *upper edges* with Prometheus ``le`` semantics (a value
    lands in the first bucket whose edge is >= it; anything above the last
    edge lands in the implicit ``+Inf`` overflow bucket).  Because the
    edges are fixed at construction, two histograms built with the same
    edges merge by adding their count vectors (:meth:`merge_from`) — the
    property that lets per-worker scan timings aggregate in the parent and
    per-replica latencies aggregate fleet-wide.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, label_names)
        edges = tuple(float(edge) for edge in buckets)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise MetricError(f"histogram {name!r} needs strictly increasing bucket edges")
        self.buckets: Tuple[float, ...] = edges
        self._bucket_array = np.asarray(edges)  # observe_many's searchsorted haystack
        self._counts: Dict[Tuple[str, ...], List[int]] = {}
        self._sums: Dict[Tuple[str, ...], float] = {}

    def _bins(self, key: Tuple[str, ...]) -> List[int]:
        bins = self._counts.get(key)
        if bins is None:
            bins = [0] * (len(self.buckets) + 1)  # +1 = the +Inf overflow
            self._counts[key] = bins
            self._sums[key] = 0.0
        return bins

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation (one bisect + one int add under the lock)."""
        value = float(value)
        position = bisect_left(self.buckets, value)
        key = self._key(labels)
        with self._lock:
            self._bins(key)[position] += 1
            self._sums[key] += value

    def observe_many(self, values: Iterable[float], **labels: str) -> None:
        """Record a batch of observations under one lock acquisition.

        The scheduler's per-batch fulfilment path uses this so telemetry
        costs one vectorised bucket search and one lock round-trip per
        *batch* instead of a bisect and a lock per query.
        """
        array = np.asarray(values if isinstance(values, (list, np.ndarray)) else list(values))
        if array.size == 0:
            return
        # side="left" matches bisect_left in observe(): an observation on a
        # bucket edge lands in the bucket whose upper bound is that edge.
        positions = np.searchsorted(self._bucket_array, array, side="left")
        hit_bins, hit_counts = np.unique(positions, return_counts=True)
        total = float(array.sum())
        key = self._key(labels)
        with self._lock:
            bins = self._bins(key)
            for position, count in zip(hit_bins.tolist(), hit_counts.tolist()):
                bins[position] += count
            self._sums[key] += total

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram with identical edges into this one."""
        if other.buckets != self.buckets:
            raise MetricError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: bucket edges differ"
            )
        with other._lock:
            counts = {key: list(bins) for key, bins in other._counts.items()}
            sums = dict(other._sums)
        with self._lock:
            for key, bins in counts.items():
                mine = self._bins(key)
                for position, count in enumerate(bins):
                    mine[position] += count
                self._sums[key] += sums[key]

    def count(self, **labels: str) -> int:
        """Total observations for ``labels``."""
        key = self._key(labels)
        with self._lock:
            return sum(self._counts.get(key, ()))

    def sum(self, **labels: str) -> float:
        """Sum of observed values for ``labels``."""
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def bucket_counts(self, **labels: str) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow bucket last."""
        key = self._key(labels)
        with self._lock:
            return list(self._counts.get(key, [0] * (len(self.buckets) + 1)))

    def quantile(self, q: float, **labels: str) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) by interpolating
        within the bucket the target rank falls in.

        The estimate is always inside the true value's bucket, so it is
        within one bucket width of the exact sample quantile — the bound
        the serving bench's percentile-agreement check asserts.  Returns
        ``nan`` on an empty histogram; an overflow-bucket hit returns the
        last finite edge (there is no upper edge to interpolate towards).
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile takes q in [0, 1], got {q}")
        bins = self.bucket_counts(**labels)
        total = sum(bins)
        if total == 0:
            return float("nan")
        target = q * total
        cumulative = 0.0
        for position, count in enumerate(bins):
            if count == 0:
                continue
            if cumulative + count >= target:
                if position >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[position - 1] if position else 0.0
                upper = self.buckets[position]
                fraction = (target - cumulative) / count if count else 0.0
                return lower + min(1.0, max(0.0, fraction)) * (upper - lower)
            cumulative += count
        return self.buckets[-1]

    def bucket_bounds(self, value: float) -> Tuple[float, float]:
        """The ``(lower, upper)`` edges of the bucket ``value`` lands in
        (upper is ``inf`` for the overflow bucket) — the "one bucket
        width" tolerance of the percentile-agreement acceptance check."""
        position = bisect_left(self.buckets, float(value))
        lower = self.buckets[position - 1] if position else 0.0
        upper = self.buckets[position] if position < len(self.buckets) else float("inf")
        return lower, upper

    def samples(self) -> List[Tuple[Dict[str, str], List[int], float]]:
        """``(labels, per-bucket counts, sum)`` per label set (exposition)."""
        with self._lock:
            items = [(key, list(bins), self._sums[key]) for key, bins in self._counts.items()]
        return [
            (_format_labels(self.label_names, key), bins, total) for key, bins, total in items
        ]


class MetricsRegistry:
    """Get-or-create home for metrics; one per serving process (or test).

    Registration is idempotent: asking for an existing name returns the
    existing metric if kind, labels and (for histograms) buckets match,
    and raises :class:`MetricError` otherwise.  Components default to a
    private registry so unit tests never share counters; ``repro serve``
    threads one registry through scheduler, front-end, manager and store
    so a single scrape covers the whole pipeline.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str, label_names, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != tuple(label_names):
                    raise MetricError(
                        f"metric {name!r} already registered as {existing.kind} "
                        f"with labels {existing.label_names}"
                    )
                buckets = kwargs.get("buckets")
                if buckets is not None and existing.buckets != tuple(float(b) for b in buckets):
                    raise MetricError(f"histogram {name!r} already registered with other buckets")
                return existing
            metric = cls(name, help, label_names=label_names, **kwargs) if kwargs else cls(
                name, help, label_names
            )
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
        labels: Sequence[str] = (),
    ) -> Histogram:
        """Get or create a :class:`Histogram` with the given bucket edges."""
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric with ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[_Metric]:
        """Every registered metric, in registration order (for exposition)."""
        with self._lock:
            return list(self._metrics.values())

    def names(self) -> List[str]:
        """Registered metric names, in registration order."""
        with self._lock:
            return list(self._metrics)


class _NullMetric(Counter):
    """A metric that accepts every update and reports nothing."""

    def __init__(self) -> None:  # bypass name validation entirely
        self.name = "_null"
        self.help = ""
        self.label_names = ()
        self.buckets = LATENCY_BUCKETS_S

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Discard the update."""

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Discard the update."""

    def set(self, value: float, **labels: str) -> None:
        """Discard the update."""

    def set_max(self, value: float, **labels: str) -> None:
        """Discard the update."""

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        """Discard the callback."""

    def observe(self, value: float, **labels: str) -> None:
        """Discard the observation."""

    def observe_many(self, values: Iterable[float], **labels: str) -> None:
        """Discard the observations."""

    def merge_from(self, other) -> None:
        """Discard the merge."""

    def value(self, **labels: str) -> float:
        """Always 0.0."""
        return 0.0

    def total(self) -> float:
        """Always 0.0."""
        return 0.0

    def count(self, **labels: str) -> int:
        """Always 0."""
        return 0

    def sum(self, **labels: str) -> float:
        """Always 0.0."""
        return 0.0

    def quantile(self, q: float, **labels: str) -> float:
        """Always ``nan`` (no observations are kept)."""
        return float("nan")

    def bucket_counts(self, **labels: str) -> List[int]:
        """Always empty-shaped zeros."""
        return [0] * (len(LATENCY_BUCKETS_S) + 1)

    def samples(self) -> List:
        """Always empty."""
        return []


class NullRegistry(MetricsRegistry):
    """A registry whose metrics are all no-ops.

    Used to measure the instrumentation's own cost (the obs CI job runs
    the serve-bench smoke against a real registry and a null registry and
    gates the difference) and to switch telemetry off wholesale without
    touching call sites.
    """

    _NULL = _NullMetric()

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        """The shared no-op metric."""
        return self._NULL

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        """The shared no-op metric."""
        return self._NULL  # type: ignore[return-value]

    def histogram(self, name: str, help: str, *, buckets=LATENCY_BUCKETS_S, labels=()) -> Histogram:
        """The shared no-op metric."""
        return self._NULL  # type: ignore[return-value]

    def collect(self) -> List[_Metric]:
        """Always empty — a null registry exposes nothing."""
        return []
